// vod_simulate — the library as a standalone simulator.
//
//   vod_simulate <deployment.spec> [trace.csv] [days] [requests-per-day]
//
// Loads a deployment spec (see src/service/spec.h for the format) and an
// optional background-traffic trace CSV (src/net/trace_io.h; repeated
// daily), replays the given number of days of Zipf/diurnal demand against
// it, and prints the operator report plus a per-session CSV.
//
// With no arguments it runs a built-in GRNET demo: the paper's topology
// and Table 2 trace, two days, 40 requests/day.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "grnet/grnet.h"
#include "net/trace_io.h"
#include "service/report.h"
#include "service/spec.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    // vodlint:throw-ok(CLI input error, not a library contract; main()
    // catches and prints it)
    throw std::invalid_argument("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The GRNET case study as a spec, used when no file is given.
const char* kBuiltinSpec = R"(
node U1
node U2
node U3
node U4
node U5
node U6
link U2 U1 2
link U2 U3 2
link U4 U1 18
link U4 U5 2
link U4 U3 2
link U1 U6 18
link U5 U6 2
server_defaults disks=8 disk_mb=9000
cluster_mb 25
snmp_interval 90
dma_threshold 2
video "title-0" size_mb=150 bitrate=1.5
video "title-1" size_mb=150 bitrate=1.5
video "title-2" size_mb=150 bitrate=1.5
video "title-3" size_mb=150 bitrate=1.5
video "title-4" size_mb=150 bitrate=1.5
video "title-5" size_mb=150 bitrate=1.5
place "title-0" U1
place "title-1" U1
place "title-2" U4
place "title-3" U4
place "title-4" U6
place "title-5" U6
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    const service::ServiceSpec spec = service::parse_service_spec(
        argc > 1 ? read_file(argv[1]) : kBuiltinSpec);
    const int days = argc > 3 ? std::max(1, std::atoi(argv[3])) : 2;
    const int per_day = argc > 4 ? std::max(1, std::atoi(argv[4])) : 40;

    // Background traffic: the given trace (repeated daily), or the Table 2
    // trace when running the built-in GRNET demo, or silence.
    std::unique_ptr<net::TraceTraffic> day_trace;
    if (argc > 2) {
      day_trace = std::make_unique<net::TraceTraffic>(
          net::load_trace_csv(read_file(argv[2]), spec.topology));
    } else if (argc <= 1) {
      const grnet::CaseStudy g = grnet::build_case_study();
      day_trace =
          std::make_unique<net::TraceTraffic>(grnet::table2_trace(g));
    }
    net::NoTraffic silence;
    std::unique_ptr<net::PeriodicTraffic> repeating;
    const net::TrafficModel* traffic = &silence;
    if (day_trace) {
      repeating =
          std::make_unique<net::PeriodicTraffic>(*day_trace, Duration{86400.0});
      traffic = repeating.get();
    }

    sim::Simulation sim;
    net::FluidNetwork network{spec.topology, *traffic};
    service::ServiceOptions options = spec.options;
    options.vra_switch_hysteresis = 0.5;
    options.session.stall_timeout_seconds = 1200.0;
    service::VodService service{sim, spec.topology, network, options,
                                db::AdminCredential{"vod-simulate"}};
    const auto videos = service::initialize_from_spec(spec, service);
    service.start();

    std::vector<VideoId> ids;
    for (const auto& [title, id] : videos) ids.push_back(id);
    std::vector<NodeId> homes;
    for (std::size_t n = 0; n < spec.topology.node_count(); ++n) {
      homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
    }
    workload::RequestGenerator gen{ids, 1.0, homes};
    Rng rng{2000};
    const auto requests = gen.generate_diurnal(
        SimTime{0.0}, Duration{days * 86400.0},
        static_cast<double>(per_day) / 86400.0, 20.0, 3.0, rng);
    for (const workload::Request& request : requests) {
      sim.schedule_at(request.at, [&service, request](SimTime) {
        (void)service.request_at(request.home, request.video);
      });
    }

    std::cout << "simulating " << days << " day(s), " << requests.size()
              << " requests over " << spec.topology.node_count()
              << " sites...\n";
    sim.run_until(from_hours(days * 24.0 + 24.0));

    std::cout << "\n" << service::format_report(
                            service::build_report(service, Mbps{0.0}));
    std::cout << "\nper-session CSV:\n"
              << service::report_sessions_csv(service);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "vod_simulate: " << error.what() << "\n";
    return 1;
  }
}
