// Mid-stream server switching — the "dynamic" in the paper's title.
//
// A client at Athens starts a long movie just before the 10am traffic
// surge (Table 2).  The VRA initially serves it from Ioannina; when the
// Patra-Athens link saturates at 10am, the per-cluster re-evaluation moves
// the session to Xanthi without interrupting playback.
//
// Build & run:  ./build/examples/dynamic_streaming
#include <iomanip>
#include <iostream>

#include "grnet/grnet.h"
#include "net/fluid.h"
#include "net/transfer.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"
#include "vra/vra.h"

using namespace vod;

int main() {
  const db::AdminCredential admin{"demo-admin"};
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  net::TransferManager transfers{sim, network};

  db::Database db{admin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(admin), Duration{90.0}};
  // Account VoD streams separately so the VRA reacts to the *background*
  // congestion shift rather than to its own flow (without this the stream
  // ping-pongs between the two replicas; try flipping it).
  snmp.set_count_vod_flows(false);
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  const VideoId movie =
      db.register_video("marathon", MegaBytes{400.0}, Mbps{1.5});
  auto view = db.limited_view(admin);
  view.add_title(g.ioannina, movie);
  view.add_title(g.xanthi, movie);

  vra::Vra vra{g.topology, db.full_view(), db.limited_view(admin), {}};
  // 30% switch hysteresis: without it the SNMP counters (which include
  // this session's own flow) make the VRA ping-pong between the two
  // replicas; with it only the real 10am congestion shift triggers a move.
  stream::VraPolicy policy{vra, 0.3};

  std::unique_ptr<stream::Session> session;
  sim.schedule_at(from_hours(9.9), [&](SimTime t) {
    std::cout << "t=" << t.seconds() / 3600.0
              << "h  client at Athens requests the movie\n";
    session = std::make_unique<stream::Session>(
        sim, transfers, policy, *db.full_view().video(movie), g.athens,
        MegaBytes{20.0});
    session->start();
  });
  sim.run_until(from_hours(20.0));
  snmp.stop();

  const stream::SessionMetrics& m = session->metrics();
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "\ncluster log (source server per cluster):\n";
  NodeId last;
  for (std::size_t k = 0; k < m.cluster_sources.size(); ++k) {
    const bool switched = k > 0 && m.cluster_sources[k] != last;
    std::cout << "  cluster " << std::setw(2) << k << " from "
              << g.city(m.cluster_sources[k]) << "  (done t="
              << m.cluster_completed[k].seconds() / 3600.0 << "h)"
              << (switched ? "   <-- switched!" : "") << "\n";
    last = m.cluster_sources[k];
  }
  std::cout << "\nfinished: " << std::boolalpha << m.finished
            << "; switches: " << m.server_switches
            << "; startup: " << m.startup_delay() << "s"
            << "; rebuffer: " << m.rebuffer_seconds << "s\n";
  return 0;
}
