// Quickstart: stand up the full VoD service on a 3-node network, add a
// title, and stream it.
//
//   topology   ->  FluidNetwork  ->  VodService  ->  request_by_ip()
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "net/fluid.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

using namespace vod;

int main() {
  // 1. A small predefined network: three campuses in a line.
  net::Topology topo;
  const NodeId alpha = topo.add_node("alpha");
  const NodeId beta = topo.add_node("beta");
  const NodeId gamma = topo.add_node("gamma");
  topo.add_link(alpha, beta, Mbps{10.0});
  topo.add_link(beta, gamma, Mbps{10.0});

  // 2. Background traffic (other people's packets) and the fluid network.
  net::ConstantTraffic traffic;
  traffic.set_load(*topo.find_link(alpha, beta), Mbps{4.0});
  sim::Simulation sim;
  net::FluidNetwork network{topo, traffic};

  // 3. The service: database + DMA caches + SNMP + VRA + streaming.
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  service::VodService service{sim, topo, network, options,
                              db::AdminCredential{"quickstart-admin"}};

  // 4. Service initialization: subnets, one title, one initial copy.
  service.ip_directory().add_subnet("10.1.0.0/16", alpha);
  service.ip_directory().add_subnet("10.3.0.0/16", gamma);
  const VideoId movie =
      service.add_video("big buck bunny", MegaBytes{100.0}, Mbps{2.0});
  service.place_initial_copy(gamma, movie);
  service.start();

  // 5. A client on campus alpha asks for the movie.  The VRA finds the
  //    copy at gamma and routes alpha<-beta<-gamma; the DMA at alpha
  //    counts the request (and, with default options, caches a copy).
  std::cout << "catalog:";
  for (const db::VideoInfo& info : service.list_titles()) {
    std::cout << " \"" << info.title << "\" (" << info.size << ", "
              << info.bitrate << ")";
  }
  std::cout << "\n";

  const SessionId session_id = service.request_by_ip(
      "10.1.42.7", movie, [&](const stream::Session& session) {
        const stream::SessionMetrics& m = session.metrics();
        std::cout << "session finished at t=" << sim.now()
                  << "  startup=" << m.startup_delay() << "s"
                  << "  rebuffer=" << m.rebuffer_seconds << "s"
                  << "  switches=" << m.server_switches << "\n";
      });
  // The SNMP poller re-arms forever, so run to a horizon rather than to
  // queue exhaustion.
  sim.run_until(from_hours(1.0));

  const stream::SessionMetrics& m = service.session_metrics(session_id);
  std::cout << "clusters fetched: " << m.cluster_sources.size()
            << "; sources:";
  for (const NodeId source : m.cluster_sources) {
    std::cout << " " << topo.node_name(source);
  }
  std::cout << "\n";
  std::cout << "alpha's DMA now caches the title: " << std::boolalpha
            << service.dma_cache(alpha).cached(movie) << "\n";
  return 0;
}
