// Spec-driven deployment: the whole service initialized from one
// declarative text artifact — the programmatic equivalent of the paper's
// administrator web forms.
//
// Build & run:  ./build/examples/spec_driven
#include <iostream>

#include "net/fluid.h"
#include "net/traffic.h"
#include "service/spec.h"
#include "sim/simulation.h"

using namespace vod;

namespace {

const char* kDeployment = R"(
# A small national deployment, web-form style.
node capital
node port
node island
link capital port 10
link capital island 2          # undersea cable, thin
server_defaults disks=6 disk_mb=8192
cluster_mb 20
snmp_interval 60
dma_threshold 3                # cache a title locally after 4 requests

subnet 10.10.0.0/16 capital
subnet 10.20.0.0/16 port
subnet 10.30.0.0/16 island

video "evening news" size_mb=300 bitrate=1.5
video "feature film" size_mb=1400 bitrate=3
place "evening news" capital
place "feature film" capital
place "feature film" port      # second replica near the viewers
)";

}  // namespace

int main() {
  const service::ServiceSpec spec = service::parse_service_spec(kDeployment);
  std::cout << "parsed deployment: " << spec.topology.node_count()
            << " nodes, " << spec.topology.link_count() << " links, "
            << spec.videos.size() << " titles, " << spec.placements.size()
            << " placements\n";

  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{spec.topology, traffic};
  service::VodService service{sim, spec.topology, network, spec.options,
                              db::AdminCredential{"spec-admin"}};
  const auto videos = service::initialize_from_spec(spec, service);
  service.start();

  // A viewer on the island watches the news (remote over the 2 Mbps
  // cable); one in the port city watches the film (local replica).
  const SessionId island_session = service.request_by_ip(
      "10.30.1.5", videos.at("evening news"));
  const SessionId port_session = service.request_by_ip(
      "10.20.9.9", videos.at("feature film"));
  sim.run_until(from_hours(2.0));

  for (const auto& [label, id] :
       {std::pair{"island/news", island_session},
        std::pair{"port/film", port_session}}) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    std::cout << label << ": finished=" << std::boolalpha << m.finished
              << " download="
              << (m.download_completed_at ? *m.download_completed_at -
                                                m.requested_at
                                          : 0.0)
              << "s startup=" << m.startup_delay()
              << "s mean rate=" << m.mean_delivered_rate << "\n";
  }
  std::cout << "\nThe island session crossed the thin 2 Mbps cable (note "
               "the rate); the port\nsession was served by its local "
               "replica — placement straight from the spec.\n";

  // Popularity at work: after enough island requests the DMA (threshold 3
  // from the spec) caches the news locally and the cable is bypassed.
  for (int i = 0; i < 4; ++i) {
    service.request_by_ip("10.30.1.6", videos.at("evening news"));
    sim.run_until(sim.now() + hours(1.0));
  }
  const auto island = spec.topology.find_node("island");
  std::cout << "after 4 more island requests, cached locally: "
            << std::boolalpha
            << service.dma_cache(*island).cached(videos.at("evening news"))
            << "\n";
  return 0;
}
