// The DMA in action on one server: cyclic striping over the disk array
// (Figure 3) plus the popularity cache of Figure 2.
//
// Build & run:  ./build/examples/striping_demo
#include <iostream>

#include "dma/dma_cache.h"
#include "storage/disk_array.h"

using namespace vod;

namespace {

void show_array(const storage::DiskArray& array) {
  for (std::size_t slot = 0; slot < array.disk_count(); ++slot) {
    const storage::Disk& disk = array.disk(slot);
    std::cout << "  disk " << (slot + 1) << ": " << disk.used().value()
              << "/" << disk.capacity().value() << " MB used ("
              << disk.stored_part_count() << " strips)\n";
  }
}

}  // namespace

int main() {
  // 4 disks x 2 GB, cluster size c = 100 MB.
  storage::DiskArray array{
      4,
      storage::DiskProfile{.capacity = MegaBytes{2048.0},
                           .transfer_rate = Mbps{80.0},
                           .seek_seconds = 0.009},
      MegaBytes{100.0}};
  dma::DmaCallbacks callbacks;
  callbacks.on_admit = [](VideoId video) {
    std::cout << "  [cache] admitted video " << video << "\n";
  };
  callbacks.on_evict = [](VideoId video) {
    std::cout << "  [cache] evicted video " << video << "\n";
  };
  dma::DmaCache cache{array, {}, callbacks};

  std::cout << "== Storing a 750 MB title stripes it cyclically ==\n";
  cache.on_request(VideoId{1}, MegaBytes{750.0});
  const storage::StripePlacement& placement = array.placement(VideoId{1});
  std::cout << "  " << placement.part_count() << " parts of up to "
            << placement.cluster_size.value() << " MB:\n   ";
  for (std::size_t part = 0; part < placement.part_count(); ++part) {
    std::cout << " p" << part << "->d" << (placement.part_to_disk[part] + 1);
  }
  std::cout << "\n";
  show_array(array);

  std::cout << "\n== Filling the cache with more titles ==\n";
  for (VideoId::underlying_type v = 2; v <= 12; ++v) {
    cache.on_request(VideoId{v}, MegaBytes{750.0});
  }
  std::cout << "cached now: ";
  for (const VideoId video : cache.cached_videos()) {
    std::cout << video << " ";
  }
  std::cout << "\n";
  show_array(array);

  std::cout << "\n== Popularity contest: many requests for video 20 ==\n";
  for (int i = 0; i < 3; ++i) {
    cache.on_request(VideoId{20}, MegaBytes{750.0});
  }
  std::cout << "video 20 points: " << cache.points(VideoId{20})
            << ", cached: " << std::boolalpha << cache.cached(VideoId{20})
            << "\n";
  std::cout << "requests=" << cache.request_count()
            << " hits=" << cache.hit_count()
            << " stores=" << cache.store_count()
            << " evictions=" << cache.eviction_count() << "\n";

  std::cout << "\n== Reading a cluster back ==\n";
  std::cout << "cluster 0 of video 20 reads in "
            << array.cluster_read_seconds(VideoId{20}, 0) << " s\n";
  return 0;
}
