// The paper's case study, end to end: the GRNET backbone of Figure 6,
// the Table 2 SNMP measurements as background traffic, and the four
// experiments (A-D) decided live by the VRA.
//
// Build & run:  ./build/examples/grnet_case_study
#include <iostream>

#include "common/table.h"
#include "grnet/grnet.h"
#include "vra/explain.h"
#include "db/database.h"
#include "vra/vra.h"

using namespace vod;

namespace {

const db::AdminCredential kAdmin{"case-study-admin"};

struct Experiment {
  const char* name;
  grnet::TimeOfDay at;
  NodeId client;
  std::vector<NodeId> holders;
};

}  // namespace

int main() {
  const grnet::CaseStudy g = grnet::build_case_study();

  const Experiment experiments[] = {
      {"A", grnet::TimeOfDay::k8am, g.patra, {g.thessaloniki, g.xanthi}},
      {"B", grnet::TimeOfDay::k10am, g.patra, {g.thessaloniki, g.xanthi}},
      {"C", grnet::TimeOfDay::k4pm, g.athens,
       {g.ioannina, g.thessaloniki, g.xanthi}},
      {"D", grnet::TimeOfDay::k6pm, g.athens,
       {g.ioannina, g.thessaloniki, g.xanthi}},
  };

  for (const Experiment& experiment : experiments) {
    // A fresh database snapshot per instant, as the limited-access module
    // would hold after the SNMP refresh at that time of day.
    db::Database db{kAdmin};
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    const VideoId movie =
        db.register_video("case-study title", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const auto sample = grnet::table2_sample(g, link, experiment.at);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(experiment.at));
    }
    for (const NodeId holder : experiment.holders) {
      view.add_title(holder, movie);
    }

    const vra::Vra vra{g.topology, db.full_view(), db.limited_view(kAdmin),
                       {}};
    const auto decision = vra.select_server(experiment.client, movie);
    const routing::Graph graph = vra.current_weighted_graph();

    std::cout << "Experiment " << experiment.name << " ("
              << grnet::time_label(experiment.at) << ", client at "
              << g.city(experiment.client) << "):\n";
    if (!decision) {
      std::cout << "  no server available!\n";
      continue;
    }
    for (const vra::Candidate& candidate : decision->candidates) {
      std::cout << "  candidate " << g.city(candidate.server) << ": "
                << candidate.path.to_string(graph) << "  cost "
                << TextTable::num(candidate.path.cost, 4) << "\n";
    }
    std::cout << "  => download from " << g.city(decision->server)
              << " (cost " << TextTable::num(decision->path.cost, 4)
              << ")\n\n";
  }

  std::cout << "Note: Experiment A differs from the paper by design — its "
               "Table 4 misses the\nU2,U3,U4 relaxation; see DESIGN.md and "
               "EXPERIMENTS.md.\n";

  // The arithmetic behind the 8am weights, spelled out (eqs. 1-4).
  const auto stats = grnet::table2_stats(g, grnet::TimeOfDay::k8am);
  const vra::LvnCalculator calc{g.topology, stats};
  std::cout << "\n8am link validation, term by term:\n"
            << vra::format_validation_table(g.topology, calc);
  return 0;
}
