// Observability tour: runs a scripted GRNET scenario with the trace
// recorder installed and writes a Chrome trace-event JSON you can drop
// into chrome://tracing or https://ui.perfetto.dev.
//
// The scenario is built to light up every instrumented subsystem:
//   service  - request / coalesce / retry instants, active-session counter
//   vra      - per-request route decisions with the losing candidates
//   session  - async begin/end spanning each download, switch/stall instants
//   dma      - admit / point / hit events on the serving caches
//   fluid    - reallocation epochs with round counts, active-flow counter
//   snmp     - begin/end sweeps over the backbone links
//   fault    - a fiber cut + repair and a server crash + restore
//
// Build & run:  ./build/examples/trace_demo --out trace.json
// Flags:        --out FILE         trace destination (default trace.json)
//               --metrics-out FILE metrics-registry snapshot as CSV
//               --requests N       request count (default 12)
//               --profile          wall-clock profiler CSV on stderr
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "net/fluid.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

using namespace vod;

int main(int argc, char** argv) {
  std::string trace_path = "trace.json";
  std::string metrics_path;
  int requests = 12;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (arg == "--profile") {
      profile = true;
    } else {
      std::cerr << "usage: trace_demo [--out trace.json] "
                   "[--metrics-out metrics.csv] [--requests N] [--profile]\n";
      return 2;
    }
  }
  if (profile) obs::Profiler::instance().set_enabled(true);

  obs::TraceRecorder recorder;
  obs::set_trace_sink(&recorder);

  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  recorder.set_clock([&sim] { return sim.now(); });
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 120.0;
  options.dma.admission_threshold = 1;  // the second request gets cached
  options.failover.proactive = true;
  options.failover.retry_limit = 2;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"trace-admin"}};

  const VideoId news =
      service.add_video("evening news", MegaBytes{40.0}, Mbps{1.5});
  const VideoId film =
      service.add_video("feature film", MegaBytes{80.0}, Mbps{2.0});
  service.place_initial_copy(g.thessaloniki, news);
  service.place_initial_copy(g.heraklio, film);
  service.place_initial_copy(g.xanthi, film);
  service.start();

  // Requests arrive from the replica-less west, one a minute, alternating
  // titles — the repeats are what trip the DMA's admission threshold.
  const NodeId homes[] = {g.patra, g.athens, g.ioannina};
  for (int i = 0; i < requests; ++i) {
    const NodeId home = homes[i % 3];
    const VideoId video = (i % 2 == 0) ? news : film;
    sim.schedule_at(SimTime{60.0 * (i + 1)},
                    [&service, home, video](SimTime) {
                      service.request_at(home, video);
                    });
  }

  // Mid-run faults: a fiber cut that heals, then a server outage.
  fault::FaultInjector injector{sim, service};
  injector.cut_link_at(SimTime{400.0}, g.patra_ioannina);
  injector.restore_link_at(SimTime{900.0}, g.patra_ioannina);
  injector.crash_server_at(SimTime{1500.0}, g.heraklio);
  injector.restore_server_at(SimTime{2100.0}, g.heraklio);

  sim.run_until(from_hours(6.0));
  obs::set_trace_sink(nullptr);

  {
    std::ofstream out{trace_path};
    out << recorder.to_chrome_json();
  }
  std::cout << "wrote " << recorder.events().size() << " event(s) from "
            << recorder.subsystem_count() << " subsystem(s) to " << trace_path
            << "\n\n";
  if (!metrics_path.empty()) {
    const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
    std::ofstream out{metrics_path};
    out << snapshot.to_csv();
    std::cout << "wrote " << snapshot.scalars().size()
              << " metric scalar(s) to " << metrics_path << "\n\n";
  }
  std::cout << service::format_report(
      service::build_report(service, Mbps{0.0}));
  if (profile) {
    std::cerr << obs::Profiler::instance().report_csv();
    obs::Profiler::instance().set_enabled(false);
  }
  return recorder.subsystem_count() >= 5 ? 0 : 1;
}
