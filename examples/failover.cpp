// Failure handling end to end: a backbone link dies mid-stream, the stall
// watchdog rescues the cluster that was in flight, the SNMP poll marks the
// link offline, and the VRA re-routes the rest of the stream around the
// outage — same source server, new path.
//
// Build & run:  ./build/examples/failover
#include <iomanip>
#include <iostream>

#include "grnet/grnet.h"
#include "net/fluid.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

using namespace vod;

int main() {
  const grnet::CaseStudy g = grnet::build_case_study();
  // Busy Patra-Athens (75%) makes the VRA's pre-failure choice
  // deterministic: Patra reaches Thessaloniki via Ioannina.
  net::ConstantTraffic traffic;
  traffic.set_load(g.patra_athens, Mbps{1.5});
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 30.0;
  options.dma.admission_threshold = 1'000'000;  // keep the title remote
  options.session.stall_timeout_seconds = 200.0;
  options.vra_switch_hysteresis = 0.3;  // suppress replica ping-pong
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"failover-admin"}};

  const VideoId movie =
      service.add_video("disaster movie", MegaBytes{60.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.place_initial_copy(g.xanthi, movie);
  service.start();

  std::cout << "client at Patra requests the title; the VRA avoids the "
               "75%-loaded\nPatra-Athens link and pulls from Thessaloniki "
               "via Ioannina (U2,U3,U4)\n";
  const SessionId id = service.request_at(g.patra, movie);

  sim.schedule_at(SimTime{15.0}, [&](SimTime t) {
    std::cout << "t=" << t.seconds()
              << "s  *** Patra-Ioannina fiber cut (mid-cluster) ***\n";
    network.set_link_up(g.patra_ioannina, false);
  });
  sim.run_until(from_hours(2.0));

  const stream::SessionMetrics& m = service.session_metrics(id);
  std::cout << std::fixed << std::setprecision(1);
  for (std::size_t k = 0; k < m.cluster_sources.size(); ++k) {
    std::cout << "  cluster " << k << " from "
              << g.city(m.cluster_sources[k]) << " (done t="
              << m.cluster_completed[k].seconds() << "s)\n";
  }
  std::cout << "finished: " << std::boolalpha << m.finished
            << "; stall retries: " << m.stall_retries
            << "; server switches: " << m.server_switches << "\n";
  std::cout << "link marked offline in the database: " << std::boolalpha
            << !service.admin_view().link(g.patra_ioannina).online << "\n";
  std::cout << "\nThe watchdog abandoned the stalled cluster after 200 s; "
               "the SNMP poll had\nalready marked the link offline, so the "
               "re-run VRA kept the same server but\nre-routed over the "
               "congested Athens leg (slower, but alive) — the paper's\n"
               "'adjust to network changes without reprogramming'.\n";
  return 0;
}
