// A tour of the limited-access administration module: inspecting SNMP
// statistics, taking a server out of rotation, failing hardware, and
// reading the service-level QoS report — the operator's view of Figure 1.
//
// Build & run:  ./build/examples/admin_tour
#include <iomanip>
#include <iostream>

#include "grnet/grnet.h"
#include "net/fluid.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

using namespace vod;

int main() {
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.dma.admission_threshold = 1'000'000;
  options.vra_switch_hysteresis = 0.5;
  options.audit_capacity = 128;  // keep a routing-decision trail
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"ops-team"}};

  const VideoId movie =
      service.add_video("the operator's cut", MegaBytes{60.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.place_initial_copy(g.xanthi, movie);
  service.start();

  // Access control: the full-access web view cannot see link statistics;
  // only the right credential opens the limited module.
  try {
    (void)service.database().limited_view(db::AdminCredential{"intruder"});
  } catch (const std::invalid_argument&) {
    std::cout << "limited-access module refused a bad credential (as the "
                 "paper requires)\n";
  }

  sim.run_until(grnet::time_of(grnet::TimeOfDay::k10am));
  auto admin = service.admin_view();
  std::cout << "\nSNMP view of the backbone at 10am:\n" << std::fixed
            << std::setprecision(2);
  for (const LinkId link : g.links_in_paper_order()) {
    const db::LinkRecord& record = admin.link(link);
    std::cout << "  " << std::left << std::setw(22) << record.name
              << record.used_bandwidth.value() << "/"
              << record.total_bandwidth.value() << " Mbps ("
              << record.utilization * 100.0 << "%)"
              << (record.online ? "" : "  OFFLINE") << "\n";
  }

  // Maintenance: drain Thessaloniki, then break a disk at Xanthi.
  std::cout << "\ntaking Thessaloniki's server offline for maintenance\n";
  service.set_server_online(g.thessaloniki, false);
  const SessionId s1 = service.request_at(g.patra, movie);

  std::cout << "disk 0 at Xanthi fails: ";
  const auto lost = service.fail_disk(g.xanthi, 0);
  std::cout << lost.size() << " title(s) lost there\n";
  std::cout << "Thessaloniki returns to rotation\n";
  service.set_server_online(g.thessaloniki, true);
  const SessionId s2 = service.request_at(g.heraklio, movie);

  sim.run_until(grnet::time_of(grnet::TimeOfDay::k6pm));
  std::cout << "\nsession from Patra (during the drain) was served by "
            << g.city(service.session_metrics(s1).cluster_sources.front())
            << "\nsession from Heraklio (after the crash) was served by "
            << g.city(service.session_metrics(s2).cluster_sources.front())
            << "\n";

  std::cout << "\nlast routing decisions (the audit trail):\n"
            << service.audit().format_recent(6, [&](NodeId node) {
                 return g.city(node);
               });

  std::cout << "\nservice report:\n"
            << service::format_report(
                   service::build_report(service, Mbps{0.0}));
  std::cout << "\nper-session CSV (for spreadsheets):\n"
            << service::report_sessions_csv(service);
  return 0;
}
