// Tiered user-class QoS, end to end: three classes share one saturated
// backbone link; a premium arrival preempts the background session to get
// in; a server crash then sheds load bottom-up — premium fails over first
// with its 1.5x stall patience, background times out first and its zero
// retry budget makes it absorbed shed.  Ends with the per-class SLA slice
// of the resilience report.
//
// Build & run:  ./build/examples/qos_demo
#include <iostream>

#include "grnet/grnet.h"
#include "net/fluid.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

using namespace vod;

int main() {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 60.0;
  options.dma.admission_threshold = 1'000'000;  // keep the title remote
  options.failover.proactive = true;
  options.failover.retry_limit = 2;
  options.failover.retry_backoff_seconds = 60.0;
  options.qos.enabled = true;  // the whole point of this demo
  options.qos.policies[class_index(UserClass::kBackground)].retry_limit = 0;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"qos-admin"}};

  const VideoId movie =
      service.add_video("blockbuster", MegaBytes{30.0}, Mbps{0.5});
  service.place_initial_copy(g.athens, movie);  // sole replica for now
  service.start();

  std::cout << "Patra reaches the Athens replica over the 2 Mbps "
               "Patra-Athens link\n(0.2 Mbps of 8am background -> 1.8 Mbps "
               "residual).  A background and a\nstandard viewer take all "
               "of it:\n\n";
  const auto background = service.request_classed(g.patra, movie,
                                                  UserClass::kBackground);
  const auto standard =
      service.request_classed(g.patra, movie, UserClass::kStandard);
  std::cout << "  background session " << background.session->value()
            << " and standard session " << standard.session->value()
            << " admitted\n";

  sim.run_until(SimTime{30.0});
  service.snmp().poll_now(sim.now());
  std::cout << "  t=30s: the link reads "
            << static_cast<int>(100.0 * network.utilization(g.patra_athens))
            << "% utilized; plain admission would now refuse anyone\n\n";

  std::cout << "A premium viewer arrives.  Plain admission fails, so the "
               "planner ranks\nstrictly lower classes (lowest class first, "
               "youngest first) and sacrifices\njust enough:\n\n";
  const auto premium =
      service.request_classed(g.patra, movie, UserClass::kPremium);
  std::cout << "  verdict: "
            << (premium.verdict ==
                        service::VodService::Admission::kPreempted
                    ? "admitted by preemption"
                    : "(unexpected)")
            << ", victims:";
  for (const SessionId victim : premium.preempted) {
    std::cout << " session " << victim.value() << " ("
              << to_string(service.session_class(victim)) << ")";
  }
  std::cout << "\n  the standard session streams on; the preempted "
               "background session has\n  no retry budget -> absorbed "
               "shed\n\n";

  // Storm prep, just ahead of the crash: the administrators seed a
  // second replica so the failover has somewhere to land.  (Any earlier
  // and the per-cluster VRA would migrate the streams off Athens on its
  // own — the less-loaded northern path wins the next cluster.)
  sim.schedule_at(SimTime{110.0}, [&](SimTime) {
    service.place_initial_copy(g.thessaloniki, movie);
  });

  std::cout << "t=120s: the Athens server crashes.  Class-ordered "
               "shedding: premium\nfails over to Thessaloniki first, "
               "lower classes follow behind it.\n\n";
  sim.schedule_at(SimTime{120.0},
                  [&](SimTime) { service.crash_server(g.athens); });
  sim.schedule_at(SimTime{600.0},
                  [&](SimTime) { service.restore_server(g.athens); });
  sim.run_until(from_hours(3.0));

  const service::ResilienceReport report =
      service::build_resilience_report(service, Mbps{0.0});
  std::cout << service::format_resilience_report(report) << "\n";

  const auto& premium_sla =
      report.by_class[class_index(UserClass::kPremium)];
  std::cout << "premium: " << premium_sla.finished << "/"
            << premium_sla.requests << " finished, "
            << service.preemption_victim_count()
            << " victim(s) paid for its admission\n";
  return premium_sla.finished == premium_sla.requests ? 0 : 1;
}
