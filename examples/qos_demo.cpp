// Tiered user-class QoS, end to end: three classes share one saturated
// backbone link; a premium arrival preempts the background session to get
// in; a server crash then sheds load bottom-up — premium fails over first
// with its 1.5x stall patience, background times out first and its zero
// retry budget makes it absorbed shed.  Ends with the per-class SLA slice
// of the resilience report and a telemetry-v2 postmortem: an SLO burn-rate
// monitor catches the background sacrifice as an availability breach, and
// the always-on flight recorder dumps black boxes (qos_demo_flight_*.json)
// for the preemption and the breach — the README "ops story" walks them.
//
// Build & run:  ./build/examples/qos_demo
#include <iostream>
#include <utility>

#include "grnet/grnet.h"
#include "net/fluid.h"
#include "obs/flight.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

using namespace vod;

int main() {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 60.0;
  options.dma.admission_threshold = 1'000'000;  // keep the title remote
  options.failover.proactive = true;
  options.failover.retry_limit = 2;
  options.failover.retry_backoff_seconds = 60.0;
  options.qos.enabled = true;  // the whole point of this demo
  options.qos.policies[class_index(UserClass::kBackground)].retry_limit = 0;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"qos-admin"}};

  const VideoId movie =
      service.add_video("blockbuster", MegaBytes{30.0}, Mbps{0.5});
  service.place_initial_copy(g.athens, movie);  // sole replica for now
  service.start();

  // --- Telemetry v2 rides along (DESIGN.md §16) -----------------------
  // Flight recorder: a bounded ring of recent trace events, always on;
  // anomalies (the preemption below, SLO breaches) dump deterministic
  // black boxes.  The demo's two anomalies land on the same sim instant
  // (the breach is evaluated on the sampling tick right after the
  // sacrifice), so disable the dump rate-limit gap entirely.
  obs::FlightOptions flight_options;
  flight_options.dump_path_prefix = "qos_demo_flight_";
  flight_options.min_gap = Duration{0.0};
  obs::FlightRecorder flight{flight_options};
  flight.bind_registry(&service.metrics());
  flight.set_clock([&sim] { return sim.now(); });
  obs::set_flight_recorder(&flight);

  // Series sampler: snapshots the service registry every 30 sim-seconds.
  obs::TimeSeriesRecorder series;
  series.bind_registry(&service.metrics());
  obs::set_series_sink(&series);

  // SLO: background availability >= 90% over 5-minute and 1-minute
  // burn-rate windows.  The sacrifice ahead will torch that budget.
  obs::SloMonitor slo{&service.metrics()};
  {
    obs::SloSpec spec;
    spec.name = "background-availability";
    spec.kind = obs::SloSpec::Kind::kAvailabilityFloor;
    spec.good_metric = "qos.background.finished";
    spec.total_metrics = {"qos.background.finished",
                          "qos.background.failed"};
    spec.threshold = 0.9;
    spec.windows = {{Duration{300.0}, 1.0}, {Duration{60.0}, 1.0}};
    slo.add(std::move(spec));
  }
  series.set_on_sample([&slo](SimTime at, const obs::MetricsSnapshot& snap) {
    slo.evaluate(at, snap);
  });
  // --------------------------------------------------------------------

  std::cout << "Patra reaches the Athens replica over the 2 Mbps "
               "Patra-Athens link\n(0.2 Mbps of 8am background -> 1.8 Mbps "
               "residual).  A background and a\nstandard viewer take all "
               "of it:\n\n";
  const auto background = service.request_classed(g.patra, movie,
                                                  UserClass::kBackground);
  const auto standard =
      service.request_classed(g.patra, movie, UserClass::kStandard);
  std::cout << "  background session " << background.session->value()
            << " and standard session " << standard.session->value()
            << " admitted\n";

  sim.run_until(SimTime{30.0});
  service.snmp().poll_now(sim.now());
  std::cout << "  t=30s: the link reads "
            << static_cast<int>(100.0 * network.utilization(g.patra_athens))
            << "% utilized; plain admission would now refuse anyone\n\n";

  std::cout << "A premium viewer arrives.  Plain admission fails, so the "
               "planner ranks\nstrictly lower classes (lowest class first, "
               "youngest first) and sacrifices\njust enough:\n\n";
  const auto premium =
      service.request_classed(g.patra, movie, UserClass::kPremium);
  std::cout << "  verdict: "
            << (premium.verdict ==
                        service::VodService::Admission::kPreempted
                    ? "admitted by preemption"
                    : "(unexpected)")
            << ", victims:";
  for (const SessionId victim : premium.preempted) {
    std::cout << " session " << victim.value() << " ("
              << to_string(service.session_class(victim)) << ")";
  }
  std::cout << "\n  the standard session streams on; the preempted "
               "background session has\n  no retry budget -> absorbed "
               "shed\n\n";

  // Storm prep, just ahead of the crash: the administrators seed a
  // second replica so the failover has somewhere to land.  (Any earlier
  // and the per-cluster VRA would migrate the streams off Athens on its
  // own — the less-loaded northern path wins the next cluster.)
  sim.schedule_at(SimTime{110.0}, [&](SimTime) {
    service.place_initial_copy(g.thessaloniki, movie);
  });

  std::cout << "t=120s: the Athens server crashes.  Class-ordered "
               "shedding: premium\nfails over to Thessaloniki first, "
               "lower classes follow behind it.\n\n";
  sim.schedule_at(SimTime{120.0},
                  [&](SimTime) { service.crash_server(g.athens); });
  sim.schedule_at(SimTime{600.0},
                  [&](SimTime) { service.restore_server(g.athens); });
  sim.run_until(from_hours(3.0));

  const service::ResilienceReport report =
      service::build_resilience_report(service, Mbps{0.0});
  std::cout << service::format_resilience_report(report) << "\n";

  const auto& premium_sla =
      report.by_class[class_index(UserClass::kPremium)];
  std::cout << "premium: " << premium_sla.finished << "/"
            << premium_sla.requests << " finished, "
            << service.preemption_victim_count()
            << " victim(s) paid for its admission\n";

  // --- Postmortem: what the monitors saw ------------------------------
  std::cout << "\nSLO status: " << slo.status_json();
  std::cout << "flight recorder: " << flight.dump_count()
            << " black box(es)";
  for (std::size_t i = 0; i < flight.dumps().size(); ++i) {
    std::cout << (i == 0 ? " — " : ", ") << "qos_demo_flight_" << i
              << ".json (" << flight.dumps()[i].first << ")";
  }
  std::cout << "\nEach dump holds the last " << flight_options.ring_capacity
            << " trace events before the anomaly, the full metrics\n"
               "snapshot, and the sim clock — open one and read the story "
               "backwards.\n";

  obs::set_series_sink(nullptr);
  obs::set_flight_recorder(nullptr);
  const bool slo_caught_shed = !slo.states().empty() &&
                               slo.states().front().breaches >= 1;
  return premium_sla.finished == premium_sla.requests &&
                 slo_caught_shed && flight.dump_count() >= 1
             ? 0
             : 1;
}
