#!/usr/bin/env bash
# Static-analysis gate: vodlint (always), then clang-tidy and clang-format
# (when installed — the CI image has them, minimal dev containers may not).
#
# Usage: scripts/check_static.sh [--fix]
#   --fix   let clang-format rewrite files instead of failing on drift
# Exits non-zero on any vodlint violation, clang-tidy error (the .clang-tidy
# config promotes all warnings), or formatting drift.
set -euo pipefail

cd "$(dirname "$0")/.."

fix=0
if [[ "${1:-}" == "--fix" ]]; then
  fix=1
fi

echo "== vodlint =="
python3 tools/vodlint/vodlint.py --self-test
# The race-surface rules (v2) scan the bench/example/tool sources too:
# anything the parallel migration could touch.  The report lands in build/
# for EXPERIMENTS.md-style baseline counts; fixture files are excluded from
# the walk and exercised by their own --expect ctest entries.
mkdir -p build
python3 tools/vodlint/vodlint.py --root . \
  --report build/vodlint_report.json src bench examples tools

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # clang-tidy needs the compilation database the default preset exports.
  if [[ ! -f build/compile_commands.json ]]; then
    cmake --preset default >/dev/null
  fi
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  clang-tidy -p build --quiet "${sources[@]}"
else
  echo "== clang-tidy not installed; skipping =="
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format =="
  mapfile -t files < <(find src tests bench examples \
    \( -name '*.cpp' -o -name '*.h' \) | sort)
  if [[ $fix -eq 1 ]]; then
    clang-format -i "${files[@]}"
  else
    clang-format --dry-run --Werror "${files[@]}"
  fi
else
  echo "== clang-format not installed; skipping =="
fi

echo "static checks passed"
