#!/usr/bin/env bash
# The one-command gate: static checks, tier-1 tests, sanitizer and
# resilience suites.
#
# Usage: scripts/ci.sh [--fast]
#   --fast   static checks + tier-1 tests only (the edit-compile loop tier);
#            the full run adds the ASan/UBSan suite, the resilience gate,
#            the fluid-allocator perf gate and a TSan pass when the
#            toolchain supports it.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==== static analysis ===="
scripts/check_static.sh

echo "==== tier-1 tests (default preset) ===="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ $fast -eq 1 ]]; then
  echo "ci --fast passed"
  exit 0
fi

echo "==== observability gate ===="
# A full scripted scenario must produce a schema-valid Chrome trace with
# events from at least five subsystems.
build/examples/trace_demo --out build/ci_trace_demo.json \
  --metrics-out build/ci_trace_demo_metrics.csv >/dev/null
python3 tools/check_trace.py build/ci_trace_demo.json \
  --min-subsystems 5 --monotone-ts
# The paper-parity bench grows --trace-out; its trace must validate too.
build/bench/bench_table4_experiment_a --trace-out build/ci_table4.json \
  > build/ci_table4_traced.out 2>/dev/null
python3 tools/check_trace.py build/ci_table4.json --monotone-ts
# Tracing must be observe-only: the bench's stdout stays byte-identical
# with and without it, and two traced runs produce byte-identical traces.
build/bench/bench_table4_experiment_a > build/ci_table4_plain.out
cmp build/ci_table4_traced.out build/ci_table4_plain.out
build/bench/bench_table4_experiment_a --trace-out build/ci_table4_rerun.json \
  >/dev/null 2>&1
cmp build/ci_table4.json build/ci_table4_rerun.json
echo "observability gate passed"

echo "==== observability gate (telemetry v2) ===="
# The QoS storm bench with the full v2 stack on — series sampler, SLO
# burn-rate monitors, flight recorder — must emit schema-valid artefacts:
# a series export, at least one black box (the storm trips the SLOs), and
# a trace whose slo track carries breach instants.
rm -f build/ci_flight_[0-9]*.json
build/bench/bench_qos --smoke --qos-gate \
  --series-out build/ci_series.json \
  --flight-out build/ci_flight_ \
  --trace-out build/ci_qos_trace.json > build/ci_qos_v2.out
python3 tools/check_trace.py build/ci_series.json --kind series
python3 tools/check_trace.py build/ci_flight_0.json --kind flight
python3 tools/check_trace.py build/ci_qos_trace.json --require-slo
# Telemetry v2 is observe-only and deterministic: the bench's stdout stays
# byte-identical with v2 off, and a double run reproduces every artefact
# byte for byte.
build/bench/bench_qos --smoke --qos-gate > build/ci_qos_plain.out
cmp build/ci_qos_v2.out build/ci_qos_plain.out
mv build/ci_series.json build/ci_series_first.json
mv build/ci_flight_0.json build/ci_flight_first.json
rm -f build/ci_flight_[0-9]*.json
build/bench/bench_qos --smoke --qos-gate \
  --series-out build/ci_series.json \
  --flight-out build/ci_flight_ >/dev/null
cmp build/ci_series_first.json build/ci_series.json
cmp build/ci_flight_first.json build/ci_flight_0.json
echo "observability gate (telemetry v2) passed"

echo "==== sanitizers (ASan + UBSan) ===="
scripts/check_sanitizers.sh

echo "==== resilience gate ===="
scripts/check_resilience.sh

echo "==== perf gate (fluid allocator) ===="
# >=5x reallocation / >=10x SNMP-sweep speedup at 10k flows, bit-identical
# to the reference filler; emits the machine-readable BENCH_fluid.json.
build/bench/bench_fluid_alloc --out build/BENCH_fluid.json

echo "==== perf gate (parallel pilot) ===="
# The ParallelFor pilot forked at 2 workers must hold the same floors and
# stay bit-identical to the reference — thread count is a performance knob,
# never a semantic one (DESIGN.md §14).
build/bench/bench_fluid_alloc --threads 2 --out build/BENCH_fluid_t2.json
build/bench/bench_vra_incremental --threads 2 \
  > build/BENCH_vra_threads.out

echo "==== perf gate (session store + epoch core) ===="
# >=5x ns/event over the pre-PR never-erased std::map store at 100k
# concurrent sessions, flat resident memory across real-service churn
# waves, and >=1.3x session-steps/sec for epoch-barrier sharded stepping
# over the serial per-event path; emits BENCH_scale.json.
build/bench/bench_scale --scale-gate --out build/BENCH_scale.json
# Re-gate with 2 workers: every floor must re-hold and both store and
# epoch checksums must stay identical — thread count is a performance
# knob, never a semantic one (DESIGN.md §15).  The thread dimension lands
# in the JSON.
build/bench/bench_scale --scale-gate --threads 2 \
  --out build/BENCH_scale_t2.json

echo "==== qos gate (tiered classes under storm) ===="
# Seeded fault storm at >=90% bottleneck utilization: premium availability
# and p99 stall must beat or match the single-class baseline while the
# background class absorbs its floor share of the shed; emits
# BENCH_qos.json.
build/bench/bench_qos --qos-gate --out build/BENCH_qos.json

# TSan support varies by image (needs libtsan for this compiler); probe
# before committing to the preset so the gate degrades gracefully.
if echo 'int main(){}' | \
    c++ -fsanitize=thread -x c++ - -o /tmp/ci_tsan_probe 2>/dev/null; then
  rm -f /tmp/ci_tsan_probe
  echo "==== ThreadSanitizer (parallel + epoch core) ===="
  # The Parallel* suites fork real worker threads at widths 1/2/8 over the
  # fluid filler, the VRA evaluation, the epoch-barrier sharded stepping
  # core (ParallelEpoch*) and full seeded-storm service runs — the code
  # TSan has something to say about.  The rest of the tree is serial by
  # construction (vodlint [raw-thread] enforces the doorway) and is
  # already covered by the ASan/UBSan full-suite pass above.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target test_parallel
  ctest --test-dir build-tsan --output-on-failure -R 'Parallel'
else
  echo "==== TSan unsupported by this toolchain; skipping ===="
fi

echo "ci passed"
