#!/usr/bin/env bash
# Resilience gate: build with ASan + UBSan, run the failure-focused test
# suites (fault injection, failover, watchdog, SNMP outage, degraded mode,
# service retries, the zero-hang storm), then the fault-resilience bench in
# smoke mode.
#
# Usage: scripts/check_resilience.sh
# Exits non-zero on any build failure, test failure, sanitizer report, or
# bench gate violation (hung sessions / missing failure reasons).
set -euo pipefail

cd "$(dirname "$0")/.."

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'Fault|Failover|StallWatchdog|LinkFailure|Snmp|Degraded|ServiceRetry|ZeroHang'

build-asan/bench/bench_fault_resilience --smoke
