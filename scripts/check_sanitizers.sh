#!/usr/bin/env bash
# Build and run the tier-1 test suite under ASan + UBSan.
#
# Usage: scripts/check_sanitizers.sh [ctest-args...]
# Exits non-zero on any build failure, test failure, or sanitizer report
# (-fno-sanitize-recover=all turns every UBSan finding into an abort).
set -euo pipefail

cd "$(dirname "$0")/.."

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" "$@"
