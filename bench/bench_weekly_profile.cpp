// A week on the backbone: the Table 2 day repeated seven times.
//
// The paper measured one day; PeriodicTraffic turns that day into a
// campaign.  Requests arrive around the clock for a week, and the
// per-hour-of-day profile of download performance shows the service
// breathing with the network: quiet small-hours, rough mid-morning after
// the 10am congestion step — the "dynamic adjustment" aggregated.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

using namespace vod;

int main() {
  bench::heading("A simulated week: Table 2 traffic repeated daily");

  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic day = grnet::table2_trace(g);
  const net::PeriodicTraffic week{day, Duration{86400.0}};
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, week};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  options.dma.admission_threshold = 2;
  options.vra_switch_hysteresis = 0.5;
  options.session.stall_timeout_seconds = 3600.0;
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};

  std::vector<VideoId> videos;
  for (int v = 0; v < 12; ++v) {
    videos.push_back(service.add_video("t" + std::to_string(v),
                                       MegaBytes{120.0}, Mbps{1.5}));
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>(v % 6)},
        videos.back());
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>((v + 3) % 6)},
        videos.back());
  }
  service.start();

  std::vector<NodeId> homes;
  for (std::size_t n = 0; n < 6; ++n) {
    homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
  }
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{777};
  const auto requests = gen.generate(
      SimTime{0.0}, Duration{7.0 * 86400.0}, 150.0 / (7.0 * 86400.0), rng);
  std::vector<std::pair<SessionId, double>> started;  // (id, hour of day)
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&, request](SimTime t) {
      const double hour = std::fmod(t.seconds() / 3600.0, 24.0);
      started.emplace_back(service.request_at(request.home, request.video),
                           hour);
    });
  }
  sim.run_until(from_hours(8.0 * 24.0));

  // Bucket by 4-hour band of the request's hour of day.
  const char* kBands[6] = {"00-04", "04-08", "08-12",
                           "12-16", "16-20", "20-24"};
  SampleSet download[6];
  int rebuffered[6] = {};
  int counts[6] = {};
  for (const auto& [id, hour] : started) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    if (!m.finished) continue;
    const int band = std::min(5, static_cast<int>(hour / 4.0));
    ++counts[band];
    download[band].add(*m.download_completed_at - m.requested_at);
    if (m.rebuffer_events > 0) ++rebuffered[band];
  }

  TextTable table{{"Hour band", "sessions", "DL median (s)", "DL p95 (s)",
                   "rebuffered"}};
  for (int band = 0; band < 6; ++band) {
    table.add_row(
        {kBands[band], std::to_string(counts[band]),
         counts[band] ? TextTable::num(download[band].median(), 0) : "-",
         counts[band] ? TextTable::num(download[band].quantile(0.95), 0)
                      : "-",
         std::to_string(rebuffered[band])});
  }
  std::cout << "~150 requests over 7 days, 12 titles x 2 replicas:\n\n"
            << table.render();

  const service::ServiceReport report =
      service::build_report(service, Mbps{0.0});
  std::cout << "\nweek totals: " << report.finished << " finished, "
            << report.failed << " failed, QoS-ok "
            << TextTable::num(100.0 * report.qos_ok_share(), 0) << "%\n";
  std::cout << "\nExpected shape: the pre-8am band is fastest (the trace's "
               "quiet hours); the\nbands after the 10am step carry the "
               "rebuffering — the same diurnal pattern,\nevery day, as the "
               "service keeps adapting.\n";
  return 0;
}
