// Behavioural reproduction of Figure 2 — the DMA pseudocode.
//
// The paper gives no measurements for the DMA, only the algorithm; this
// bench characterizes it the way its evaluation section would have: hit
// rate under a Zipf request mix versus cache size, admission threshold,
// and against the classic LRU / LFU / no-cache baselines.
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/cache_baselines.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "dma/dma_cache.h"
#include "workload/zipf.h"

using namespace vod;

namespace {

constexpr std::size_t kTitles = 200;
constexpr int kRequests = 20000;
constexpr double kTitleSizeMb = 900.0;

/// Hit rate of `cache` on a fresh Zipf(skew) request stream.
double run_stream(baselines::TitleCache& cache, double skew,
                  std::uint64_t seed) {
  const workload::ZipfDistribution zipf{kTitles, skew};
  Rng rng{seed};
  int hits = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto rank = zipf.sample(rng);
    if (cache.on_request(VideoId{static_cast<VideoId::underlying_type>(rank)},
                         MegaBytes{kTitleSizeMb})) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / kRequests;
}

storage::DiskProfile disk_profile(double capacity_mb) {
  return storage::DiskProfile{.capacity = MegaBytes{capacity_mb},
                              .transfer_rate = Mbps{80.0},
                              .seek_seconds = 0.009};
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsScope obs{argc, argv};
  bench::heading("Figure 2 behaviour: DMA cache hit rate (Zipf workload)");
  std::cout << kTitles << " titles x " << kTitleSizeMb << " MB, "
            << kRequests << " requests per cell, cluster 50 MB, 8 disks\n\n";

  // --- DMA vs baselines across cache sizes (skew 1.0) ---
  TextTable byside{{"Cache capacity", "DMA", "LRU", "LFU", "none"}};
  for (const double titles_worth : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    const double total_mb = titles_worth * kTitleSizeMb;
    storage::DiskArray disks{8, disk_profile(total_mb / 8.0),
                             MegaBytes{50.0}};
    dma::DmaCache dma_cache{disks};
    baselines::DmaTitleCache dma{dma_cache};
    baselines::LruTitleCache lru{MegaBytes{total_mb}};
    baselines::LfuTitleCache lfu{MegaBytes{total_mb}};
    baselines::NoTitleCache none;
    byside.add_row({TextTable::num(titles_worth, 0) + " titles",
                    TextTable::num(run_stream(dma, 1.0, 1), 3),
                    TextTable::num(run_stream(lru, 1.0, 1), 3),
                    TextTable::num(run_stream(lfu, 1.0, 1), 3),
                    TextTable::num(run_stream(none, 1.0, 1), 3)});
  }
  std::cout << "hit rate vs cache size (Zipf skew 1.0):\n"
            << byside.render() << "\n";

  // --- Sensitivity to popularity skew (cache = 20 titles) ---
  TextTable byskew{{"Zipf skew", "DMA hit rate", "evictions", "stores"}};
  for (const double skew : {0.0, 0.5, 0.8, 1.0, 1.2, 1.5}) {
    storage::DiskArray disks{8, disk_profile(20.0 * kTitleSizeMb / 8.0),
                             MegaBytes{50.0}};
    dma::DmaCache dma_cache{disks};
    baselines::DmaTitleCache dma{dma_cache};
    const double rate = run_stream(dma, skew, 2);
    byskew.add_row({TextTable::num(skew, 1), TextTable::num(rate, 3),
                    std::to_string(dma_cache.eviction_count()),
                    std::to_string(dma_cache.store_count())});
  }
  std::cout << "DMA sensitivity to popularity skew (cache = 20 titles):\n"
            << byskew.render() << "\n";

  // --- Admission threshold: Figure 2 (0) vs the body text (>0) ---
  TextTable bythreshold{
      {"Admission threshold", "hit rate", "stores", "evictions"}};
  for (const std::uint64_t threshold : {0ull, 1ull, 2ull, 5ull, 10ull}) {
    storage::DiskArray disks{8, disk_profile(20.0 * kTitleSizeMb / 8.0),
                             MegaBytes{50.0}};
    dma::DmaCache dma_cache{
        disks, dma::DmaOptions{.admission_threshold = threshold}};
    baselines::DmaTitleCache dma{dma_cache};
    const double rate = run_stream(dma, 1.0, 3);
    bythreshold.add_row({std::to_string(threshold),
                         TextTable::num(rate, 3),
                         std::to_string(dma_cache.store_count()),
                         std::to_string(dma_cache.eviction_count())});
  }
  std::cout << "DMA admission threshold (0 = Figure 2 pseudocode, >0 = the "
               "body text's\n\"requested for over a certain number of "
               "times\"):\n"
            << bythreshold.render();
  return 0;
}
