// Tiered-QoS storm bench: the same seeded MTBF/MTTR fault storm, at >=90%
// bottleneck utilization, hits a single-class baseline service and a
// three-class tiered one (weighted fluid shares, per-class admission
// headroom, preemption, class-ordered shedding, per-class retry budgets).
//
// Gates (--qos-gate, exit 1 on violation):
//   - the utilization probe confirms the storm ran hot: the time-mean of
//     the busiest link's utilization must be >= 0.9;
//   - premium availability under the tiered policy must be at least the
//     baseline's overall availability (the whole point of the tiers);
//   - premium p99 stall time must be no worse than the baseline's p99;
//   - of the tiered run's shed (failed requests plus preemption
//     sacrifices), background must absorb at least kShedFloor and premium
//     must carry the smallest per-class share.
//
// Usage: bench_qos [--smoke] [--qos-gate] [--out PATH]
//        (default PATH: BENCH_qos.json)
//        plus the shared ObsScope flags (bench_util.h): --series-out FILE
//        samples the tiered run's registry on the series cadence,
//        --flight-out PREFIX arms the flight recorder (the storm's SLO
//        breaches and preemptions dump deterministic black boxes).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "fault/fault_injector.h"
#include "service/report.h"
#include "service/vod_service.h"

using namespace vod;

namespace {

/// Minimum share of the tiered run's shed that must land on background:
/// at least its proportional share of the demand (classes arrive in equal
/// thirds), i.e. strictly more than an un-tiered service would assign it
/// by chance.  Premium must additionally carry the smallest share.
constexpr double kShedFloor = 1.0 / 3.0;

struct RunResult {
  service::ResilienceReport report;
  std::size_t preempted_admits = 0;
  std::size_t rejected = 0;
  double peak_link_utilization_mean = 0.0;  // busiest link, time-averaged
  std::size_t faults_applied = 0;
};

/// One storm run.  Titles live on the eastern replicas; requests arrive
/// from the replica-less west across the 2 Mbps backbone links, enough of
/// them at once to keep the bottleneck pinned while the storm flaps links
/// and servers.  `tiered` flips the whole class machinery on; the storm
/// seed and the request schedule are identical either way.
RunResult run_case(bool tiered, int request_count, double horizon,
                   double spacing, bench::ObsScope& obs) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  obs.bind_clock([&sim] { return sim.now(); });
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 60.0;
  options.dma.admission_threshold = 1'000'000;  // routing only
  options.failover.proactive = true;
  options.failover.retry_limit = 2;
  options.failover.retry_backoff_seconds = 60.0;
  options.degraded_stats_age_seconds = 3.0 * options.snmp_interval_seconds;
  if (tiered) {
    options.qos.enabled = true;
    // Defaults plus: background failures are absorbed shed (no retries) —
    // its budget is the storm's pressure-relief valve.
    options.qos.policies[class_index(UserClass::kBackground)].retry_limit =
        0;
  }
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};
  // Telemetry v2 watches the tiered run (its qos.* metrics are what the
  // SLO specs read); with no v2 flag this is a no-op and both runs stay
  // byte-identical to the pre-v2 bench.
  if (tiered) obs.bind_registry(service.metrics());

  const NodeId replicas[3][2] = {{g.thessaloniki, g.xanthi},
                                 {g.thessaloniki, g.heraklio},
                                 {g.xanthi, g.heraklio}};
  std::vector<VideoId> movies;
  for (int v = 0; v < 3; ++v) {
    const VideoId id = service.add_video("m" + std::to_string(v),
                                         MegaBytes{60.0}, Mbps{1.0});
    service.place_initial_copy(replicas[v][0], id);
    service.place_initial_copy(replicas[v][1], id);
    movies.push_back(id);
  }
  service.start();

  // Round-robin homes; classes rotate on a different stride so every
  // class sees every home and title.  The baseline runs the very same
  // schedule single-class.
  const NodeId homes[] = {g.patra, g.athens, g.ioannina};
  const UserClass classes[] = {UserClass::kPremium, UserClass::kStandard,
                               UserClass::kBackground};
  std::size_t rejected = 0;
  for (int i = 0; i < request_count; ++i) {
    const NodeId home = homes[i % 3];
    const VideoId movie = movies[(i / 3) % 3];
    const UserClass cls =
        tiered ? classes[(i / 3) % 3] : UserClass::kStandard;
    sim.schedule_at(
        SimTime{5.0 + spacing * i},
        [&service, &rejected, home, movie, cls](SimTime) {
          const auto outcome = service.request_classed(home, movie, cls);
          if (outcome.verdict == service::VodService::Admission::kRejected) {
            ++rejected;
          }
        });
  }

  // Same seed for both modes: byte-for-byte the same storm.
  fault::FaultInjector injector{sim, service};
  fault::FaultScheduleOptions storm;
  storm.link_mtbf_seconds = 1200.0;
  storm.link_mttr_seconds = 240.0;
  storm.server_mtbf_seconds = 1800.0;
  storm.server_mttr_seconds = 300.0;
  storm.horizon_seconds = horizon;
  injector.schedule_random(storm, 4242);

  // Utilization probe: every 30 s note the busiest link; its time-mean
  // certifies the storm ran at the promised load.
  double probe_sum = 0.0;
  std::size_t probe_count = 0;
  const double probe_until = 5.0 + spacing * request_count;
  for (double t = 30.0; t < probe_until; t += 30.0) {
    sim.schedule_at(
        SimTime{t}, [&network, &g, &probe_sum, &probe_count](SimTime) {
          double peak = 0.0;
          for (const net::LinkInfo& info : g.topology.links()) {
            peak = std::max(peak, network.utilization(info.id));
          }
          probe_sum += peak;
          ++probe_count;
        });
  }

  // Drain well past the horizon: retries, backoffs and the sessions herded
  // onto surviving 2 Mbps links need the tail time.
  sim.run_until(SimTime{horizon + 6.0 * 3600.0});

  RunResult result;
  result.report = service::build_resilience_report(service, Mbps{0.0});
  result.preempted_admits = service.preempted_admit_count();
  result.rejected = rejected;
  result.faults_applied = injector.trace().size();
  result.peak_link_utilization_mean =
      probe_count > 0 ? probe_sum / static_cast<double>(probe_count) : 0.0;
  if (tiered) obs.unbind_registry();
  obs.bind_clock(nullptr);
  return result;
}

double p99_stall(const service::ResilienceReport& report) {
  return report.stall_seconds.count() > 0
             ? report.stall_seconds.quantile(0.99)
             : 0.0;
}

void write_json(const std::string& path, const RunResult& baseline,
                const RunResult& tiered, double background_shed_share,
                bool gates_pass) {
  std::ofstream out{path};
  out << "{\n  \"baseline\": {\"availability\": "
      << baseline.report.availability()
      << ", \"p99_stall_s\": " << p99_stall(baseline.report)
      << ", \"utilization\": " << baseline.peak_link_utilization_mean
      << "},\n  \"classes\": [\n";
  for (std::size_t c = 0; c < kUserClassCount; ++c) {
    const auto& sla = tiered.report.by_class[c];
    out << "    {\"class\": \""
        << to_string(static_cast<UserClass>(c)) << "\""
        << ", \"requests\": " << sla.requests
        << ", \"finished\": " << sla.finished
        << ", \"availability\": " << sla.availability()
        << ", \"preempted\": " << sla.preempted
        << ", \"p99_stall_s\": "
        << (sla.stall_seconds.count() > 0
                ? sla.stall_seconds.quantile(0.99)
                : 0.0)
        << "}" << (c + 1 < kUserClassCount ? "," : "") << "\n";
  }
  out << "  ],\n  \"gates\": {\"utilization_floor\": 0.9, "
      << "\"shed_floor\": " << kShedFloor
      << ", \"background_shed_share\": " << background_shed_share
      << ", \"pass\": " << (gates_pass ? "true" : "false") << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsScope obs{argc, argv};
  bool smoke = false;
  bool gate = false;
  std::string out_path = "BENCH_qos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--qos-gate") == 0) gate = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int request_count = smoke ? 18 : 60;
  const double horizon = smoke ? 1200.0 : 3600.0;
  const double spacing = smoke ? 45.0 : 45.0;

  // SLOs over the tiered run, evaluated on the series cadence (inert with
  // no v2 flag).  Windows follow the SRE multi-window pattern: the short
  // window catches the storm spike, the long one confirms it is not noise.
  {
    obs::SloSpec spec;
    spec.name = "premium-availability";
    spec.kind = obs::SloSpec::Kind::kAvailabilityFloor;
    spec.good_metric = "qos.premium.finished";
    spec.total_metrics = {"qos.premium.finished", "qos.premium.failed"};
    spec.threshold = 0.9;
    spec.windows = {{Duration{1800.0}, 1.0}, {Duration{600.0}, 1.0}};
    obs.add_slo(std::move(spec));
  }
  {
    obs::SloSpec spec;
    spec.name = "stall-p99";
    spec.kind = obs::SloSpec::Kind::kQuantileCeiling;
    spec.histogram_metric = "session.stall_seconds";
    spec.quantile = 0.99;
    spec.threshold = 120.0;  // ceiling: p99 stall <= 2 minutes
    spec.windows = {{Duration{1800.0}, 1.0}, {Duration{600.0}, 1.0}};
    obs.add_slo(std::move(spec));
  }
  {
    obs::SloSpec spec;
    spec.name = "background-reject-rate";
    spec.kind = obs::SloSpec::Kind::kRatioCeiling;
    spec.bad_metric = "qos.background.rejected";
    spec.total_metrics = {"qos.background.requests"};
    spec.threshold = 0.25;  // ceiling: <= 25% of background turned away
    spec.windows = {{Duration{1800.0}, 1.0}, {Duration{600.0}, 1.0}};
    obs.add_slo(std::move(spec));
  }

  bench::heading(
      "Tiered QoS under a fault storm: single-class baseline vs. "
      "premium/standard/background");

  const RunResult baseline =
      run_case(false, request_count, horizon, spacing, obs);
  const RunResult tiered =
      run_case(true, request_count, horizon, spacing, obs);

  TextTable table{{"mode", "class", "requests", "finished", "availability",
                   "p99 stall (s)", "preempted", "rejected"}};
  table.add_row({"baseline", "(all)",
                 std::to_string(baseline.report.requests),
                 std::to_string(baseline.report.finished),
                 TextTable::num(100.0 * baseline.report.availability(), 1) +
                     "%",
                 TextTable::num(p99_stall(baseline.report), 1), "0",
                 std::to_string(baseline.rejected)});
  for (std::size_t c = 0; c < kUserClassCount; ++c) {
    const auto& sla = tiered.report.by_class[c];
    table.add_row(
        {"tiered", to_string(static_cast<UserClass>(c)),
         std::to_string(sla.requests), std::to_string(sla.finished),
         TextTable::num(100.0 * sla.availability(), 1) + "%",
         TextTable::num(sla.stall_seconds.count() > 0
                            ? sla.stall_seconds.quantile(0.99)
                            : 0.0,
                        1),
         std::to_string(sla.preempted),
         std::to_string(sla.rejected)});
  }
  std::cout << table.render() << "\n";

  const auto& premium =
      tiered.report.by_class[class_index(UserClass::kPremium)];
  const auto& standard =
      tiered.report.by_class[class_index(UserClass::kStandard)];
  const auto& background =
      tiered.report.by_class[class_index(UserClass::kBackground)];
  // Shed = failed user-visible requests plus preemption sacrifices (a
  // preempted-then-retried session that recovers still paid once).
  std::size_t shed = 0;
  std::size_t shed_by_class[kUserClassCount] = {};
  for (std::size_t c = 0; c < kUserClassCount; ++c) {
    shed_by_class[c] = tiered.report.by_class[c].failed +
                       tiered.report.by_class[c].preempted;
    shed += shed_by_class[c];
  }
  const std::size_t background_shed =
      shed_by_class[class_index(UserClass::kBackground)];
  const std::size_t premium_shed =
      shed_by_class[class_index(UserClass::kPremium)];
  (void)standard;
  const double shed_share =
      shed > 0 ? static_cast<double>(background_shed) /
                     static_cast<double>(shed)
               : 1.0;
  const double premium_p99 = premium.stall_seconds.count() > 0
                                 ? premium.stall_seconds.quantile(0.99)
                                 : 0.0;

  std::cout << "storm: " << tiered.faults_applied << " faults, busiest-link "
            << "utilization (time-mean) "
            << TextTable::num(100.0 * tiered.peak_link_utilization_mean, 1)
            << "%\n";
  std::cout << "premium availability "
            << TextTable::num(100.0 * premium.availability(), 1)
            << "% vs baseline "
            << TextTable::num(100.0 * baseline.report.availability(), 1)
            << "%; premium p99 stall " << TextTable::num(premium_p99, 1)
            << " s vs baseline "
            << TextTable::num(p99_stall(baseline.report), 1)
            << " s; background shed share "
            << TextTable::num(100.0 * shed_share, 1) << "%\n";

  bool ok = true;
  if (!smoke &&
      (tiered.peak_link_utilization_mean < 0.9 ||
       baseline.peak_link_utilization_mean < 0.9)) {
    std::cout << "FAIL: utilization probe below 90% — the storm did not "
                 "run hot enough to mean anything\n";
    ok = false;
  }
  if (!smoke && premium.availability() < baseline.report.availability()) {
    std::cout << "FAIL: premium availability under tiers fell below the "
                 "single-class baseline\n";
    ok = false;
  }
  if (!smoke && premium_p99 > p99_stall(baseline.report)) {
    std::cout << "FAIL: premium p99 stall exceeds the baseline's\n";
    ok = false;
  }
  if (!smoke && shed_share < kShedFloor) {
    std::cout << "FAIL: background absorbed less than "
              << TextTable::num(100.0 * kShedFloor, 0)
              << "% of the shed\n";
    ok = false;
  }
  if (!smoke && shed > 0 && (premium_shed > background_shed ||
                   premium_shed >
                       shed_by_class[class_index(UserClass::kStandard)])) {
    std::cout << "FAIL: premium does not carry the smallest share of the "
                 "shed\n";
    ok = false;
  }
  if (tiered.report.hung != 0 || baseline.report.hung != 0) {
    std::cout << "FAIL: a run left hung sessions\n";
    ok = false;
  }

  write_json(out_path, baseline, tiered, shed_share, ok);
  std::cout << "wrote " << out_path << "\n";
  if (gate && !ok) return 1;
  std::cout << (ok ? "OK\n" : "gates not enforced (run with --qos-gate)\n");
  return 0;
}
