// Fluid-allocator scale bench: indexed progressive filling vs. the naive
// reference, plus indexed vs. naive SNMP link sweeps, at 100 / 1k / 10k
// concurrent flows on a 132-link backbone under diurnal background traffic.
//
// Reports the median ns per full reallocation and per SNMP sweep at each
// scale, asserts the indexed allocator's rates are *bit-identical* to
// reallocate_reference(), and gates on >=5x reallocation speedup and >=10x
// sweep speedup at 10k flows.  Exits non-zero when equality or a floor
// fails, so scripts/ci.sh can use it as the perf tier.
//
// Usage: bench_fluid_alloc [--out PATH] [--threads N]
//   (default: BENCH_fluid.json, serial)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "net/fluid.h"

using namespace vod;

namespace {

// vodlint:entropy-ok(benchmark harness measures real elapsed time; timings
// are reported, never fed back into simulation state)
using Clock = std::chrono::steady_clock;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// The bench_vra_incremental backbone: a 24-core ring with cross-chords and
/// four access spurs per core — 132 links.
struct Backbone {
  net::Topology topo;
  std::vector<LinkId> ring;                 // ring[c]: core c -> core c+1
  std::vector<std::vector<LinkId>> spurs;   // spurs[c][s]: core c -> edge
};

Backbone build_backbone() {
  Backbone n;
  constexpr int kCores = 24;
  std::vector<NodeId> cores;
  for (int c = 0; c < kCores; ++c) {
    cores.push_back(n.topo.add_node("core" + std::to_string(c)));
  }
  for (int c = 0; c < kCores; ++c) {
    n.ring.push_back(
        n.topo.add_link(cores[c], cores[(c + 1) % kCores], Mbps{34.0}));
  }
  for (int c = 0; c < kCores; c += 2) {  // chords (background load only)
    n.topo.add_link(cores[c], cores[(c + kCores / 2) % kCores], Mbps{18.0});
  }
  n.spurs.resize(kCores);
  for (int c = 0; c < kCores; ++c) {
    for (int s = 0; s < 4; ++s) {
      const NodeId edge =
          n.topo.add_node("edge" + std::to_string(c) + "_" + std::to_string(s));
      n.spurs[c].push_back(
          n.topo.add_link(cores[c], edge, Mbps{2.0 + 4.0 * (s % 3)}));
    }
  }
  return n;
}

/// Server spur -> clockwise along the ring -> client spur.
std::vector<LinkId> random_path(const Backbone& n, Rng& rng) {
  const auto c1 = static_cast<std::size_t>(rng.uniform_int(0, 23));
  const auto c2 = static_cast<std::size_t>(rng.uniform_int(0, 23));
  std::vector<LinkId> path;
  path.push_back(n.spurs[c1][static_cast<std::size_t>(rng.uniform_int(0, 3))]);
  for (std::size_t c = c1; c != c2; c = (c + 1) % 24) path.push_back(n.ring[c]);
  path.push_back(n.spurs[c2][static_cast<std::size_t>(rng.uniform_int(0, 3))]);
  return path;
}

struct ScaleResult {
  int flows = 0;
  double realloc_indexed_ns = 0.0;
  double realloc_reference_ns = 0.0;
  double snmp_indexed_ns = 0.0;
  double snmp_naive_ns = 0.0;
  bool identical = false;

  [[nodiscard]] double realloc_speedup() const {
    return realloc_reference_ns / realloc_indexed_ns;
  }
  [[nodiscard]] double snmp_speedup() const {
    return snmp_naive_ns / snmp_indexed_ns;
  }
};

ScaleResult run_scale(int flow_count) {
  const Backbone n = build_backbone();
  net::DiurnalTraffic traffic;
  Rng shapes{42};
  for (const net::LinkInfo& info : n.topo.links()) {
    traffic.set_shape(info.id,
                      net::DiurnalTraffic::LinkShape{
                          info.capacity, shapes.uniform(0.05, 0.2),
                          shapes.uniform(0.4, 0.8)});
  }
  net::FluidNetwork network{n.topo, traffic};

  Rng rng{static_cast<std::uint64_t>(flow_count) * 1009 + 1};
  std::vector<std::pair<FlowId, std::vector<LinkId>>> specs;
  {
    // One allocation epoch for the whole ramp-up.
    const net::FluidNetwork::BatchGuard epoch = network.defer_reallocate();
    for (int f = 0; f < flow_count; ++f) {
      std::vector<LinkId> path = random_path(n, rng);
      const Mbps cap{rng.uniform(1.5, 8.0)};
      specs.emplace_back(network.start_flow(path, cap), std::move(path));
    }
  }

  ScaleResult result;
  result.flows = flow_count;

  // --- reallocation: indexed (via clock moves, traffic cache cold each
  // step) vs. the naive reference filler (same state, traffic cache warm —
  // a bias in the reference's favor). ---
  const int indexed_reps = flow_count >= 10000 ? 9 : 25;
  const int reference_reps = flow_count >= 10000 ? 3 : 9;
  double t = 8.0 * 3600.0;
  std::vector<double> samples;
  for (int rep = 0; rep < indexed_reps; ++rep) {
    t += 60.0;
    const auto start = Clock::now();
    network.set_time(SimTime{t});
    samples.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count());
  }
  result.realloc_indexed_ns = median(samples);

  samples.clear();
  std::vector<std::pair<FlowId, Mbps>> reference;
  for (int rep = 0; rep < reference_reps; ++rep) {
    const auto start = Clock::now();
    reference = network.reallocate_reference();
    samples.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count());
  }
  result.realloc_reference_ns = median(samples);

  // Bit-identical rates: the gate that makes the speedup legitimate.
  result.identical = reference.size() == specs.size();
  for (std::size_t i = 0; result.identical && i < specs.size(); ++i) {
    result.identical =
        reference[i].first == specs[i].first &&
        reference[i].second.value() ==
            network.flow_rate(specs[i].first).value();
  }

  // --- SNMP sweep: every link's used_bandwidth, indexed walk vs. the
  // pre-index all-flows scan (background + each crossing flow once, in
  // ascending id order — the identical reduction). ---
  std::vector<Mbps> rates;
  rates.reserve(specs.size());
  for (const auto& [id, path] : specs) rates.push_back(network.flow_rate(id));

  const int sweep_reps = flow_count >= 10000 ? 5 : 25;
  std::vector<Mbps> indexed_used(n.topo.link_count());
  samples.clear();
  for (int rep = 0; rep < sweep_reps; ++rep) {
    const auto start = Clock::now();
    for (const net::LinkInfo& info : n.topo.links()) {
      indexed_used[info.id.value()] = network.used_bandwidth(info.id);
    }
    samples.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count());
  }
  result.snmp_indexed_ns = median(samples);

  std::vector<Mbps> naive_used(n.topo.link_count());
  samples.clear();
  for (int rep = 0; rep < sweep_reps; ++rep) {
    const auto start = Clock::now();
    for (const net::LinkInfo& info : n.topo.links()) {
      Mbps used = network.background(info.id);
      for (std::size_t f = 0; f < specs.size(); ++f) {
        for (const LinkId link : specs[f].second) {
          if (link == info.id) {
            used += rates[f];
            break;
          }
        }
      }
      naive_used[info.id.value()] = std::min(used, info.capacity);
    }
    samples.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count());
  }
  result.snmp_naive_ns = median(samples);

  for (std::size_t l = 0; result.identical && l < naive_used.size(); ++l) {
    result.identical = indexed_used[l].value() == naive_used[l].value();
  }
  return result;
}

void write_json(const std::string& path,
                const std::vector<ScaleResult>& results, bool gates_pass) {
  std::ofstream out{path};
  out << "{\n  \"scales\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    out << "    {\"flows\": " << r.flows
        << ", \"realloc_indexed_ns\": " << r.realloc_indexed_ns
        << ", \"realloc_reference_ns\": " << r.realloc_reference_ns
        << ", \"realloc_speedup\": " << r.realloc_speedup()
        << ", \"snmp_indexed_ns\": " << r.snmp_indexed_ns
        << ", \"snmp_naive_ns\": " << r.snmp_naive_ns
        << ", \"snmp_speedup\": " << r.snmp_speedup()
        << ", \"bit_identical\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"gates\": {\"realloc_floor\": 5.0, \"snmp_floor\": 10.0, "
      << "\"pass\": " << (gates_pass ? "true" : "false") << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // With --trace-out the timed sections run with the recorder installed,
  // so diffing the timing table against an untraced run measures the
  // tracing overhead at 1k/10k flows (EXPERIMENTS.md quotes it).
  bench::ObsScope obs{argc, argv};
  // --flight-out installs the always-on flight ring as the effective sink
  // instead: the same instrumentation events land in the bounded ring
  // (overwrite-oldest), measuring the black-box recorder's steady-state
  // cost at 1k/10k flows.  No sim clock or registry here — the ring only
  // appends; nothing triggers a dump.  The ObsScope destructor uninstalls.
  if (obs.flight() != nullptr) obs::set_flight_recorder(obs.flight());
  std::string out_path = "BENCH_fluid.json";
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::string{argv[i]} == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    }
  }
  // --threads N runs the allocator's ParallelFor pilot kernels forked; the
  // bit-identical and speedup-floor gates below must hold unchanged, which
  // is exactly the determinism contract the parallel path promises.  The
  // workers/grain pairing is the shared bench knob (bench::threads_config),
  // not a per-call-site hard-code.
  sim::set_simulation_config(bench::threads_config(threads));

  bench::heading(
      "Fluid allocator at scale: incidence index vs. naive reference");

  std::vector<ScaleResult> results;
  for (const int flows : {100, 1000, 10000}) {
    results.push_back(run_scale(flows));
  }

  TextTable table{{"flows", "realloc idx (us)", "realloc ref (us)", "speedup",
                   "sweep idx (us)", "sweep naive (us)", "speedup",
                   "bit-identical"}};
  for (const ScaleResult& r : results) {
    table.add_row({std::to_string(r.flows),
                   TextTable::num(r.realloc_indexed_ns / 1e3, 1),
                   TextTable::num(r.realloc_reference_ns / 1e3, 1),
                   TextTable::num(r.realloc_speedup(), 1) + "x",
                   TextTable::num(r.snmp_indexed_ns / 1e3, 1),
                   TextTable::num(r.snmp_naive_ns / 1e3, 1),
                   TextTable::num(r.snmp_speedup(), 1) + "x",
                   r.identical ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";
  std::cout << "132-link backbone, diurnal background, medians of repeated "
               "solves/sweeps\n";

  const ScaleResult& at_scale = results.back();
  bool ok = true;
  for (const ScaleResult& r : results) {
    if (!r.identical) {
      std::cerr << "FAIL: allocations diverged from reallocate_reference() "
                   "at "
                << r.flows << " flows\n";
      ok = false;
    }
  }
  if (at_scale.realloc_speedup() < 5.0) {
    std::cerr << "FAIL: reallocation speedup "
              << TextTable::num(at_scale.realloc_speedup(), 2)
              << "x below the 5x floor at 10k flows\n";
    ok = false;
  }
  if (at_scale.snmp_speedup() < 10.0) {
    std::cerr << "FAIL: SNMP sweep speedup "
              << TextTable::num(at_scale.snmp_speedup(), 2)
              << "x below the 10x floor at 10k flows\n";
    ok = false;
  }
  std::cout << "reallocation speedup at 10k flows: "
            << TextTable::num(at_scale.realloc_speedup(), 1)
            << "x (floor: 5x); SNMP sweep: "
            << TextTable::num(at_scale.snmp_speedup(), 1)
            << "x (floor: 10x)\n";

  write_json(out_path, results, ok);
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
