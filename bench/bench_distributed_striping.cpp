// Server-level striping — the paper's future-work proposal, measured.
//
// "...even better results if the various videos were stripped not on the
//  hard disks of one server but of different servers according to the
//  popularity."
//
// The same popular title is streamed to clients at every site, once with
// whole-title placement (all clusters from the title's single holder) and
// once strip-placed across three servers (cluster k from holder k mod 3).
// Strip placement disperses the load across links and server egress ports.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "net/transfer.h"
#include "service/distributed_striping.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"

using namespace vod;

namespace {

struct RunResult {
  double mean_download = 0.0;
  double max_link_utilization = 0.0;
  double egress_imbalance = 0.0;  // max/mean server egress bytes
  int finished = 0;
};

RunResult run(bool striped) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;  // isolate our own load dispersion
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  net::TransferManager transfers{sim, network};

  db::Database db{bench::kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  const VideoId movie =
      db.register_video("blockbuster", MegaBytes{200.0}, Mbps{1.5});
  const std::vector<NodeId> holders{g.athens, g.thessaloniki, g.heraklio};
  auto view = db.limited_view(bench::kAdmin);
  if (striped) {
    for (const NodeId holder : holders) view.add_title(holder, movie);
  } else {
    view.add_title(g.athens, movie);
  }

  vra::Vra vra{g.topology, db.full_view(), db.limited_view(bench::kAdmin),
               {}};
  stream::VraPolicy whole_policy{vra, 0.5};
  service::DistributedStripePlacer placer{holders, holders.size()};
  service::StripedSelectionPolicy striped_policy{vra,
                                                 placer.plan({movie})};
  stream::ServerSelectionPolicy* policy =
      striped ? static_cast<stream::ServerSelectionPolicy*>(&striped_policy)
              : &whole_policy;

  // One client at each of the six sites requests the title together.
  std::vector<std::unique_ptr<stream::Session>> sessions;
  std::vector<double> per_server_egress(g.topology.node_count(), 0.0);
  double max_utilization = 0.0;

  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId home{static_cast<NodeId::underlying_type>(n)};
    auto session = std::make_unique<stream::Session>(
        sim, transfers, *policy, *db.full_view().video(movie), home,
        MegaBytes{25.0});
    session->start();
    sessions.push_back(std::move(session));
  }

  // Sample link peaks as the run progresses.
  sim::PeriodicTask sampler{sim, Duration{10.0}, [&](SimTime) {
    for (const net::LinkInfo& info : g.topology.links()) {
      max_utilization =
          std::max(max_utilization, network.utilization(info.id));
    }
  }};
  sampler.start();
  sim.run_until(from_hours(4.0));
  sampler.stop();
  snmp.stop();

  RunResult result;
  for (const auto& session : sessions) {
    const stream::SessionMetrics& m = session->metrics();
    if (!m.finished) continue;
    ++result.finished;
    result.mean_download += *m.download_completed_at - m.requested_at;
    // Attribute each cluster's bytes to its source server's egress.
    for (std::size_t k = 0; k < m.cluster_sources.size(); ++k) {
      per_server_egress[m.cluster_sources[k].value()] += 25.0;
    }
  }
  if (result.finished > 0) result.mean_download /= result.finished;
  result.max_link_utilization = max_utilization;

  double total = 0.0, peak = 0.0;
  int active_servers = 0;
  for (const double egress : per_server_egress) {
    total += egress;
    peak = std::max(peak, egress);
    if (egress > 0.0) ++active_servers;
  }
  result.egress_imbalance =
      total > 0.0 ? peak / (total / g.topology.node_count()) : 0.0;
  (void)active_servers;
  return result;
}

}  // namespace

int main() {
  bench::heading(
      "Future work: whole-title vs server-striped placement");
  std::cout << "One 200 MB @1.5 Mbps title requested simultaneously from "
               "all six sites;\ncluster 25 MB; idle background.\n\n";

  TextTable table{{"Placement", "finished", "mean DL (s)",
                   "peak link util", "egress peak/mean"}};
  for (const bool striped : {false, true}) {
    const RunResult r = run(striped);
    table.add_row({striped ? "striped across 3 servers" : "single holder",
                   std::to_string(r.finished),
                   TextTable::num(r.mean_download, 0),
                   TextTable::num(r.max_link_utilization, 2),
                   TextTable::num(r.egress_imbalance, 2)});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: strip placement spreads the clusters over "
               "three egress\npoints, cutting the single holder's hot links "
               "and its egress concentration\n(peak/mean -> closer to 1 "
               "means better dispersion).\n";
  return 0;
}
