// Scale study: beyond the paper's 6-node case.
//
// Default mode: a 12-node two-tier national backbone (3 core nodes in a
// 34 Mbps triangle, 9 access sites on 2-10 Mbps spurs), synthetic diurnal
// background traffic, a Zipf catalog with 2 replicas per title, and one
// day of diurnally-arriving requests — comparing the VRA against the
// baselines at a size the authors' testbed could not reach.
//
// --scale-gate [--full] [--threads N] [--out PATH]: the million-session
// store gate.
//   1. Store-op replay: the session-store hot loop (insert / lookup /
//      ordered sweep / retire) at 100k concurrent sessions (1M total
//      churned with --full), run against the pre-PR store model — a
//      node-based std::map of unique_ptrs whose entries are never erased
//      (the historical leak) — and against the dense SlotMap + ObjectPool
//      store.  Gates on >=5x ns/event.
//   2. Service churn waves: the real VodService under kCountersOnly
//      retention streaming local titles in waves; VmRSS is sampled at
//      each wave boundary and must stay flat (O(active), not O(total)).
//   3. Epoch-barrier stepping: 100k concurrent sessions advanced one wave
//      per instant, expressed the pre-epoch way (one EventQueue event per
//      session step) and as same-instant sharded events (DESIGN.md §15)
//      with the epoch-barrier core at --threads N.  Gates on checksum
//      equality and >=1.3x session-steps/sec over the serial path.
//   Emits BENCH_scale.json (including the thread dimension) and exits
//   non-zero when a gate fails, so scripts/ci.sh runs it as part of the
//   perf tier — at the serial default and again at --threads 2.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/selection_baselines.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/slot_map.h"
#include "common/stats.h"
#include "common/table.h"
#include "grnet/grnet.h"
#include "net/transfer.h"
#include "service/vod_service.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

struct Network {
  net::Topology topo;
  std::vector<NodeId> cores;
  std::vector<NodeId> edges;
};

Network build_network() {
  Network n;
  for (int c = 0; c < 3; ++c) {
    n.cores.push_back(n.topo.add_node("core" + std::to_string(c)));
  }
  n.topo.add_link(n.cores[0], n.cores[1], Mbps{34.0});
  n.topo.add_link(n.cores[1], n.cores[2], Mbps{34.0});
  n.topo.add_link(n.cores[2], n.cores[0], Mbps{34.0});
  for (int e = 0; e < 9; ++e) {
    const NodeId edge = n.topo.add_node("edge" + std::to_string(e));
    n.edges.push_back(edge);
    // Mixed access speeds: 2, 6, 10 Mbps.
    const double capacity = 2.0 + 4.0 * (e % 3);
    n.topo.add_link(n.cores[e % 3], edge, Mbps{capacity});
  }
  return n;
}

struct RunResult {
  SampleSet download_seconds;
  int qos_ok = 0;
  int finished = 0;
  int failed = 0;
  int switches = 0;
};

enum class Policy { kVra, kNearest, kRandom };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kVra:
      return "VRA (+50% hysteresis)";
    case Policy::kNearest:
      return "nearest-by-hops";
    case Policy::kRandom:
      return "random holder";
  }
  return "?";
}

RunResult run(Policy which, bench::ObsScope& obs) {
  const Network n = build_network();
  net::DiurnalTraffic traffic{14.0};
  for (const net::LinkInfo& info : n.topo.links()) {
    traffic.set_shape(info.id, {.capacity = info.capacity,
                                .base_fraction = 0.10,
                                .peak_fraction = 0.60});
  }
  // One hot core trunk (a transit exchange): hop-count routing keeps
  // using it; load-aware routing detours over the other two core links.
  const LinkId hot = *n.topo.find_link(n.cores[0], n.cores[1]);
  traffic.set_shape(hot, {.capacity = Mbps{34.0},
                          .base_fraction = 0.55,
                          .peak_fraction = 0.97});
  sim::Simulation sim;
  obs.bind_clock([&sim] { return sim.now(); });
  net::FluidNetwork network{n.topo, traffic};
  net::TransferManager transfers{sim, network};

  db::Database db{bench::kAdmin};
  for (std::size_t i = 0; i < n.topo.node_count(); ++i) {
    const NodeId node{static_cast<NodeId::underlying_type>(i)};
    db.register_server(node, n.topo.node_name(node), {});
  }
  for (const net::LinkInfo& info : n.topo.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  // 30 titles, 2 replicas, placed round-robin with a rank offset so
  // popular titles sit on different servers.
  std::vector<VideoId> videos;
  std::vector<db::VideoInfo> infos;
  auto view = db.limited_view(bench::kAdmin);
  for (int v = 0; v < 30; ++v) {
    const VideoId id = db.register_video("t" + std::to_string(v),
                                         MegaBytes{120.0}, Mbps{1.5});
    videos.push_back(id);
    infos.push_back(*db.full_view().video(id));
    view.add_title(NodeId{static_cast<NodeId::underlying_type>(v % 12)},
                   id);
    view.add_title(
        NodeId{static_cast<NodeId::underlying_type>((v + 5) % 12)}, id);
  }

  vra::Vra vra{n.topo, db.full_view(), db.limited_view(bench::kAdmin), {}};
  stream::VraPolicy vra_policy{vra, 0.5};
  baselines::NearestByHopsPolicy nearest{n.topo, db.full_view(),
                                         db.limited_view(bench::kAdmin)};
  baselines::RandomHolderPolicy random{n.topo, db.full_view(),
                                       db.limited_view(bench::kAdmin),
                                       Rng{4242}};
  stream::ServerSelectionPolicy* policy = nullptr;
  switch (which) {
    case Policy::kVra:
      policy = &vra_policy;
      break;
    case Policy::kNearest:
      policy = &nearest;
      break;
    case Policy::kRandom:
      policy = &random;
      break;
  }

  // One day of requests, evening-peaked, from the edge sites only.
  workload::RequestGenerator gen{videos, 1.0, n.edges};
  Rng rng{77};
  const auto requests = gen.generate_diurnal(
      from_hours(0.0), hours(24.0), 80.0 / 86400.0, 20.0, 4.0, rng);

  std::vector<std::unique_ptr<stream::Session>> sessions;
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&, request](SimTime) {
      auto session = std::make_unique<stream::Session>(
          sim, transfers, *policy, infos[request.video.value()],
          request.home, MegaBytes{30.0});
      session->start();
      sessions.push_back(std::move(session));
    });
  }
  sim.run_until(from_hours(48.0));
  snmp.stop();
  obs.bind_clock(nullptr);

  RunResult result;
  for (const auto& session : sessions) {
    const stream::SessionMetrics& m = session->metrics();
    if (m.failed || !m.finished) {
      ++result.failed;
      continue;
    }
    ++result.finished;
    result.download_seconds.add(*m.download_completed_at - m.requested_at);
    result.switches += m.server_switches;
    if (m.meets_qos_floor(Mbps{1.5})) ++result.qos_ok;
  }
  return result;
}

// ---------------------------------------------------------------------
// --scale-gate: the million-session store benchmark.
// ---------------------------------------------------------------------

// vodlint:entropy-ok(benchmark harness measures real elapsed time; timings
// are reported, never fed back into simulation state)
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Stand-in for a live stream::Session in the store-op replay: heap/pool
/// allocated behind a pointer exactly like the real store, big enough that
/// allocation behaviour matters, small enough that the replay measures the
/// store, not memcpy.
struct MockSession {
  std::uint64_t id;
  std::uint64_t progress = 0;
  double rate = 0.0;
  bool done = false;
  std::uint64_t pad[4] = {};

  explicit MockSession(std::uint64_t i) : id(i) {}
};

struct ReplayConfig {
  std::size_t concurrent = 100'000;
  std::size_t total = 300'000;
  std::size_t lookups_per_event = 8;
  std::size_t sweep_every = 1024;
};

struct ReplayResult {
  std::size_t events = 0;
  double ns_per_event = 0.0;
  std::uint64_t checksum = 0;  // keeps the loops honest (and identical)
  std::size_t resident_end = 0;
};

/// The pre-PR store: node-based ordered map of owning pointers, entries
/// never erased — completed sessions are only flagged, so the tree (and the
/// ordered sweeps over it) grow with every session ever created.
ReplayResult replay_map_store(const ReplayConfig& cfg) {
  std::map<SessionId, std::unique_ptr<MockSession>> store;
  Rng rng{20260808};
  ReplayResult r;
  std::uint64_t next = 0, completed = 0;
  const auto start = Clock::now();
  while (next < cfg.total) {
    if (next - completed < cfg.concurrent) {
      const std::uint64_t i = next++;
      store.emplace(SessionId{static_cast<SessionId::underlying_type>(i)},
                    std::make_unique<MockSession>(i));
      continue;
    }
    // One lifecycle event: retire the oldest active, admit a replacement.
    auto& oldest = store.at(
        SessionId{static_cast<SessionId::underlying_type>(completed)});
    oldest->done = true;  // the leak: the entry stays resident
    ++completed;
    ++r.events;
    for (std::size_t k = 0; k < cfg.lookups_per_event; ++k) {
      const auto span = static_cast<int>(next - completed);
      const std::uint64_t probe =
          completed + static_cast<std::uint64_t>(rng.uniform_int(0, span - 1));
      auto it = store.find(
          SessionId{static_cast<SessionId::underlying_type>(probe)});
      if (it != store.end() && !it->second->done) {
        it->second->progress += 1;
        r.checksum += it->second->id;
      }
    }
    if (r.events % cfg.sweep_every == 0) {
      // notify_sessions/report-style sweep: ascending id over the whole
      // store, skipping the retired-but-resident entries.
      for (const auto& [id, session] : store) {
        if (!session->done) r.checksum += session->progress;
      }
    }
  }
  r.ns_per_event =
      std::chrono::duration<double, std::nano>(Clock::now() - start)
          .count() /
      static_cast<double>(r.events);
  r.resident_end = store.size();
  return r;
}

/// The dense store: SlotMap over pool-allocated sessions, retired entries
/// erased, ordered sweeps walk only the live window.  Same event sequence,
/// same RNG, same checksum.
ReplayResult replay_slot_store(const ReplayConfig& cfg) {
  ObjectPool<MockSession> pool;
  SlotMap<SessionId, ObjectPool<MockSession>::Ptr> store;
  Rng rng{20260808};
  ReplayResult r;
  std::uint64_t next = 0, completed = 0;
  const auto start = Clock::now();
  while (next < cfg.total) {
    if (next - completed < cfg.concurrent) {
      const std::uint64_t i = next++;
      store.insert(SessionId{static_cast<SessionId::underlying_type>(i)},
                   pool.make(i));
      continue;
    }
    store.erase(
        SessionId{static_cast<SessionId::underlying_type>(completed)});
    ++completed;
    ++r.events;
    for (std::size_t k = 0; k < cfg.lookups_per_event; ++k) {
      const auto span = static_cast<int>(next - completed);
      const std::uint64_t probe =
          completed + static_cast<std::uint64_t>(rng.uniform_int(0, span - 1));
      auto* slot = store.find(
          SessionId{static_cast<SessionId::underlying_type>(probe)});
      if (slot != nullptr && !(*slot)->done) {
        (*slot)->progress += 1;
        r.checksum += (*slot)->id;
      }
    }
    if (r.events % cfg.sweep_every == 0) {
      store.for_each_ordered(
          [&](SessionId, ObjectPool<MockSession>::Ptr& session) {
            if (!session->done) r.checksum += session->progress;
          });
    }
  }
  r.ns_per_event =
      std::chrono::duration<double, std::nano>(Clock::now() - start)
          .count() /
      static_cast<double>(r.events);
  r.resident_end = store.size();
  return r;
}

/// VmRSS / VmHWM (kB) from /proc/self/status; 0 when unavailable.
std::size_t proc_status_kb(const char* key) {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      std::size_t kb = 0;
      for (const char c : line) {
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::size_t>(c - '0');
      }
      return kb;
    }
  }
  return 0;
}

struct ChurnResult {
  std::size_t total_sessions = 0;
  std::vector<std::size_t> wave_rss_kb;  // sampled at each wave boundary
  std::size_t peak_rss_kb = 0;
  std::size_t growth_kb = 0;  // wave 2 boundary -> last boundary
  bool flat = false;
};

/// Real-service churn: waves of local streams under kCountersOnly
/// retention.  Home holds the title, so every flow is pathless (the
/// all-local fast path) and the run measures the session machinery, not
/// the fluid solver.  Memory must be O(active ~2k), not O(total).
ChurnResult run_service_churn(std::size_t total_sessions,
                              bench::ObsScope& obs) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  obs.bind_clock([&sim] { return sim.now(); });
  net::FluidNetwork network{g.topology, traffic};
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.dma.admission_threshold = 1'000'000;
  options.retention = service::SessionRetention::kCountersOnly;
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};
  // Telemetry v2 watches the churn phase: --series-out turns the
  // service.active_sessions gauge (and the epoch/parallel counters under
  // --threads) into a trajectory that shows the O(active) plateau the RSS
  // gate asserts numerically.  No-op without a v2 flag.
  obs.bind_registry(service.metrics());
  const VideoId movie =
      service.add_video("movie", MegaBytes{10.0}, Mbps{2.0});
  service.place_initial_copy(g.patra, movie);
  service.start();

  // 10 MB @ 2 Mbps = 40 s playback; one request every 20 ms holds ~2000
  // sessions concurrent regardless of the total churned through.
  constexpr double kSpacing = 0.02;
  constexpr std::size_t kWaves = 5;
  const std::size_t per_wave = total_sessions / kWaves;

  ChurnResult result;
  result.total_sessions = per_wave * kWaves;
  double t = 1.0;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    for (std::size_t s = 0; s < per_wave; ++s) {
      sim.schedule_at(SimTime{t}, [&service, &g, movie](SimTime) {
        service.request_at(g.patra, movie);
      });
      t += kSpacing;
    }
    // Sample resident memory at the wave boundary (steady-state churn).
    sim.schedule_at(SimTime{t}, [&result](SimTime) {
      result.wave_rss_kb.push_back(proc_status_kb("VmRSS:"));
    });
  }
  sim.run_until(SimTime{t + 100.0});
  obs.unbind_registry();
  obs.bind_clock(nullptr);

  result.peak_rss_kb = proc_status_kb("VmHWM:");
  // Wave 1 still pays one-time warm-up (pools, allocator arenas, metric
  // registries); flatness is judged from the second boundary on.
  const std::size_t base = result.wave_rss_kb[1];
  const std::size_t last = result.wave_rss_kb.back();
  result.growth_kb = last > base ? last - base : 0;
  // "Flat": the remaining waves (3/5 of all sessions) add less than 10% of
  // steady state plus a fixed allowance for allocator noise.
  result.flat = result.growth_kb < base / 10 + 4096;
  return result;
}

// ---------------------------------------------------------------------
// Epoch-barrier stepping: sharded same-instant events vs. the serial
// per-event path (DESIGN.md §15).
// ---------------------------------------------------------------------

/// 100k concurrent sessions advanced in lock-step waves.  Each session
/// step is two xorshift64 rounds over its lane plus a commutative integer
/// digest, so the checksum is order-independent across serial, sharded and
/// any-width epoch execution while still covering every lane bit.
struct EpochConfig {
  std::size_t sessions = 100'000;
  std::size_t blocks = 256;  // sharded-event affinity keys (server blocks)
  std::size_t waves = 20;
};

struct EpochRunResult {
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  std::uint64_t checksum = 0;
  std::size_t sim_events = 0;  // events through the EventQueue heap
};

std::uint64_t lane_seed(std::size_t i) {
  return 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
}

std::uint64_t lane_step(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

/// The pre-epoch expression of the workload: one EventQueue event per
/// session per wave, each rescheduling its successor — 100k heap pops and
/// handler dispatches per instant.
EpochRunResult run_epoch_serial_path(const EpochConfig& cfg) {
  sim::set_simulation_config({});
  sim::Simulation sim;
  std::vector<std::uint64_t> lane(cfg.sessions);
  for (std::size_t i = 0; i < lane.size(); ++i) lane[i] = lane_seed(i);
  EpochRunResult r;
  std::function<void(std::size_t, std::size_t)> step =
      [&](std::size_t i, std::size_t wave) {
        sim.schedule_at(SimTime{1.0 + static_cast<double>(wave)},
                        [&, i, wave](SimTime) {
                          const std::uint64_t x = lane_step(lane[i]);
                          lane[i] = x;
                          r.checksum += x;
                          ++r.sim_events;
                          if (wave + 1 < cfg.waves) step(i, wave + 1);
                        });
      };
  for (std::size_t i = 0; i < cfg.sessions; ++i) step(i, 0);
  const auto start = Clock::now();
  sim.run();
  r.seconds = seconds_since(start);
  r.steps_per_sec =
      static_cast<double>(cfg.sessions * cfg.waves) / r.seconds;
  return r;
}

/// The epoch-barrier expression: one sharded event per session block per
/// wave (affinity = block index, the "per-server" key), lane writes
/// confined to the block's disjoint slice, digest and the next wave's
/// scheduling deferred to the barrier's effect merge.
EpochRunResult run_epoch_sharded(const EpochConfig& cfg, unsigned threads) {
  sim::set_simulation_config(bench::threads_config(threads, true));
  sim::Simulation sim;
  std::vector<std::uint64_t> lane(cfg.sessions);
  for (std::size_t i = 0; i < lane.size(); ++i) lane[i] = lane_seed(i);
  EpochRunResult r;
  const std::size_t per = (cfg.sessions + cfg.blocks - 1) / cfg.blocks;
  std::function<void(std::size_t, std::size_t)> step = [&](std::size_t b,
                                                           std::size_t wave) {
    sim.schedule_sharded_at(
        SimTime{1.0 + static_cast<double>(wave)}, b,
        [&, b, wave](SimTime, sim::EffectBuffer& effects) {
          const std::size_t begin = b * per;
          const std::size_t end = std::min(begin + per, cfg.sessions);
          std::uint64_t acc = 0;
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t x = lane_step(lane[i]);
            lane[i] = x;
            acc += x;
          }
          effects.defer([&, b, wave, acc](SimTime) {
            r.checksum += acc;
            ++r.sim_events;
            if (wave + 1 < cfg.waves) step(b, wave + 1);
          });
        });
  };
  for (std::size_t b = 0; b < cfg.blocks; ++b) step(b, 0);
  const auto start = Clock::now();
  sim.run();
  r.seconds = seconds_since(start);
  r.steps_per_sec =
      static_cast<double>(cfg.sessions * cfg.waves) / r.seconds;
  sim::set_simulation_config(bench::threads_config(threads));
  return r;
}

void write_gate_json(const std::string& path, unsigned threads,
                     const ReplayConfig& cfg, const ReplayResult& map_r,
                     const ReplayResult& slot_r, const ChurnResult& churn,
                     const EpochConfig& ecfg,
                     const EpochRunResult& serial_r,
                     const EpochRunResult& epoch_r, double epoch_speedup,
                     double speedup, bool pass) {
  std::ofstream out{path};
  out << "{\n  \"threads\": " << threads << ",\n";
  out << "  \"store_replay\": {\"concurrent\": " << cfg.concurrent
      << ", \"total\": " << cfg.total
      << ", \"map_ns_per_event\": " << map_r.ns_per_event
      << ", \"slot_ns_per_event\": " << slot_r.ns_per_event
      << ", \"speedup\": " << speedup
      << ", \"map_resident_end\": " << map_r.resident_end
      << ", \"slot_resident_end\": " << slot_r.resident_end << "},\n";
  out << "  \"service_churn\": {\"total_sessions\": " << churn.total_sessions
      << ", \"wave_rss_kb\": [";
  for (std::size_t i = 0; i < churn.wave_rss_kb.size(); ++i) {
    out << (i > 0 ? ", " : "") << churn.wave_rss_kb[i];
  }
  out << "], \"growth_kb\": " << churn.growth_kb
      << ", \"peak_rss_kb\": " << churn.peak_rss_kb
      << ", \"flat\": " << (churn.flat ? "true" : "false") << "},\n";
  out << "  \"epoch_core\": {\"sessions\": " << ecfg.sessions
      << ", \"blocks\": " << ecfg.blocks << ", \"waves\": " << ecfg.waves
      << ", \"serial_steps_per_sec\": " << serial_r.steps_per_sec
      << ", \"epoch_steps_per_sec\": " << epoch_r.steps_per_sec
      << ", \"serial_sim_events\": " << serial_r.sim_events
      << ", \"epoch_sim_events\": " << epoch_r.sim_events
      << ", \"speedup\": " << epoch_speedup << ", \"checksum_match\": "
      << (serial_r.checksum == epoch_r.checksum ? "true" : "false")
      << "},\n";
  out << "  \"gates\": {\"speedup_floor\": 5.0, \"epoch_speedup_floor\": "
         "1.3, \"pass\": "
      << (pass ? "true" : "false") << "}\n}\n";
}

int run_scale_gate(bool full, unsigned threads, const std::string& out_path,
                   bench::ObsScope& obs) {
  ReplayConfig cfg;
  if (full) {
    cfg.concurrent = 1'000'000;
    cfg.total = 2'000'000;
  }
  bench::heading("Session-store scale gate: dense slot map vs. pre-PR map");
  std::cout << cfg.concurrent << " concurrent mock sessions, "
            << cfg.total << " churned; event = retire + admit + "
            << cfg.lookups_per_event << " lookups, ordered sweep every "
            << cfg.sweep_every << " events\n\n";

  const ReplayResult map_r = replay_map_store(cfg);
  const ReplayResult slot_r = replay_slot_store(cfg);
  const double speedup = map_r.ns_per_event / slot_r.ns_per_event;

  TextTable table{{"store", "ns/event", "resident at end", "checksum"}};
  table.add_row({"std::map (pre-PR, never erased)",
                 TextTable::num(map_r.ns_per_event, 0),
                 std::to_string(map_r.resident_end),
                 std::to_string(map_r.checksum)});
  table.add_row({"SlotMap + ObjectPool",
                 TextTable::num(slot_r.ns_per_event, 0),
                 std::to_string(slot_r.resident_end),
                 std::to_string(slot_r.checksum)});
  std::cout << table.render();
  std::cout << "speedup: " << TextTable::num(speedup, 1) << "x\n\n";

  const std::size_t churn_total = full ? 1'000'000 : 100'000;
  const ChurnResult churn = run_service_churn(churn_total, obs);
  std::cout << "Service churn (" << churn.total_sessions
            << " sessions, kCountersOnly, ~2k concurrent):\n  RSS at wave "
               "boundaries (kB):";
  for (const std::size_t kb : churn.wave_rss_kb) std::cout << " " << kb;
  std::cout << "\n  growth after warm-up: " << churn.growth_kb
            << " kB; peak RSS " << churn.peak_rss_kb << " kB\n";

  const EpochConfig ecfg;
  std::cout << "\nEpoch-barrier stepping (" << ecfg.sessions
            << " concurrent sessions, " << ecfg.waves << " waves, "
            << ecfg.blocks << " sharded blocks, threads=" << threads
            << "):\n";
  const EpochRunResult serial_r = run_epoch_serial_path(ecfg);
  const EpochRunResult epoch_r = run_epoch_sharded(ecfg, threads);
  const double epoch_speedup =
      epoch_r.steps_per_sec / serial_r.steps_per_sec;
  TextTable epoch_table{
      {"stepping", "session-steps/s", "sim events", "checksum"}};
  epoch_table.add_row({"serial path (event per step)",
                       TextTable::num(serial_r.steps_per_sec, 0),
                       std::to_string(serial_r.sim_events),
                       std::to_string(serial_r.checksum)});
  epoch_table.add_row({"epoch-barrier sharded",
                       TextTable::num(epoch_r.steps_per_sec, 0),
                       std::to_string(epoch_r.sim_events),
                       std::to_string(epoch_r.checksum)});
  std::cout << epoch_table.render();
  std::cout << "epoch speedup: " << TextTable::num(epoch_speedup, 1)
            << "x (floor: 1.3x)\n";

  bool ok = true;
  if (slot_r.checksum != map_r.checksum) {
    std::cerr << "FAIL: store replays diverged (checksum " << slot_r.checksum
              << " vs " << map_r.checksum << ")\n";
    ok = false;
  }
  if (speedup < 5.0) {
    std::cerr << "FAIL: ns/event speedup " << TextTable::num(speedup, 2)
              << "x below the 5x floor\n";
    ok = false;
  }
  if (!churn.flat) {
    std::cerr << "FAIL: resident memory grew " << churn.growth_kb
              << " kB across post-warm-up churn waves (not O(active))\n";
    ok = false;
  }
  if (epoch_r.checksum != serial_r.checksum) {
    std::cerr << "FAIL: epoch-barrier stepping diverged (checksum "
              << epoch_r.checksum << " vs " << serial_r.checksum << ")\n";
    ok = false;
  }
  if (epoch_speedup < 1.3) {
    std::cerr << "FAIL: epoch steps/sec speedup "
              << TextTable::num(epoch_speedup, 2)
              << "x below the 1.3x floor\n";
    ok = false;
  }
  write_gate_json(out_path, threads, cfg, map_r, slot_r, churn, ecfg,
                  serial_r, epoch_r, epoch_speedup, speedup, ok);
  std::cout << (ok ? "\nPASS" : "\nFAIL") << " — wrote " << out_path << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsScope obs{argc, argv};
  bool scale_gate = false;
  bool full = false;
  unsigned threads = 1;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--scale-gate") scale_gate = true;
    if (arg == "--full") full = true;
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    }
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }
  // Like bench_fluid_alloc/bench_vra_incremental, --threads installs the
  // shared bench knob (bench::threads_config); the epoch-stepping section
  // additionally flips epoch_barrier on for its sharded run.
  sim::set_simulation_config(bench::threads_config(threads));
  if (scale_gate) return run_scale_gate(full, threads, out_path, obs);

  bench::heading("Scale study: 12-node two-tier backbone, one day");
  std::cout << "30 titles x 120 MB @1.5 Mbps, 2 replicas; ~80 "
               "evening-peaked requests from\n9 access sites; diurnal "
               "background 10-60% of capacity; cluster 30 MB\n\n";

  TextTable table{{"Policy", "finished", "failed", "DL median (s)",
                   "DL p95 (s)", "QoS-ok %", "switches"}};
  for (const Policy policy :
       {Policy::kVra, Policy::kNearest, Policy::kRandom}) {
    const RunResult r = run(policy, obs);
    const double qos_share =
        r.finished > 0 ? 100.0 * r.qos_ok / r.finished : 0.0;
    table.add_row({policy_name(policy), std::to_string(r.finished),
                   std::to_string(r.failed),
                   TextTable::num(r.download_seconds.median(), 0),
                   TextTable::num(r.download_seconds.quantile(0.95), 0),
                   TextTable::num(qos_share, 0),
                   std::to_string(r.switches)});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: at this scale the tail (p95) separates "
               "the policies — the\nVRA's load awareness avoids the slow "
               "2 Mbps spurs when a core replica is\nreachable, while "
               "random selection keeps landing on them.\n";
  return 0;
}
