// Scale study: beyond the paper's 6-node case.
//
// The paper argues its service "grows with the network".  This bench runs
// a 12-node two-tier national backbone (3 core nodes in a 34 Mbps
// triangle, 9 access sites on 2-10 Mbps spurs), synthetic diurnal
// background traffic, a Zipf catalog with 2 replicas per title, and one
// day of diurnally-arriving requests — comparing the VRA against the
// baselines at a size the authors' testbed could not reach.
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/selection_baselines.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "net/transfer.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

struct Network {
  net::Topology topo;
  std::vector<NodeId> cores;
  std::vector<NodeId> edges;
};

Network build_network() {
  Network n;
  for (int c = 0; c < 3; ++c) {
    n.cores.push_back(n.topo.add_node("core" + std::to_string(c)));
  }
  n.topo.add_link(n.cores[0], n.cores[1], Mbps{34.0});
  n.topo.add_link(n.cores[1], n.cores[2], Mbps{34.0});
  n.topo.add_link(n.cores[2], n.cores[0], Mbps{34.0});
  for (int e = 0; e < 9; ++e) {
    const NodeId edge = n.topo.add_node("edge" + std::to_string(e));
    n.edges.push_back(edge);
    // Mixed access speeds: 2, 6, 10 Mbps.
    const double capacity = 2.0 + 4.0 * (e % 3);
    n.topo.add_link(n.cores[e % 3], edge, Mbps{capacity});
  }
  return n;
}

struct RunResult {
  SampleSet download_seconds;
  int qos_ok = 0;
  int finished = 0;
  int failed = 0;
  int switches = 0;
};

enum class Policy { kVra, kNearest, kRandom };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kVra:
      return "VRA (+50% hysteresis)";
    case Policy::kNearest:
      return "nearest-by-hops";
    case Policy::kRandom:
      return "random holder";
  }
  return "?";
}

RunResult run(Policy which) {
  const Network n = build_network();
  net::DiurnalTraffic traffic{14.0};
  for (const net::LinkInfo& info : n.topo.links()) {
    traffic.set_shape(info.id, {.capacity = info.capacity,
                                .base_fraction = 0.10,
                                .peak_fraction = 0.60});
  }
  // One hot core trunk (a transit exchange): hop-count routing keeps
  // using it; load-aware routing detours over the other two core links.
  const LinkId hot = *n.topo.find_link(n.cores[0], n.cores[1]);
  traffic.set_shape(hot, {.capacity = Mbps{34.0},
                          .base_fraction = 0.55,
                          .peak_fraction = 0.97});
  sim::Simulation sim;
  net::FluidNetwork network{n.topo, traffic};
  net::TransferManager transfers{sim, network};

  db::Database db{bench::kAdmin};
  for (std::size_t i = 0; i < n.topo.node_count(); ++i) {
    const NodeId node{static_cast<NodeId::underlying_type>(i)};
    db.register_server(node, n.topo.node_name(node), {});
  }
  for (const net::LinkInfo& info : n.topo.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  // 30 titles, 2 replicas, placed round-robin with a rank offset so
  // popular titles sit on different servers.
  std::vector<VideoId> videos;
  std::vector<db::VideoInfo> infos;
  auto view = db.limited_view(bench::kAdmin);
  for (int v = 0; v < 30; ++v) {
    const VideoId id = db.register_video("t" + std::to_string(v),
                                         MegaBytes{120.0}, Mbps{1.5});
    videos.push_back(id);
    infos.push_back(*db.full_view().video(id));
    view.add_title(NodeId{static_cast<NodeId::underlying_type>(v % 12)},
                   id);
    view.add_title(
        NodeId{static_cast<NodeId::underlying_type>((v + 5) % 12)}, id);
  }

  vra::Vra vra{n.topo, db.full_view(), db.limited_view(bench::kAdmin), {}};
  stream::VraPolicy vra_policy{vra, 0.5};
  baselines::NearestByHopsPolicy nearest{n.topo, db.full_view(),
                                         db.limited_view(bench::kAdmin)};
  baselines::RandomHolderPolicy random{n.topo, db.full_view(),
                                       db.limited_view(bench::kAdmin),
                                       Rng{4242}};
  stream::ServerSelectionPolicy* policy = nullptr;
  switch (which) {
    case Policy::kVra:
      policy = &vra_policy;
      break;
    case Policy::kNearest:
      policy = &nearest;
      break;
    case Policy::kRandom:
      policy = &random;
      break;
  }

  // One day of requests, evening-peaked, from the edge sites only.
  workload::RequestGenerator gen{videos, 1.0, n.edges};
  Rng rng{77};
  const auto requests = gen.generate_diurnal(
      from_hours(0.0), hours(24.0), 80.0 / 86400.0, 20.0, 4.0, rng);

  std::vector<std::unique_ptr<stream::Session>> sessions;
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&, request](SimTime) {
      auto session = std::make_unique<stream::Session>(
          sim, transfers, *policy, infos[request.video.value()],
          request.home, MegaBytes{30.0});
      session->start();
      sessions.push_back(std::move(session));
    });
  }
  sim.run_until(from_hours(48.0));
  snmp.stop();

  RunResult result;
  for (const auto& session : sessions) {
    const stream::SessionMetrics& m = session->metrics();
    if (m.failed || !m.finished) {
      ++result.failed;
      continue;
    }
    ++result.finished;
    result.download_seconds.add(*m.download_completed_at - m.requested_at);
    result.switches += m.server_switches;
    if (m.meets_qos_floor(Mbps{1.5})) ++result.qos_ok;
  }
  return result;
}

}  // namespace

int main() {
  bench::heading("Scale study: 12-node two-tier backbone, one day");
  std::cout << "30 titles x 120 MB @1.5 Mbps, 2 replicas; ~80 "
               "evening-peaked requests from\n9 access sites; diurnal "
               "background 10-60% of capacity; cluster 30 MB\n\n";

  TextTable table{{"Policy", "finished", "failed", "DL median (s)",
                   "DL p95 (s)", "QoS-ok %", "switches"}};
  for (const Policy policy :
       {Policy::kVra, Policy::kNearest, Policy::kRandom}) {
    const RunResult r = run(policy);
    const double qos_share =
        r.finished > 0 ? 100.0 * r.qos_ok / r.finished : 0.0;
    table.add_row({policy_name(policy), std::to_string(r.finished),
                   std::to_string(r.failed),
                   TextTable::num(r.download_seconds.median(), 0),
                   TextTable::num(r.download_seconds.quantile(0.95), 0),
                   TextTable::num(qos_share, 0),
                   std::to_string(r.switches)});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: at this scale the tail (p95) separates "
               "the policies — the\nVRA's load awareness avoids the slow "
               "2 Mbps spurs when a core replica is\nreachable, while "
               "random selection keeps landing on them.\n";
  return 0;
}
