// Admission control vs best-effort overload — the enforcement half of the
// paper's QoS goal.
//
// The offered load is swept past what the GRNET backbone can carry.  Without
// admission every request is started and all sessions degrade together; with
// the residual-bandwidth check the service sheds the excess and the admitted
// sessions keep the paper's "minimum decent" rate.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

struct RunResult {
  int offered = 0;
  int started = 0;
  int rejected = 0;
  int qos_ok = 0;  // finished sessions meeting the bitrate floor
  double mean_rate_mbps = 0.0;
};

RunResult run(bool with_admission, int request_count) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  options.dma.admission_threshold = 1'000'000;  // isolate routing effects
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};

  std::vector<VideoId> videos;
  for (int v = 0; v < 10; ++v) {
    videos.push_back(service.add_video("t" + std::to_string(v),
                                       MegaBytes{100.0}, Mbps{1.5}));
  }
  for (int v = 0; v < 10; ++v) {
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>(v % 6)}, videos[v]);
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>((v + 2) % 6)},
        videos[v]);
  }
  service.start();

  std::vector<NodeId> homes;
  for (std::size_t n = 0; n < 6; ++n) {
    homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
  }
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{11};
  const auto requests = gen.generate_count(
      from_hours(9.0), hours(2.0), static_cast<std::size_t>(request_count),
      rng);

  RunResult result;
  result.offered = request_count;
  std::vector<SessionId> ids;
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&, request](SimTime) {
      if (with_admission) {
        const auto outcome = service.request_with_admission(
            request.home, request.video, /*headroom=*/1.0);
        if (outcome.session) {
          ids.push_back(*outcome.session);
        } else {
          ++result.rejected;
        }
      } else {
        ids.push_back(service.request_at(request.home, request.video));
      }
    });
  }
  sim.run_until(from_hours(30.0));

  result.started = static_cast<int>(ids.size());
  for (const SessionId id : ids) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    if (!m.finished) continue;
    result.mean_rate_mbps += m.mean_delivered_rate.value();
    if (m.meets_qos_floor(Mbps{1.5})) ++result.qos_ok;
  }
  if (result.started > 0) result.mean_rate_mbps /= result.started;
  return result;
}

}  // namespace

int main() {
  bench::heading("Admission control vs best-effort overload");
  std::cout << "10 titles x 100 MB @1.5 Mbps, 2 replicas; requests packed "
               "into 9-11am;\nQoS floor = the encoding bitrate (no "
               "rebuffer, mean rate >= 1.5 Mbps)\n\n";

  TextTable table{{"Offered", "mode", "started", "rejected", "QoS-ok",
                   "QoS-ok %", "mean rate (Mbps)"}};
  for (const int offered : {5, 15, 30, 60}) {
    for (const bool with_admission : {false, true}) {
      const RunResult r = run(with_admission, offered);
      const double share =
          r.started > 0
              ? 100.0 * static_cast<double>(r.qos_ok) / r.started
              : 0.0;
      table.add_row({std::to_string(r.offered),
                     with_admission ? "admission" : "best-effort",
                     std::to_string(r.started),
                     std::to_string(r.rejected),
                     std::to_string(r.qos_ok), TextTable::num(share, 0),
                     TextTable::num(r.mean_rate_mbps, 2)});
    }
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: identical at light load; past the knee "
               "the best-effort\nservice starts everything and the QoS-ok "
               "share collapses, while admission\ntrades rejections for "
               "keeping the admitted sessions above the floor.\n";
  return 0;
}
