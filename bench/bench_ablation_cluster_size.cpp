// Ablation: the striping cluster size c.
//
// The paper: "It is obvious that the size of the cluster c ... plays a
// decisive part in dealing with network congestion according to this
// latest technique."  The VRA can only change servers at cluster
// boundaries, so c sets the re-routing reaction time.  A client at Athens
// starts a long title shortly before the 10am congestion shift (when the
// optimal source flips from Ioannina to Xanthi); small clusters react,
// huge clusters ride out the congestion on the stale route.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/table.h"
#include "net/transfer.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"

using namespace vod;

namespace {

struct Outcome {
  double download_seconds = 0.0;
  double startup_seconds = 0.0;
  double rebuffer_seconds = 0.0;
  int switches = 0;
  std::size_t clusters = 0;
  bool finished = false;
};

Outcome run_with_cluster(MegaBytes cluster) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  net::TransferManager transfers{sim, network};

  db::Database db{bench::kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  const VideoId movie =
      db.register_video("epic", MegaBytes{600.0}, Mbps{1.5});
  auto limited = db.limited_view(bench::kAdmin);
  limited.add_title(g.ioannina, movie);
  limited.add_title(g.xanthi, movie);

  vra::Vra vra{g.topology, db.full_view(), db.limited_view(bench::kAdmin),
               {}};
  stream::VraPolicy policy{vra};

  Outcome outcome;
  std::unique_ptr<stream::Session> session;
  sim.schedule_at(from_hours(9.9), [&](SimTime) {
    session = std::make_unique<stream::Session>(
        sim, transfers, policy, *db.full_view().video(movie), g.athens,
        cluster);
    session->start();
  });
  sim.run_until(from_hours(24.0));
  snmp.stop();

  const stream::SessionMetrics& m = session->metrics();
  outcome.finished = m.finished;
  if (m.finished) {
    outcome.download_seconds = *m.download_completed_at - m.requested_at;
  }
  outcome.startup_seconds = m.startup_delay();
  outcome.rebuffer_seconds = m.rebuffer_seconds;
  outcome.switches = m.server_switches;
  outcome.clusters = session->cluster_count();
  return outcome;
}

}  // namespace

int main() {
  bench::heading("Ablation: cluster size c vs re-routing agility");
  std::cout << "600 MB title @1.5 Mbps; client at Athens starting 9:54am;\n"
               "title held at Ioannina and Xanthi.  At 10am the Table 2\n"
               "traffic step makes the Ioannina route expensive.\n\n";

  TextTable table{{"c (MB)", "clusters", "download (s)", "startup (s)",
                   "rebuffer (s)", "switches", "finished"}};
  for (const double c : {5.0, 10.0, 25.0, 50.0, 100.0, 300.0, 600.0}) {
    const Outcome o = run_with_cluster(MegaBytes{c});
    table.add_row({TextTable::num(c, 0), std::to_string(o.clusters),
                   TextTable::num(o.download_seconds, 0),
                   TextTable::num(o.startup_seconds, 0),
                   TextTable::num(o.rebuffer_seconds, 0),
                   std::to_string(o.switches), o.finished ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: small c switches away from the congested "
               "route soon after\nthe 10am shift and finishes sooner; one "
               "giant cluster (c = title size)\ncannot re-route at all — "
               "the paper's argument for cluster-grained switching.\n"
               "(Large c also trades a huge startup delay for rebuffer-free "
               "playback, since\nplayback begins only after the first "
               "cluster is complete.)\n";
  return 0;
}
