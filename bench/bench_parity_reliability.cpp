// Reliability ablation: plain (paper) striping vs RAID-5-style parity.
//
// The paper's cyclic striping (Figure 3) spreads every title over every
// disk — which maximizes throughput but means ONE disk failure wipes the
// whole cache.  This bench quantifies that fragility and what the parity
// extension buys: titles surviving k random disk failures, the capacity
// overhead paid, and the degraded-read latency.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "storage/disk_array.h"

using namespace vod;

namespace {

storage::DiskProfile profile() {
  return storage::DiskProfile{.capacity = MegaBytes{20000.0},
                              .transfer_rate = Mbps{80.0},
                              .seek_seconds = 0.009};
}

/// Loads `titles` x 900 MB into the array; returns how many were stored.
int load_titles(storage::DiskArray& array, int titles) {
  int stored = 0;
  for (int v = 0; v < titles; ++v) {
    if (array.store(VideoId{static_cast<VideoId::underlying_type>(v)},
                    MegaBytes{900.0})) {
      ++stored;
    }
  }
  return stored;
}

/// Mean fraction of titles surviving `failures` random disk crashes,
/// averaged over trials.
double survival_fraction(storage::StripingMode mode, std::size_t disks,
                         int failures, int trials) {
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng{static_cast<std::uint64_t>(trial) * 977 + 13};
    storage::DiskArray array{disks, profile(), MegaBytes{50.0}, mode};
    const int stored = load_titles(array, 40);
    std::vector<std::size_t> order;
    for (std::size_t s = 0; s < disks; ++s) order.push_back(s);
    for (int f = 0; f < failures; ++f) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(order.size()) - 1));
      array.fail_disk(order[pick]);
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    total += static_cast<double>(array.stored_videos().size()) / stored;
  }
  return total / trials;
}

}  // namespace

int main() {
  bench::heading("Reliability: plain (paper) striping vs parity");
  std::cout << "8 disks x 20 GB per server, 40 titles x 900 MB, cluster "
               "50 MB, 200 trials per cell\n\n";

  TextTable survival{{"Disk failures", "plain survival", "parity survival"}};
  for (const int failures : {0, 1, 2, 3}) {
    survival.add_row({std::to_string(failures),
                      TextTable::num(survival_fraction(
                          storage::StripingMode::kPlain, 8, failures, 200),
                          3),
                      TextTable::num(survival_fraction(
                          storage::StripingMode::kParity, 8, failures, 200),
                          3)});
  }
  std::cout << "fraction of cached titles surviving:\n" << survival.render();

  // Capacity overhead + degraded read latency.
  storage::DiskArray plain{8, profile(), MegaBytes{50.0},
                           storage::StripingMode::kPlain};
  storage::DiskArray parity{8, profile(), MegaBytes{50.0},
                            storage::StripingMode::kParity};
  load_titles(plain, 40);
  load_titles(parity, 40);
  std::cout << "\nraw bytes per 900 MB title: plain "
            << TextTable::num(plain.total_used().value() / 40.0, 0)
            << " MB, parity "
            << TextTable::num(parity.total_used().value() / 40.0, 0)
            << " MB (overhead 1/(n-1) = "
            << TextTable::num(100.0 / 7.0, 1) << "%)\n";

  const double healthy = parity.cluster_read_seconds(VideoId{0}, 0);
  const std::size_t hot_slot = parity.placement(VideoId{0}).part_to_disk[0];
  parity.fail_disk(hot_slot);
  const double degraded = parity.cluster_read_seconds(VideoId{0}, 0);
  std::cout << "cluster read: healthy "
            << TextTable::num(healthy * 1000.0, 1) << " ms, degraded "
            << TextTable::num(degraded * 1000.0, 1)
            << " ms (reconstruction reads " << 7
            << " surviving clusters in parallel)\n";
  std::cout << "\nExpected shape: the paper's layout loses the entire "
               "cache on the first disk\nfailure; single parity makes that "
               "failure free (for a ~14% capacity tax)\nbut a second "
               "overlapping failure is still fatal to titles striped over "
               "all\ndisks — wider protection needs multi-parity or "
               "server-level replication\n(which the DMA's 'most popular' "
               "redundancy provides across the network).\n";
  return 0;
}
