// Ablation: the SNMP refresh interval.
//
// The paper picks 1-2 minutes as "a reasonable interval compromising
// between the mutation rate of network characteristics and the imposed
// overhead" — without measuring either side.  This bench does: the same
// day of sessions is replayed with refresh intervals from 30 s to 2 h,
// reporting decision quality (download time, rebuffering) against the
// monitoring overhead (polls taken).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

struct RunResult {
  double mean_download = 0.0;
  double rebuffer = 0.0;
  int finished = 0;
  std::size_t polls = 0;
};

RunResult run(double interval_seconds) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  options.snmp_interval_seconds = interval_seconds;
  options.dma.admission_threshold = 1'000'000;
  options.vra_switch_hysteresis = 0.5;
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};

  std::vector<VideoId> videos;
  for (int v = 0; v < 10; ++v) {
    videos.push_back(service.add_video("t" + std::to_string(v),
                                       MegaBytes{100.0}, Mbps{1.5}));
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>(v % 6)}, videos.back());
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>((v + 2) % 6)},
        videos.back());
  }
  service.start();

  std::vector<NodeId> homes;
  for (std::size_t n = 0; n < 6; ++n) {
    homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
  }
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{55};
  // Cluster requests around the trace's 10am and 4pm steps, where stale
  // statistics hurt the most.
  const auto morning =
      gen.generate_count(from_hours(9.5), hours(2.0), 15, rng);
  const auto afternoon =
      gen.generate_count(from_hours(15.5), hours(2.0), 15, rng);
  std::vector<workload::Request> requests = morning;
  requests.insert(requests.end(), afternoon.begin(), afternoon.end());
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&service, request](SimTime) {
      (void)service.request_at(request.home, request.video);
    });
  }
  sim.run_until(from_hours(30.0));

  RunResult result;
  result.polls = service.snmp().poll_count();
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    if (!m.finished) continue;
    ++result.finished;
    result.mean_download += *m.download_completed_at - m.requested_at;
    result.rebuffer += m.rebuffer_seconds;
  }
  if (result.finished > 0) result.mean_download /= result.finished;
  return result;
}

}  // namespace

int main() {
  bench::heading("Ablation: SNMP refresh interval (the paper's 1-2 min)");
  std::cout << "30 requests clustered around the 10am/4pm traffic steps; "
               "10 titles x 2 replicas\n\n";

  TextTable table{{"Interval", "polls/day", "finished", "mean DL (s)",
                   "rebuffer (s)"}};
  for (const double interval :
       {30.0, 90.0, 300.0, 900.0, 3600.0, 7200.0}) {
    const RunResult r = run(interval);
    table.add_row({TextTable::num(interval, 0) + " s",
                   std::to_string(static_cast<int>(86400.0 / interval)),
                   std::to_string(r.finished),
                   TextTable::num(r.mean_download, 0),
                   TextTable::num(r.rebuffer, 0)});
  }
  std::cout << table.render();
  std::cout << "\nObserved shape (a finding, not just a confirmation): "
               "quality is NOT monotone\nin freshness.  Very fresh "
               "counters (30-90 s) see every session's own flow and\n"
               "re-route eagerly; a few minutes of staleness damps that "
               "herding and performs\nbest; beyond ~15 min the picture "
               "goes stale against the trace's steps and\nquality "
               "collapses.  The paper's 1-2 minutes is safe but not "
               "optimal here —\nthe sweet spot sits near 5 minutes for "
               "this workload.\n";
  return 0;
}
