// Incremental LVN engine: cold rebuild vs. epoch-cached steady state.
//
// Two parts:
//   1. Decision parity on the paper's own workloads — Experiments A (Table
//      4, 8am) and B (Table 5, 10am) replayed under SNMP churn, asserting
//      the cached engine returns bit-for-bit the same Decision.server
//      sequence as the seed-style per-request rebuild.
//   2. A scaled backbone (24-core ring + chords, 4 access spurs per core,
//      132 links) where fewer than 10% of links change per monitoring
//      interval.  Measures steady-state select_server latency cached vs.
//      uncached; the engine must be at least 5x faster with identical
//      selections.
//
// Exits non-zero when parity or the 5x floor fails, so the harness can use
// it as a regression gate.
//
// Usage: bench_vra_incremental [--threads N]   (default: serial)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "vra/vra.h"

using namespace vod;

namespace {

// vodlint:entropy-ok(benchmark harness measures real elapsed time; timings
// are reported, never fed back into simulation state)
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One request's outcome, for the bit-for-bit comparison.
struct Outcome {
  NodeId server;
  double cost;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

// --- part 1: the paper's Experiments A and B under churn ---

bool replay_case_study(grnet::TimeOfDay t, const char* label) {
  bench::CaseDb fx{t};
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const vra::Vra cached{fx.g.topology, fx.db.full_view(),
                        fx.db.limited_view(bench::kAdmin), {}, true};
  const vra::Vra uncached{fx.g.topology, fx.db.full_view(),
                          fx.db.limited_view(bench::kAdmin), {}, false};
  auto view = fx.db.limited_view(bench::kAdmin);
  const std::vector<LinkId> links = fx.g.links_in_paper_order();

  Rng rng{20250805};
  bool ok = true;
  for (int round = 0; round < 200; ++round) {
    // SNMP rewrites one link per round; most rounds the value moves.
    const LinkId victim =
        links[static_cast<std::size_t>(rng.uniform_int(0, 6))];
    const double frac = rng.uniform(0.05, 0.95);
    const Mbps capacity = fx.g.topology.link(victim).capacity;
    view.update_link_stats(victim, Mbps{frac * capacity.value()}, frac,
                           SimTime{8.0 * 3600.0 + 90.0 * round});

    const auto a = cached.select_server(fx.g.patra, fx.movie);
    const auto b = uncached.select_server(fx.g.patra, fx.movie);
    if (a.has_value() != b.has_value() ||
        (a && (a->server != b->server || a->path.cost != b->path.cost))) {
      ok = false;
    }
  }
  std::cout << label << ": 200 churned requests, decisions "
            << (ok ? "identical" : "DIVERGED") << "; cached engine did "
            << cached.cache_stats().graph_rebuilds << " rebuilds + "
            << cached.cache_stats().graph_incremental
            << " incremental refreshes (uncached: "
            << uncached.cache_stats().graph_rebuilds << " rebuilds)\n";
  return ok;
}

// --- part 2: scaled steady state ---

struct Backbone {
  net::Topology topo;
  std::vector<NodeId> cores;
  std::vector<NodeId> edges;
};

Backbone build_backbone() {
  Backbone n;
  constexpr int kCores = 24;
  for (int c = 0; c < kCores; ++c) {
    n.cores.push_back(n.topo.add_node("core" + std::to_string(c)));
  }
  for (int c = 0; c < kCores; ++c) {  // ring
    n.topo.add_link(n.cores[c], n.cores[(c + 1) % kCores], Mbps{34.0});
  }
  for (int c = 0; c < kCores; c += 2) {  // chords
    n.topo.add_link(n.cores[c], n.cores[(c + kCores / 2) % kCores],
                    Mbps{18.0});
  }
  for (int c = 0; c < kCores; ++c) {  // 4 access spurs per core
    for (int s = 0; s < 4; ++s) {
      const NodeId edge =
          n.topo.add_node("edge" + std::to_string(c) + "_" + std::to_string(s));
      n.edges.push_back(edge);
      n.topo.add_link(n.cores[c], edge, Mbps{2.0 + 4.0 * (s % 3)});
    }
  }
  return n;
}

int run_scaled() {
  const Backbone n = build_backbone();
  db::Database db{bench::kAdmin};
  for (std::size_t i = 0; i < n.topo.node_count(); ++i) {
    const NodeId node{static_cast<NodeId::underlying_type>(i)};
    db.register_server(node, n.topo.node_name(node), {});
  }
  for (const net::LinkInfo& info : n.topo.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  const VideoId movie = db.register_video("movie", MegaBytes{900.0},
                                          Mbps{2.0});
  auto view = db.limited_view(bench::kAdmin);
  Rng rng{7};
  for (const net::LinkInfo& info : n.topo.links()) {
    const double frac = rng.uniform(0.1, 0.7);
    view.update_link_stats(info.id, Mbps{frac * info.capacity.value()}, frac,
                           SimTime{0.0});
  }
  // Replicas at six cores spread around the ring.
  for (int c = 0; c < 24; c += 4) view.add_title(n.cores[c], movie);

  const vra::Vra cached{n.topo, db.full_view(),
                        db.limited_view(bench::kAdmin), {}, true};
  const vra::Vra uncached{n.topo, db.full_view(),
                          db.limited_view(bench::kAdmin), {}, false};

  constexpr int kIntervals = 30;
  constexpr int kDirtyPerInterval = 10;   // of 132 links: 7.6% < 10%
  constexpr int kRequestsPerInterval = 400;
  const std::size_t link_count = n.topo.link_count();

  std::vector<Outcome> cached_outcomes, uncached_outcomes;
  double cached_s = 0.0, uncached_s = 0.0, cold_build_s = 0.0;

  // Cold build cost, for the headline.
  {
    const auto start = Clock::now();
    (void)cached.routing_graph();
    cold_build_s = seconds_since(start);
  }

  double t = 0.0;
  Rng churn{99};
  Rng homes{3};
  for (int interval = 0; interval < kIntervals; ++interval) {
    // The monitoring pass: <10% of links report changed counters.
    for (int d = 0; d < kDirtyPerInterval; ++d) {
      const auto raw = churn.uniform_int(
          0, static_cast<std::int64_t>(link_count) - 1);
      const LinkId link{static_cast<LinkId::underlying_type>(raw)};
      const double frac = churn.uniform(0.1, 0.9);
      const Mbps capacity = n.topo.link(link).capacity;
      view.update_link_stats(link, Mbps{frac * capacity.value()}, frac,
                             SimTime{t});
    }
    t += 90.0;

    // The request storm between two polls.
    std::vector<NodeId> round_homes;
    for (int r = 0; r < kRequestsPerInterval; ++r) {
      round_homes.push_back(n.edges[static_cast<std::size_t>(
          homes.uniform_int(0, static_cast<std::int64_t>(n.edges.size()) -
                                   1))]);
    }
    const auto run = [&](const vra::Vra& vra, std::vector<Outcome>& out) {
      const auto start = Clock::now();
      for (const NodeId home : round_homes) {
        const auto decision = vra.select_server(home, movie);
        out.push_back(decision
                          ? Outcome{decision->server, decision->path.cost}
                          : Outcome{NodeId{}, -1.0});
      }
      return seconds_since(start);
    };
    cached_s += run(cached, cached_outcomes);
    uncached_s += run(uncached, uncached_outcomes);
  }

  const bool identical = cached_outcomes == uncached_outcomes;
  const double total = kIntervals * kRequestsPerInterval;
  const double speedup = uncached_s / cached_s;
  const vra::VraCacheStats& stats = cached.cache_stats();

  TextTable table{{"metric", "uncached", "cached"}};
  table.add_row({"select_server mean (us)",
                 TextTable::num(1e6 * uncached_s / total, 2),
                 TextTable::num(1e6 * cached_s / total, 2)});
  table.add_row({"graph rebuilds",
                 std::to_string(uncached.cache_stats().graph_rebuilds),
                 std::to_string(stats.graph_rebuilds)});
  table.add_row({"incremental refreshes", "0",
                 std::to_string(stats.graph_incremental)});
  table.add_row({"edges rewritten", "-",
                 std::to_string(stats.edges_rewritten)});
  table.add_row({"graph hits", "0", std::to_string(stats.graph_hits)});
  table.add_row({"SPT hits / misses", "0 / 0",
                 std::to_string(stats.spt_hits) + " / " +
                     std::to_string(stats.spt_misses)});
  std::cout << table.render() << "\n";
  std::cout << "nodes " << n.topo.node_count() << ", links " << link_count
            << ", " << kDirtyPerInterval << " dirty links/interval ("
            << TextTable::num(100.0 * kDirtyPerInterval / link_count, 1)
            << "%), " << kRequestsPerInterval << " requests/interval, "
            << kIntervals << " intervals\n";
  std::cout << "cold graph build: " << TextTable::num(1e6 * cold_build_s, 1)
            << " us\n";
  std::cout << "decision sequences: "
            << (identical ? "bit-for-bit identical" : "DIVERGED") << "\n";
  std::cout << "steady-state speedup: " << TextTable::num(speedup, 1)
            << "x (floor: 5x)\n";

  if (!identical) {
    std::cerr << "FAIL: cached and uncached decisions diverged\n";
    return 1;
  }
  if (speedup < 5.0) {
    std::cerr << "FAIL: speedup " << speedup << " below the 5x floor\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    }
  }
  // --threads N forks the per-candidate path evaluation; decision parity
  // and the 5x cache floor must hold unchanged.  The workers/grain pairing
  // comes from the shared bench knob (bench::threads_config), not a
  // per-call-site hard-code.
  vod::sim::set_simulation_config(vod::bench::threads_config(threads));

  bench::heading("Incremental LVN engine: cached vs. cold-rebuild VRA");

  bool ok = true;
  ok &= replay_case_study(grnet::TimeOfDay::k8am,
                          "Experiment A workload (Table 4, 8am)");
  ok &= replay_case_study(grnet::TimeOfDay::k10am,
                          "Experiment B workload (Table 5, 10am)");
  std::cout << "\n";
  const int scaled = run_scaled();
  return (ok && scaled == 0) ? 0 : 1;
}
