// Fault-resilience sweep: availability and failover latency under seeded
// fault storms of increasing intensity, comparing the watchdog-only
// baseline against the full failover machinery (proactive notifications,
// service-level retries with backoff, degraded-mode routing).
//
// Gates (exit 1 on violation):
//   - zero hung sessions in every run: everything finishes or fails with
//     an explicit reason;
//   - with faults present, availability with failover enabled strictly
//     exceeds the watchdog-only baseline.
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "fault/fault_injector.h"
#include "service/report.h"
#include "service/vod_service.h"

using namespace vod;

namespace {

struct Intensity {
  int level;
  fault::FaultScheduleOptions storm;
};

struct RunResult {
  service::ResilienceReport report;
  bool reasons_ok = true;      // every failed session names a reason
  std::size_t faults_applied = 0;
};

/// One full service run on GRNET.  Three titles, two replicas each, spread
/// over Thessaloniki/Xanthi/Heraklio; requests arrive from the replica-less
/// west (Patra, Athens, Ioannina) throughout the horizon.
RunResult run_case(const Intensity& intensity, bool failover,
                   int request_count, double horizon,
                   double request_spacing, bench::ObsScope& obs) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  obs.bind_clock([&sim] { return sim.now(); });
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 60.0;
  options.dma.admission_threshold = 1'000'000;  // routing only
  if (failover) {
    options.failover.proactive = true;
    options.failover.retry_limit = 3;
    options.failover.retry_backoff_seconds = 60.0;
    options.failover.retry_backoff_factor = 2.5;
    options.degraded_stats_age_seconds =
        3.0 * options.snmp_interval_seconds;
  } else {
    options.failover.proactive = false;  // stall watchdog only
    options.failover.retry_limit = 0;
  }
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};
  // Telemetry v2 re-binds per run (series restart + registry swap): the
  // exported series cover the sweep's final cell — the worst storm with
  // failover on — while flight dumps accumulate across the whole sweep.
  // Without a v2 flag this is a no-op.
  obs.bind_registry(service.metrics());

  const NodeId replicas[3][2] = {{g.thessaloniki, g.xanthi},
                                 {g.thessaloniki, g.heraklio},
                                 {g.xanthi, g.heraklio}};
  std::vector<VideoId> movies;
  for (int v = 0; v < 3; ++v) {
    const VideoId id = service.add_video("m" + std::to_string(v),
                                         MegaBytes{60.0}, Mbps{2.0});
    service.place_initial_copy(replicas[v][0], id);
    service.place_initial_copy(replicas[v][1], id);
    movies.push_back(id);
  }
  service.start();

  const NodeId homes[] = {g.patra, g.athens, g.ioannina};
  for (int i = 0; i < request_count; ++i) {
    const NodeId home = homes[i % 3];
    const VideoId movie = movies[i % 3];
    sim.schedule_at(SimTime{5.0 + request_spacing * i},
                    [&service, home, movie](SimTime) {
                      service.request_at(home, movie);
                    });
  }

  fault::FaultInjector injector{sim, service};
  if (intensity.level > 0) {
    fault::FaultScheduleOptions storm = intensity.storm;
    storm.horizon_seconds = horizon;
    // Same seed per intensity level: both modes face the same storm.
    injector.schedule_random(storm, 1000 + intensity.level);
  }

  // Drain long enough for sessions herded onto the surviving 2 Mbps links
  // (and late service retries) to finish at their shared rates.
  sim.run_until(SimTime{horizon + 4.0 * 3600.0});

  RunResult result;
  result.report = service::build_resilience_report(service, Mbps{0.0});
  result.faults_applied = injector.trace().size();
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    if (m.failed && m.failure_reason.empty()) result.reasons_ok = false;
  }
  obs.unbind_registry();
  obs.bind_clock(nullptr);  // the simulation dies with this scope
  return result;
}

std::string latency_cell(const service::ResilienceReport& report) {
  if (report.failover_latency_seconds.count() == 0) return "-";
  return TextTable::num(report.failover_latency_seconds.median(), 1) +
         " / " +
         TextTable::num(report.failover_latency_seconds.quantile(0.95), 1);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsScope obs{argc, argv};
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int request_count = smoke ? 12 : 60;
  const double horizon = smoke ? 900.0 : 3600.0;
  const double spacing = smoke ? 60.0 : 60.0;

  bench::heading(
      "Fault resilience: watchdog-only baseline vs. proactive failover");

  std::vector<Intensity> intensities;
  intensities.push_back({0, {}});
  {
    fault::FaultScheduleOptions storm;
    storm.link_mtbf_seconds = 1800.0;
    storm.link_mttr_seconds = 240.0;
    storm.server_mtbf_seconds = 2700.0;
    storm.server_mttr_seconds = 300.0;
    intensities.push_back({1, storm});
  }
  {
    fault::FaultScheduleOptions storm;
    storm.link_mtbf_seconds = 900.0;
    storm.link_mttr_seconds = 240.0;
    storm.server_mtbf_seconds = 1200.0;
    storm.server_mttr_seconds = 300.0;
    storm.snmp_mtbf_seconds = 1500.0;
    storm.snmp_mttr_seconds = 400.0;
    intensities.push_back({2, storm});
  }
  if (smoke) {  // keep it short: the calm run and the worst storm
    intensities.erase(intensities.begin() + 1);
  }

  TextTable table{{"intensity", "mode", "faults", "requests", "finished",
                   "availability", "failover p50/p95 (s)", "proactive",
                   "stall retries", "svc retries", "degraded"}};
  bool hung_ok = true;
  bool reasons_ok = true;
  std::size_t faulty_finished_failover = 0;
  std::size_t faulty_requests_failover = 0;
  std::size_t faulty_finished_baseline = 0;
  std::size_t faulty_requests_baseline = 0;

  for (const Intensity& intensity : intensities) {
    for (const bool failover : {false, true}) {
      const RunResult run =
          run_case(intensity, failover, request_count, horizon, spacing, obs);
      const service::ResilienceReport& r = run.report;
      table.add_row({std::to_string(intensity.level),
                     failover ? "failover" : "baseline",
                     std::to_string(run.faults_applied),
                     std::to_string(r.requests),
                     std::to_string(r.finished),
                     TextTable::num(100.0 * r.availability(), 1) + "%",
                     latency_cell(r),
                     std::to_string(r.proactive_failovers),
                     std::to_string(r.stall_retries),
                     std::to_string(r.service_retries),
                     std::to_string(r.degraded_selections)});
      if (r.hung != 0) hung_ok = false;
      if (!run.reasons_ok) reasons_ok = false;
      if (intensity.level > 0) {
        if (failover) {
          faulty_finished_failover += r.finished;
          faulty_requests_failover += r.requests;
        } else {
          faulty_finished_baseline += r.finished;
          faulty_requests_baseline += r.requests;
        }
      }
    }
  }
  std::cout << table.render() << "\n";

  const double avail_failover =
      faulty_requests_failover > 0
          ? static_cast<double>(faulty_finished_failover) /
                static_cast<double>(faulty_requests_failover)
          : 0.0;
  const double avail_baseline =
      faulty_requests_baseline > 0
          ? static_cast<double>(faulty_finished_baseline) /
                static_cast<double>(faulty_requests_baseline)
          : 0.0;
  std::cout << "aggregate availability under faults: baseline "
            << TextTable::num(100.0 * avail_baseline, 2) << "%, failover "
            << TextTable::num(100.0 * avail_failover, 2) << "%\n";

  if (!hung_ok) {
    std::cout << "FAIL: a run left hung sessions\n";
    return 1;
  }
  if (!reasons_ok) {
    std::cout << "FAIL: a failed session carries no failure reason\n";
    return 1;
  }
  if (!smoke && avail_failover <= avail_baseline) {
    std::cout << "FAIL: failover availability does not beat the "
                 "watchdog-only baseline\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
