// Regenerates Table 4 — the Dijkstra step table of Experiment A.
//
// 8:00 am: a client at Patra (U2) requests a title held only at
// Thessaloniki (U4) and Xanthi (U5).  Prints the full step-by-step
// Dijkstra table in the paper's layout, the per-candidate least-cost
// paths, and the VRA decision.
//
// KNOWN PAPER DEFECT (documented in DESIGN.md/EXPERIMENTS.md): the paper's
// Table 4 reports the best U2->U4 path as U2,U1,U4 at 0.365, missing the
// relaxation through U3 that yields U2,U3,U4 at ~0.218 — and therefore
// selects Xanthi (0.315).  Correct Dijkstra flips the decision to
// Thessaloniki.  This bench prints both readings.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "routing/trace_format.h"
#include "vra/vra.h"

using namespace vod;

int main(int argc, char** argv) {
  bench::ObsScope obs{argc, argv};
  bench::heading(
      "Table 4: Dijkstra table for Experiment A (8am, client at U2)");

  bench::CaseDb fx{grnet::TimeOfDay::k8am};
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                     fx.db.limited_view(bench::kAdmin), {}};

  const auto decision = vra.select_server(fx.g.patra, fx.movie, true);
  if (!decision) {
    std::cerr << "unexpected: no decision\n";
    return 1;
  }
  const routing::Graph graph = vra.current_weighted_graph();
  std::cout << routing::format_dijkstra_trace(graph, fx.g.patra,
                                              decision->trace);

  std::cout << "\nLeast-cost paths to the candidate servers:\n";
  for (const vra::Candidate& candidate : decision->candidates) {
    std::cout << "  " << fx.g.city(candidate.server) << " ("
              << graph.node_name(candidate.server)
              << "): " << candidate.path.to_string(graph) << "  cost "
              << TextTable::num(candidate.path.cost, 4) << "\n";
  }
  std::cout << "\nVRA decision: download from " << fx.g.city(decision->server)
            << " via " << decision->path.to_string(graph) << " (cost "
            << TextTable::num(decision->path.cost, 4) << ")\n";
  std::cout
      << "\nPaper's published decision: Xanthi via U5,U6,U1,U2 at 0.315 —\n"
         "its Table 4 reports D4 = 0.365 via U2,U1,U4, missing the cheaper\n"
         "relaxation U2,U3,U4 = 0.075 + 0.1427 = 0.218 visible in its own\n"
         "Table 3.  Experiments B, C and D are arithmetically consistent.\n";
  return 0;
}
