// Regenerates Table 5 — the Dijkstra step table of Experiment B.
//
// 10:00 am, same request as Experiment A (client at Patra; title at
// Thessaloniki and Xanthi).  Morning congestion on Patra-Athens has
// shifted the weights: the VRA now reaches Thessaloniki via Ioannina at
// ~1.007 and picks it over Xanthi (~1.308), matching the paper.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "routing/trace_format.h"
#include "vra/vra.h"

using namespace vod;

int main(int argc, char** argv) {
  bench::ObsScope obs{argc, argv};
  bench::heading(
      "Table 5: Dijkstra table for Experiment B (10am, client at U2)");

  bench::CaseDb fx{grnet::TimeOfDay::k10am};
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                     fx.db.limited_view(bench::kAdmin), {}};

  const auto decision = vra.select_server(fx.g.patra, fx.movie, true);
  if (!decision) {
    std::cerr << "unexpected: no decision\n";
    return 1;
  }
  const routing::Graph graph = vra.current_weighted_graph();
  std::cout << routing::format_dijkstra_trace(graph, fx.g.patra,
                                              decision->trace);

  std::cout << "\nLeast-cost paths to the candidate servers:\n";
  for (const vra::Candidate& candidate : decision->candidates) {
    std::cout << "  " << fx.g.city(candidate.server) << " ("
              << graph.node_name(candidate.server)
              << "): " << candidate.path.to_string(graph) << "  cost "
              << TextTable::num(candidate.path.cost, 4) << "\n";
  }
  std::cout << "\nVRA decision: download from " << fx.g.city(decision->server)
            << " via " << decision->path.to_string(graph) << " (cost "
            << TextTable::num(decision->path.cost, 4) << ")\n";
  std::cout << "\nPaper's published decision: Thessaloniki via U2,U3,U4 at "
               "1.007 (ours matches within rounding).\n";
  return 0;
}
