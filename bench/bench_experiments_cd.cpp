// Regenerates Experiments C and D.
//
// 4:00 pm / 6:00 pm: a client at Athens (U1) requests a title held at
// Ioannina (U3), Thessaloniki (U4) and Xanthi (U5).  The paper reports the
// best path to each candidate and the decision (Ioannina via U3,U2,U1 both
// times); this bench prints ours next to the paper's numbers.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "vra/vra.h"

using namespace vod;

namespace {

struct PaperRow {
  const char* server;
  const char* path;
  double cost;
};

void run_experiment(const char* name, grnet::TimeOfDay t,
                    const PaperRow (&paper)[3], const char* paper_choice) {
  bench::CaseDb fx{t};
  fx.place(fx.g.ioannina);
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                     fx.db.limited_view(bench::kAdmin), {}};
  const auto decision = vra.select_server(fx.g.athens, fx.movie);
  if (!decision) {
    std::cerr << "unexpected: no decision\n";
    std::exit(1);
  }
  const routing::Graph graph = vra.current_weighted_graph();

  bench::heading(std::string("Experiment ") + name + " (" +
                 grnet::time_label(t) + ", client at U1)");
  TextTable table{{"Candidate", "our path", "our cost", "paper path",
                   "paper cost"}};
  for (const vra::Candidate& candidate : decision->candidates) {
    for (const PaperRow& row : paper) {
      if (fx.g.city(candidate.server) == row.server) {
        table.add_row({row.server, candidate.path.to_string(graph),
                       TextTable::num(candidate.path.cost, 4), row.path,
                       TextTable::num(row.cost, 4)});
      }
    }
  }
  std::cout << table.render();
  std::cout << "\nVRA decision: " << fx.g.city(decision->server) << " via "
            << decision->path.to_string(graph) << " (cost "
            << TextTable::num(decision->path.cost, 4) << ")"
            << "   [paper: " << paper_choice << "]\n";
}

}  // namespace

int main() {
  // Paper's reported per-candidate values.  Note: it prints candidate
  // paths in the server->client direction (U3,U2,U1); ours run
  // client->server (U1,U2,U3) — same route.
  const PaperRow experiment_c[3] = {
      {"Thessaloniki", "U1,U4", 1.5433},
      {"Xanthi", "U1,U6,U5", 1.274},
      {"Ioannina", "U1,U2,U3", 1.222},
  };
  run_experiment("C", grnet::TimeOfDay::k4pm, experiment_c,
                 "Ioannina via U3,U2,U1 at 1.222");

  const PaperRow experiment_d[3] = {
      {"Thessaloniki", "U1,U4", 1.4824},
      {"Xanthi", "U1,U6,U5", 1.3574},
      {"Ioannina", "U1,U2,U3", 1.236},
  };
  run_experiment("D", grnet::TimeOfDay::k6pm, experiment_d,
                 "Ioannina via U3,U2,U1 at 1.236");
  return 0;
}
