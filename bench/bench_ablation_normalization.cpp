// Ablation: the eq. (4) Normalization Constant.
//
// LV_i = bandwidth / NormalizationConstant weights how strongly a link's
// own traffic (LU = LT * LV) counts against the endpoint load term (NV) in
// the LVN.  The paper only says the constant "approaches 10"; this bench
// sweeps it and shows how the Experiment C decision and the NV/LU balance
// respond, plus the server-load extension from the paper's future work.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "vra/vra.h"

using namespace vod;

namespace {

/// Mean share of the LVN contributed by the LU term over all links.
double mean_lu_share(const grnet::CaseStudy& g,
                     const vra::LvnCalculator& calc) {
  double total = 0.0;
  int count = 0;
  for (const LinkId link : g.links_in_paper_order()) {
    const double lu = calc.link_utilization_term(link);
    const double lvn = calc.link_validation_number(link);
    if (lvn > 0.0) {
      total += lu / lvn;
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

int main() {
  bench::heading("Ablation: eq. (4) normalization constant (Experiment C)");
  std::cout << "4pm statistics; client at Athens; title at Ioannina, "
               "Thessaloniki, Xanthi.\n\n";

  TextTable table{{"NormConst", "LU share of LVN", "chosen server", "path",
                   "cost"}};
  for (const double constant : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    bench::CaseDb fx{grnet::TimeOfDay::k4pm};
    fx.place(fx.g.ioannina);
    fx.place(fx.g.thessaloniki);
    fx.place(fx.g.xanthi);
    vra::ValidationOptions options;
    options.normalization_constant = constant;
    const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                       fx.db.limited_view(bench::kAdmin), options};
    const auto stats = grnet::table2_stats(fx.g, grnet::TimeOfDay::k4pm);
    const vra::LvnCalculator calc{fx.g.topology, stats, options};
    const auto decision = vra.select_server(fx.g.athens, fx.movie);
    const routing::Graph graph = vra.current_weighted_graph();
    table.add_row({TextTable::num(constant, 0),
                   TextTable::num(mean_lu_share(fx.g, calc), 3),
                   decision ? fx.g.city(decision->server) : "-",
                   decision ? decision->path.to_string(graph) : "-",
                   decision ? TextTable::num(decision->path.cost, 3) : "-"});
  }
  std::cout << table.render();
  std::cout << "\nSmall constants let high-bandwidth links' raw traffic "
               "dominate the metric;\nlarge constants reduce the LVN to "
               "pure node load.  The paper's ~10 keeps the\ntwo terms "
               "comparable on 2-18 Mbps links.\n";

  // --- Future-work extension: server CPU/RAM load in eq. (2) ---
  bench::heading(
      "Extension: server-load term in node validation (paper future work)");
  TextTable ext{{"load weight", "Ioannina load", "chosen server", "cost"}};
  for (const double weight : {0.0, 0.25, 0.5, 1.0}) {
    bench::CaseDb fx{grnet::TimeOfDay::k4pm};
    fx.place(fx.g.ioannina);
    fx.place(fx.g.thessaloniki);
    fx.place(fx.g.xanthi);
    vra::ValidationOptions options;
    options.server_load_weight = weight;
    // Ioannina's server is pegged; everyone else idle.
    const NodeId loaded = fx.g.ioannina;
    options.server_load = [loaded](NodeId node) {
      return node == loaded ? 0.95 : 0.05;
    };
    const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                       fx.db.limited_view(bench::kAdmin), options};
    const auto decision = vra.select_server(fx.g.athens, fx.movie);
    ext.add_row({TextTable::num(weight, 2), "0.95",
                 decision ? fx.g.city(decision->server) : "-",
                 decision ? TextTable::num(decision->path.cost, 3) : "-"});
  }
  std::cout << ext.render();
  std::cout << "\nWith the machine-load term enabled, an overloaded "
               "Ioannina stops winning\nExperiment C even though its "
               "network path is cheapest.\n";
  return 0;
}
