// Ablation: prebuffer depth — startup delay vs rebuffer immunity.
//
// The paper requires "constant playback of the video between cluster
// requests" but never says how much to buffer before starting.  This
// bench sweeps the prebuffer (in clusters) for a title whose bitrate sits
// close to the bottleneck bandwidth, exposing the classic trade-off.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/table.h"
#include "net/transfer.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"

using namespace vod;

namespace {

struct Outcome {
  double startup = 0.0;
  double rebuffer_seconds = 0.0;
  int rebuffer_events = 0;
  double playback_end = 0.0;
};

Outcome run(std::size_t prebuffer_clusters) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  net::TransferManager transfers{sim, network};

  db::Database db{bench::kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  // 1.6 Mbps title over ~2 Mbps links that carry shifting background
  // traffic: right at the edge of sustainable.
  const VideoId movie =
      db.register_video("edge-case", MegaBytes{300.0}, Mbps{1.7});
  // A single holder: no alternative source, so the 10am squeeze must be
  // ridden out by the buffer.
  auto view = db.limited_view(bench::kAdmin);
  view.add_title(g.ioannina, movie);

  vra::Vra vra{g.topology, db.full_view(), db.limited_view(bench::kAdmin),
               {}};
  stream::VraPolicy policy{vra, 0.5};
  stream::SessionOptions options;
  options.prebuffer_clusters = prebuffer_clusters;

  std::unique_ptr<stream::Session> session;
  sim.schedule_at(from_hours(9.92), [&](SimTime) {
    session = std::make_unique<stream::Session>(
        sim, transfers, policy, *db.full_view().video(movie), g.athens,
        MegaBytes{20.0}, options);
    session->start();
  });
  sim.run_until(from_hours(24.0));
  snmp.stop();

  const stream::SessionMetrics& m = session->metrics();
  Outcome outcome;
  outcome.startup = m.startup_delay();
  outcome.rebuffer_seconds = m.rebuffer_seconds;
  outcome.rebuffer_events = m.rebuffer_events;
  if (m.playback_finished_at) {
    outcome.playback_end =
        *m.playback_finished_at - m.requested_at;
  }
  return outcome;
}

}  // namespace

int main() {
  bench::heading("Ablation: prebuffer depth (clusters held before play)");
  std::cout << "300 MB @1.7 Mbps from Athens at 9:55am, 20 MB clusters, "
               "single copy at Ioannina;\nthe 10am step squeezes the "
               "chosen route mid-stream.\n\n";

  TextTable table{{"Prebuffer", "startup (s)", "rebuffer events",
                   "rebuffer (s)", "viewer done at (s)"}};
  for (const std::size_t prebuffer : {1u, 2u, 3u, 5u, 8u, 15u}) {
    const Outcome o = run(prebuffer);
    table.add_row({std::to_string(prebuffer) + " clusters",
                   TextTable::num(o.startup, 0),
                   std::to_string(o.rebuffer_events),
                   TextTable::num(o.rebuffer_seconds, 0),
                   TextTable::num(o.playback_end, 0)});
  }
  std::cout << table.render();
  std::cout << "\nObserved shape: when the network cannot sustain the "
               "bitrate, prebuffer depth\nconverts rebuffer time into "
               "startup time roughly one for one — the viewer\nfinishes "
               "at the same instant regardless (the stream is download-"
               "bound) until\nfull prebuffer overshoots.  Buffering "
               "cannot create bandwidth; it only picks\nwhere the "
               "waiting happens.  Shallow buffers + re-routing (the "
               "paper's answer)\nbeat deep buffers here.\n";
  return 0;
}
