// Regenerates Figure 3 — the disk storage architecture.
//
// Prints the cyclic strip layout for both of the paper's cases (n > p and
// n < p) and measures the per-disk balance and the parallel-read speedup
// the layout buys over storing the whole title on one disk.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "storage/disk_array.h"
#include "storage/striping.h"

using namespace vod;

namespace {

void show_layout(const char* title, double video_mb, double cluster_mb,
                 std::size_t disks) {
  const auto plan = storage::plan_striping(VideoId{1}, MegaBytes{video_mb},
                                           MegaBytes{cluster_mb}, disks);
  std::cout << title << ": video " << video_mb << " MB, cluster "
            << cluster_mb << " MB, " << disks << " disks -> p = "
            << plan.part_count() << " parts\n";
  TextTable table{{"Part", "Disk", "Size (MB)"}};
  for (std::size_t part = 0; part < plan.part_count(); ++part) {
    table.add_row({std::to_string(part + 1),
                   std::to_string(plan.part_to_disk[part] + 1),
                   TextTable::num(plan.part_sizes[part].value(), 1)});
  }
  std::cout << table.render();

  const auto per_disk = plan.per_disk_bytes(disks);
  std::cout << "per-disk bytes:";
  for (std::size_t d = 0; d < disks; ++d) {
    std::cout << "  d" << (d + 1) << "="
              << TextTable::num(per_disk[d].value(), 0);
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  bench::heading("Figure 3: capacity-oriented data striping");

  // The paper's two cases.
  show_layout("Case n > p (one part per disk)", 100.0, 30.0, 8);
  show_layout("Case n < p (cyclic wrap)", 100.0, 20.0, 3);

  // Balance + aggregate throughput across realistic title sizes.
  bench::heading("Striping balance and parallel-read speedup");
  TextTable table{{"Video (MB)", "Disks", "Parts", "Max-min skew (MB)",
                   "1-disk read (s)", "striped read (s)", "speedup"}};
  const storage::DiskProfile profile{};  // 9 GB, 80 Mbps, 9 ms seek
  for (const double video_mb : {700.0, 1400.0, 4000.0}) {
    for (const std::size_t disks : {2u, 4u, 8u, 16u}) {
      const auto plan = storage::plan_striping(
          VideoId{1}, MegaBytes{video_mb}, MegaBytes{50.0}, disks);
      const auto per_disk = plan.per_disk_bytes(disks);
      double lo = 1e18, hi = 0.0, busiest = 0.0;
      for (const MegaBytes b : per_disk) {
        lo = std::min(lo, b.value());
        hi = std::max(hi, b.value());
        busiest = std::max(busiest, b.value());
      }
      // Sequential read of the whole title from one disk vs all disks
      // reading their strips in parallel (seek per strip).
      const storage::Disk one{DiskId{0}, profile};
      const double single = one.read_seconds(MegaBytes{video_mb});
      double striped = 0.0;
      for (std::size_t d = 0; d < disks; ++d) {
        double strips_on_d = 0.0;
        for (std::size_t part = 0; part < plan.part_count(); ++part) {
          if (plan.part_to_disk[part] == d) strips_on_d += 1.0;
        }
        striped = std::max(
            striped, one.read_seconds(per_disk[d]) +
                         profile.seek_seconds * std::max(0.0, strips_on_d - 1));
      }
      table.add_row({TextTable::num(video_mb, 0), std::to_string(disks),
                     std::to_string(plan.part_count()),
                     TextTable::num(hi - lo, 1), TextTable::num(single, 1),
                     TextTable::num(striped, 1),
                     TextTable::num(single / striped, 2) + "x"});
    }
  }
  std::cout << table.render();
  std::cout << "\nThe cyclic layout keeps per-disk load within one cluster "
               "of even and the\nparallel-read speedup tracks the disk "
               "count — the paper's motivation for\n\"as many disks as "
               "possible\".\n";
  return 0;
}
