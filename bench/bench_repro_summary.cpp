// Reproduction summary — the harness certifying itself.
//
// Re-validates every headline claim of the reproduction programmatically
// and prints one PASS/FAIL line each, so `bench_output.txt` carries its
// own verdict:
//   * Table 3: all 28 LVN cells within tolerance of the paper
//   * Experiments B, C, D: same winner, same route, cost within 0.02
//   * Experiment A: paper's published Xanthi cost reproduced (0.315) AND
//     the corrected Dijkstra decision (Thessaloniki @ ~0.218) — the
//     documented paper defect
//   * Table 2: the simulated SNMP data path returns the trace exactly
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "net/fluid.h"
#include "snmp/snmp_module.h"
#include "vra/vra.h"

using namespace vod;

namespace {

// vodlint:allow(shared-mutable-global: single-threaded bench harness exit
// code accumulator; no simulation code runs concurrently with it)
int failures = 0;

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  PASS  " : "  FAIL  ") << what << "\n";
  if (!ok) ++failures;
}

struct ExperimentSpec {
  const char* name;
  grnet::TimeOfDay at;
  bool client_is_athens;
  bool include_ioannina;
  const char* expected_city;
  double expected_cost;
  double tolerance;
};

void run_experiment(const ExperimentSpec& spec) {
  bench::CaseDb fx{spec.at};
  if (spec.include_ioannina) fx.place(fx.g.ioannina);
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                     fx.db.limited_view(bench::kAdmin), {}};
  const NodeId client = spec.client_is_athens ? fx.g.athens : fx.g.patra;
  const auto decision = vra.select_server(client, fx.movie);
  if (!decision) {
    check(false, std::string("experiment ") + spec.name + ": no decision");
    return;
  }
  const bool winner_ok =
      fx.g.city(decision->server) == spec.expected_city;
  const bool cost_ok =
      std::abs(decision->path.cost - spec.expected_cost) < spec.tolerance;
  check(winner_ok && cost_ok,
        std::string("experiment ") + spec.name + ": " +
            spec.expected_city + " @ " +
            TextTable::num(spec.expected_cost, 4) + " (got " +
            fx.g.city(decision->server) + " @ " +
            TextTable::num(decision->path.cost, 4) + ")");
}

}  // namespace

int main() {
  bench::heading("Reproduction summary (self-check)");

  // --- Table 3: all 28 cells ---
  {
    const grnet::CaseStudy g = grnet::build_case_study();
    int within = 0;
    double worst = 0.0;
    for (const grnet::TimeOfDay t : grnet::kAllTimes) {
      const auto stats = grnet::table2_stats(g, t);
      const vra::LvnCalculator calc{g.topology, stats};
      for (const LinkId link : g.links_in_paper_order()) {
        const double err =
            std::abs(calc.link_validation_number(link) -
                     grnet::table3_expected_lvn(g, link, t));
        worst = std::max(worst, err);
        if (err < 0.01) ++within;
      }
    }
    check(within == 28, "Table 3: 28/28 LVN cells within 0.01 (worst " +
                            TextTable::num(worst, 5) + ")");
  }

  // --- Table 2 data path ---
  {
    const grnet::CaseStudy g = grnet::build_case_study();
    const net::TraceTraffic trace = grnet::table2_trace(g);
    net::FluidNetwork network{g.topology, trace};
    sim::Simulation sim;
    db::Database db{bench::kAdmin};
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin)};
    double worst = 0.0;
    for (const grnet::TimeOfDay t : grnet::kAllTimes) {
      sim.run_until(grnet::time_of(t));
      snmp.poll_now(sim.now());
      for (const LinkId link : g.links_in_paper_order()) {
        const double reported = db.limited_view(bench::kAdmin)
                                    .link(link)
                                    .used_bandwidth.value();
        worst = std::max(
            worst, std::abs(reported -
                            grnet::table2_sample(g, link, t).used.value()));
      }
    }
    check(worst < 1e-9,
          "Table 2: trace -> network -> SNMP -> DB exact (worst " +
              TextTable::num(worst, 9) + " Mbps)");
  }

  // --- Experiments ---
  // A: the paper's OWN decision (Xanthi @ 0.315) must appear among the
  // candidates, while correct Dijkstra flips the winner.
  {
    bench::CaseDb fx{grnet::TimeOfDay::k8am};
    fx.place(fx.g.thessaloniki);
    fx.place(fx.g.xanthi);
    const vra::Vra vra{fx.g.topology, fx.db.full_view(),
                       fx.db.limited_view(bench::kAdmin), {}};
    const auto decision = vra.select_server(fx.g.patra, fx.movie);
    bool xanthi_cost_ok = false;
    for (const vra::Candidate& candidate : decision->candidates) {
      if (candidate.server == fx.g.xanthi) {
        xanthi_cost_ok = std::abs(candidate.path.cost - 0.315) < 0.005;
      }
    }
    check(xanthi_cost_ok,
          "experiment A: paper's Xanthi candidate cost 0.315 reproduced");
    check(decision->server == fx.g.thessaloniki &&
              std::abs(decision->path.cost - 0.218) < 0.005,
          "experiment A: corrected Dijkstra picks Thessaloniki @ ~0.218 "
          "(documented paper defect)");
  }
  run_experiment({"B", grnet::TimeOfDay::k10am, false, false,
                  "Thessaloniki", 1.007, 0.02});
  run_experiment(
      {"C", grnet::TimeOfDay::k4pm, true, true, "Ioannina", 1.222, 0.02});
  run_experiment(
      {"D", grnet::TimeOfDay::k6pm, true, true, "Ioannina", 1.236, 0.02});

  std::cout << "\n"
            << (failures == 0 ? "ALL CHECKS PASSED"
                              : std::to_string(failures) + " CHECK(S) FAILED")
            << "\n";
  return failures == 0 ? 0 : 1;
}
