// Micro-benchmarks (google-benchmark) for the hot algorithmic paths:
// Dijkstra scaling, LVN graph construction, DMA request processing, the
// event queue, and fluid re-allocation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dma/dma_cache.h"
#include "grnet/grnet.h"
#include "net/fluid.h"
#include "routing/dijkstra.h"
#include "sim/event_queue.h"
#include "vra/validation.h"
#include "workload/zipf.h"

using namespace vod;

namespace {

routing::Graph random_graph(std::size_t nodes, std::size_t degree,
                            std::uint64_t seed) {
  Rng rng{seed};
  routing::Graph graph;
  for (std::size_t i = 0; i < nodes; ++i) graph.add_node();
  LinkId::underlying_type next = 0;
  // Ring + random chords: connected, average degree ~2 + degree.
  for (std::size_t i = 0; i < nodes; ++i) {
    graph.add_undirected_edge(
        NodeId{static_cast<NodeId::underlying_type>(i)},
        NodeId{static_cast<NodeId::underlying_type>((i + 1) % nodes)},
        LinkId{next++}, rng.uniform(0.1, 2.0));
  }
  for (std::size_t i = 0; i < nodes * degree / 2; ++i) {
    const auto a = static_cast<NodeId::underlying_type>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const auto b = static_cast<NodeId::underlying_type>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    if (a == b) continue;
    graph.add_undirected_edge(NodeId{a}, NodeId{b}, LinkId{next++},
                              rng.uniform(0.1, 2.0));
  }
  return graph;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const routing::Graph graph = random_graph(nodes, 4, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::dijkstra(graph, NodeId{0}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Range(8, 2048)->Complexity();

void BM_DijkstraWithTrace(benchmark::State& state) {
  const routing::Graph graph = random_graph(64, 4, 42);
  for (auto _ : state) {
    routing::DijkstraTrace trace;
    benchmark::DoNotOptimize(routing::dijkstra(graph, NodeId{0}, &trace));
  }
}
BENCHMARK(BM_DijkstraWithTrace);

void BM_LvnGraphBuild(benchmark::State& state) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const auto stats = grnet::table2_stats(g, grnet::TimeOfDay::k4pm);
  const vra::LvnCalculator calc{g.topology, stats};
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.build_weighted_graph());
  }
}
BENCHMARK(BM_LvnGraphBuild);

void BM_DmaOnRequest(benchmark::State& state) {
  storage::DiskArray disks{8, storage::DiskProfile{}, MegaBytes{50.0}};
  dma::DmaCache cache{disks};
  const workload::ZipfDistribution zipf{200, 1.0};
  Rng rng{1};
  for (auto _ : state) {
    const auto rank = zipf.sample(rng);
    benchmark::DoNotOptimize(cache.on_request(
        VideoId{static_cast<VideoId::underlying_type>(rank)},
        MegaBytes{900.0}));
  }
}
BENCHMARK(BM_DmaOnRequest);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(SimTime{static_cast<double>(i % 97)}, [](SimTime) {});
    }
    while (queue.run_next()) {
    }
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_FluidReallocate(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  net::Topology topo;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i)));
  }
  std::vector<LinkId> links;
  for (int i = 0; i < 7; ++i) {
    links.push_back(topo.add_link(nodes[i], nodes[i + 1], Mbps{10.0}));
  }
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  Rng rng{3};
  std::vector<FlowId> ids;
  for (std::size_t f = 0; f + 1 < flows; ++f) {
    const auto first = static_cast<std::size_t>(rng.uniform_int(0, 6));
    const auto last = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(first), 6));
    ids.push_back(network.start_flow(
        std::vector<LinkId>(links.begin() + first, links.begin() + last + 1),
        Mbps{rng.uniform(0.5, 8.0)}));
  }
  for (auto _ : state) {
    // Adding/removing one flow forces a full re-allocation.
    const FlowId id = network.start_flow({links[0]}, Mbps{1.0});
    network.stop_flow(id);
  }
}
BENCHMARK(BM_FluidReallocate)->Arg(4)->Arg(16)->Arg(64);

void BM_ZipfSample(benchmark::State& state) {
  const workload::ZipfDistribution zipf{10000, 1.0};
  Rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
