// Shared scaffolding for the table-regeneration benches.
#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "db/database.h"
#include "grnet/grnet.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace vod::bench {

inline const db::AdminCredential kAdmin{"bench-admin"};

/// The one parallelism knob (DESIGN.md §15): `--threads N` maps to this
/// stepping config instead of every bench hard-coding its own
/// min_fork_items.  N > 1 drops the fork grain to 1 so even paper-sized
/// inner loops actually fork (production keeps ParallelConfig's 4096
/// serial-guard default); install with sim::set_simulation_config and
/// restore the serial default with sim::set_simulation_config({}).
inline sim::SimulationConfig threads_config(unsigned threads,
                                            bool epoch_barrier = false) {
  sim::SimulationConfig config;
  config.parallel.workers = threads == 0 ? 1 : threads;
  if (config.parallel.workers > 1) config.parallel.min_fork_items = 1;
  config.epoch_barrier = epoch_barrier;
  return config;
}

/// The case-study database: all six servers, all seven links, one movie,
/// Table 2 statistics for the chosen instant.
struct CaseDb {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  explicit CaseDb(grnet::TimeOfDay t) {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample = grnet::table2_sample(g, link, t);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(t));
    }
  }

  void place(NodeId server) {
    db.limited_view(kAdmin).add_title(server, movie);
  }
};

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Observability plumbing shared by the benches:
///
///   --trace-out FILE    record a Chrome trace (Perfetto-loadable) and
///                       write it to FILE on exit
///   --metrics-out FILE  write a metrics-snapshot CSV via write_metrics()
///   --profile           enable the wall-clock profiler; its CSV goes to
///                       stderr on exit (timings are observe-only, so the
///                       bench's stdout stays byte-identical either way)
///
/// Construct at the top of main(); the destructor flushes the trace and
/// clears the global sink.  Benches that drive a Simulation should call
/// bind_clock() so events carry simulated timestamps (the default clock
/// stamps everything t=0, which is correct for the pure-VRA table benches).
class ObsScope {
 public:
  ObsScope(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace-out" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (arg == "--metrics-out" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (arg == "--profile") {
        obs::Profiler::instance().set_enabled(true);
        profile_ = true;
      }
    }
    if (!trace_path_.empty()) obs::set_trace_sink(&recorder_);
  }

  ~ObsScope() {
    if (!trace_path_.empty()) {
      obs::set_trace_sink(nullptr);
      std::ofstream out{trace_path_};
      out << recorder_.to_chrome_json();
      std::cerr << "trace: " << recorder_.events().size() << " event(s) from "
                << recorder_.subsystem_count() << " subsystem(s) -> "
                << trace_path_ << "\n";
    }
    if (profile_) {
      std::cerr << obs::Profiler::instance().report_csv();
      obs::Profiler::instance().set_enabled(false);
      obs::Profiler::instance().reset();
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  /// Wire event timestamps to a simulation clock (or any SimTime source).
  void bind_clock(std::function<SimTime()> clock) {
    recorder_.set_clock(std::move(clock));
  }

  /// Writes the snapshot CSV to --metrics-out (no-op when the flag was not
  /// given).  Call once, after the run.
  void write_metrics(const obs::MetricsSnapshot& snapshot) {
    if (metrics_path_.empty()) return;
    std::ofstream out{metrics_path_};
    out << snapshot.to_csv();
    std::cerr << "metrics: " << snapshot.scalars().size() << " scalar(s) -> "
              << metrics_path_ << "\n";
  }

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] obs::TraceRecorder& recorder() { return recorder_; }

 private:
  obs::TraceRecorder recorder_;
  std::string trace_path_;
  std::string metrics_path_;
  bool profile_ = false;
};

}  // namespace vod::bench
