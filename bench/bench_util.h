// Shared scaffolding for the table-regeneration benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "grnet/grnet.h"
#include "net/topology.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace vod::bench {

inline const db::AdminCredential kAdmin{"bench-admin"};

/// The one parallelism knob (DESIGN.md §15): `--threads N` maps to this
/// stepping config instead of every bench hard-coding its own
/// min_fork_items.  N > 1 drops the fork grain to 1 so even paper-sized
/// inner loops actually fork (production keeps ParallelConfig's 4096
/// serial-guard default); install with sim::set_simulation_config and
/// restore the serial default with sim::set_simulation_config({}).
inline sim::SimulationConfig threads_config(unsigned threads,
                                            bool epoch_barrier = false) {
  sim::SimulationConfig config;
  config.parallel.workers = threads == 0 ? 1 : threads;
  if (config.parallel.workers > 1) config.parallel.min_fork_items = 1;
  config.epoch_barrier = epoch_barrier;
  return config;
}

/// The case-study database: all six servers, all seven links, one movie,
/// Table 2 statistics for the chosen instant.
struct CaseDb {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  explicit CaseDb(grnet::TimeOfDay t) {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample = grnet::table2_sample(g, link, t);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(t));
    }
  }

  void place(NodeId server) {
    db.limited_view(kAdmin).add_title(server, movie);
  }
};

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Observability plumbing shared by the benches:
///
///   --trace-out FILE      record a Chrome trace (Perfetto-loadable) and
///                         write it to FILE on exit
///   --metrics-out FILE    write a metrics-snapshot CSV via write_metrics()
///   --profile             enable the wall-clock profiler; its CSV goes to
///                         stderr on exit (timings are observe-only, so the
///                         bench's stdout stays byte-identical either way)
///
/// Telemetry v2 (DESIGN.md §16) — all observe-only, all sim-time:
///
///   --series-out FILE     sample the bound registry on the series cadence
///                         and write the series on exit (.json = JSON,
///                         anything else = CSV)
///   --series-cadence S    sim-seconds between samples (default 30)
///   --flight-out PREFIX   install the always-on flight recorder; anomaly
///                         dumps go to PREFIX<seq>.json
///
/// Construct at the top of main(); the destructor flushes everything and
/// clears every global sink.  Benches that drive a Simulation should call
/// bind_clock() so events carry simulated timestamps, and — for v2 —
/// bind_registry() on the observed run's service registry.  SLO specs
/// added with add_slo() are evaluated on the series cadence but only when
/// v2 is active (a flag was given), so default runs stay byte-identical.
class ObsScope {
 public:
  ObsScope(int argc, char** argv) {
    double cadence_s = 30.0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace-out" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (arg == "--metrics-out" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (arg == "--series-out" && i + 1 < argc) {
        series_path_ = argv[++i];
      } else if (arg == "--series-cadence" && i + 1 < argc) {
        cadence_s = std::atof(argv[++i]);
      } else if (arg == "--flight-out" && i + 1 < argc) {
        flight_prefix_ = argv[++i];
      } else if (arg == "--profile") {
        obs::Profiler::instance().set_enabled(true);
        profile_ = true;
      }
    }
    if (!trace_path_.empty()) obs::set_trace_sink(&recorder_);
    // The v2 recorders exist from here but install as global sinks only at
    // bind_registry(): multi-run benches (bench_qos baseline vs tiered)
    // observe exactly the bound run, not the warm-up sibling.
    if (v2_active()) {
      obs::SeriesOptions series_options;
      if (cadence_s > 0.0) series_options.cadence = Duration{cadence_s};
      series_ = std::make_unique<obs::TimeSeriesRecorder>(series_options);
    }
    if (!flight_prefix_.empty()) {
      obs::FlightOptions flight_options;
      flight_options.dump_path_prefix = flight_prefix_;
      flight_ = std::make_unique<obs::FlightRecorder>(flight_options);
    }
  }

  ~ObsScope() {
    if (series_) {
      obs::set_series_sink(nullptr);
      if (!series_path_.empty()) {
        const bool json = series_path_.size() >= 5 &&
                          series_path_.compare(series_path_.size() - 5, 5,
                                               ".json") == 0;
        std::ofstream out{series_path_};
        out << (json ? series_->to_json() : series_->to_csv());
        std::cerr << "series: " << series_->series().size()
                  << " series, " << series_->sample_count()
                  << " sample tick(s) -> " << series_path_ << "\n";
      }
    }
    if (flight_) {
      obs::set_flight_recorder(nullptr);
      std::cerr << "flight: " << flight_->dump_count() << " dump(s), "
                << flight_->suppressed_count() << " suppressed -> "
                << flight_prefix_ << "<seq>.json\n";
    }
    if (!trace_path_.empty()) {
      obs::set_trace_sink(nullptr);
      std::ofstream out{trace_path_};
      out << recorder_.to_chrome_json();
      std::cerr << "trace: " << recorder_.events().size() << " event(s) from "
                << recorder_.subsystem_count() << " subsystem(s) -> "
                << trace_path_ << "\n";
    }
    if (profile_) {
      std::cerr << obs::Profiler::instance().report_csv();
      obs::Profiler::instance().set_enabled(false);
      obs::Profiler::instance().reset();
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  /// Wire event timestamps to a simulation clock (or any SimTime source).
  /// Also feeds the flight recorder's ring and dump clock.
  void bind_clock(std::function<SimTime()> clock) {
    if (flight_) flight_->set_clock(clock);
    recorder_.set_clock(std::move(clock));
  }

  /// Activate the v2 subsystems on the observed run's registry: the
  /// series sampler restarts its grid and snapshots it each tick, SLO
  /// specs evaluate against it (breach counters registered into it),
  /// flight dumps embed it — and the global sinks install so the sim loop
  /// and the anomaly triggers see them.  Also stamps the active stepping
  /// config into the flight black box.  No-op when v2 is off; call
  /// unbind_registry() before the run's service is destroyed.
  void bind_registry(obs::MetricsRegistry& registry) {
    if (series_) {
      series_->restart();
      series_->bind_registry(&registry);
      if (!pending_slos_.empty()) {
        slo_ = std::make_unique<obs::SloMonitor>(&registry);
        for (obs::SloSpec& spec : pending_slos_) slo_->add(std::move(spec));
        pending_slos_.clear();
        series_->set_on_sample(
            [this](SimTime at, const obs::MetricsSnapshot& snap) {
              slo_->evaluate(at, snap);
            });
      }
      obs::set_series_sink(series_.get());
    }
    if (flight_) {
      flight_->bind_registry(&registry);
      refresh_flight_config();
      obs::set_flight_recorder(flight_.get());
    }
  }

  /// Detach the v2 subsystems from a registry about to be destroyed and
  /// uninstall the global sinks.
  void unbind_registry() {
    if (series_) {
      obs::set_series_sink(nullptr);
      series_->bind_registry(nullptr);
      series_->set_on_sample({});
    }
    slo_.reset();
    if (flight_) {
      obs::set_flight_recorder(nullptr);
      flight_->bind_registry(nullptr);
    }
  }

  /// Queue an SLO spec; it becomes live at the next bind_registry().
  /// Inert when v2 is off, so gate runs stay byte-identical by default.
  void add_slo(obs::SloSpec spec) {
    if (!v2_active()) return;
    pending_slos_.push_back(std::move(spec));
  }

  /// Mirrors the active stepping config (the one sim knob) into the flight
  /// dump's config block; benches may add their own entries on top.
  void refresh_flight_config() {
    if (!flight_) return;
    const sim::SimulationConfig& config = sim::simulation_config();
    flight_->set_config("parallel.workers",
                        std::to_string(config.parallel.workers));
    flight_->set_config("parallel.min_fork_items",
                        std::to_string(config.parallel.min_fork_items));
    flight_->set_config("epoch_barrier",
                        config.epoch_barrier ? "true" : "false");
    flight_->set_config("epoch_shards", std::to_string(config.epoch_shards));
  }

  /// Writes the snapshot CSV to --metrics-out (no-op when the flag was not
  /// given).  Call once, after the run.
  void write_metrics(const obs::MetricsSnapshot& snapshot) {
    if (metrics_path_.empty()) return;
    std::ofstream out{metrics_path_};
    out << snapshot.to_csv();
    std::cerr << "metrics: " << snapshot.scalars().size() << " scalar(s) -> "
              << metrics_path_ << "\n";
  }

  /// Telemetry v2 is on when any of its flags was given.
  [[nodiscard]] bool v2_active() const {
    return !series_path_.empty() || !flight_prefix_.empty();
  }

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] obs::TraceRecorder& recorder() { return recorder_; }
  [[nodiscard]] obs::TimeSeriesRecorder* series() { return series_.get(); }
  [[nodiscard]] obs::SloMonitor* slo() { return slo_.get(); }
  [[nodiscard]] obs::FlightRecorder* flight() { return flight_.get(); }

 private:
  obs::TraceRecorder recorder_;
  std::unique_ptr<obs::TimeSeriesRecorder> series_;
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::vector<obs::SloSpec> pending_slos_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string series_path_;
  std::string flight_prefix_;
  bool profile_ = false;
};

}  // namespace vod::bench
