// Shared scaffolding for the table-regeneration benches.
#pragma once

#include <iostream>
#include <string>

#include "db/database.h"
#include "grnet/grnet.h"
#include "net/topology.h"

namespace vod::bench {

inline const db::AdminCredential kAdmin{"bench-admin"};

/// The case-study database: all six servers, all seven links, one movie,
/// Table 2 statistics for the chosen instant.
struct CaseDb {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  explicit CaseDb(grnet::TimeOfDay t) {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample = grnet::table2_sample(g, link, t);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(t));
    }
  }

  void place(NodeId server) {
    db.limited_view(kAdmin).add_title(server, movie);
  }
};

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace vod::bench
