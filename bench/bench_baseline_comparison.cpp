// Server-selection policy comparison — the evaluation the paper argues
// qualitatively ("faster, at every moment") but never measures.
//
// A day of Zipf requests is replayed on the GRNET backbone under the Table
// 2 background traffic, once per policy: the paper's VRA (re-evaluated per
// cluster), VRA-once (no mid-stream re-routing), nearest-by-hops, and
// random holder.  Reported per policy: mean download time, mean startup
// delay, rebuffer time, server switches, and failures.
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/selection_baselines.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "net/transfer.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

struct RunResult {
  double mean_download = 0.0;
  double mean_startup = 0.0;
  double rebuffer_seconds = 0.0;
  int switches = 0;
  int failures = 0;
  int completed = 0;
};

enum class PolicyKind { kVra, kVraHysteresis, kVraSelfAccounting, kVraOnce, kNearest, kRandom };

const char* kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kVra:
      return "VRA (per-cluster)";
    case PolicyKind::kVraHysteresis:
      return "VRA + 50% hysteresis";
    case PolicyKind::kVraSelfAccounting:
      return "VRA, bg-only SNMP";
    case PolicyKind::kVraOnce:
      return "VRA once (static)";
    case PolicyKind::kNearest:
      return "nearest-by-hops";
    case PolicyKind::kRandom:
      return "random holder";
  }
  return "?";
}

RunResult run_policy(PolicyKind kind) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  net::TransferManager transfers{sim, network};

  db::Database db{bench::kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  // The self-accounting variant reports only background traffic, removing
  // the own-flow feedback that makes the plain per-cluster VRA oscillate.
  if (kind == PolicyKind::kVraSelfAccounting) {
    snmp.set_count_vod_flows(false);
  }
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  // Catalog: 20 titles, each replicated on two servers spread round-robin.
  std::vector<VideoId> videos;
  std::vector<db::VideoInfo> infos;
  auto limited = db.limited_view(bench::kAdmin);
  for (int v = 0; v < 20; ++v) {
    const VideoId id = db.register_video("t" + std::to_string(v),
                                         MegaBytes{100.0}, Mbps{1.5});
    videos.push_back(id);
    infos.push_back(*db.full_view().video(id));
    limited.add_title(NodeId{static_cast<NodeId::underlying_type>(v % 6)},
                      id);
    limited.add_title(
        NodeId{static_cast<NodeId::underlying_type>((v + 3) % 6)}, id);
  }

  // The policy under test.
  vra::Vra vra{g.topology, db.full_view(), db.limited_view(bench::kAdmin),
               {}};
  stream::VraPolicy vra_policy{vra};
  stream::VraPolicy vra_hysteresis{vra, 0.5};
  baselines::StaticOncePolicy vra_once{vra_policy};
  baselines::NearestByHopsPolicy nearest{g.topology, db.full_view(),
                                         db.limited_view(bench::kAdmin)};
  baselines::RandomHolderPolicy random{g.topology, db.full_view(),
                                       db.limited_view(bench::kAdmin),
                                       Rng{99}};
  stream::ServerSelectionPolicy* policy = nullptr;
  switch (kind) {
    case PolicyKind::kVra:
      policy = &vra_policy;
      break;
    case PolicyKind::kVraHysteresis:
      policy = &vra_hysteresis;
      break;
    case PolicyKind::kVraSelfAccounting:
      policy = &vra_policy;
      break;
    case PolicyKind::kVraOnce:
      policy = &vra_once;
      break;
    case PolicyKind::kNearest:
      policy = &nearest;
      break;
    case PolicyKind::kRandom:
      policy = &random;
      break;
  }

  // 30 requests between 8am and 6pm, same schedule for every policy.
  std::vector<NodeId> homes;
  for (std::size_t n = 0; n < 6; ++n) {
    homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
  }
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{7};
  const auto requests =
      gen.generate_count(from_hours(8.0), hours(10.0), 30, rng);

  std::vector<std::unique_ptr<stream::Session>> sessions;
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&, request](SimTime) {
      auto session = std::make_unique<stream::Session>(
          sim, transfers, *policy, infos[request.video.value()],
          request.home, MegaBytes{25.0});
      session->start();
      sessions.push_back(std::move(session));
    });
  }
  sim.run_until(from_hours(40.0));
  snmp.stop();

  RunResult result;
  for (const auto& session : sessions) {
    const stream::SessionMetrics& m = session->metrics();
    if (m.failed || !m.finished) {
      ++result.failures;
      continue;
    }
    ++result.completed;
    result.mean_download +=
        *m.download_completed_at - m.requested_at;
    result.mean_startup += m.startup_delay();
    result.rebuffer_seconds += m.rebuffer_seconds;
    result.switches += m.server_switches;
  }
  if (result.completed > 0) {
    result.mean_download /= result.completed;
    result.mean_startup /= result.completed;
  }
  return result;
}

}  // namespace

int main() {
  bench::heading(
      "Policy comparison: VRA vs baselines (GRNET day, 30 sessions)");
  std::cout << "20 titles x 100 MB @1.5 Mbps, 2 replicas each, cluster 25 "
               "MB, Table 2 background traffic\n\n";

  TextTable table{{"Policy", "mean DL (s)", "mean startup (s)",
                   "rebuffer (s)", "switches", "failures"}};
  for (const PolicyKind kind :
       {PolicyKind::kVra, PolicyKind::kVraHysteresis,
        PolicyKind::kVraSelfAccounting, PolicyKind::kVraOnce,
        PolicyKind::kNearest, PolicyKind::kRandom}) {
    const RunResult r = run_policy(kind);
    table.add_row({kind_name(kind), TextTable::num(r.mean_download, 1),
                   TextTable::num(r.mean_startup, 1),
                   TextTable::num(r.rebuffer_seconds, 1),
                   std::to_string(r.switches),
                   std::to_string(r.failures)});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: the VRA family beats random selection "
               "outright.  Because the\nSNMP counters include a session's "
               "own flow, the zero-hysteresis per-cluster\nVRA (the "
               "paper's exact algorithm) oscillates between replicas and "
               "pays for it;\na small switch margin recovers the benefit "
               "of re-evaluation (see also the\ncluster-size ablation, "
               "where re-routing wins under mid-day congestion steps).\n";
  return 0;
}
