// Regenerates Figure 6 — the GRNET backbone topology — as a link
// inventory and adjacency listing (the figure itself is a map).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace vod;

int main() {
  bench::heading("Figure 6: GRNET backbone (as data)");

  const grnet::CaseStudy g = grnet::build_case_study();

  TextTable nodes{{"Node", "City", "Degree", "Access bandwidth"}};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    Mbps access{0.0};
    for (const LinkId link : g.topology.links_adjacent_to(node)) {
      access += g.topology.link(link).capacity;
    }
    nodes.add_row({g.topology.node_name(node), g.city(node),
                   std::to_string(g.topology.links_adjacent_to(node).size()),
                   TextTable::num(access.value(), 0) + " Mbps"});
  }
  std::cout << nodes.render() << "\n";

  TextTable links{{"Link", "Endpoints", "Capacity"}};
  for (const LinkId id : g.links_in_paper_order()) {
    const net::LinkInfo& info = g.topology.link(id);
    links.add_row({info.name,
                   g.topology.node_name(info.a) + " - " +
                       g.topology.node_name(info.b),
                   TextTable::num(info.capacity.value(), 0) + " Mbps"});
  }
  std::cout << links.render();
  std::cout << "\n6 nodes, 7 links; every node hosts a video server.\n";
  return 0;
}
