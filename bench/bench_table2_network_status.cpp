// Regenerates Table 2 — "The Network status".
//
// The GRNET backbone is simulated for a full day with the paper's SNMP
// counters as the background-traffic trace; the SNMP statistics module
// polls every 90 s into the limited-access database, and the table is read
// back from the database at the paper's four instants, exactly the data
// path the deployed service used.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/table.h"
#include "net/fluid.h"
#include "sim/simulation.h"
#include "snmp/snmp_module.h"

using namespace vod;

int main() {
  bench::heading("Table 2: The Network status (regenerated)");

  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  net::FluidNetwork network{g.topology, trace};
  sim::Simulation sim;

  db::Database db{bench::kAdmin};
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(bench::kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();

  // Drive the simulated day, snapshotting the database at each instant.
  struct Snapshot {
    double used[7];
    double util[7];
  };
  Snapshot snapshots[4];
  for (const grnet::TimeOfDay t : grnet::kAllTimes) {
    sim.run_until(grnet::time_of(t));
    snmp.poll_now(grnet::time_of(t));
    const auto view = db.limited_view(bench::kAdmin);
    const auto links = g.links_in_paper_order();
    auto& snap = snapshots[static_cast<int>(t)];
    for (std::size_t row = 0; row < links.size(); ++row) {
      const db::LinkRecord& record = view.link(links[row]);
      snap.used[row] = record.used_bandwidth.value();
      snap.util[row] = record.utilization;
    }
  }

  TextTable table{{"Link", "8am", "10am", "4pm", "6pm"}};
  const auto links = g.links_in_paper_order();
  for (std::size_t row = 0; row < links.size(); ++row) {
    const net::LinkInfo& info = g.topology.link(links[row]);
    std::vector<std::string> cells{
        info.name + " (" + TextTable::num(info.capacity.value(), 0) +
        "Mb)"};
    for (int t = 0; t < 4; ++t) {
      std::ostringstream cell;
      cell << TextTable::num(snapshots[t].used[row], 4) << " Mbps / "
           << TextTable::num(snapshots[t].util[row] * 100.0, 2) << "%";
      cells.push_back(cell.str());
    }
    table.add_row(cells);
  }
  std::cout << table.render();

  // Cross-check against the paper's printed cells.
  double worst = 0.0;
  for (const grnet::TimeOfDay t : grnet::kAllTimes) {
    for (std::size_t row = 0; row < links.size(); ++row) {
      const auto sample = grnet::table2_sample(g, links[row], t);
      worst = std::max(worst,
                       std::abs(snapshots[static_cast<int>(t)].used[row] -
                                sample.used.value()));
    }
  }
  std::cout << "\nMax |simulated - paper| used bandwidth: "
            << TextTable::num(worst, 6) << " Mbps"
            << (worst < 1e-6 ? "  [exact]" : "") << "\n";
  std::cout << "SNMP polls during the simulated day: " << snmp.poll_count()
            << " (90 s interval)\n";
  return 0;
}
