// Request coalescing (batching) — the service-aggregation idea of the
// paper's refs [10]/[14], measured.
//
// An evening burst of Zipf requests hits GRNET; with a batching window,
// near-simultaneous requests for a popular title at one site share a
// stream.  Reported per window: streams actually opened, requests
// coalesced, and the network bytes moved.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

using namespace vod;

namespace {

struct RunResult {
  std::size_t requests = 0;
  std::size_t streams = 0;
  std::size_t coalesced = 0;
  double network_mb = 0.0;  // bytes moved over backbone links
};

RunResult run(double window_seconds) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  options.dma.admission_threshold = 1'000'000;  // isolate batching
  options.coalesce_window_seconds = window_seconds;
  options.vra_switch_hysteresis = 0.5;
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};

  std::vector<VideoId> videos;
  for (int v = 0; v < 8; ++v) {
    videos.push_back(service.add_video("t" + std::to_string(v),
                                       MegaBytes{200.0}, Mbps{1.5}));
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>(v % 3 * 2)},
        videos.back());
  }
  service.start();

  // A tight evening burst: 60 requests in 30 minutes from 6 sites.
  std::vector<NodeId> homes;
  for (std::size_t n = 0; n < 6; ++n) {
    homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
  }
  workload::RequestGenerator gen{videos, 1.2, homes};
  Rng rng{31337};
  const auto requests =
      gen.generate_count(from_hours(20.0), Duration{1800.0}, 60, rng);
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&service, request](SimTime) {
      (void)service.request_at(request.home, request.video);
    });
  }
  sim.run_until(from_hours(30.0));

  RunResult result;
  result.requests = requests.size();
  result.streams = service.session_ids().size();
  result.coalesced = service.coalesced_count();
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    if (!m.finished) continue;
    const NodeId home = service.session_home(id);
    // Bytes crossed the backbone only when the source was remote.
    for (const NodeId source : m.cluster_sources) {
      if (source != home) result.network_mb += 25.0;
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::heading("Request coalescing: streams and bytes vs batch window");
  std::cout << "60 requests in 30 evening minutes, 8 titles x 200 MB, "
               "Zipf 1.2, 6 sites\n\n";

  TextTable table{{"Window (s)", "requests", "streams opened", "coalesced",
                   "backbone MB"}};
  for (const double window : {0.0, 30.0, 120.0, 600.0}) {
    const RunResult r = run(window);
    table.add_row({TextTable::num(window, 0), std::to_string(r.requests),
                   std::to_string(r.streams),
                   std::to_string(r.coalesced),
                   TextTable::num(r.network_mb, 0)});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: larger windows fold more of the burst "
               "into shared streams,\ncutting both stream count and "
               "backbone bytes — the multicast-style gain the\npaper's "
               "adaptive-VoD references pursue, here without any network "
               "support.\n";
  return 0;
}
