// Emergent replication — "the idea that implements the distributed
// feature of the VoD service".
//
// The paper argues that per-server DMA caches, each reacting only to its
// local request mix, collectively replicate popular titles across the
// network.  A day of Zipf requests on GRNET shows exactly that: replica
// count grows with popularity rank, hit rates climb, and origin egress
// falls.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

using namespace vod;

int main() {
  bench::heading(
      "DMA emergence: popularity-driven replication across servers");

  const grnet::CaseStudy g = grnet::build_case_study();
  const net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  options.dma.admission_threshold = 2;  // cache after the third request
  options.vra_switch_hysteresis = 0.5;
  // Small caches force real competition: each server fits ~6 titles —
  // except the origin (Athens), which holds the whole catalog.
  options.server.disk_count = 4;
  options.server.disk_profile.capacity = MegaBytes{400.0};
  service::ServerSetup origin_setup;
  origin_setup.disk_count = 8;
  origin_setup.disk_profile.capacity = MegaBytes{2000.0};
  options.server_overrides[g.athens] = origin_setup;
  service::VodService service{sim, g.topology, network, options,
                              bench::kAdmin};

  // 20 titles, all seeded only at Athens (the origin).
  std::vector<VideoId> videos;
  for (int v = 0; v < 20; ++v) {
    videos.push_back(service.add_video("t" + std::to_string(v),
                                       MegaBytes{250.0}, Mbps{1.5}));
    service.place_initial_copy(g.athens, videos.back());
  }
  service.start();

  std::vector<NodeId> homes;
  for (std::size_t n = 0; n < 6; ++n) {
    homes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
  }
  workload::RequestGenerator gen{videos, 1.1, homes};
  Rng rng{2026};
  const auto requests =
      gen.generate_count(from_hours(8.0), hours(12.0), 400, rng);
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&service, request](SimTime) {
      (void)service.request_at(request.home, request.video);
    });
  }
  sim.run_until(from_hours(30.0));

  TextTable table{{"Rank", "title", "requests", "replicas", "servers"}};
  auto view = service.admin_view();
  int replicated = 0;
  for (std::size_t rank = 0; rank < videos.size(); ++rank) {
    const VideoId video = videos[rank];
    std::uint64_t demand = 0;
    for (const NodeId home : homes) {
      demand += service.dma_cache(home).points(video);
    }
    const auto holders =
        service.database().full_view().servers_with_title(video);
    std::string where;
    for (const NodeId holder : holders) {
      if (!where.empty()) where += ' ';
      where += g.topology.node_name(holder);
    }
    if (holders.size() > 1) ++replicated;
    if (rank < 8 || rank >= videos.size() - 2) {
      table.add_row({std::to_string(rank), "t" + std::to_string(rank),
                     std::to_string(demand),
                     std::to_string(holders.size()), where});
    }
  }
  std::cout << table.render();
  std::cout << "(middle ranks elided)\n\n";

  int hits = 0;
  int total = 0;
  for (const NodeId home : homes) {
    hits += static_cast<int>(service.dma_cache(home).hit_count());
    total += static_cast<int>(service.dma_cache(home).request_count());
  }
  std::cout << "aggregate DMA hit rate over the day: "
            << TextTable::num(100.0 * hits / total, 1) << "% of " << total
            << " requests\n";
  std::cout << "titles replicated beyond the origin: " << replicated
            << "/20\n";
  std::cout << "\nExpected shape: head titles spread to most servers "
               "(every server's local\nmix tops out with them), tail "
               "titles stay only at the origin — replication\nproportional "
               "to popularity, with no central coordination.\n";
  return 0;
}
