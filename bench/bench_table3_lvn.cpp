// Regenerates Table 3 — "The Link Validation Numbers".
//
// Runs equations (1)-(4) over the Table 2 statistics and prints the
// computed LVN for every link at every instant side by side with the
// paper's published value and the absolute error.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "vra/validation.h"

using namespace vod;

int main() {
  bench::heading("Table 3: Link Validation Numbers (computed vs paper)");

  const grnet::CaseStudy g = grnet::build_case_study();

  TextTable table{{"Link", "8am", "10am", "4pm", "6pm"}};
  TextTable errors{{"Link", "8am", "10am", "4pm", "6pm"}};
  double worst = 0.0;
  int exact4 = 0;
  int cells = 0;

  const auto links = g.links_in_paper_order();
  std::vector<std::vector<std::string>> computed_rows(links.size());
  std::vector<std::vector<std::string>> error_rows(links.size());
  for (std::size_t row = 0; row < links.size(); ++row) {
    computed_rows[row].push_back(g.topology.link(links[row]).name);
    error_rows[row].push_back(g.topology.link(links[row]).name);
  }

  for (const grnet::TimeOfDay t : grnet::kAllTimes) {
    const auto stats = grnet::table2_stats(g, t);
    const vra::LvnCalculator calc{g.topology, stats};
    for (std::size_t row = 0; row < links.size(); ++row) {
      const double lvn = calc.link_validation_number(links[row]);
      const double paper = grnet::table3_expected_lvn(g, links[row], t);
      const double err = std::abs(lvn - paper);
      worst = std::max(worst, err);
      ++cells;
      if (err < 5e-4) ++exact4;
      computed_rows[row].push_back(TextTable::num(lvn, 5) + " (" +
                                   TextTable::num(paper, 5) + ")");
      error_rows[row].push_back(TextTable::num(err, 5));
    }
  }
  for (std::size_t row = 0; row < links.size(); ++row) {
    table.add_row(computed_rows[row]);
    errors.add_row(error_rows[row]);
  }

  std::cout << "computed (paper):\n" << table.render();
  std::cout << "\nabsolute error per cell:\n" << errors.render();
  std::cout << "\n" << exact4 << "/" << cells
            << " cells match the paper to <5e-4; max error "
            << TextTable::num(worst, 5)
            << " (the paper rounds intermediate node validations)\n";
  return 0;
}
