file(REMOVE_RECURSE
  "CMakeFiles/bench_experiments_cd.dir/bench_experiments_cd.cpp.o"
  "CMakeFiles/bench_experiments_cd.dir/bench_experiments_cd.cpp.o.d"
  "bench_experiments_cd"
  "bench_experiments_cd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiments_cd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
