# Empty compiler generated dependencies file for bench_experiments_cd.
# This may be replaced when dependencies are built.
