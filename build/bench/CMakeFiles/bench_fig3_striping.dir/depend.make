# Empty dependencies file for bench_fig3_striping.
# This may be replaced when dependencies are built.
