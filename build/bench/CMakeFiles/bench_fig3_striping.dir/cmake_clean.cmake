file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_striping.dir/bench_fig3_striping.cpp.o"
  "CMakeFiles/bench_fig3_striping.dir/bench_fig3_striping.cpp.o.d"
  "bench_fig3_striping"
  "bench_fig3_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
