file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lvn.dir/bench_table3_lvn.cpp.o"
  "CMakeFiles/bench_table3_lvn.dir/bench_table3_lvn.cpp.o.d"
  "bench_table3_lvn"
  "bench_table3_lvn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lvn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
