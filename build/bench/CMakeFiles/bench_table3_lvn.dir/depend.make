# Empty dependencies file for bench_table3_lvn.
# This may be replaced when dependencies are built.
