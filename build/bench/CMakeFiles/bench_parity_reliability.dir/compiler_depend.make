# Empty compiler generated dependencies file for bench_parity_reliability.
# This may be replaced when dependencies are built.
