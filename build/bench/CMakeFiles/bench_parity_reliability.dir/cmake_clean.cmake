file(REMOVE_RECURSE
  "CMakeFiles/bench_parity_reliability.dir/bench_parity_reliability.cpp.o"
  "CMakeFiles/bench_parity_reliability.dir/bench_parity_reliability.cpp.o.d"
  "bench_parity_reliability"
  "bench_parity_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parity_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
