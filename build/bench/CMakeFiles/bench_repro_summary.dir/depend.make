# Empty dependencies file for bench_repro_summary.
# This may be replaced when dependencies are built.
