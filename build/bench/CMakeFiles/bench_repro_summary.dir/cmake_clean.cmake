file(REMOVE_RECURSE
  "CMakeFiles/bench_repro_summary.dir/bench_repro_summary.cpp.o"
  "CMakeFiles/bench_repro_summary.dir/bench_repro_summary.cpp.o.d"
  "bench_repro_summary"
  "bench_repro_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repro_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
