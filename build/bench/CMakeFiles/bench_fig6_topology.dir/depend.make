# Empty dependencies file for bench_fig6_topology.
# This may be replaced when dependencies are built.
