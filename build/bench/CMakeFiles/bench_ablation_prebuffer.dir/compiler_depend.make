# Empty compiler generated dependencies file for bench_ablation_prebuffer.
# This may be replaced when dependencies are built.
