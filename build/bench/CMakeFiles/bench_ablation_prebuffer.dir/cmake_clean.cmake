file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prebuffer.dir/bench_ablation_prebuffer.cpp.o"
  "CMakeFiles/bench_ablation_prebuffer.dir/bench_ablation_prebuffer.cpp.o.d"
  "bench_ablation_prebuffer"
  "bench_ablation_prebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
