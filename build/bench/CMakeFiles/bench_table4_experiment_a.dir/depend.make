# Empty dependencies file for bench_table4_experiment_a.
# This may be replaced when dependencies are built.
