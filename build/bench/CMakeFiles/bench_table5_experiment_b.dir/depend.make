# Empty dependencies file for bench_table5_experiment_b.
# This may be replaced when dependencies are built.
