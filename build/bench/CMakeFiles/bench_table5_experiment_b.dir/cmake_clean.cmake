file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_experiment_b.dir/bench_table5_experiment_b.cpp.o"
  "CMakeFiles/bench_table5_experiment_b.dir/bench_table5_experiment_b.cpp.o.d"
  "bench_table5_experiment_b"
  "bench_table5_experiment_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_experiment_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
