# Empty dependencies file for bench_admission_control.
# This may be replaced when dependencies are built.
