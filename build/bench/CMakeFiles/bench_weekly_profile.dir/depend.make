# Empty dependencies file for bench_weekly_profile.
# This may be replaced when dependencies are built.
