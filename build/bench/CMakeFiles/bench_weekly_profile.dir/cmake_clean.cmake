file(REMOVE_RECURSE
  "CMakeFiles/bench_weekly_profile.dir/bench_weekly_profile.cpp.o"
  "CMakeFiles/bench_weekly_profile.dir/bench_weekly_profile.cpp.o.d"
  "bench_weekly_profile"
  "bench_weekly_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weekly_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
