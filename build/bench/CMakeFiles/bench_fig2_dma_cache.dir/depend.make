# Empty dependencies file for bench_fig2_dma_cache.
# This may be replaced when dependencies are built.
