file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_striping.dir/bench_distributed_striping.cpp.o"
  "CMakeFiles/bench_distributed_striping.dir/bench_distributed_striping.cpp.o.d"
  "bench_distributed_striping"
  "bench_distributed_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
