# Empty compiler generated dependencies file for bench_table2_network_status.
# This may be replaced when dependencies are built.
