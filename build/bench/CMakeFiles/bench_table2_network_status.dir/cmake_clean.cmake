file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_network_status.dir/bench_table2_network_status.cpp.o"
  "CMakeFiles/bench_table2_network_status.dir/bench_table2_network_status.cpp.o.d"
  "bench_table2_network_status"
  "bench_table2_network_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_network_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
