# Empty dependencies file for bench_dma_emergence.
# This may be replaced when dependencies are built.
