file(REMOVE_RECURSE
  "CMakeFiles/bench_dma_emergence.dir/bench_dma_emergence.cpp.o"
  "CMakeFiles/bench_dma_emergence.dir/bench_dma_emergence.cpp.o.d"
  "bench_dma_emergence"
  "bench_dma_emergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma_emergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
