file(REMOVE_RECURSE
  "CMakeFiles/admin_tour.dir/admin_tour.cpp.o"
  "CMakeFiles/admin_tour.dir/admin_tour.cpp.o.d"
  "admin_tour"
  "admin_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
