# Empty dependencies file for admin_tour.
# This may be replaced when dependencies are built.
