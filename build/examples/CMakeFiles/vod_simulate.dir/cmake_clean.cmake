file(REMOVE_RECURSE
  "CMakeFiles/vod_simulate.dir/vod_simulate.cpp.o"
  "CMakeFiles/vod_simulate.dir/vod_simulate.cpp.o.d"
  "vod_simulate"
  "vod_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
