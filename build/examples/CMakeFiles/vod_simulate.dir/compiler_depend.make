# Empty compiler generated dependencies file for vod_simulate.
# This may be replaced when dependencies are built.
