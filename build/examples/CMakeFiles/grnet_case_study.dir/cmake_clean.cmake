file(REMOVE_RECURSE
  "CMakeFiles/grnet_case_study.dir/grnet_case_study.cpp.o"
  "CMakeFiles/grnet_case_study.dir/grnet_case_study.cpp.o.d"
  "grnet_case_study"
  "grnet_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grnet_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
