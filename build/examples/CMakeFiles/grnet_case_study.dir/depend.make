# Empty dependencies file for grnet_case_study.
# This may be replaced when dependencies are built.
