# Empty dependencies file for striping_demo.
# This may be replaced when dependencies are built.
