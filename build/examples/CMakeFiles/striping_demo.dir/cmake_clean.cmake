file(REMOVE_RECURSE
  "CMakeFiles/striping_demo.dir/striping_demo.cpp.o"
  "CMakeFiles/striping_demo.dir/striping_demo.cpp.o.d"
  "striping_demo"
  "striping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
