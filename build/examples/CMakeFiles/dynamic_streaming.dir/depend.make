# Empty dependencies file for dynamic_streaming.
# This may be replaced when dependencies are built.
