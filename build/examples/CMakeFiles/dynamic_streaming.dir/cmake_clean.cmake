file(REMOVE_RECURSE
  "CMakeFiles/dynamic_streaming.dir/dynamic_streaming.cpp.o"
  "CMakeFiles/dynamic_streaming.dir/dynamic_streaming.cpp.o.d"
  "dynamic_streaming"
  "dynamic_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
