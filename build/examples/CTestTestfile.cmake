# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grnet_case_study "/root/repo/build/examples/grnet_case_study")
set_tests_properties(example_grnet_case_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_streaming "/root/repo/build/examples/dynamic_streaming")
set_tests_properties(example_dynamic_streaming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_striping_demo "/root/repo/build/examples/striping_demo")
set_tests_properties(example_striping_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover "/root/repo/build/examples/failover")
set_tests_properties(example_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spec_driven "/root/repo/build/examples/spec_driven")
set_tests_properties(example_spec_driven PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_admin_tour "/root/repo/build/examples/admin_tour")
set_tests_properties(example_admin_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;17;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vod_simulate "/root/repo/build/examples/vod_simulate")
set_tests_properties(example_vod_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;18;vod_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vod_simulate_campus "/root/repo/build/examples/vod_simulate" "/root/repo/examples/data/campus.spec" "/root/repo/examples/data/campus_trace.csv" "2" "30")
set_tests_properties(example_vod_simulate_campus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
