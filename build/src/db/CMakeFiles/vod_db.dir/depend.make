# Empty dependencies file for vod_db.
# This may be replaced when dependencies are built.
