file(REMOVE_RECURSE
  "CMakeFiles/vod_db.dir/database.cpp.o"
  "CMakeFiles/vod_db.dir/database.cpp.o.d"
  "libvod_db.a"
  "libvod_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
