file(REMOVE_RECURSE
  "libvod_db.a"
)
