# Empty compiler generated dependencies file for vod_baselines.
# This may be replaced when dependencies are built.
