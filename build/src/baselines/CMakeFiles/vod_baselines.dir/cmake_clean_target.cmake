file(REMOVE_RECURSE
  "libvod_baselines.a"
)
