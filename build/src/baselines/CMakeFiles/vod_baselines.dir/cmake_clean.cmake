file(REMOVE_RECURSE
  "CMakeFiles/vod_baselines.dir/cache_baselines.cpp.o"
  "CMakeFiles/vod_baselines.dir/cache_baselines.cpp.o.d"
  "CMakeFiles/vod_baselines.dir/selection_baselines.cpp.o"
  "CMakeFiles/vod_baselines.dir/selection_baselines.cpp.o.d"
  "libvod_baselines.a"
  "libvod_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
