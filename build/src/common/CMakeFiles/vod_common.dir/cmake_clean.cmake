file(REMOVE_RECURSE
  "CMakeFiles/vod_common.dir/csv.cpp.o"
  "CMakeFiles/vod_common.dir/csv.cpp.o.d"
  "CMakeFiles/vod_common.dir/table.cpp.o"
  "CMakeFiles/vod_common.dir/table.cpp.o.d"
  "libvod_common.a"
  "libvod_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
