file(REMOVE_RECURSE
  "libvod_common.a"
)
