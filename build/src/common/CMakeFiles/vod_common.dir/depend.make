# Empty dependencies file for vod_common.
# This may be replaced when dependencies are built.
