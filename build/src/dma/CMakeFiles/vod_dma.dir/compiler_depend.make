# Empty compiler generated dependencies file for vod_dma.
# This may be replaced when dependencies are built.
