
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/dma_cache.cpp" "src/dma/CMakeFiles/vod_dma.dir/dma_cache.cpp.o" "gcc" "src/dma/CMakeFiles/vod_dma.dir/dma_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vod_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vod_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
