file(REMOVE_RECURSE
  "libvod_dma.a"
)
