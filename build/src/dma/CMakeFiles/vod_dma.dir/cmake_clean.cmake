file(REMOVE_RECURSE
  "CMakeFiles/vod_dma.dir/dma_cache.cpp.o"
  "CMakeFiles/vod_dma.dir/dma_cache.cpp.o.d"
  "libvod_dma.a"
  "libvod_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
