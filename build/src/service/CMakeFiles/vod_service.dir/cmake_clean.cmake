file(REMOVE_RECURSE
  "CMakeFiles/vod_service.dir/admission.cpp.o"
  "CMakeFiles/vod_service.dir/admission.cpp.o.d"
  "CMakeFiles/vod_service.dir/audit.cpp.o"
  "CMakeFiles/vod_service.dir/audit.cpp.o.d"
  "CMakeFiles/vod_service.dir/distributed_striping.cpp.o"
  "CMakeFiles/vod_service.dir/distributed_striping.cpp.o.d"
  "CMakeFiles/vod_service.dir/ip_directory.cpp.o"
  "CMakeFiles/vod_service.dir/ip_directory.cpp.o.d"
  "CMakeFiles/vod_service.dir/report.cpp.o"
  "CMakeFiles/vod_service.dir/report.cpp.o.d"
  "CMakeFiles/vod_service.dir/spec.cpp.o"
  "CMakeFiles/vod_service.dir/spec.cpp.o.d"
  "CMakeFiles/vod_service.dir/vod_service.cpp.o"
  "CMakeFiles/vod_service.dir/vod_service.cpp.o.d"
  "libvod_service.a"
  "libvod_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
