file(REMOVE_RECURSE
  "libvod_service.a"
)
