# Empty compiler generated dependencies file for vod_service.
# This may be replaced when dependencies are built.
