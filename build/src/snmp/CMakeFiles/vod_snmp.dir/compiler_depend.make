# Empty compiler generated dependencies file for vod_snmp.
# This may be replaced when dependencies are built.
