
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snmp/snmp_module.cpp" "src/snmp/CMakeFiles/vod_snmp.dir/snmp_module.cpp.o" "gcc" "src/snmp/CMakeFiles/vod_snmp.dir/snmp_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vod_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vod_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
