file(REMOVE_RECURSE
  "libvod_snmp.a"
)
