file(REMOVE_RECURSE
  "CMakeFiles/vod_snmp.dir/snmp_module.cpp.o"
  "CMakeFiles/vod_snmp.dir/snmp_module.cpp.o.d"
  "libvod_snmp.a"
  "libvod_snmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_snmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
