# Empty compiler generated dependencies file for vod_workload.
# This may be replaced when dependencies are built.
