file(REMOVE_RECURSE
  "libvod_workload.a"
)
