file(REMOVE_RECURSE
  "CMakeFiles/vod_workload.dir/catalog_gen.cpp.o"
  "CMakeFiles/vod_workload.dir/catalog_gen.cpp.o.d"
  "CMakeFiles/vod_workload.dir/request_gen.cpp.o"
  "CMakeFiles/vod_workload.dir/request_gen.cpp.o.d"
  "CMakeFiles/vod_workload.dir/zipf.cpp.o"
  "CMakeFiles/vod_workload.dir/zipf.cpp.o.d"
  "libvod_workload.a"
  "libvod_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
