
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fluid.cpp" "src/net/CMakeFiles/vod_net.dir/fluid.cpp.o" "gcc" "src/net/CMakeFiles/vod_net.dir/fluid.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/vod_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/vod_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/net/CMakeFiles/vod_net.dir/trace_io.cpp.o" "gcc" "src/net/CMakeFiles/vod_net.dir/trace_io.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/vod_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/vod_net.dir/traffic.cpp.o.d"
  "/root/repo/src/net/transfer.cpp" "src/net/CMakeFiles/vod_net.dir/transfer.cpp.o" "gcc" "src/net/CMakeFiles/vod_net.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vod_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
