file(REMOVE_RECURSE
  "libvod_net.a"
)
