# Empty dependencies file for vod_net.
# This may be replaced when dependencies are built.
