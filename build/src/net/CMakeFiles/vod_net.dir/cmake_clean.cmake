file(REMOVE_RECURSE
  "CMakeFiles/vod_net.dir/fluid.cpp.o"
  "CMakeFiles/vod_net.dir/fluid.cpp.o.d"
  "CMakeFiles/vod_net.dir/topology.cpp.o"
  "CMakeFiles/vod_net.dir/topology.cpp.o.d"
  "CMakeFiles/vod_net.dir/trace_io.cpp.o"
  "CMakeFiles/vod_net.dir/trace_io.cpp.o.d"
  "CMakeFiles/vod_net.dir/traffic.cpp.o"
  "CMakeFiles/vod_net.dir/traffic.cpp.o.d"
  "CMakeFiles/vod_net.dir/transfer.cpp.o"
  "CMakeFiles/vod_net.dir/transfer.cpp.o.d"
  "libvod_net.a"
  "libvod_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
