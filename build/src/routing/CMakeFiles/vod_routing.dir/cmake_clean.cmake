file(REMOVE_RECURSE
  "CMakeFiles/vod_routing.dir/bellman_ford.cpp.o"
  "CMakeFiles/vod_routing.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/vod_routing.dir/dijkstra.cpp.o"
  "CMakeFiles/vod_routing.dir/dijkstra.cpp.o.d"
  "CMakeFiles/vod_routing.dir/graph.cpp.o"
  "CMakeFiles/vod_routing.dir/graph.cpp.o.d"
  "CMakeFiles/vod_routing.dir/min_hop.cpp.o"
  "CMakeFiles/vod_routing.dir/min_hop.cpp.o.d"
  "CMakeFiles/vod_routing.dir/path.cpp.o"
  "CMakeFiles/vod_routing.dir/path.cpp.o.d"
  "CMakeFiles/vod_routing.dir/trace_format.cpp.o"
  "CMakeFiles/vod_routing.dir/trace_format.cpp.o.d"
  "libvod_routing.a"
  "libvod_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
