file(REMOVE_RECURSE
  "libvod_routing.a"
)
