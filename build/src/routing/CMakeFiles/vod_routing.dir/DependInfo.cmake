
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bellman_ford.cpp" "src/routing/CMakeFiles/vod_routing.dir/bellman_ford.cpp.o" "gcc" "src/routing/CMakeFiles/vod_routing.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/routing/dijkstra.cpp" "src/routing/CMakeFiles/vod_routing.dir/dijkstra.cpp.o" "gcc" "src/routing/CMakeFiles/vod_routing.dir/dijkstra.cpp.o.d"
  "/root/repo/src/routing/graph.cpp" "src/routing/CMakeFiles/vod_routing.dir/graph.cpp.o" "gcc" "src/routing/CMakeFiles/vod_routing.dir/graph.cpp.o.d"
  "/root/repo/src/routing/min_hop.cpp" "src/routing/CMakeFiles/vod_routing.dir/min_hop.cpp.o" "gcc" "src/routing/CMakeFiles/vod_routing.dir/min_hop.cpp.o.d"
  "/root/repo/src/routing/path.cpp" "src/routing/CMakeFiles/vod_routing.dir/path.cpp.o" "gcc" "src/routing/CMakeFiles/vod_routing.dir/path.cpp.o.d"
  "/root/repo/src/routing/trace_format.cpp" "src/routing/CMakeFiles/vod_routing.dir/trace_format.cpp.o" "gcc" "src/routing/CMakeFiles/vod_routing.dir/trace_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
