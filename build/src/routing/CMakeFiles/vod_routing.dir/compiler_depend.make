# Empty compiler generated dependencies file for vod_routing.
# This may be replaced when dependencies are built.
