# Empty compiler generated dependencies file for vod_stream.
# This may be replaced when dependencies are built.
