file(REMOVE_RECURSE
  "CMakeFiles/vod_stream.dir/policy.cpp.o"
  "CMakeFiles/vod_stream.dir/policy.cpp.o.d"
  "CMakeFiles/vod_stream.dir/session.cpp.o"
  "CMakeFiles/vod_stream.dir/session.cpp.o.d"
  "libvod_stream.a"
  "libvod_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
