file(REMOVE_RECURSE
  "libvod_stream.a"
)
