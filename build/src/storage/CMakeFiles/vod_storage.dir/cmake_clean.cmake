file(REMOVE_RECURSE
  "CMakeFiles/vod_storage.dir/disk.cpp.o"
  "CMakeFiles/vod_storage.dir/disk.cpp.o.d"
  "CMakeFiles/vod_storage.dir/disk_array.cpp.o"
  "CMakeFiles/vod_storage.dir/disk_array.cpp.o.d"
  "CMakeFiles/vod_storage.dir/striping.cpp.o"
  "CMakeFiles/vod_storage.dir/striping.cpp.o.d"
  "libvod_storage.a"
  "libvod_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
