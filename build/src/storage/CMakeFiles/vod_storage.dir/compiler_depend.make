# Empty compiler generated dependencies file for vod_storage.
# This may be replaced when dependencies are built.
