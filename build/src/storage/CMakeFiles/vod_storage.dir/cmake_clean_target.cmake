file(REMOVE_RECURSE
  "libvod_storage.a"
)
