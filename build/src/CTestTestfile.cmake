# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("routing")
subdirs("net")
subdirs("db")
subdirs("snmp")
subdirs("storage")
subdirs("dma")
subdirs("vra")
subdirs("workload")
subdirs("stream")
subdirs("baselines")
subdirs("service")
subdirs("grnet")
