# Empty dependencies file for vod_sim.
# This may be replaced when dependencies are built.
