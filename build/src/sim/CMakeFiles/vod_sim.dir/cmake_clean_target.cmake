file(REMOVE_RECURSE
  "libvod_sim.a"
)
