file(REMOVE_RECURSE
  "CMakeFiles/vod_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vod_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vod_sim.dir/simulation.cpp.o"
  "CMakeFiles/vod_sim.dir/simulation.cpp.o.d"
  "libvod_sim.a"
  "libvod_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
