file(REMOVE_RECURSE
  "libvod_vra.a"
)
