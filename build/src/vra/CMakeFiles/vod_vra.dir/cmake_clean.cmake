file(REMOVE_RECURSE
  "CMakeFiles/vod_vra.dir/explain.cpp.o"
  "CMakeFiles/vod_vra.dir/explain.cpp.o.d"
  "CMakeFiles/vod_vra.dir/validation.cpp.o"
  "CMakeFiles/vod_vra.dir/validation.cpp.o.d"
  "CMakeFiles/vod_vra.dir/vra.cpp.o"
  "CMakeFiles/vod_vra.dir/vra.cpp.o.d"
  "libvod_vra.a"
  "libvod_vra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_vra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
