# Empty dependencies file for vod_vra.
# This may be replaced when dependencies are built.
