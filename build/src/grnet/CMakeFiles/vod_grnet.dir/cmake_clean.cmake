file(REMOVE_RECURSE
  "CMakeFiles/vod_grnet.dir/grnet.cpp.o"
  "CMakeFiles/vod_grnet.dir/grnet.cpp.o.d"
  "libvod_grnet.a"
  "libvod_grnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_grnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
