# Empty dependencies file for vod_grnet.
# This may be replaced when dependencies are built.
