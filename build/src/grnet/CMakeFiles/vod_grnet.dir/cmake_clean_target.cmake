file(REMOVE_RECURSE
  "libvod_grnet.a"
)
