file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_striping.dir/test_distributed_striping.cpp.o"
  "CMakeFiles/test_distributed_striping.dir/test_distributed_striping.cpp.o.d"
  "test_distributed_striping"
  "test_distributed_striping.pdb"
  "test_distributed_striping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
