
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_admission.cpp" "tests/CMakeFiles/test_admission.dir/test_admission.cpp.o" "gcc" "tests/CMakeFiles/test_admission.dir/test_admission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vod_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/vod_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vod_db.dir/DependInfo.cmake"
  "/root/repo/build/src/snmp/CMakeFiles/vod_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vod_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/vod_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/vra/CMakeFiles/vod_vra.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vod_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/vod_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vod_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/vod_service.dir/DependInfo.cmake"
  "/root/repo/build/src/grnet/CMakeFiles/vod_grnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
