# Empty dependencies file for test_feature_interactions.
# This may be replaced when dependencies are built.
