file(REMOVE_RECURSE
  "CMakeFiles/test_feature_interactions.dir/test_feature_interactions.cpp.o"
  "CMakeFiles/test_feature_interactions.dir/test_feature_interactions.cpp.o.d"
  "test_feature_interactions"
  "test_feature_interactions.pdb"
  "test_feature_interactions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
