# Empty dependencies file for test_vra.
# This may be replaced when dependencies are built.
