file(REMOVE_RECURSE
  "CMakeFiles/test_vra.dir/test_vra.cpp.o"
  "CMakeFiles/test_vra.dir/test_vra.cpp.o.d"
  "test_vra"
  "test_vra.pdb"
  "test_vra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
