file(REMOVE_RECURSE
  "CMakeFiles/test_session_properties.dir/test_session_properties.cpp.o"
  "CMakeFiles/test_session_properties.dir/test_session_properties.cpp.o.d"
  "test_session_properties"
  "test_session_properties.pdb"
  "test_session_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
