# Empty compiler generated dependencies file for test_session_properties.
# This may be replaced when dependencies are built.
