file(REMOVE_RECURSE
  "CMakeFiles/test_cache_baselines.dir/test_cache_baselines.cpp.o"
  "CMakeFiles/test_cache_baselines.dir/test_cache_baselines.cpp.o.d"
  "test_cache_baselines"
  "test_cache_baselines.pdb"
  "test_cache_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
