# Empty compiler generated dependencies file for test_cache_baselines.
# This may be replaced when dependencies are built.
