file(REMOVE_RECURSE
  "CMakeFiles/test_grnet.dir/test_grnet.cpp.o"
  "CMakeFiles/test_grnet.dir/test_grnet.cpp.o.d"
  "test_grnet"
  "test_grnet.pdb"
  "test_grnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
