# Empty dependencies file for test_grnet.
# This may be replaced when dependencies are built.
