file(REMOVE_RECURSE
  "CMakeFiles/test_disk_failure.dir/test_disk_failure.cpp.o"
  "CMakeFiles/test_disk_failure.dir/test_disk_failure.cpp.o.d"
  "test_disk_failure"
  "test_disk_failure.pdb"
  "test_disk_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
