# Empty dependencies file for test_disk_failure.
# This may be replaced when dependencies are built.
