file(REMOVE_RECURSE
  "CMakeFiles/test_trace_format.dir/test_trace_format.cpp.o"
  "CMakeFiles/test_trace_format.dir/test_trace_format.cpp.o.d"
  "test_trace_format"
  "test_trace_format.pdb"
  "test_trace_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
