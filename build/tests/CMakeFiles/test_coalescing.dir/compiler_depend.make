# Empty compiler generated dependencies file for test_coalescing.
# This may be replaced when dependencies are built.
