file(REMOVE_RECURSE
  "CMakeFiles/test_coalescing.dir/test_coalescing.cpp.o"
  "CMakeFiles/test_coalescing.dir/test_coalescing.cpp.o.d"
  "test_coalescing"
  "test_coalescing.pdb"
  "test_coalescing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
