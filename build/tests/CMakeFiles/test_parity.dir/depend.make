# Empty dependencies file for test_parity.
# This may be replaced when dependencies are built.
