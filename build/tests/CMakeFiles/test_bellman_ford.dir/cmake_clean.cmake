file(REMOVE_RECURSE
  "CMakeFiles/test_bellman_ford.dir/test_bellman_ford.cpp.o"
  "CMakeFiles/test_bellman_ford.dir/test_bellman_ford.cpp.o.d"
  "test_bellman_ford"
  "test_bellman_ford.pdb"
  "test_bellman_ford[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bellman_ford.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
