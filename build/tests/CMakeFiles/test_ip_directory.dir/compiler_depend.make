# Empty compiler generated dependencies file for test_ip_directory.
# This may be replaced when dependencies are built.
