file(REMOVE_RECURSE
  "CMakeFiles/test_ip_directory.dir/test_ip_directory.cpp.o"
  "CMakeFiles/test_ip_directory.dir/test_ip_directory.cpp.o.d"
  "test_ip_directory"
  "test_ip_directory.pdb"
  "test_ip_directory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ip_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
