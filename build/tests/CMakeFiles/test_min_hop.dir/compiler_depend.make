# Empty compiler generated dependencies file for test_min_hop.
# This may be replaced when dependencies are built.
