file(REMOVE_RECURSE
  "CMakeFiles/test_min_hop.dir/test_min_hop.cpp.o"
  "CMakeFiles/test_min_hop.dir/test_min_hop.cpp.o.d"
  "test_min_hop"
  "test_min_hop.pdb"
  "test_min_hop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
