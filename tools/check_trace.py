#!/usr/bin/env python3
"""Minimal schema check for the Chrome trace-event JSON the obs layer emits.

Validates the subset of the trace-event format the TraceRecorder produces
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):

  * top level is an object with a ``traceEvents`` list;
  * every event is an object carrying ``ph``, ``pid`` and ``name``;
  * ``ph`` is one of the phases the recorder emits (M i C B E b e);
  * non-metadata events carry a numeric, non-negative ``ts`` and a ``tid``;
  * instants carry ``"s": "t"``; async events carry an ``id``;
  * counters carry a numeric ``args.value``;
  * B/E and b/e events balance per (tid, name) / (id, name).

Usage:  check_trace.py TRACE.json [--min-subsystems N] [--monotone-ts]

``--min-subsystems N`` requires events (beyond metadata) on at least N
distinct tid tracks — the PR-acceptance knob.  ``--monotone-ts`` asserts
timestamps never go backwards in file order; valid for any single-clock
run (the recorder appends in simulation order), but not for benches that
trace several back-to-back simulations into one file.
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_PHASES = {"M", "i", "C", "B", "E", "b", "e"}


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(trace: object, min_subsystems: int, monotone_ts: bool) -> str:
    if not isinstance(trace, dict):
        fail("top level is not a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if not events:
        fail("traceEvents is empty")

    tracks: set[int] = set()
    duration_stack: dict[tuple[int, str], int] = {}
    async_open: dict[tuple[int, str], int] = {}
    last_ts: float | None = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        for key in ("ph", "pid", "name"):
            if key not in event:
                fail(f"{where} lacks required key {key!r}")
        phase = event["ph"]
        if phase not in KNOWN_PHASES:
            fail(f"{where} has unknown phase {phase!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            fail(f"{where} lacks a numeric non-negative ts")
        if monotone_ts and last_ts is not None and ts < last_ts:
            fail(f"{where} ts {ts} goes backwards (previous {last_ts})")
        last_ts = ts
        tid = event.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            fail(f"{where} lacks an integer tid")
        tracks.add(tid)
        name = event["name"]
        if phase == "i" and event.get("s") != "t":
            fail(f"{where} instant lacks scope \"s\": \"t\"")
        if phase == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{where} counter lacks numeric args.value")
        if phase in ("b", "e"):
            if "id" not in event:
                fail(f"{where} async event lacks an id")
            key = (event["id"], name)
            if phase == "b":
                async_open[key] = async_open.get(key, 0) + 1
            elif async_open.get(key, 0) <= 0:
                fail(f"{where} async end without begin: id={key[0]} {name}")
            else:
                async_open[key] -= 1
        if phase in ("B", "E"):
            key = (tid, name)
            if phase == "B":
                duration_stack[key] = duration_stack.get(key, 0) + 1
            elif duration_stack.get(key, 0) <= 0:
                fail(f"{where} E without matching B: tid={tid} {name}")
            else:
                duration_stack[key] -= 1

    unclosed = sorted(k for k, v in duration_stack.items() if v)
    if unclosed:
        fail(f"unbalanced B/E pairs: {unclosed}")
    dangling = sorted(f"{name}#{id_}" for (id_, name), v in async_open.items()
                      if v)
    if dangling:
        fail(f"unclosed async spans: {dangling}")
    if len(tracks) < min_subsystems:
        fail(f"events on only {len(tracks)} subsystem track(s); "
             f"need >= {min_subsystems}")
    return (f"{len(events)} event(s) on {len(tracks)} subsystem track(s), "
            f"schema ok")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-subsystems", type=int, default=1,
                        help="require events on at least N tid tracks")
    parser.add_argument("--monotone-ts", action="store_true",
                        help="assert timestamps never decrease in file order")
    args = parser.parse_args()
    try:
        with open(args.trace, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(str(error))
    print(f"check_trace: {args.trace}: "
          f"{check(trace, args.min_subsystems, args.monotone_ts)}")


if __name__ == "__main__":
    main()
