#!/usr/bin/env python3
"""Schema checks for the JSON artefacts the obs layer emits.

Three kinds (``--kind``, default ``trace``):

``trace`` — the Chrome trace-event subset the TraceRecorder produces
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):

  * top level is an object with a ``traceEvents`` list;
  * every event is an object carrying ``ph``, ``pid`` and ``name``;
  * ``ph`` is one of the phases the recorder emits (M i C B E b e);
  * non-metadata events carry a numeric, non-negative ``ts`` and a ``tid``;
  * instants carry ``"s": "t"``; async events carry an ``id``;
  * counters carry a numeric ``args.value``;
  * B/E and b/e events balance per (tid, name) / (id, name);
  * slo-track events (cat ``slo``) are instants named ``slo.breach`` /
    ``slo.recover`` whose args name the SLO (breaches also carry the burn
    rate); recover events only follow a breach of the same SLO.

``series`` — TimeSeriesRecorder::to_json(): positive ``cadence_s``, a
``samples`` tick count, and per-series bounded point lists with strictly
increasing timestamps (points + evicted never exceed the tick count).

``flight`` — one FlightRecorder black box: ``flight_record`` with ``seq``,
a non-empty ``reason``, ``sim_time_s``, key-sorted string ``config``, a
``ring`` (capacity / overwritten / event list in trace-event shape) and a
``metrics`` snapshot object (or null when no registry was bound).

Usage:  check_trace.py FILE [--kind trace|series|flight]
                            [--min-subsystems N] [--monotone-ts]
                            [--require-slo]

``--min-subsystems N`` requires events (beyond metadata) on at least N
distinct tid tracks — the PR-acceptance knob.  ``--monotone-ts`` asserts
timestamps never go backwards in file order; valid for any single-clock
run (the recorder appends in simulation order), but not for benches that
trace several back-to-back simulations into one file.  ``--require-slo``
(trace kind) demands at least one slo.breach instant — the SLO-monitor
smoke knob.
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_PHASES = {"M", "i", "C", "B", "E", "b", "e"}


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_trace(trace: object, min_subsystems: int, monotone_ts: bool,
                require_slo: bool) -> str:
    if not isinstance(trace, dict):
        fail("top level is not a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if not events:
        fail("traceEvents is empty")

    tracks: set[int] = set()
    duration_stack: dict[tuple[int, str], int] = {}
    async_open: dict[tuple[int, str], int] = {}
    breached_slos: set[str] = set()
    slo_breaches = 0
    last_ts: float | None = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        for key in ("ph", "pid", "name"):
            if key not in event:
                fail(f"{where} lacks required key {key!r}")
        phase = event["ph"]
        if phase not in KNOWN_PHASES:
            fail(f"{where} has unknown phase {phase!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not is_number(ts) or ts < 0:
            fail(f"{where} lacks a numeric non-negative ts")
        if monotone_ts and last_ts is not None and ts < last_ts:
            fail(f"{where} ts {ts} goes backwards (previous {last_ts})")
        last_ts = ts
        tid = event.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            fail(f"{where} lacks an integer tid")
        tracks.add(tid)
        name = event["name"]
        if phase == "i" and event.get("s") != "t":
            fail(f"{where} instant lacks scope \"s\": \"t\"")
        if phase == "C":
            value = event.get("args", {}).get("value")
            if not is_number(value):
                fail(f"{where} counter lacks numeric args.value")
        if event.get("cat") == "slo":
            if phase != "i":
                fail(f"{where} slo-track event {name!r} is not an instant")
            if name not in ("slo.breach", "slo.recover"):
                fail(f"{where} unknown slo-track event {name!r}")
            slo = event.get("args", {}).get("slo")
            if not isinstance(slo, str) or not slo:
                fail(f"{where} slo event lacks args.slo")
            if name == "slo.breach":
                burn = event.get("args", {}).get("burn")
                if burn is None:
                    fail(f"{where} slo.breach lacks args.burn")
                try:
                    if float(burn) < 0.0:
                        fail(f"{where} slo.breach burn {burn} negative")
                except ValueError:
                    fail(f"{where} slo.breach burn {burn!r} not numeric")
                breached_slos.add(slo)
                slo_breaches += 1
            elif slo not in breached_slos:
                fail(f"{where} slo.recover for {slo!r} without a breach")
            else:
                breached_slos.discard(slo)
        if phase in ("b", "e"):
            if "id" not in event:
                fail(f"{where} async event lacks an id")
            key = (event["id"], name)
            if phase == "b":
                async_open[key] = async_open.get(key, 0) + 1
            elif async_open.get(key, 0) <= 0:
                fail(f"{where} async end without begin: id={key[0]} {name}")
            else:
                async_open[key] -= 1
        if phase in ("B", "E"):
            key = (tid, name)
            if phase == "B":
                duration_stack[key] = duration_stack.get(key, 0) + 1
            elif duration_stack.get(key, 0) <= 0:
                fail(f"{where} E without matching B: tid={tid} {name}")
            else:
                duration_stack[key] -= 1

    unclosed = sorted(k for k, v in duration_stack.items() if v)
    if unclosed:
        fail(f"unbalanced B/E pairs: {unclosed}")
    dangling = sorted(f"{name}#{id_}" for (id_, name), v in async_open.items()
                      if v)
    if dangling:
        fail(f"unclosed async spans: {dangling}")
    if len(tracks) < min_subsystems:
        fail(f"events on only {len(tracks)} subsystem track(s); "
             f"need >= {min_subsystems}")
    if require_slo and slo_breaches == 0:
        fail("no slo.breach events (--require-slo)")
    return (f"{len(events)} event(s) on {len(tracks)} subsystem track(s), "
            f"{slo_breaches} slo breach(es), schema ok")


def check_series(doc: object) -> str:
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    cadence = doc.get("cadence_s")
    if not is_number(cadence) or cadence <= 0:
        fail("cadence_s is not a positive number")
    samples = doc.get("samples")
    if not isinstance(samples, int) or isinstance(samples, bool) or \
            samples < 0:
        fail("samples is not a non-negative integer")
    series = doc.get("series")
    if not isinstance(series, dict):
        fail("missing series object")
    points_total = 0
    for name, entry in series.items():
        where = f"series[{name!r}]"
        if not isinstance(entry, dict):
            fail(f"{where} is not an object")
        evicted = entry.get("evicted")
        if not isinstance(evicted, int) or isinstance(evicted, bool) or \
                evicted < 0:
            fail(f"{where} evicted is not a non-negative integer")
        points = entry.get("points")
        if not isinstance(points, list):
            fail(f"{where} lacks a points list")
        last_t: float | None = None
        for i, point in enumerate(points):
            pwhere = f"{where}.points[{i}]"
            if not isinstance(point, dict):
                fail(f"{pwhere} is not an object")
            for key in ("t", "v", "rate"):
                if not is_number(point.get(key)):
                    fail(f"{pwhere} lacks numeric {key!r}")
            if last_t is not None and point["t"] <= last_t:
                fail(f"{pwhere} t {point['t']} not after {last_t}")
            last_t = point["t"]
        # Each sampling tick appends at most one point per series (a series
        # can start late: lazily created instruments miss earlier ticks).
        if len(points) + evicted > samples:
            fail(f"{where} holds {len(points)}+{evicted} point(s) "
                 f"from only {samples} tick(s)")
        points_total += len(points)
    return (f"{len(series)} series, {points_total} point(s) over "
            f"{samples} tick(s), schema ok")


def check_flight(doc: object) -> str:
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    record = doc.get("flight_record")
    if not isinstance(record, dict):
        fail("missing flight_record object")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        fail("seq is not a non-negative integer")
    reason = record.get("reason")
    if not isinstance(reason, str) or not reason:
        fail("reason is not a non-empty string")
    if not is_number(record.get("sim_time_s")):
        fail("sim_time_s is not a number")
    config = record.get("config")
    if not isinstance(config, dict):
        fail("missing config object")
    keys = list(config)
    if keys != sorted(keys):
        fail("config keys are not sorted (dump would be nondeterministic)")
    for key, value in config.items():
        if not isinstance(value, str):
            fail(f"config[{key!r}] is not a string")
    ring = record.get("ring")
    if not isinstance(ring, dict):
        fail("missing ring object")
    capacity = ring.get("capacity")
    if not isinstance(capacity, int) or isinstance(capacity, bool) or \
            capacity <= 0:
        fail("ring.capacity is not a positive integer")
    overwritten = ring.get("overwritten")
    if not isinstance(overwritten, int) or isinstance(overwritten, bool) or \
            overwritten < 0:
        fail("ring.overwritten is not a non-negative integer")
    events = ring.get("events")
    if not isinstance(events, list):
        fail("ring lacks an events list")
    if len(events) > capacity:
        fail(f"ring holds {len(events)} event(s), capacity {capacity}")
    last_t: float | None = None
    for i, event in enumerate(events):
        where = f"ring.events[{i}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        if not is_number(event.get("t")):
            fail(f"{where} lacks numeric t")
        if last_t is not None and event["t"] < last_t:
            fail(f"{where} t {event['t']} goes backwards")
        last_t = event["t"]
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in KNOWN_PHASES:
            fail(f"{where} has unknown phase {phase!r}")
        for key in ("subsystem", "name"):
            if not isinstance(event.get(key), str) or not event[key]:
                fail(f"{where} lacks string {key!r}")
        if phase in ("b", "e") and "id" not in event:
            fail(f"{where} async event lacks an id")
        if phase == "C" and not is_number(event.get("value")):
            fail(f"{where} counter lacks numeric value")
    metrics = record.get("metrics", "absent")
    if metrics == "absent":
        fail("missing metrics key")
    if metrics is not None and not isinstance(metrics, dict):
        fail("metrics is neither an object nor null")
    return (f"seq {seq} ({reason}): {len(events)} ring event(s), "
            f"{len(config)} config key(s), schema ok")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSON artefact to validate")
    parser.add_argument("--kind", choices=("trace", "series", "flight"),
                        default="trace",
                        help="which obs artefact schema to apply")
    parser.add_argument("--min-subsystems", type=int, default=1,
                        help="require events on at least N tid tracks")
    parser.add_argument("--monotone-ts", action="store_true",
                        help="assert timestamps never decrease in file order")
    parser.add_argument("--require-slo", action="store_true",
                        help="require at least one slo.breach instant")
    args = parser.parse_args()
    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(str(error))
    if args.kind == "series":
        summary = check_series(doc)
    elif args.kind == "flight":
        summary = check_flight(doc)
    else:
        summary = check_trace(doc, args.min_subsystems, args.monotone_ts,
                              args.require_slo)
    print(f"check_trace: {args.trace}: {summary}")


if __name__ == "__main__":
    main()
