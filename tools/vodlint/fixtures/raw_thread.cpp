// vodlint fixture: [raw-thread].  Lint-only — never compiled.
// The ctest entry asserts --expect raw-thread=3 over this file.
#include <future>
#include <thread>

namespace fixture {

void spawn_all() {
  std::thread worker([] {});        // expected: raw std::thread
  worker.detach();                  // expected: detach outside the doorway
  auto future = std::async([] {});  // expected: raw std::async
  // vodlint:allow(raw-thread: fixture demonstrates suppression)
  std::thread waived([] {});  // suppressed: reported but not counted
  waived.join();
}

}  // namespace fixture
