// vodlint fixture: [shared-mutable-global].  Lint-only — never compiled.
// Directory walks skip tools/vodlint/fixtures/; the ctest entry lints this
// file explicitly and asserts --expect shared-mutable-global=2.
namespace fixture {

int bare_counter = 0;  // expected: namespace-scope mutable object

const int kConstant = 3;       // const: clean
constexpr double kRatio = .5;  // constexpr: clean

int next_id() {
  static int counter = 0;  // expected: function-local static singleton
  return ++counter;
}

// vodlint:allow(shared-mutable-global: fixture demonstrates suppression)
int waived_counter = 0;  // suppressed: reported but not counted

}  // namespace fixture
