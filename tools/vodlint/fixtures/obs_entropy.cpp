// vodlint fixture: [entropy] over telemetry-flavored code.  Lint-only —
// never compiled (vodlint reads text, not symbols).  The obs layer itself
// (src/obs/) is directory-exempt because its wall-clock profiler is
// observe-only; this file lives OUTSIDE that quarantine, standing in for
// telemetry code anywhere else in the tree.  Series points, SLO windows
// and flight dumps must be stamped with SimTime — a wall clock or rand()
// in their path silently breaks the byte-identical double-run contract
// (DESIGN.md §16).  The ctest entry asserts --expect entropy=4 over this
// file: four live leaks below, one suppressed twin.

namespace fixture {

// A "timestamp the sample" helper reaching for the host clock: the series
// cadence must come from the simulation, never from here.
double sample_wall_timestamp() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();  // expected: wall-clock read
}

// Jittering a sampling cadence with rand() makes every run's series
// differ; jitter belongs to vod::Rng with a seed if it belongs anywhere.
double jittered_cadence(double cadence_seconds) {
  return cadence_seconds * (1.0 + 0.01 * (rand() % 100));  // expected
}

// Stamping a flight dump with calendar time: two identical runs would
// produce different black boxes.
long long flight_dump_stamp() {
  return static_cast<long long>(time(nullptr));  // expected: time()
}

// Naming dump files from std::random_device: not even seedable.
unsigned dump_nonce() {
  std::random_device device;  // expected: std::random_device
  return device();
}

// The sanctioned escape hatch, for code that genuinely measures the host
// (the profiler pattern): waive with a reason.
double profiler_overhead_probe() {
  // vodlint:entropy-ok(observe-only overhead probe; never feeds the sim)
  const auto now = std::chrono::steady_clock::now();  // suppressed
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace fixture
