// vodlint fixture: [parallel-region-write] over the epoch-barrier shard
// dispatch (DESIGN.md §15).  Lint-only — never compiled.  The ctest entry
// asserts --expect parallel-region-write=2 (plus shared-mutable-global=1
// for the merge counter the bad handler races on).
#include <cstddef>

namespace fixture {

struct EffectBuffer {
  void defer(long value);
};

struct ShardState {
  mutable long merged_ = 0;  // indexed as shared state, not flagged here
};

long effects_applied = 0;  // expected: [shared-mutable-global]

void run_epoch(ShardState& state, EffectBuffer* buffers, long* lanes,
               std::size_t shards) {
  // vodlint: parallel-region
  parallel_for_items(shards, shards * 4, [&](std::size_t begin,
                                             std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      lanes[s] = 7;          // shard-owned slot: clean
      buffers[s].defer(7);   // writes confined to the shard's buffer: clean
      state.merged_ += 1;    // expected: mutable-member write in region
      effects_applied += 1;  // expected: global write in region
      // vodlint:allow(parallel-region-write: fixture suppression demo)
      effects_applied += 1;  // suppressed: reported but not counted
    }
  });
  state.merged_ += 1;  // outside the region: the merge phase is serial
}

}  // namespace fixture
