// vodlint fixture: [parallel-region-write].  Lint-only — never compiled.
// The ctest entry asserts --expect parallel-region-write=2 (plus
// shared-mutable-global=1 for the global the region races on).
#include <cstddef>

namespace fixture {

struct Cache {
  mutable long hits_ = 0;  // indexed as shared state, not flagged here
};

long total_work = 0;  // expected: [shared-mutable-global]

void sweep(Cache& cache, double* out, std::size_t n) {
  // vodlint: parallel-region
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = 2.0;         // chunk-owned slot: clean
      cache.hits_ += 1;     // expected: mutable-member write in region
      total_work += 1;      // expected: global write in region
      // vodlint:allow(parallel-region-write: fixture suppression demo)
      total_work += 1;      // suppressed: reported but not counted
    }
  });
  cache.hits_ += 1;  // outside the region: clean
}

}  // namespace fixture
