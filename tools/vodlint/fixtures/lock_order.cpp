// vodlint fixture: [lock-order].  Lint-only — never compiled (the mutexes
// are deliberately undeclared; vodlint reads text, not symbols).
// The ctest entry asserts --expect lock-order=1 over this file.
#include <mutex>

namespace fixture {

void forward() {
  std::lock_guard<std::mutex> first(mu_a);
  std::lock_guard<std::mutex> second(mu_b);  // establishes mu_a -> mu_b
}

void backward() {
  std::lock_guard<std::mutex> first(mu_b);
  std::lock_guard<std::mutex> second(mu_a);  // expected: opposite order
}

void both_at_once() {
  std::scoped_lock both(mu_a, mu_b);  // atomic multi-acquire: clean
}

void config_forward() {
  std::unique_lock<std::mutex> first(mu_c);
  std::unique_lock<std::mutex> second(mu_d);
}

void config_backward() {
  std::unique_lock<std::mutex> first(mu_d);
  // vodlint:allow(lock-order: fixture demonstrates suppression)
  std::unique_lock<std::mutex> second(mu_c);  // suppressed, not counted
}

}  // namespace fixture
