#!/usr/bin/env python3
"""vodlint — project-specific determinism & invariant checker.

Generic tools (clang-tidy, compiler warnings) cannot see the project's own
correctness contracts.  vodlint enforces the ones that keep every simulation
a deterministic function of its seed, and the unit/contract discipline that
keeps module APIs honest:

  [unordered-iter]  No iteration over std::unordered_map/std::unordered_set
                    in library code (src/).  Hash-order iteration leaks the
                    container's bucket layout into routing, scheduling and
                    cache-eviction decisions — and floating-point reductions
                    are not associative, so even "just summing" in hash
                    order can flip a comparison downstream.  Waive loops
                    whose result is provably order-insensitive with
                    // vodlint:ordered-ok(<reason>).

  [entropy]         No rand()/srand(), std::random_device, wall-clock or
                    time-of-day reads outside src/common/rng.h.  Every
                    stochastic draw must flow through a seeded vod::Rng and
                    every clock through SimTime.  Waive with
                    // vodlint:entropy-ok(<reason>).  src/obs/ is exempt as
                    a directory: the profiling hooks there read the wall
                    clock by design, and their timings never flow back into
                    the simulation (DESIGN.md §11).

  [raw-units]       No raw `double` function parameters named *_seconds /
                    *_mbps / *_mb in headers.  Quantities crossing an API
                    must use SimTime/Duration/Mbps/MegaBytes so the type
                    system, not a naming convention, carries the unit.
                    (Struct fields keep the suffix convention: the name is
                    the documentation there, and no call site can transpose
                    them.)  Waive with // vodlint:units-ok(<reason>).

  [raw-throw]       No `throw` of raw types (string literals, numbers,
                    bools) anywhere, and no direct `throw` of exception
                    objects outside src/common/contract.h — contract
                    violations go through require()/ensure()/require_found()
                    or their fail_*() siblings so messages stay lazy and the
                    exception taxonomy stays consistent.  Waive with
                    // vodlint:throw-ok(<reason>).

  [eager-message]   No eagerly-built std::string messages (concatenation,
                    std::to_string) passed to require()/ensure()/
                    require_found().  The message argument is evaluated even
                    when the condition holds, so hot-path checks must pass a
                    string literal or a lazy lambda.  Waive with
                    // vodlint:contract-ok(<reason>).

  [dense-store]     No node-based std::map/std::set keyed by SessionId or
                    FlowId in the hot-path directories (src/service,
                    src/net, src/stream, src/sim).  Those ids are issued
                    monotonically and churn by the million, so the per-id
                    stores must use the dense SlotMap (DESIGN.md §12);
                    a node-based container there pays pointer chasing and
                    per-entry allocation on every event.  Also flags
                    std::set/multiset<NodeId> in src/service (the failover
                    hot path probes such sets per notification; a sorted
                    vector is strictly better at these sizes).  Small,
                    pruned, or compound-keyed maps can be waived with
                    // vodlint:dense-ok(<reason>).

Race-surface rules (vodlint v2, DESIGN.md §14).  Parallelizing the
simulation core without losing bit-identical replay requires every piece of
shared mutable state to be inventoried and either isolated, synchronized,
or proven read-only during parallel regions.  vodlint builds a lightweight
cross-translation-unit *symbol index* over the scanned tree — namespace-
scope mutable objects, `static`-lifetime locals and data members (the
singleton pattern), and `mutable` class members (state that moves behind
`const` interfaces) — and enforces:

  [shared-mutable-global]  Any non-const object with static storage
                    duration: a namespace-scope definition, a function-
                    local `static`, or a `static` data member.  Each one is
                    cross-thread shared state the parallel migration must
                    account for.  Suppress a deliberately-kept global with
                    // vodlint:allow(shared-mutable-global: <reason>);
                    src/common/parallel.* (the synchronized fork-join
                    runtime itself) is exempt.

  [raw-thread]      Direct std::thread / std::jthread / std::async /
                    .detach() outside src/common/parallel.* — all
                    parallelism flows through the deterministic ParallelFor
                    doorway so worker counts, chunking and merges stay
                    configuration-driven and replayable.  Suppress with
                    // vodlint:allow(raw-thread: <reason>).

  [parallel-region-write]  Writes to indexed shared state (shared-mutable
                    globals or `mutable` members) inside a region annotated
                    // vodlint: parallel-region — the annotation marks code
                    handed to parallel_for/parallel_min, where such writes
                    are cross-thread races.  Suppress with
                    // vodlint:allow(parallel-region-write: <reason>).

  [lock-order]      Mutex acquisitions (lock_guard/unique_lock/scoped_lock/
                    .lock()) observed in inconsistent order across the
                    scanned tree: if one site holds A while taking B and
                    another holds B while taking A, the pair can deadlock.
                    Suppress with // vodlint:allow(lock-order: <reason>).

Usage:
    vodlint.py [--root DIR] [PATH...]      # default PATH: src
    vodlint.py --self-test                 # run the embedded rule fixtures
    vodlint.py --report FILE [PATH...]     # also write a JSON report
                                           # (per-rule counts + locations,
                                           # suppressed findings included)
    vodlint.py --expect RULE=N [PATH...]   # exit 0 iff active findings
                                           # match exactly (fixture tests)

Directory walks skip tools/vodlint/fixtures/ — those files carry
*intentional* violations for the fixture ctest entries; pass a fixture path
explicitly (as the --expect tests do) to lint one.

Exit status: 0 when clean, 1 on unwaived violations (or self-test/--expect
failure), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# --------------------------------------------------------------------------
# Model
# --------------------------------------------------------------------------


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str
    suppressed: bool = False  # waived inline; reported, never fails the run

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


WAIVERS = {
    "unordered-iter": "ordered-ok",
    "entropy": "entropy-ok",
    "raw-units": "units-ok",
    "raw-throw": "throw-ok",
    "eager-message": "contract-ok",
    "dense-store": "dense-ok",
}

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Files exempt from specific rules (path suffix match, '/'-normalized).
ENTROPY_EXEMPT = ("src/common/rng.h",)
# Whole directories exempt from [entropy] (path substring match): the
# observability layer's wall-clock profiler is quarantined there and is
# observe-only — timings never feed back into any simulation decision.
ENTROPY_EXEMPT_DIRS = ("src/obs/",)
THROW_EXEMPT = ("src/common/contract.h",)

# Every rule vodlint knows (report ordering / --expect validation).
ALL_RULES = (
    "unordered-iter",
    "entropy",
    "raw-units",
    "raw-throw",
    "eager-message",
    "dense-store",
    "shared-mutable-global",
    "raw-thread",
    "parallel-region-write",
    "lock-order",
)

# The deterministic fork-join runtime: the one place allowed to own raw
# threads and the (synchronized) global pool they live in.
PARALLEL_DOORWAY = ("src/common/parallel.h", "src/common/parallel.cpp")
# Intentional-violation fixtures for the ctest --expect entries; directory
# walks skip them so whole-tree runs stay clean.
FIXTURE_DIR_FRAGMENT = "tools/vodlint/fixtures"


# --------------------------------------------------------------------------
# Source handling
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets.

    Newlines survive so line numbers stay valid.  Waiver comments are read
    from the *raw* text, never from this stripped view.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def has_waiver(raw_lines: list[str], index: int, tag: str) -> bool:
    """True when line `index` (0-based) carries the waiver, or one appears
    in the contiguous run of // comment lines directly above it."""
    needle = f"vodlint:{tag}("
    if needle in raw_lines[index]:
        return True
    j = index - 1
    while j >= 0 and raw_lines[j].lstrip().startswith("//"):
        if needle in raw_lines[j]:
            return True
        j -= 1
    return False


def statement_from(lines: list[str], index: int, max_span: int = 8) -> str:
    """Joins up to `max_span` lines starting at `index` until parens balance."""
    depth = 0
    parts = []
    for j in range(index, min(index + max_span, len(lines))):
        parts.append(lines[j])
        depth += lines[j].count("(") - lines[j].count(")")
        if depth <= 0 and j > index:
            break
        if depth <= 0 and "(" in lines[j]:
            break
    return " ".join(parts)


def has_allow(raw_lines: list[str], index: int, rule: str) -> bool:
    """True when line `index` (0-based) carries a
    // vodlint:allow(<rule>...) suppression, or one appears in the
    contiguous run of // comment lines directly above it — multi-line
    justifications are encouraged, so the whole comment block counts."""
    needle = re.compile(r"vodlint:\s*allow\(\s*" + re.escape(rule) + r"\b")
    if needle.search(raw_lines[index]):
        return True
    j = index - 1
    while j >= 0 and raw_lines[j].lstrip().startswith("//"):
        if needle.search(raw_lines[j]):
            return True
        j -= 1
    return False


# --------------------------------------------------------------------------
# Scope classification & the race-surface symbol index
# --------------------------------------------------------------------------

_SCOPE_NAMESPACE = "namespace"
_SCOPE_TYPE = "type"
_SCOPE_BLOCK = "block"

_TYPE_BRACE = re.compile(r"\b(?:class|struct|union|enum)\b[^()=]*$")
_NAMESPACE_BRACE = re.compile(r"\bnamespace\b[^()]*$")


def scope_stacks(stripped: str) -> list[list[str]]:
    """For each line of the stripped text, the brace-scope stack in force at
    the *start* of that line.  Scopes are classified by the statement text
    preceding their '{': namespace / type (class, struct, union, enum) /
    block (function bodies, control flow, lambdas, initializers)."""
    stacks: list[list[str]] = []
    stack: list[str] = []
    head = ""  # statement text accumulated since the last ; { or }
    for line in stripped.split("\n"):
        stacks.append(list(stack))
        for ch in line:
            if ch == "{":
                if _NAMESPACE_BRACE.search(head):
                    stack.append(_SCOPE_NAMESPACE)
                elif _TYPE_BRACE.search(head):
                    stack.append(_SCOPE_TYPE)
                else:
                    stack.append(_SCOPE_BLOCK)
                head = ""
            elif ch == "}":
                if stack:
                    stack.pop()
                head = ""
            elif ch == ";":
                head = ""
            else:
                head += ch
        head += " "
    return stacks


@dataclass
class SharedSymbol:
    name: str
    path: str
    line: int  # 1-based
    kind: str  # "global" | "static" | "mutable-member"
    suppressed: bool = False


# A declaration-looking statement: optional qualifiers, a type, one
# identifier, then an initializer or terminator.  Lines with '(' before the
# name's terminator are functions/prototypes and are filtered separately.
_DECL_NAME = re.compile(r"(\w+)\s*(?:\[[^\]]*\])?\s*(?:=[^=]|;|\{)")
_DECL_SKIP = re.compile(
    r"^\s*(?:#|//|using\b|typedef\b|template\b|friend\b|return\b|case\b|"
    r"public:|private:|protected:|extern\b|namespace\b|class\b|struct\b|"
    r"union\b|enum\b|goto\b|if\b|for\b|while\b|switch\b|else\b|do\b)"
)
_CONST_MARK = re.compile(r"\b(?:const|constexpr|consteval)\b")
_STATIC_DECL = re.compile(r"\bstatic\s")
_MUTABLE_DECL = re.compile(r"^\s*mutable\s")


def _decl_name(line: str) -> str | None:
    """The declared identifier on a single-line declaration, or None when
    the line does not look like an object declaration (functions, control
    flow, expressions)."""
    if _DECL_SKIP.search(line):
        return None
    m = _DECL_NAME.search(line)
    if m is None:
        return None
    # '(' before the declarator's terminator means a function declaration,
    # definition, or call statement — not an object.
    if "(" in line[: m.start(1)]:
        return None
    name = m.group(1)
    if name in ("operator", "delete", "new"):
        return None
    # Assignment to an existing object (`foo = 3;`) has no type token before
    # the name; require at least one other identifier-ish token first.
    before = line[: m.start(1)]
    if not re.search(r"[\w>\*&]\s*$", before) or not re.search(r"\w", before):
        return None
    return name


def build_symbol_index(
    sources: dict[str, str], stripped_texts: dict[str, str]
) -> list[SharedSymbol]:
    """Indexes shared mutable state across every scanned translation unit:
    namespace-scope mutable objects, static-lifetime locals/members (the
    singleton pattern), and `mutable` class members (state that moves
    behind const interfaces — what pointer aliasing hands to parallel
    readers)."""
    symbols: list[SharedSymbol] = []
    for path in sorted(sources):
        raw_lines = sources[path].splitlines()
        stripped = stripped_texts[path]
        stripped_lines = stripped.split("\n")
        stacks = scope_stacks(stripped)
        paren_depth = 0  # unbalanced '(' carried across lines
        for i, line in enumerate(stripped_lines):
            at_line_start = paren_depth
            paren_depth = max(
                0, paren_depth + line.count("(") - line.count(")"))
            if at_line_start > 0:
                # Continuation of a parameter list / call — a default
                # argument like `Trace* t = nullptr)` is not a declaration.
                continue
            if not line.strip():
                continue
            stack = stacks[i] if i < len(stacks) else []
            suppressed = has_allow(raw_lines, min(i, len(raw_lines) - 1),
                                   "shared-mutable-global")
            if _MUTABLE_DECL.search(line):
                name = _decl_name(re.sub(r"^\s*mutable\s+", "", line))
                if name is not None:
                    symbols.append(
                        SharedSymbol(name, path, i + 1, "mutable-member",
                                     True))
                continue
            if _STATIC_DECL.search(line) and not _CONST_MARK.search(line):
                # `static` object declarations at any scope: namespace-
                # scope internal linkage, function-local singletons, and
                # static data members all share one instance process-wide.
                name = _decl_name(
                    re.sub(r"\b(?:static|inline|thread_local)\b", " ", line))
                if name is not None:
                    symbols.append(
                        SharedSymbol(name, path, i + 1, "static", suppressed))
                continue
            if stack and not all(s == _SCOPE_NAMESPACE for s in stack):
                continue
            if _CONST_MARK.search(line):
                continue
            name = _decl_name(re.sub(r"\binline\b", " ", line))
            if name is not None:
                symbols.append(
                    SharedSymbol(name, path, i + 1, "global", suppressed))
    return symbols


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+"
    r"(\w+)\s*[;={(]"
)


def collect_unordered_names(stripped_texts: dict[str, str]) -> set[str]:
    """Names of members/variables declared with an unordered container,
    collected repo-wide so loops in .cpp files see declarations from .h."""
    names: set[str] = set()
    for text in stripped_texts.values():
        for match in UNORDERED_DECL.finditer(text):
            names.add(match.group(1))
    return names


def check_unordered_iteration(
    path: str, raw: list[str], stripped: list[str], unordered: set[str]
) -> list[Violation]:
    if not unordered:
        return []
    range_for = re.compile(r"\bfor\s*\(.*:\s*[\w.\->]*?\b(\w+)\s*\)")
    explicit_iter = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")
    out = []
    for i, line in enumerate(stripped):
        hits = set()
        m = range_for.search(line)
        if m and m.group(1) in unordered:
            hits.add(m.group(1))
        for m in explicit_iter.finditer(line):
            if m.group(1) in unordered:
                hits.add(m.group(1))
        for name in sorted(hits):
            out.append(
                Violation(
                    path,
                    i + 1,
                    "unordered-iter",
                    f"iteration over unordered container '{name}' leaks hash "
                    "order into results; use an ordered container/sorted "
                    "index or waive with // vodlint:ordered-ok(<reason>)",
                    suppressed=has_waiver(raw, i, WAIVERS["unordered-iter"]),
                )
            )
    return out


ENTROPY_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (
        re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
        "wall-clock reads",
    ),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b(?:localtime|gmtime|mktime)\s*\("), "calendar time"),
]


def check_entropy(path: str, raw: list[str], stripped: list[str]) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    if any(norm.endswith(suffix) for suffix in ENTROPY_EXEMPT):
        return []
    if any(fragment in norm for fragment in ENTROPY_EXEMPT_DIRS):
        return []
    out = []
    for i, line in enumerate(stripped):
        for pattern, what in ENTROPY_PATTERNS:
            if pattern.search(line):
                out.append(
                    Violation(
                        path,
                        i + 1,
                        "entropy",
                        f"{what} outside src/common/rng.h breaks "
                        "seed-reproducibility; draw through vod::Rng / "
                        "SimTime or waive with "
                        "// vodlint:entropy-ok(<reason>)",
                        suppressed=has_waiver(raw, i, WAIVERS["entropy"]),
                    )
                )
    return out


RAW_UNIT_PARAM = re.compile(
    r"\bdouble\s+(\w+_(?:seconds|mbps|mb))\s*(?:=\s*[^,();]*)?[,)]"
)


def check_raw_units(path: str, raw: list[str], stripped: list[str]) -> list[Violation]:
    if not path.endswith((".h", ".hpp")):
        return []
    out = []
    for i, line in enumerate(stripped):
        for m in RAW_UNIT_PARAM.finditer(line):
            out.append(
                Violation(
                    path,
                    i + 1,
                    "raw-units",
                    f"raw double parameter '{m.group(1)}' crosses an API; "
                    "use SimTime/Duration/Mbps/MegaBytes or waive with "
                    "// vodlint:units-ok(<reason>)",
                    suppressed=has_waiver(raw, i, WAIVERS["raw-units"]),
                )
            )
    return out


RAW_THROW = re.compile(r"\bthrow\s+(?:\"|L\"|u8\"|'|[0-9]|true\b|false\b|-)")
DIRECT_THROW = re.compile(r"\bthrow\s+[A-Za-z_:]")


def check_throws(path: str, raw: list[str], stripped: list[str]) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    exempt = any(norm.endswith(suffix) for suffix in THROW_EXEMPT)
    out = []
    for i, line in enumerate(stripped):
        if RAW_THROW.search(line):
            out.append(
                Violation(
                    path,
                    i + 1,
                    "raw-throw",
                    "throwing a raw value (literal/number) — throw an "
                    "exception type via the contract.h helpers",
                    suppressed=has_waiver(raw, i, WAIVERS["raw-throw"]),
                )
            )
            continue
        if exempt:
            continue
        if DIRECT_THROW.search(line):
            out.append(
                Violation(
                    path,
                    i + 1,
                    "raw-throw",
                    "direct throw outside contract.h; use require()/ensure()/"
                    "require_found() or fail_require()/fail_ensure()/"
                    "fail_lookup(), or waive with "
                    "// vodlint:throw-ok(<reason>)",
                    suppressed=has_waiver(raw, i, WAIVERS["raw-throw"]),
                )
            )
    return out


CONTRACT_CALL = re.compile(r"\b(require|ensure|require_found)\s*\(")
EAGER_MESSAGE = re.compile(r"std\s*::\s*to_string\s*\(|\"\s*\+|\+\s*\"|std\s*::\s*string\s*[({]")
LAZY_LAMBDA = re.compile(r"\[[&=]?\]\s*(?:\(\s*\))?\s*\{")


def check_eager_messages(
    path: str, raw: list[str], stripped: list[str]
) -> list[Violation]:
    out = []
    for i, line in enumerate(stripped):
        m = CONTRACT_CALL.search(line)
        if not m:
            continue
        stmt = statement_from(stripped, i)
        if EAGER_MESSAGE.search(stmt) and not LAZY_LAMBDA.search(stmt):
            out.append(
                Violation(
                    path,
                    i + 1,
                    "eager-message",
                    f"{m.group(1)}() message built eagerly (concatenation/"
                    "to_string) — it allocates even when the check passes; "
                    "pass a literal or a lazy lambda, or waive with "
                    "// vodlint:contract-ok(<reason>)",
                    suppressed=has_waiver(raw, i, WAIVERS["eager-message"]),
                )
            )
    return out


DENSE_STORE_DIRS = ("src/service/", "src/net/", "src/stream/", "src/sim/")
NODE_MAP_BY_ID = re.compile(
    r"std\s*::\s*(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:\w+\s*::\s*)*(SessionId|FlowId)\b"
)
# std::set<NodeId> on the service's failover hot path: membership probes
# per fault notification want a sorted vector, not a node-based tree.
NODE_SET_OF_NODES = re.compile(
    r"std\s*::\s*(?:set|multiset)\s*<\s*(?:\w+\s*::\s*)*NodeId\b"
)
NODE_SET_DIRS = ("src/service/",)


def check_dense_store(
    path: str, raw: list[str], stripped: list[str]
) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    if not any(fragment in norm for fragment in DENSE_STORE_DIRS):
        return []
    node_set_applies = any(fragment in norm for fragment in NODE_SET_DIRS)
    out = []
    for i, line in enumerate(stripped):
        m = NODE_MAP_BY_ID.search(line)
        if m is not None:
            message = (
                f"node-based container keyed by {m.group(1)} in a hot-path "
                "directory; ids are monotonic and churn at scale — use "
                "SlotMap (common/slot_map.h) or waive with "
                "// vodlint:dense-ok(<reason>)"
            )
        elif node_set_applies and NODE_SET_OF_NODES.search(line):
            message = (
                "std::set<NodeId> in src/service; the failover hot path "
                "probes it per notification — use a sorted "
                "std::vector<NodeId> with binary search, or waive with "
                "// vodlint:dense-ok(<reason>)"
            )
        else:
            continue
        out.append(
            Violation(path, i + 1, "dense-store", message,
                      suppressed=has_waiver(raw, i, WAIVERS["dense-store"])))
    return out


def check_shared_mutable_global(
    symbols: list[SharedSymbol],
) -> list[Violation]:
    out = []
    for sym in symbols:
        if sym.kind == "mutable-member":
            continue  # indexed for [parallel-region-write], not flagged here
        norm = sym.path.replace(os.sep, "/")
        if any(norm.endswith(suffix) for suffix in PARALLEL_DOORWAY):
            continue
        what = ("namespace-scope mutable object"
                if sym.kind == "global" else "static-lifetime object")
        out.append(
            Violation(
                sym.path,
                sym.line,
                "shared-mutable-global",
                f"{what} '{sym.name}' is cross-thread shared state the "
                "parallel migration must isolate, synchronize, or prove "
                "read-only; make it const, move it into an owning object, "
                "or suppress with "
                "// vodlint:allow(shared-mutable-global: <reason>)",
                suppressed=sym.suppressed,
            )
        )
    return out


RAW_THREAD_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*thread\b"), "std::thread"),
    (re.compile(r"\bstd\s*::\s*jthread\b"), "std::jthread"),
    (re.compile(r"\bstd\s*::\s*async\b"), "std::async"),
    (re.compile(r"\.\s*detach\s*\(\s*\)"), ".detach()"),
]


def check_raw_thread(
    path: str, raw: list[str], stripped: list[str]
) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    if any(norm.endswith(suffix) for suffix in PARALLEL_DOORWAY):
        return []
    out = []
    for i, line in enumerate(stripped):
        for pattern, what in RAW_THREAD_PATTERNS:
            if pattern.search(line):
                out.append(
                    Violation(
                        path,
                        i + 1,
                        "raw-thread",
                        f"{what} outside src/common/parallel.h bypasses the "
                        "deterministic ParallelFor doorway (fixed workers, "
                        "static chunking, ordered merges); route through "
                        "vod::parallel_for or suppress with "
                        "// vodlint:allow(raw-thread: <reason>)",
                        suppressed=has_allow(raw, i, "raw-thread"),
                    )
                )
    return out


PARALLEL_REGION_MARK = re.compile(r"vodlint:\s*parallel-region\b")
_MUTATING_CALLS = (
    "push_back|pop_back|emplace_back|emplace|insert|erase|clear|resize|"
    "reserve|assign|store|reset|swap"
)


def _write_pattern(name: str) -> re.Pattern[str]:
    escaped = re.escape(name)
    return re.compile(
        r"(?:\+\+|--)\s*" + escaped + r"\b"
        r"|\b" + escaped + r"\s*(?:\[[^\]]*\])?\s*"
        r"(?:=(?!=)|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--)"
        r"|\b" + escaped + r"\s*\.\s*(?:" + _MUTATING_CALLS + r")\s*\("
    )


def parallel_regions(stripped: list[str], raw: list[str]) -> list[range]:
    """Line ranges (0-based, inclusive of the braces' lines) covered by a
    // vodlint: parallel-region annotation: the next braced block at or
    after the annotation line."""
    regions: list[range] = []
    for i, line in enumerate(raw):
        if not PARALLEL_REGION_MARK.search(line):
            continue
        depth = 0
        opened = False
        for j in range(i, len(stripped)):
            for ch in stripped[j]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened and depth <= 0:
                regions.append(range(i, j + 1))
                break
        else:
            if opened:
                regions.append(range(i, len(stripped)))
    return regions


def check_parallel_region_writes(
    path: str,
    raw: list[str],
    stripped: list[str],
    shared_names: dict[str, SharedSymbol],
) -> list[Violation]:
    if not shared_names:
        return []
    regions = parallel_regions(stripped, raw)
    if not regions:
        return []
    out = []
    patterns = {
        name: _write_pattern(name) for name in sorted(shared_names)
    }
    seen: set[tuple[int, str]] = set()
    for region in regions:
        for i in region:
            if i >= len(stripped):
                break
            for name, pattern in patterns.items():
                if (i, name) in seen:
                    continue
                if pattern.search(stripped[i]):
                    seen.add((i, name))
                    sym = shared_names[name]
                    out.append(
                        Violation(
                            path,
                            i + 1,
                            "parallel-region-write",
                            f"write to shared state '{name}' ({sym.kind}, "
                            f"declared {sym.path}:{sym.line}) inside a "
                            "// vodlint: parallel-region — a cross-thread "
                            "race under ParallelFor; give each chunk its "
                            "own slot and merge in index order, or "
                            "suppress with "
                            "// vodlint:allow(parallel-region-write: "
                            "<reason>)",
                            suppressed=has_allow(raw, i,
                                                 "parallel-region-write"),
                        )
                    )
    out.sort(key=lambda v: v.line)
    return out


LOCK_ACQUIRE = re.compile(
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\s*"
    r"(?:<[^>]*>)?\s+\w+\s*[({]\s*([^;]*?)\s*[)}]"
)
LOCK_CALL = re.compile(r"\b([\w.>\-]+?)\s*\.\s*lock\s*\(\s*\)")


def _normalize_mutex(name: str) -> str:
    return re.sub(r"\s+", "", name.replace("this->", ""))


@dataclass
class LockSite:
    path: str
    line: int  # 1-based
    held: str
    taken: str


def collect_lock_edges(
    path: str, stripped: list[str]
) -> list[LockSite]:
    """Acquisition-order edges: (held, taken) pairs with the taken-site
    location.  Held locks are tracked by brace depth — a guard releases
    when its scope closes."""
    edges: list[LockSite] = []
    held: list[tuple[str, int]] = []  # (mutex, depth at acquisition)
    depth = 0
    for i, line in enumerate(stripped):
        # Close scopes first so a guard does not appear held on the line of
        # its closing brace.
        closes = line.count("}")
        opens = line.count("{")
        if closes > opens:
            depth = max(0, depth - (closes - opens))
            held = [(m, d) for (m, d) in held if d <= depth]
        taken_here: list[str] = []
        m = LOCK_ACQUIRE.search(line)
        if m is not None:
            taken_here = [
                _normalize_mutex(part)
                for part in m.group(1).split(",")
                if _normalize_mutex(part)
            ]
        else:
            call = LOCK_CALL.search(line)
            if call is not None:
                taken_here = [_normalize_mutex(call.group(1))]
        for taken in taken_here:
            for held_mutex, _ in held:
                if held_mutex != taken:
                    edges.append(LockSite(path, i + 1, held_mutex, taken))
        # std::scoped_lock's multi-mutex acquisition is deadlock-free by
        # contract, so members of one acquisition carry no mutual order.
        for taken in taken_here:
            held.append((taken, depth + (1 if opens > closes else 0)))
        if opens > closes:
            depth += opens - closes
        elif opens == closes and opens > 0:
            pass  # balanced braces on one line: same depth
    return edges


def check_lock_order(
    all_edges: list[LockSite], sources: dict[str, str]
) -> list[Violation]:
    first_seen: dict[tuple[str, str], LockSite] = {}
    out = []
    for edge in all_edges:
        key = (edge.held, edge.taken)
        reverse = (edge.taken, edge.held)
        if reverse in first_seen and key not in first_seen:
            prior = first_seen[reverse]
            raw_lines = sources[edge.path].splitlines()
            out.append(
                Violation(
                    edge.path,
                    edge.line,
                    "lock-order",
                    f"acquires '{edge.taken}' while holding '{edge.held}', "
                    f"but {prior.path}:{prior.line} acquires them in the "
                    "opposite order — a deadlock window; pick one order "
                    "(or std::scoped_lock both), or suppress with "
                    "// vodlint:allow(lock-order: <reason>)",
                    suppressed=has_allow(raw_lines, edge.line - 1,
                                         "lock-order"),
                )
            )
        first_seen.setdefault(key, edge)
    return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def gather_files(root: str, paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                if FIXTURE_DIR_FRAGMENT in dirpath.replace(os.sep, "/"):
                    dirnames[:] = []  # intentional violations; lint explicitly
                    continue
                for name in sorted(filenames):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"vodlint: no such path: {full}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def lint_sources(sources: dict[str, str]) -> list[Violation]:
    """Lints {path: text}.  Split out from main() so self-tests can feed
    synthetic files through the exact production path.  Returns every
    finding, suppressed ones included — callers decide whether a waived
    violation counts (the CLI exit code and self-test only look at active
    findings; the JSON report shows both)."""
    stripped_texts = {p: strip_comments_and_strings(t) for p, t in sources.items()}
    unordered = collect_unordered_names(stripped_texts)
    symbols = build_symbol_index(sources, stripped_texts)
    shared_names: dict[str, SharedSymbol] = {}
    for sym in symbols:
        shared_names.setdefault(sym.name, sym)
    all_edges: list[LockSite] = []
    violations: list[Violation] = []
    for path in sorted(sources):
        raw_lines = sources[path].splitlines()
        stripped_lines = stripped_texts[path].splitlines()
        violations += check_unordered_iteration(
            path, raw_lines, stripped_lines, unordered
        )
        violations += check_entropy(path, raw_lines, stripped_lines)
        violations += check_raw_units(path, raw_lines, stripped_lines)
        violations += check_throws(path, raw_lines, stripped_lines)
        violations += check_eager_messages(path, raw_lines, stripped_lines)
        violations += check_dense_store(path, raw_lines, stripped_lines)
        violations += check_shared_mutable_global(
            [s for s in symbols if s.path == path]
        )
        violations += check_raw_thread(path, raw_lines, stripped_lines)
        violations += check_parallel_region_writes(
            path, raw_lines, stripped_lines, shared_names
        )
        all_edges += collect_lock_edges(path, stripped_lines)
    violations += check_lock_order(all_edges, sources)
    return violations


def write_report(
    report_path: str, root: str, files: list[str], violations: list[Violation]
) -> None:
    import json

    rules = {
        rule: {"active": 0, "suppressed": 0} for rule in ALL_RULES
    }
    entries = []
    for v in violations:
        rules[v.rule]["suppressed" if v.suppressed else "active"] += 1
        entries.append(
            {
                "path": os.path.relpath(v.path, root),
                "line": v.line,
                "rule": v.rule,
                "suppressed": v.suppressed,
                "message": v.message,
            }
        )
    payload = {
        "files_scanned": len(files),
        "rules": rules,
        "violations": entries,
    }
    os.makedirs(os.path.dirname(report_path) or ".", exist_ok=True)
    with open(report_path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def parse_expectations(specs: list[str]) -> dict[str, int]:
    expected: dict[str, int] = {}
    for spec in specs:
        rule, sep, count = spec.partition("=")
        if not sep or rule not in ALL_RULES or not count.isdigit():
            print(
                f"vodlint: bad --expect '{spec}' (want RULE=N, RULE one of "
                f"{', '.join(ALL_RULES)})",
                file=sys.stderr,
            )
            sys.exit(2)
        expected[rule] = expected.get(rule, 0) + int(count)
    return expected


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="vodlint", add_help=True)
    parser.add_argument("--root", default=None, help="repo root (default: cwd)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="write a JSON report (per-rule active/suppressed counts + "
        "locations)")
    parser.add_argument(
        "--expect", action="append", default=[], metavar="RULE=N",
        help="assert exactly N active findings of RULE (repeatable; "
        "unlisted rules must report zero) — exit 0 iff all match, for "
        "fixture ctest entries")
    parser.add_argument("paths", nargs="*", default=None)
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.getcwd()
    paths = args.paths or ["src"]
    files = gather_files(root, paths)
    sources = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            sources[path] = f.read()
    violations = lint_sources(sources)
    active = [v for v in violations if not v.suppressed]
    for v in violations:
        print(v.render() + (" (suppressed)" if v.suppressed else ""))
    if args.report:
        write_report(args.report, root, files, violations)

    if args.expect:
        expected = parse_expectations(args.expect)
        counts: dict[str, int] = {}
        for v in active:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        failures = []
        for rule in ALL_RULES:
            want = expected.get(rule, 0)
            got = counts.get(rule, 0)
            if want != got:
                failures.append(f"{rule}: expected {want}, got {got}")
        if failures:
            print("vodlint: --expect mismatch: " + "; ".join(failures),
                  file=sys.stderr)
            return 1
        print(f"vodlint: expectations met over {len(files)} file(s)")
        return 0

    if active:
        suffix = (f" (+{len(violations) - len(active)} suppressed)"
                  if len(violations) > len(active) else "")
        print(f"vodlint: {len(active)} violation(s){suffix}", file=sys.stderr)
        return 1
    print(f"vodlint: {len(files)} file(s) clean")
    return 0


# --------------------------------------------------------------------------
# Self-test fixtures
# --------------------------------------------------------------------------

FIXTURES: list[tuple[str, dict[str, str], list[tuple[str, int]]]] = [
    (
        "unordered range-for flagged; waiver honoured; membership ops ok",
        {
            "src/a.h": (
                "#include <unordered_map>\n"
                "struct S {\n"
                "  std::unordered_map<int, double> flows_;\n"
                "};\n"
            ),
            "src/a.cpp": (
                "void f(S& s) {\n"
                "  for (const auto& [id, v] : s.flows_) {}\n"
                "  // vodlint:ordered-ok(pure max reduction)\n"
                "  for (const auto& [id, v] : s.flows_) {}\n"
                "  s.flows_.erase(3);\n"
                "}\n"
            ),
        },
        [("unordered-iter", 2)],
    ),
    (
        "explicit begin() iteration flagged",
        {
            "src/b.h": (
                "#include <unordered_set>\n"
                "struct B {\n"
                "  std::unordered_set<int> seen_;\n"
                "};\n"
            ),
            "src/b.cpp": "void f(B& b) { auto it = b.seen_.begin(); }\n",
        },
        [("unordered-iter", 1)],
    ),
    (
        "incidence-index containers (vector-of-vectors) iterate freely; an "
        "unordered index of the same shape is still flagged",
        {
            "src/h.h": (
                "#include <unordered_map>\n"
                "#include <vector>\n"
                "struct Net {\n"
                "  std::vector<std::vector<int>> link_flows_;\n"
                "  std::unordered_map<int, int> flow_slots_;\n"
                "};\n"
            ),
            "src/h.cpp": (
                "void sweep(Net& n) {\n"
                "  for (const auto& list : n.link_flows_) {\n"
                "    for (int id : list) {}\n"
                "  }\n"
                "  for (const auto& [id, slot] : n.flow_slots_) {}\n"
                "  if (n.flow_slots_.count(3) > 0) {}\n"
                "}\n"
            ),
        },
        [("unordered-iter", 5)],
    ),
    (
        "entropy sources flagged outside rng.h, allowed inside",
        {
            "src/c.cpp": (
                "int f() { return rand(); }\n"
                "void g() { t_ = std::chrono::system_clock::now(); }\n"
                "void h() { ok_ = network_.time(); }\n"  # member, not ::time()
            ),
            "src/common/rng.h": "struct R { std::random_device rd; };\n",
        },
        [("entropy", 1), ("entropy", 2)],
    ),
    (
        "entropy exempt in the src/obs/ quarantine directory, flagged "
        "elsewhere",
        {
            "src/obs/profile.h": (
                "void p() { t0_ = std::chrono::steady_clock::now(); }\n"
            ),
            "src/obs/trace.cpp": (
                "void q() { t1_ = std::chrono::steady_clock::now(); }\n"
            ),
            "src/stream/session.cpp": (
                "void r() { t2_ = std::chrono::steady_clock::now(); }\n"
            ),
        },
        [("entropy", 1)],
    ),
    (
        "raw unit params flagged in headers only; fields untouched",
        {
            "src/d.h": (
                "void run(double horizon_seconds, int n);\n"
                "struct Opt { double mttr_seconds = 3.0; };\n"
                "void go(double cap_mbps);\n"
            ),
            "src/d.cpp": "void run(double horizon_seconds, int n) {}\n",
        },
        [("raw-units", 1), ("raw-units", 3)],
    ),
    (
        "direct and raw throws flagged; contract.h exempt; rethrow ok",
        {
            "src/e.cpp": (
                'void f() { throw std::invalid_argument("x"); }\n'
                'void g() { throw "bare"; }\n'
                "void h() { try { f(); } catch (...) { throw; } }\n"
            ),
            "src/common/contract.h": (
                'inline void req() { throw std::logic_error("m"); }\n'
            ),
        },
        [("raw-throw", 1), ("raw-throw", 2)],
    ),
    (
        "eager contract messages flagged; lambda and literal pass",
        {
            "src/f.cpp": (
                'require(ok, "msg " + std::to_string(n));\n'
                'require(ok, [&] { return "msg " + std::to_string(n); });\n'
                'require(ok, "plain literal");\n'
                "ensure(done,\n"
                '       "multi" + suffix);\n'
            ),
        },
        [("eager-message", 1), ("eager-message", 4)],
    ),
    (
        "node-based per-id stores flagged in hot-path dirs only; compound "
        "keys pass; NodeId sets flagged in src/service only; waiver "
        "honoured",
        {
            "src/service/store.h": (
                "#include <map>\n"
                "#include <set>\n"
                "struct S {\n"
                "  std::map<SessionId, int> sessions_;\n"
                "  std::set<vod::FlowId> flows_;\n"
                "  // vodlint:dense-ok(tiny, pruned on lookup)\n"
                "  std::map<SessionId, int> waived_;\n"
                "  std::map<std::pair<NodeId, VideoId>, int> batches_;\n"
                "  std::set<NodeId> crashed_;\n"
                "  std::map<NodeId, int> servers_;\n"
                "};\n"
            ),
            "src/net/peers.h": "struct P { std::set<NodeId> peers_; };\n",
            "src/db/catalog.h": (
                "struct C { std::map<SessionId, int> offline_ok_; };\n"
            ),
        },
        [("dense-store", 4), ("dense-store", 5), ("dense-store", 9)],
    ),
    (
        "violations inside comments and strings are ignored",
        {
            "src/g.cpp": (
                "// throw 42; rand();\n"
                '/* for (auto x : flows_) */ const char* s = "rand()";\n'
            ),
            "src/g.h": (
                "#include <unordered_map>\n"
                "struct G {\n"
                "  std::unordered_map<int,int> flows_;\n"
                "};\n"
            ),
        },
        [],
    ),
    (
        "shared-mutable-global: namespace-scope objects and function-local "
        "statics flagged; const passes; allow() suppresses",
        {
            "src/sched.cpp": (
                "namespace vod {\n"
                "int event_horizon = 0;\n"
                "const int kLimit = 3;\n"
                "// vodlint:allow(shared-mutable-global: guarded by init_mu)\n"
                "int waived_counter = 0;\n"
                "int next_id() {\n"
                "  static int counter = 0;\n"
                "  return ++counter;\n"
                "}\n"
                "}\n"
            ),
        },
        [("shared-mutable-global", 2), ("shared-mutable-global", 7)],
    ),
    (
        "raw-thread: std::thread/.detach()/std::async flagged outside the "
        "parallel doorway; doorway exempt; allow() suppresses",
        {
            "src/runner.cpp": (
                "void launch() {\n"
                "  std::thread t([] {});\n"
                "  t.detach();\n"
                "  auto f = std::async(probe);\n"
                "  // vodlint:allow(raw-thread: teardown outside sim loop)\n"
                "  std::thread waived(cleanup);\n"
                "}\n"
            ),
            "src/common/parallel.cpp": (
                "void pool() {\n"
                "  std::thread worker([] {});\n"
                "}\n"
            ),
        },
        [("raw-thread", 2), ("raw-thread", 3), ("raw-thread", 4)],
    ),
    (
        "parallel-region-write: writes to indexed shared state inside an "
        "annotated region flagged (cross-TU: the mutable member lives in "
        "the header); chunk-local writes pass; allow() suppresses",
        {
            "src/net/fill.h": (
                "struct Fill {\n"
                "  mutable long cache_hits_ = 0;\n"
                "};\n"
            ),
            "src/net/fill.cpp": (
                "namespace vod {\n"
                "long total_work = 0;\n"
                "void sweep(std::vector<double>& out) {\n"
                "  // vodlint: parallel-region\n"
                "  parallel_for(out.size(), [&](std::size_t b, std::size_t e) {\n"
                "    for (std::size_t i = b; i < e; ++i) {\n"
                "      out[i] = 2.0;\n"
                "      cache_hits_ += 1;\n"
                "      total_work += 1;\n"
                "      // vodlint:allow(parallel-region-write: index-merged)\n"
                "      total_work += 1;\n"
                "    }\n"
                "  });\n"
                "  cache_hits_ += 1;\n"
                "}\n"
                "}\n"
            ),
        },
        [
            ("shared-mutable-global", 2),
            ("parallel-region-write", 8),
            ("parallel-region-write", 9),
        ],
    ),
    (
        "lock-order: opposite acquisition orders flagged at the second "
        "site; scoped_lock multi-acquisition carries no order; allow() "
        "suppresses",
        {
            "src/locks.cpp": (
                "void a() {\n"
                "  std::lock_guard<std::mutex> g1(mu_a);\n"
                "  std::lock_guard<std::mutex> g2(mu_b);\n"
                "}\n"
                "void b() {\n"
                "  std::lock_guard<std::mutex> g1(mu_b);\n"
                "  std::lock_guard<std::mutex> g2(mu_a);\n"
                "}\n"
                "void c() {\n"
                "  std::scoped_lock both(mu_a, mu_b);\n"
                "}\n"
            ),
            "src/locks2.cpp": (
                "void d() {\n"
                "  std::unique_lock<std::mutex> g1(mu_c);\n"
                "  std::unique_lock<std::mutex> g2(mu_d);\n"
                "}\n"
                "void e() {\n"
                "  std::unique_lock<std::mutex> g1(mu_d);\n"
                "  // vodlint:allow(lock-order: never concurrent with d())\n"
                "  std::unique_lock<std::mutex> g2(mu_c);\n"
                "}\n"
            ),
        },
        [("lock-order", 7)],
    ),
]


def self_test() -> int:
    failures = 0
    for name, files, expected in FIXTURES:
        got = [(v.rule, v.line)
               for v in lint_sources(files) if not v.suppressed]
        if got != expected:
            failures += 1
            print(f"SELF-TEST FAIL: {name}\n  expected {expected}\n  got      {got}")
    if failures:
        print(f"vodlint self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"vodlint self-test: {len(FIXTURES)} fixture(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
