#!/usr/bin/env python3
"""vodlint — project-specific determinism & invariant checker.

Generic tools (clang-tidy, compiler warnings) cannot see the project's own
correctness contracts.  vodlint enforces the ones that keep every simulation
a deterministic function of its seed, and the unit/contract discipline that
keeps module APIs honest:

  [unordered-iter]  No iteration over std::unordered_map/std::unordered_set
                    in library code (src/).  Hash-order iteration leaks the
                    container's bucket layout into routing, scheduling and
                    cache-eviction decisions — and floating-point reductions
                    are not associative, so even "just summing" in hash
                    order can flip a comparison downstream.  Waive loops
                    whose result is provably order-insensitive with
                    // vodlint:ordered-ok(<reason>).

  [entropy]         No rand()/srand(), std::random_device, wall-clock or
                    time-of-day reads outside src/common/rng.h.  Every
                    stochastic draw must flow through a seeded vod::Rng and
                    every clock through SimTime.  Waive with
                    // vodlint:entropy-ok(<reason>).  src/obs/ is exempt as
                    a directory: the profiling hooks there read the wall
                    clock by design, and their timings never flow back into
                    the simulation (DESIGN.md §11).

  [raw-units]       No raw `double` function parameters named *_seconds /
                    *_mbps / *_mb in headers.  Quantities crossing an API
                    must use SimTime/Duration/Mbps/MegaBytes so the type
                    system, not a naming convention, carries the unit.
                    (Struct fields keep the suffix convention: the name is
                    the documentation there, and no call site can transpose
                    them.)  Waive with // vodlint:units-ok(<reason>).

  [raw-throw]       No `throw` of raw types (string literals, numbers,
                    bools) anywhere, and no direct `throw` of exception
                    objects outside src/common/contract.h — contract
                    violations go through require()/ensure()/require_found()
                    or their fail_*() siblings so messages stay lazy and the
                    exception taxonomy stays consistent.  Waive with
                    // vodlint:throw-ok(<reason>).

  [eager-message]   No eagerly-built std::string messages (concatenation,
                    std::to_string) passed to require()/ensure()/
                    require_found().  The message argument is evaluated even
                    when the condition holds, so hot-path checks must pass a
                    string literal or a lazy lambda.  Waive with
                    // vodlint:contract-ok(<reason>).

  [dense-store]     No node-based std::map/std::set keyed by SessionId or
                    FlowId in the hot-path directories (src/service,
                    src/net, src/stream, src/sim).  Those ids are issued
                    monotonically and churn by the million, so the per-id
                    stores must use the dense SlotMap (DESIGN.md §12);
                    a node-based container there pays pointer chasing and
                    per-entry allocation on every event.  Also flags
                    std::set/multiset<NodeId> in src/service (the failover
                    hot path probes such sets per notification; a sorted
                    vector is strictly better at these sizes).  Small,
                    pruned, or compound-keyed maps can be waived with
                    // vodlint:dense-ok(<reason>).

Usage:
    vodlint.py [--root DIR] [PATH...]      # default PATH: src
    vodlint.py --self-test                 # run the embedded rule fixtures

Exit status: 0 when clean, 1 on unwaived violations (or self-test failure),
2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# --------------------------------------------------------------------------
# Model
# --------------------------------------------------------------------------


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


WAIVERS = {
    "unordered-iter": "ordered-ok",
    "entropy": "entropy-ok",
    "raw-units": "units-ok",
    "raw-throw": "throw-ok",
    "eager-message": "contract-ok",
    "dense-store": "dense-ok",
}

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Files exempt from specific rules (path suffix match, '/'-normalized).
ENTROPY_EXEMPT = ("src/common/rng.h",)
# Whole directories exempt from [entropy] (path substring match): the
# observability layer's wall-clock profiler is quarantined there and is
# observe-only — timings never feed back into any simulation decision.
ENTROPY_EXEMPT_DIRS = ("src/obs/",)
THROW_EXEMPT = ("src/common/contract.h",)


# --------------------------------------------------------------------------
# Source handling
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets.

    Newlines survive so line numbers stay valid.  Waiver comments are read
    from the *raw* text, never from this stripped view.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def has_waiver(raw_lines: list[str], index: int, tag: str) -> bool:
    """True when line `index` (0-based) or the line above carries the waiver."""
    needle = f"vodlint:{tag}("
    if needle in raw_lines[index]:
        return True
    return index > 0 and needle in raw_lines[index - 1]


def statement_from(lines: list[str], index: int, max_span: int = 8) -> str:
    """Joins up to `max_span` lines starting at `index` until parens balance."""
    depth = 0
    parts = []
    for j in range(index, min(index + max_span, len(lines))):
        parts.append(lines[j])
        depth += lines[j].count("(") - lines[j].count(")")
        if depth <= 0 and j > index:
            break
        if depth <= 0 and "(" in lines[j]:
            break
    return " ".join(parts)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+"
    r"(\w+)\s*[;={(]"
)


def collect_unordered_names(stripped_texts: dict[str, str]) -> set[str]:
    """Names of members/variables declared with an unordered container,
    collected repo-wide so loops in .cpp files see declarations from .h."""
    names: set[str] = set()
    for text in stripped_texts.values():
        for match in UNORDERED_DECL.finditer(text):
            names.add(match.group(1))
    return names


def check_unordered_iteration(
    path: str, raw: list[str], stripped: list[str], unordered: set[str]
) -> list[Violation]:
    if not unordered:
        return []
    range_for = re.compile(r"\bfor\s*\(.*:\s*[\w.\->]*?\b(\w+)\s*\)")
    explicit_iter = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")
    out = []
    for i, line in enumerate(stripped):
        hits = set()
        m = range_for.search(line)
        if m and m.group(1) in unordered:
            hits.add(m.group(1))
        for m in explicit_iter.finditer(line):
            if m.group(1) in unordered:
                hits.add(m.group(1))
        for name in sorted(hits):
            if has_waiver(raw, i, WAIVERS["unordered-iter"]):
                continue
            out.append(
                Violation(
                    path,
                    i + 1,
                    "unordered-iter",
                    f"iteration over unordered container '{name}' leaks hash "
                    "order into results; use an ordered container/sorted "
                    "index or waive with // vodlint:ordered-ok(<reason>)",
                )
            )
    return out


ENTROPY_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (
        re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
        "wall-clock reads",
    ),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b(?:localtime|gmtime|mktime)\s*\("), "calendar time"),
]


def check_entropy(path: str, raw: list[str], stripped: list[str]) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    if any(norm.endswith(suffix) for suffix in ENTROPY_EXEMPT):
        return []
    if any(fragment in norm for fragment in ENTROPY_EXEMPT_DIRS):
        return []
    out = []
    for i, line in enumerate(stripped):
        for pattern, what in ENTROPY_PATTERNS:
            if pattern.search(line):
                if has_waiver(raw, i, WAIVERS["entropy"]):
                    continue
                out.append(
                    Violation(
                        path,
                        i + 1,
                        "entropy",
                        f"{what} outside src/common/rng.h breaks "
                        "seed-reproducibility; draw through vod::Rng / "
                        "SimTime or waive with "
                        "// vodlint:entropy-ok(<reason>)",
                    )
                )
    return out


RAW_UNIT_PARAM = re.compile(
    r"\bdouble\s+(\w+_(?:seconds|mbps|mb))\s*(?:=\s*[^,();]*)?[,)]"
)


def check_raw_units(path: str, raw: list[str], stripped: list[str]) -> list[Violation]:
    if not path.endswith((".h", ".hpp")):
        return []
    out = []
    for i, line in enumerate(stripped):
        for m in RAW_UNIT_PARAM.finditer(line):
            if has_waiver(raw, i, WAIVERS["raw-units"]):
                continue
            out.append(
                Violation(
                    path,
                    i + 1,
                    "raw-units",
                    f"raw double parameter '{m.group(1)}' crosses an API; "
                    "use SimTime/Duration/Mbps/MegaBytes or waive with "
                    "// vodlint:units-ok(<reason>)",
                )
            )
    return out


RAW_THROW = re.compile(r"\bthrow\s+(?:\"|L\"|u8\"|'|[0-9]|true\b|false\b|-)")
DIRECT_THROW = re.compile(r"\bthrow\s+[A-Za-z_:]")


def check_throws(path: str, raw: list[str], stripped: list[str]) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    exempt = any(norm.endswith(suffix) for suffix in THROW_EXEMPT)
    out = []
    for i, line in enumerate(stripped):
        if RAW_THROW.search(line):
            if not has_waiver(raw, i, WAIVERS["raw-throw"]):
                out.append(
                    Violation(
                        path,
                        i + 1,
                        "raw-throw",
                        "throwing a raw value (literal/number) — throw an "
                        "exception type via the contract.h helpers",
                    )
                )
            continue
        if exempt:
            continue
        if DIRECT_THROW.search(line):
            if has_waiver(raw, i, WAIVERS["raw-throw"]):
                continue
            out.append(
                Violation(
                    path,
                    i + 1,
                    "raw-throw",
                    "direct throw outside contract.h; use require()/ensure()/"
                    "require_found() or fail_require()/fail_ensure()/"
                    "fail_lookup(), or waive with "
                    "// vodlint:throw-ok(<reason>)",
                )
            )
    return out


CONTRACT_CALL = re.compile(r"\b(require|ensure|require_found)\s*\(")
EAGER_MESSAGE = re.compile(r"std\s*::\s*to_string\s*\(|\"\s*\+|\+\s*\"|std\s*::\s*string\s*[({]")
LAZY_LAMBDA = re.compile(r"\[[&=]?\]\s*(?:\(\s*\))?\s*\{")


def check_eager_messages(
    path: str, raw: list[str], stripped: list[str]
) -> list[Violation]:
    out = []
    for i, line in enumerate(stripped):
        m = CONTRACT_CALL.search(line)
        if not m:
            continue
        stmt = statement_from(stripped, i)
        if EAGER_MESSAGE.search(stmt) and not LAZY_LAMBDA.search(stmt):
            if has_waiver(raw, i, WAIVERS["eager-message"]):
                continue
            out.append(
                Violation(
                    path,
                    i + 1,
                    "eager-message",
                    f"{m.group(1)}() message built eagerly (concatenation/"
                    "to_string) — it allocates even when the check passes; "
                    "pass a literal or a lazy lambda, or waive with "
                    "// vodlint:contract-ok(<reason>)",
                )
            )
    return out


DENSE_STORE_DIRS = ("src/service/", "src/net/", "src/stream/", "src/sim/")
NODE_MAP_BY_ID = re.compile(
    r"std\s*::\s*(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:\w+\s*::\s*)*(SessionId|FlowId)\b"
)
# std::set<NodeId> on the service's failover hot path: membership probes
# per fault notification want a sorted vector, not a node-based tree.
NODE_SET_OF_NODES = re.compile(
    r"std\s*::\s*(?:set|multiset)\s*<\s*(?:\w+\s*::\s*)*NodeId\b"
)
NODE_SET_DIRS = ("src/service/",)


def check_dense_store(
    path: str, raw: list[str], stripped: list[str]
) -> list[Violation]:
    norm = path.replace(os.sep, "/")
    if not any(fragment in norm for fragment in DENSE_STORE_DIRS):
        return []
    node_set_applies = any(fragment in norm for fragment in NODE_SET_DIRS)
    out = []
    for i, line in enumerate(stripped):
        m = NODE_MAP_BY_ID.search(line)
        if m is not None:
            message = (
                f"node-based container keyed by {m.group(1)} in a hot-path "
                "directory; ids are monotonic and churn at scale — use "
                "SlotMap (common/slot_map.h) or waive with "
                "// vodlint:dense-ok(<reason>)"
            )
        elif node_set_applies and NODE_SET_OF_NODES.search(line):
            message = (
                "std::set<NodeId> in src/service; the failover hot path "
                "probes it per notification — use a sorted "
                "std::vector<NodeId> with binary search, or waive with "
                "// vodlint:dense-ok(<reason>)"
            )
        else:
            continue
        if has_waiver(raw, i, WAIVERS["dense-store"]):
            continue
        out.append(Violation(path, i + 1, "dense-store", message))
    return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def gather_files(root: str, paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"vodlint: no such path: {full}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def lint_sources(sources: dict[str, str]) -> list[Violation]:
    """Lints {path: text}.  Split out from main() so self-tests can feed
    synthetic files through the exact production path."""
    stripped_texts = {p: strip_comments_and_strings(t) for p, t in sources.items()}
    unordered = collect_unordered_names(stripped_texts)
    violations: list[Violation] = []
    for path in sorted(sources):
        raw_lines = sources[path].splitlines()
        stripped_lines = stripped_texts[path].splitlines()
        violations += check_unordered_iteration(
            path, raw_lines, stripped_lines, unordered
        )
        violations += check_entropy(path, raw_lines, stripped_lines)
        violations += check_raw_units(path, raw_lines, stripped_lines)
        violations += check_throws(path, raw_lines, stripped_lines)
        violations += check_eager_messages(path, raw_lines, stripped_lines)
        violations += check_dense_store(path, raw_lines, stripped_lines)
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="vodlint", add_help=True)
    parser.add_argument("--root", default=None, help="repo root (default: cwd)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("paths", nargs="*", default=None)
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.getcwd()
    paths = args.paths or ["src"]
    files = gather_files(root, paths)
    sources = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            sources[path] = f.read()
    violations = lint_sources(sources)
    for v in violations:
        print(v.render())
    if violations:
        print(f"vodlint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"vodlint: {len(files)} file(s) clean")
    return 0


# --------------------------------------------------------------------------
# Self-test fixtures
# --------------------------------------------------------------------------

FIXTURES: list[tuple[str, dict[str, str], list[tuple[str, int]]]] = [
    (
        "unordered range-for flagged; waiver honoured; membership ops ok",
        {
            "src/a.h": (
                "#include <unordered_map>\n"
                "struct S {\n"
                "  std::unordered_map<int, double> flows_;\n"
                "};\n"
            ),
            "src/a.cpp": (
                "void f(S& s) {\n"
                "  for (const auto& [id, v] : s.flows_) {}\n"
                "  // vodlint:ordered-ok(pure max reduction)\n"
                "  for (const auto& [id, v] : s.flows_) {}\n"
                "  s.flows_.erase(3);\n"
                "}\n"
            ),
        },
        [("unordered-iter", 2)],
    ),
    (
        "explicit begin() iteration flagged",
        {
            "src/b.h": "#include <unordered_set>\nstd::unordered_set<int> seen_;\n",
            "src/b.cpp": "auto it = seen_.begin();\n",
        },
        [("unordered-iter", 1)],
    ),
    (
        "incidence-index containers (vector-of-vectors) iterate freely; an "
        "unordered index of the same shape is still flagged",
        {
            "src/h.h": (
                "#include <unordered_map>\n"
                "#include <vector>\n"
                "struct Net {\n"
                "  std::vector<std::vector<int>> link_flows_;\n"
                "  std::unordered_map<int, int> flow_slots_;\n"
                "};\n"
            ),
            "src/h.cpp": (
                "void sweep(Net& n) {\n"
                "  for (const auto& list : n.link_flows_) {\n"
                "    for (int id : list) {}\n"
                "  }\n"
                "  for (const auto& [id, slot] : n.flow_slots_) {}\n"
                "  if (n.flow_slots_.count(3) > 0) {}\n"
                "}\n"
            ),
        },
        [("unordered-iter", 5)],
    ),
    (
        "entropy sources flagged outside rng.h, allowed inside",
        {
            "src/c.cpp": (
                "int x = rand();\n"
                "auto t = std::chrono::system_clock::now();\n"
                "double ok = network_.time();\n"  # member call, not ::time()
            ),
            "src/common/rng.h": "std::random_device rd;\n",
        },
        [("entropy", 1), ("entropy", 2)],
    ),
    (
        "entropy exempt in the src/obs/ quarantine directory, flagged "
        "elsewhere",
        {
            "src/obs/profile.h": (
                "auto t0 = std::chrono::steady_clock::now();\n"
            ),
            "src/obs/trace.cpp": "auto t1 = std::chrono::steady_clock::now();\n",
            "src/stream/session.cpp": (
                "auto t2 = std::chrono::steady_clock::now();\n"
            ),
        },
        [("entropy", 1)],
    ),
    (
        "raw unit params flagged in headers only; fields untouched",
        {
            "src/d.h": (
                "void run(double horizon_seconds, int n);\n"
                "struct Opt { double mttr_seconds = 3.0; };\n"
                "void go(double cap_mbps);\n"
            ),
            "src/d.cpp": "void run(double horizon_seconds, int n) {}\n",
        },
        [("raw-units", 1), ("raw-units", 3)],
    ),
    (
        "direct and raw throws flagged; contract.h exempt; rethrow ok",
        {
            "src/e.cpp": (
                'void f() { throw std::invalid_argument("x"); }\n'
                'void g() { throw "bare"; }\n'
                "void h() { try { f(); } catch (...) { throw; } }\n"
            ),
            "src/common/contract.h": (
                'inline void req() { throw std::logic_error("m"); }\n'
            ),
        },
        [("raw-throw", 1), ("raw-throw", 2)],
    ),
    (
        "eager contract messages flagged; lambda and literal pass",
        {
            "src/f.cpp": (
                'require(ok, "msg " + std::to_string(n));\n'
                'require(ok, [&] { return "msg " + std::to_string(n); });\n'
                'require(ok, "plain literal");\n'
                "ensure(done,\n"
                '       "multi" + suffix);\n'
            ),
        },
        [("eager-message", 1), ("eager-message", 4)],
    ),
    (
        "node-based per-id stores flagged in hot-path dirs only; compound "
        "keys pass; NodeId sets flagged in src/service only; waiver "
        "honoured",
        {
            "src/service/store.h": (
                "#include <map>\n"
                "#include <set>\n"
                "struct S {\n"
                "  std::map<SessionId, int> sessions_;\n"
                "  std::set<vod::FlowId> flows_;\n"
                "  // vodlint:dense-ok(tiny, pruned on lookup)\n"
                "  std::map<SessionId, int> waived_;\n"
                "  std::map<std::pair<NodeId, VideoId>, int> batches_;\n"
                "  std::set<NodeId> crashed_;\n"
                "  std::map<NodeId, int> servers_;\n"
                "};\n"
            ),
            "src/net/peers.h": "std::set<NodeId> peers_;\n",
            "src/db/catalog.h": "std::map<SessionId, int> offline_ok_;\n",
        },
        [("dense-store", 4), ("dense-store", 5), ("dense-store", 9)],
    ),
    (
        "violations inside comments and strings are ignored",
        {
            "src/g.cpp": (
                "// throw 42; rand();\n"
                '/* for (auto x : flows_) */ const char* s = "rand()";\n'
            ),
            "src/g.h": "#include <unordered_map>\nstd::unordered_map<int,int> flows_;\n",
        },
        [],
    ),
]


def self_test() -> int:
    failures = 0
    for name, files, expected in FIXTURES:
        got = [(v.rule, v.line) for v in lint_sources(files)]
        if got != expected:
            failures += 1
            print(f"SELF-TEST FAIL: {name}\n  expected {expected}\n  got      {got}")
    if failures:
        print(f"vodlint self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"vodlint self-test: {len(FIXTURES)} fixture(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
