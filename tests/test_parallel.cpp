// Deterministic ParallelFor pilot: the thread count is a performance knob,
// never a semantic one (DESIGN.md §9/§14).  These tests force real forking
// on tiny inputs (min_fork_items = 1) and assert bit-identical results at
// 1, 2 and 8 workers for the runtime primitives, the fluid progressive-fill
// pilot, the per-candidate VRA evaluation pilot, and a full seeded-storm
// service run.  They are also the workload the TSan CI tier drives
// (scripts/ci.sh --tsan runs ctest -R 'Parallel').
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "net/fluid.h"
#include "net/traffic.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "vra/vra.h"
#include "workload/request_gen.h"

namespace vod {
namespace {

/// Installs a worker count with forking forced on any range size, and
/// restores the serial default on scope exit so tests cannot leak
/// configuration into each other.
class ParallelGuard {
 public:
  explicit ParallelGuard(unsigned workers) {
    set_parallel_config({.workers = workers, .min_fork_items = 1});
  }
  ParallelGuard(const ParallelGuard&) = delete;
  ParallelGuard& operator=(const ParallelGuard&) = delete;
  ~ParallelGuard() { set_parallel_config({}); }
};

const unsigned kWidths[] = {1, 2, 8};

// -----------------------------------------------------------------------
// Runtime primitives
// -----------------------------------------------------------------------

TEST(ParallelRuntime, ChunkBoundsPartitionExactly) {
  using parallel_detail::chunk_bound;
  for (std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 8u}) {
      EXPECT_EQ(chunk_bound(n, chunks, 0), 0u);
      EXPECT_EQ(chunk_bound(n, chunks, chunks), n);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = chunk_bound(n, chunks, c);
        const std::size_t end = chunk_bound(n, chunks, c + 1);
        EXPECT_LE(begin, end);
        covered += end - begin;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelRuntime, ConfigClampsAndDefaults) {
  set_parallel_config({.workers = 0, .min_fork_items = 0});
  EXPECT_EQ(parallel_config().workers, 1u);
  EXPECT_EQ(parallel_config().min_fork_items, 1u);
  set_parallel_config({});
  EXPECT_EQ(parallel_config().workers, 1u);
  EXPECT_EQ(parallel_config().min_fork_items, 4096u);
}

TEST(ParallelRuntime, ForCoversEveryIndexOnce) {
  for (unsigned width : kWidths) {
    ParallelGuard guard{width};
    std::vector<int> hits(1237, 0);
    // vodlint: parallel-region
    parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at width " << width;
    }
  }
}

TEST(ParallelRuntime, ForBelowGrainRunsInline) {
  set_parallel_config({.workers = 8, .min_fork_items = 1000});
  std::vector<int> hits(10, 0);
  parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, hits.size());
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  set_parallel_config({});
}

TEST(ParallelRuntime, MinIsBitIdenticalAcrossWidths) {
  Rng rng{20260808};
  std::vector<double> values(4099);
  for (double& v : values) v = rng.uniform(-1e9, 1e9);
  std::optional<double> serial;
  for (unsigned width : kWidths) {
    ParallelGuard guard{width};
    const double got = parallel_min(
        values.size(), 1e300,
        [&](std::size_t begin, std::size_t end, double init) {
          double m = init;
          for (std::size_t i = begin; i < end; ++i) m = std::min(m, values[i]);
          return m;
        });
    if (!serial.has_value()) {
      serial = got;
    } else {
      EXPECT_EQ(got, *serial) << "width " << width;
    }
  }
}

TEST(ParallelRuntime, EmptyRangeNeverInvokesBody) {
  ParallelGuard guard{8};
  parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
  EXPECT_EQ(parallel_min(0, 42.0,
                         [](std::size_t, std::size_t, double) {
                           ADD_FAILURE();
                           return 0.0;
                         }),
            42.0);
}

// -----------------------------------------------------------------------
// Fluid progressive-fill pilot
// -----------------------------------------------------------------------

/// A randomized 24-node line with 600 flows over contiguous sub-paths:
/// enough contention that the progressive filling runs many freeze rounds.
std::vector<double> fluid_rates(unsigned workers) {
  ParallelGuard guard{workers};
  net::Topology topo;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  Rng rng{777};
  for (int n = 0; n < 24; ++n) {
    std::ostringstream name;
    name << "n" << n;
    nodes.push_back(topo.add_node(name.str()));
  }
  for (std::size_t n = 0; n + 1 < nodes.size(); ++n) {
    links.push_back(topo.add_link(nodes[n], nodes[n + 1],
                                  Mbps{rng.uniform(20.0, 120.0)}));
  }
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  network.set_check_against_reference(true);  // oracle cross-check per pass
  std::vector<FlowId> flows;
  {
    auto batch = network.defer_reallocate();
    for (int f = 0; f < 600; ++f) {
      const auto first = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1));
      const auto span = static_cast<std::size_t>(rng.uniform_int(1, 6));
      std::vector<LinkId> path;
      for (std::size_t l = first; l < std::min(first + span, links.size());
           ++l) {
        path.push_back(links[l]);
      }
      flows.push_back(network.start_flow(
          std::move(path), Mbps{rng.uniform(0.5, 30.0)},
          static_cast<std::uint32_t>(rng.uniform_int(1, 4))));
    }
  }
  std::vector<double> rates;
  rates.reserve(flows.size());
  for (const FlowId flow : flows) {
    rates.push_back(network.flow_rate(flow).value());
  }
  return rates;
}

TEST(ParallelFluid, RatesBitIdenticalAcrossWidths) {
  const std::vector<double> serial = fluid_rates(1);
  for (unsigned width : kWidths) {
    const std::vector<double> got = fluid_rates(width);
    ASSERT_EQ(got.size(), serial.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], serial[i])
          << "flow " << i << " diverged at width " << width;
    }
  }
}

// -----------------------------------------------------------------------
// VRA per-candidate evaluation pilot
// -----------------------------------------------------------------------

const db::AdminCredential kAdmin{"parallel-admin"};

struct CaseFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  CaseFixture() {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample =
          grnet::table2_sample(g, link, grnet::TimeOfDay::k4pm);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(grnet::TimeOfDay::k4pm));
    }
  }
};

std::string decision_digest(const std::optional<vra::Decision>& decision) {
  std::ostringstream out;
  if (!decision.has_value()) return "none";
  out << decision->server << ' ' << decision->served_locally << ' '
      << decision->degraded << ' ' << decision->path.cost << '\n';
  for (const vra::Candidate& c : decision->candidates) {
    out << c.server << ' ' << c.path.cost << ':';
    for (const NodeId node : c.path.nodes) out << ' ' << node;
    out << '\n';
  }
  return out.str();
}

TEST(ParallelVra, SelectServerIdenticalAcrossWidths) {
  CaseFixture fx;
  auto view = fx.db.limited_view(kAdmin);
  view.add_title(fx.g.ioannina, fx.movie);
  view.add_title(fx.g.thessaloniki, fx.movie);
  view.add_title(fx.g.xanthi, fx.movie);
  vra::Vra vra{fx.g.topology, fx.db.full_view(), fx.db.limited_view(kAdmin),
               {}};
  std::optional<std::string> serial;
  for (unsigned width : kWidths) {
    ParallelGuard guard{width};
    const std::string digest =
        decision_digest(vra.select_server(fx.g.athens, fx.movie));
    if (!serial.has_value()) {
      serial = digest;
    } else {
      EXPECT_EQ(digest, *serial) << "width " << width;
    }
  }
}

// -----------------------------------------------------------------------
// Whole-service seeded-storm digest
// -----------------------------------------------------------------------

/// Compact cousin of test_determinism's run_scenario: eight simulated hours
/// of diurnal load on the GRNET case study under a seeded fault storm.  The
/// digest captures everything a run externalizes; any thread-count leak
/// into allocation order, SNMP sweeps or retry timing shows up here.
std::string storm_digest(unsigned workers) {
  ParallelGuard guard{workers};
  grnet::CaseStudy g = grnet::build_case_study();
  net::DiurnalTraffic traffic{20.0};
  for (const net::LinkInfo& info : g.topology.links()) {
    traffic.set_shape(info.id, {.capacity = info.capacity,
                                .base_fraction = 0.05,
                                .peak_fraction = 0.4});
  }
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 90.0;
  options.session.stall_timeout_seconds = 600.0;
  options.dma.admission_threshold = 1'000'000;  // routing only
  service::VodService service{sim, g.topology, network, options, kAdmin};

  std::vector<VideoId> videos;
  videos.push_back(service.add_video("alpha", MegaBytes{60.0}, Mbps{1.5}));
  videos.push_back(service.add_video("beta", MegaBytes{90.0}, Mbps{2.0}));
  for (std::size_t v = 0; v < videos.size(); ++v) {
    service.place_initial_copy(g.thessaloniki, videos[v]);
    service.place_initial_copy(v % 2 == 0 ? g.xanthi : g.ioannina, videos[v]);
  }
  service.start();

  std::vector<NodeId> homes{g.patra, g.ioannina, g.xanthi};
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{424242};
  const auto requests = gen.generate_diurnal(
      SimTime{0.0}, Duration{28800.0}, 40.0 / 28800.0, 20.0, 3.0, rng);
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&service, request](SimTime) {
      (void)service.request_at(request.home, request.video);
    });
  }

  fault::FaultInjector injector{sim, service};
  fault::FaultScheduleOptions storm;
  storm.horizon_seconds = 28800.0;
  storm.link_mtbf_seconds = 7200.0;
  storm.link_mttr_seconds = 1200.0;
  storm.server_mtbf_seconds = 14400.0;
  storm.server_mttr_seconds = 1800.0;
  injector.schedule_random(storm, 424243);

  sim.run_until(from_hours(12.0));

  std::ostringstream out;
  out << service::report_sessions_csv(service);
  out << service::format_resilience_report(
      service::build_resilience_report(service, Mbps{0.0}));
  for (const fault::FaultRecord& record : injector.trace()) {
    out << record.at << ' ' << fault::to_string(record.kind) << ' '
        << record.target << ' ' << record.detail << '\n';
  }
  return out.str();
}

TEST(ParallelDeterminism, SeededStormDigestIdenticalAcrossWidths) {
  const std::string serial = storm_digest(1);
  EXPECT_FALSE(serial.empty());
  for (unsigned width : kWidths) {
    EXPECT_EQ(storm_digest(width), serial) << "width " << width;
  }
}

}  // namespace
}  // namespace vod
