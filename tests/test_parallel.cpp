// Deterministic ParallelFor pilot and epoch-barrier stepping core: the
// thread count is a performance knob, never a semantic one (DESIGN.md
// §9/§14/§15).  These tests force real forking on tiny inputs
// (min_fork_items = 1) and assert bit-identical results at 1, 2 and 8
// workers for the runtime primitives, the fluid progressive-fill pilot,
// the per-candidate VRA evaluation pilot, the epoch-barrier sharded
// stepping core, and full seeded-storm service runs.  They are also the
// workload the TSan CI tier drives (scripts/ci.sh --tsan runs ctest -R
// 'Parallel').
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "net/fluid.h"
#include "net/traffic.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "sim/simulation.h"
#include "vra/vra.h"
#include "workload/request_gen.h"

namespace vod {
namespace {

/// Installs the one simulation-wide stepping knob (DESIGN.md §15): a
/// worker count with forking forced on any range size, optionally with
/// epoch-barrier stepping, restoring the serial default on scope exit so
/// tests cannot leak configuration into each other.
class ParallelGuard {
 public:
  explicit ParallelGuard(unsigned workers, bool epoch_barrier = false) {
    sim::SimulationConfig config;
    config.parallel.workers = workers;
    config.parallel.min_fork_items = 1;
    config.epoch_barrier = epoch_barrier;
    sim::set_simulation_config(config);
  }
  ParallelGuard(const ParallelGuard&) = delete;
  ParallelGuard& operator=(const ParallelGuard&) = delete;
  ~ParallelGuard() { sim::set_simulation_config({}); }
};

const unsigned kWidths[] = {1, 2, 8};

// -----------------------------------------------------------------------
// Runtime primitives
// -----------------------------------------------------------------------

TEST(ParallelRuntime, ChunkBoundsPartitionExactly) {
  using parallel_detail::chunk_bound;
  for (std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 8u}) {
      EXPECT_EQ(chunk_bound(n, chunks, 0), 0u);
      EXPECT_EQ(chunk_bound(n, chunks, chunks), n);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = chunk_bound(n, chunks, c);
        const std::size_t end = chunk_bound(n, chunks, c + 1);
        EXPECT_LE(begin, end);
        covered += end - begin;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelRuntime, ConfigClampsAndDefaults) {
  set_parallel_config({.workers = 0, .min_fork_items = 0});
  EXPECT_EQ(parallel_config().workers, 1u);
  EXPECT_EQ(parallel_config().min_fork_items, 1u);
  set_parallel_config({});
  EXPECT_EQ(parallel_config().workers, 1u);
  EXPECT_EQ(parallel_config().min_fork_items, 4096u);
}

TEST(ParallelRuntime, ForCoversEveryIndexOnce) {
  for (unsigned width : kWidths) {
    ParallelGuard guard{width};
    std::vector<int> hits(1237, 0);
    // vodlint: parallel-region
    parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at width " << width;
    }
  }
}

TEST(ParallelRuntime, ForBelowGrainRunsInline) {
  set_parallel_config({.workers = 8, .min_fork_items = 1000});
  std::vector<int> hits(10, 0);
  parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, hits.size());
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  set_parallel_config({});
}

TEST(ParallelRuntime, MinIsBitIdenticalAcrossWidths) {
  Rng rng{20260808};
  std::vector<double> values(4099);
  for (double& v : values) v = rng.uniform(-1e9, 1e9);
  std::optional<double> serial;
  for (unsigned width : kWidths) {
    ParallelGuard guard{width};
    const double got = parallel_min(
        values.size(), 1e300,
        [&](std::size_t begin, std::size_t end, double init) {
          double m = init;
          for (std::size_t i = begin; i < end; ++i) m = std::min(m, values[i]);
          return m;
        });
    if (!serial.has_value()) {
      serial = got;
    } else {
      EXPECT_EQ(got, *serial) << "width " << width;
    }
  }
}

TEST(ParallelRuntime, EmptyRangeNeverInvokesBody) {
  ParallelGuard guard{8};
  parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
  EXPECT_EQ(parallel_min(0, 42.0,
                         [](std::size_t, std::size_t, double) {
                           ADD_FAILURE();
                           return 0.0;
                         }),
            42.0);
}

// -----------------------------------------------------------------------
// Fluid progressive-fill pilot
// -----------------------------------------------------------------------

/// A randomized 24-node line with 600 flows over contiguous sub-paths:
/// enough contention that the progressive filling runs many freeze rounds.
std::vector<double> fluid_rates(unsigned workers) {
  ParallelGuard guard{workers};
  net::Topology topo;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  Rng rng{777};
  for (int n = 0; n < 24; ++n) {
    std::ostringstream name;
    name << "n" << n;
    nodes.push_back(topo.add_node(name.str()));
  }
  for (std::size_t n = 0; n + 1 < nodes.size(); ++n) {
    links.push_back(topo.add_link(nodes[n], nodes[n + 1],
                                  Mbps{rng.uniform(20.0, 120.0)}));
  }
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  network.set_check_against_reference(true);  // oracle cross-check per pass
  std::vector<FlowId> flows;
  {
    auto batch = network.defer_reallocate();
    for (int f = 0; f < 600; ++f) {
      const auto first = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1));
      const auto span = static_cast<std::size_t>(rng.uniform_int(1, 6));
      std::vector<LinkId> path;
      for (std::size_t l = first; l < std::min(first + span, links.size());
           ++l) {
        path.push_back(links[l]);
      }
      flows.push_back(network.start_flow(
          std::move(path), Mbps{rng.uniform(0.5, 30.0)},
          static_cast<std::uint32_t>(rng.uniform_int(1, 4))));
    }
  }
  std::vector<double> rates;
  rates.reserve(flows.size());
  for (const FlowId flow : flows) {
    rates.push_back(network.flow_rate(flow).value());
  }
  return rates;
}

TEST(ParallelFluid, RatesBitIdenticalAcrossWidths) {
  const std::vector<double> serial = fluid_rates(1);
  for (unsigned width : kWidths) {
    const std::vector<double> got = fluid_rates(width);
    ASSERT_EQ(got.size(), serial.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], serial[i])
          << "flow " << i << " diverged at width " << width;
    }
  }
}

// -----------------------------------------------------------------------
// VRA per-candidate evaluation pilot
// -----------------------------------------------------------------------

const db::AdminCredential kAdmin{"parallel-admin"};

struct CaseFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  CaseFixture() {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample =
          grnet::table2_sample(g, link, grnet::TimeOfDay::k4pm);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(grnet::TimeOfDay::k4pm));
    }
  }
};

std::string decision_digest(const std::optional<vra::Decision>& decision) {
  std::ostringstream out;
  if (!decision.has_value()) return "none";
  out << decision->server << ' ' << decision->served_locally << ' '
      << decision->degraded << ' ' << decision->path.cost << '\n';
  for (const vra::Candidate& c : decision->candidates) {
    out << c.server << ' ' << c.path.cost << ':';
    for (const NodeId node : c.path.nodes) out << ' ' << node;
    out << '\n';
  }
  return out.str();
}

TEST(ParallelVra, SelectServerIdenticalAcrossWidths) {
  CaseFixture fx;
  auto view = fx.db.limited_view(kAdmin);
  view.add_title(fx.g.ioannina, fx.movie);
  view.add_title(fx.g.thessaloniki, fx.movie);
  view.add_title(fx.g.xanthi, fx.movie);
  vra::Vra vra{fx.g.topology, fx.db.full_view(), fx.db.limited_view(kAdmin),
               {}};
  std::optional<std::string> serial;
  for (unsigned width : kWidths) {
    ParallelGuard guard{width};
    const std::string digest =
        decision_digest(vra.select_server(fx.g.athens, fx.movie));
    if (!serial.has_value()) {
      serial = digest;
    } else {
      EXPECT_EQ(digest, *serial) << "width " << width;
    }
  }
}

// -----------------------------------------------------------------------
// Epoch-barrier stepping core (DESIGN.md §15)
// -----------------------------------------------------------------------

/// Runs one epoch of 40 sharded events whose affinities stride (and
/// collide in) the shard array, and returns the order their effects were
/// merged at the barrier.  The merge order IS the shard assignment:
/// ascending shard index, scheduling order within a shard.
std::vector<int> epoch_merge_order(unsigned workers) {
  ParallelGuard guard{workers, /*epoch_barrier=*/true};
  sim::Simulation sim;
  std::vector<int> order;
  for (int e = 0; e < 40; ++e) {
    const auto affinity = static_cast<std::uint64_t>(e) * 7u;
    sim.schedule_sharded_at(
        SimTime{1.0}, affinity,
        [&order, e](SimTime, sim::EffectBuffer& effects) {
          effects.defer([&order, e](SimTime) { order.push_back(e); });
        });
  }
  sim.run();
  return order;
}

TEST(ParallelEpoch, ShardAssignmentStableAcrossRunsAndWidths) {
  const std::vector<int> first = epoch_merge_order(1);
  ASSERT_EQ(first.size(), 40u);
  // The observed merge order must be exactly the stable partition by
  // shard_of(affinity): shard indices ascending, scheduling order within
  // a shard — never influenced by worker count or handler timing.
  const std::size_t shards = sim::simulation_config().epoch_shards;
  for (std::size_t i = 1; i < first.size(); ++i) {
    const std::size_t prev =
        sim::shard_of(static_cast<std::uint64_t>(first[i - 1]) * 7u, shards);
    const std::size_t cur =
        sim::shard_of(static_cast<std::uint64_t>(first[i]) * 7u, shards);
    ASSERT_LE(prev, cur) << "merge left shard order at position " << i;
    if (prev == cur) {
      ASSERT_LT(first[i - 1], first[i])
          << "within-shard scheduling order broken at position " << i;
    }
  }
  for (unsigned width : kWidths) {
    EXPECT_EQ(epoch_merge_order(width), first) << "width " << width;
    EXPECT_EQ(epoch_merge_order(width), first) << "rerun, width " << width;
  }
}

TEST(ParallelEpoch, ShardedEffectsMergeBeforeSerialEvents) {
  for (unsigned width : kWidths) {
    ParallelGuard guard{width, /*epoch_barrier=*/true};
    sim::Simulation sim;
    std::vector<std::string> order;
    sim.schedule_at(SimTime{1.0},
                    [&order](SimTime) { order.push_back("serial0"); });
    sim.schedule_sharded_at(SimTime{1.0}, 5,
                            [&order](SimTime, sim::EffectBuffer& effects) {
                              effects.defer([&order](SimTime) {
                                order.push_back("shard5");
                              });
                            });
    sim.schedule_at(SimTime{1.0},
                    [&order](SimTime) { order.push_back("serial1"); });
    sim.schedule_sharded_at(SimTime{1.0}, 2,
                            [&order](SimTime, sim::EffectBuffer& effects) {
                              effects.defer([&order](SimTime) {
                                order.push_back("shard2");
                              });
                            });
    sim.run();
    const std::vector<std::string> want{"shard2", "shard5", "serial0",
                                        "serial1"};
    EXPECT_EQ(order, want) << "width " << width;
  }
}

TEST(ParallelEpoch, EffectsRescheduleSameInstantInFreshEpoch) {
  ParallelGuard guard{2, /*epoch_barrier=*/true};
  sim::Simulation sim;
  std::vector<int> order;
  sim.schedule_sharded_at(
      SimTime{1.0}, 0, [&](SimTime now, sim::EffectBuffer& effects) {
        effects.defer([&, now](SimTime) {
          order.push_back(1);
          sim.schedule_sharded_at(now, 1,
                                  [&](SimTime, sim::EffectBuffer& fx) {
                                    fx.defer([&](SimTime) {
                                      order.push_back(2);
                                    });
                                  });
        });
      });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The same-instant reschedule ran as a second epoch batch at the same
  // clock value — the barrier never lets an effect race its own instant.
  EXPECT_EQ(sim.epoch_executor().epochs_run(), 2u);
  EXPECT_EQ(sim.epoch_executor().sharded_events_run(), 2u);
  EXPECT_EQ(sim.now().seconds(), 1.0);
}

TEST(ParallelEpoch, CancelFromEarlierInstantPreventsShardedRun) {
  for (unsigned width : kWidths) {
    ParallelGuard guard{width, /*epoch_barrier=*/true};
    sim::Simulation sim;
    int ran = 0;
    const sim::EventHandle doomed = sim.schedule_sharded_at(
        SimTime{2.0}, 3, [&ran](SimTime, sim::EffectBuffer& effects) {
          effects.defer([&ran](SimTime) { ++ran; });
        });
    sim.schedule_at(SimTime{1.0}, [&sim, doomed](SimTime) {
      EXPECT_TRUE(sim.queue().cancel(doomed));
    });
    sim.run();
    EXPECT_EQ(ran, 0) << "width " << width;
  }
}

// -----------------------------------------------------------------------
// Telemetry v2 over the parallel core (DESIGN.md §16)
// -----------------------------------------------------------------------

struct EpochTelemetry {
  std::vector<std::uint64_t> occupancy;
  std::vector<std::uint64_t> imbalance;
  std::string series_csv;
};

/// Five instants of sharded batches with deliberately colliding affinities
/// (e % 5 packs five shards; the stride-7 instants spread wider), sampled
/// on a 1 s series cadence through the global sink.  Occupancy, imbalance
/// and the exported trajectories are pure functions of the event batches,
/// so every byte must survive a worker-width change.
EpochTelemetry epoch_telemetry(unsigned workers) {
  ParallelGuard guard{workers, /*epoch_barrier=*/true};
  sim::Simulation sim;

  obs::MetricsRegistry registry;
  registry.add_collector([&sim](obs::MetricsSnapshot& snap) {
    const sim::EpochExecutor& ex = sim.epoch_executor();
    snap.set_counter("epoch.epochs", ex.epochs_run());
    snap.set_counter("epoch.sharded_events", ex.sharded_events_run());
    const auto mirror = [&snap](const char* name,
                                const obs::Histogram& hist) {
      snap.set_histogram(name, obs::MetricsSnapshot::HistogramData{
                                   hist.upper_bounds(), hist.bucket_counts(),
                                   hist.count(), hist.sum()});
    };
    mirror("epoch.shard_occupancy", ex.shard_occupancy());
    mirror("epoch.shard_imbalance", ex.shard_imbalance());
  });
  obs::SeriesOptions series_options;
  series_options.cadence = Duration{1.0};
  obs::TimeSeriesRecorder series{series_options};
  series.bind_registry(&registry);
  obs::set_series_sink(&series);

  for (int t = 1; t <= 5; ++t) {
    const int events = 8 + 4 * t;
    for (int e = 0; e < events; ++e) {
      const auto affinity = t % 2 == 0
                                ? static_cast<std::uint64_t>(e % 5)
                                : static_cast<std::uint64_t>(e) * 7u;
      sim.schedule_sharded_at(SimTime{static_cast<double>(t)}, affinity,
                              [](SimTime, sim::EffectBuffer&) {});
    }
  }
  sim.run();
  obs::set_series_sink(nullptr);

  return EpochTelemetry{
      .occupancy = sim.epoch_executor().shard_occupancy().bucket_counts(),
      .imbalance = sim.epoch_executor().shard_imbalance().bucket_counts(),
      .series_csv = series.to_csv(),
  };
}

TEST(ParallelObs, EpochTelemetryBitIdenticalAcrossWidths) {
  const EpochTelemetry first = epoch_telemetry(1);
  // The workload actually populated the instruments: five sharded epochs,
  // every one recorded in the occupancy distribution...
  std::uint64_t occupancy_total = 0;
  for (const std::uint64_t c : first.occupancy) occupancy_total += c;
  EXPECT_EQ(occupancy_total, 5u);
  // ...the odd instants (stride 7, one event per shard) sit in the
  // imbalance = 1 bucket while the e % 5 instants skew higher...
  std::uint64_t imbalance_total = 0;
  for (const std::uint64_t c : first.imbalance) imbalance_total += c;
  EXPECT_EQ(imbalance_total, 5u);
  EXPECT_GE(first.imbalance.front(), 3u);
  EXPECT_LT(first.imbalance.front(), 5u);
  // ...and the series sampler walked its 1 s cadence over the run.
  EXPECT_NE(first.series_csv.find("epoch.sharded_events"),
            std::string::npos);
  EXPECT_NE(first.series_csv.find("epoch.shard_occupancy[count]"),
            std::string::npos);

  for (unsigned width : kWidths) {
    const EpochTelemetry other = epoch_telemetry(width);
    EXPECT_EQ(other.occupancy, first.occupancy) << "width " << width;
    EXPECT_EQ(other.imbalance, first.imbalance) << "width " << width;
    EXPECT_EQ(other.series_csv, first.series_csv) << "width " << width;
  }
}

// -----------------------------------------------------------------------
// Whole-service seeded-storm digest
// -----------------------------------------------------------------------

/// Compact cousin of test_determinism's run_scenario: eight simulated hours
/// of diurnal load on the GRNET case study under a seeded fault storm.  The
/// digest captures everything a run externalizes; any thread-count leak
/// into allocation order, SNMP sweeps or retry timing shows up here.
std::string storm_digest(unsigned workers, bool epoch_barrier = false) {
  ParallelGuard guard{workers, epoch_barrier};
  grnet::CaseStudy g = grnet::build_case_study();
  net::DiurnalTraffic traffic{20.0};
  for (const net::LinkInfo& info : g.topology.links()) {
    traffic.set_shape(info.id, {.capacity = info.capacity,
                                .base_fraction = 0.05,
                                .peak_fraction = 0.4});
  }
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 90.0;
  options.session.stall_timeout_seconds = 600.0;
  options.dma.admission_threshold = 1'000'000;  // routing only
  service::VodService service{sim, g.topology, network, options, kAdmin};

  std::vector<VideoId> videos;
  videos.push_back(service.add_video("alpha", MegaBytes{60.0}, Mbps{1.5}));
  videos.push_back(service.add_video("beta", MegaBytes{90.0}, Mbps{2.0}));
  for (std::size_t v = 0; v < videos.size(); ++v) {
    service.place_initial_copy(g.thessaloniki, videos[v]);
    service.place_initial_copy(v % 2 == 0 ? g.xanthi : g.ioannina, videos[v]);
  }
  service.start();

  std::vector<NodeId> homes{g.patra, g.ioannina, g.xanthi};
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{424242};
  const auto requests = gen.generate_diurnal(
      SimTime{0.0}, Duration{28800.0}, 40.0 / 28800.0, 20.0, 3.0, rng);
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&service, request](SimTime) {
      (void)service.request_at(request.home, request.video);
    });
  }

  fault::FaultInjector injector{sim, service};
  fault::FaultScheduleOptions storm;
  storm.horizon_seconds = 28800.0;
  storm.link_mtbf_seconds = 7200.0;
  storm.link_mttr_seconds = 1200.0;
  storm.server_mtbf_seconds = 14400.0;
  storm.server_mttr_seconds = 1800.0;
  injector.schedule_random(storm, 424243);

  sim.run_until(from_hours(12.0));

  std::ostringstream out;
  out << service::report_sessions_csv(service);
  out << service::format_resilience_report(
      service::build_resilience_report(service, Mbps{0.0}));
  for (const fault::FaultRecord& record : injector.trace()) {
    out << record.at << ' ' << fault::to_string(record.kind) << ' '
        << record.target << ' ' << record.detail << '\n';
  }
  return out.str();
}

TEST(ParallelDeterminism, SeededStormDigestIdenticalAcrossWidths) {
  const std::string serial = storm_digest(1);
  EXPECT_FALSE(serial.empty());
  for (unsigned width : kWidths) {
    EXPECT_EQ(storm_digest(width), serial) << "width " << width;
  }
}

TEST(ParallelDeterminism, EpochBarrierStormDigestMatchesSerial) {
  // Epoch-barrier stepping of the full service must externalize exactly
  // what per-event serial stepping does, at every worker width.
  const std::string serial = storm_digest(1);
  EXPECT_FALSE(serial.empty());
  for (unsigned width : kWidths) {
    EXPECT_EQ(storm_digest(width, /*epoch_barrier=*/true), serial)
        << "width " << width;
  }
}

}  // namespace
}  // namespace vod
