#include "db/database.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::db {
namespace {

const AdminCredential kAdmin{"secret"};

Database make_db() {
  Database db{kAdmin};
  return db;
}

TEST(Database, RejectsEmptyAdminSecret) {
  EXPECT_THROW(Database{AdminCredential{""}}, std::invalid_argument);
}

TEST(Database, RegisterVideoAssignsSequentialIds) {
  Database db = make_db();
  const VideoId a = db.register_video("a", MegaBytes{100.0}, Mbps{2.0});
  const VideoId b = db.register_video("b", MegaBytes{100.0}, Mbps{2.0});
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
}

TEST(Database, RegisterVideoValidatesInput) {
  Database db = make_db();
  EXPECT_THROW(db.register_video("", MegaBytes{1.0}, Mbps{1.0}),
               std::invalid_argument);
  EXPECT_THROW(db.register_video("x", MegaBytes{0.0}, Mbps{1.0}),
               std::invalid_argument);
  EXPECT_THROW(db.register_video("x", MegaBytes{1.0}, Mbps{0.0}),
               std::invalid_argument);
}

TEST(Database, LimitedViewRequiresCredential) {
  Database db = make_db();
  EXPECT_NO_THROW(db.limited_view(kAdmin));
  EXPECT_THROW(db.limited_view(AdminCredential{"wrong"}),
               std::invalid_argument);
}

TEST(Database, DuplicateServerRejected) {
  Database db = make_db();
  db.register_server(NodeId{0}, "a", {});
  EXPECT_THROW(db.register_server(NodeId{0}, "a", {}),
               std::invalid_argument);
}

TEST(Database, DuplicateLinkRejected) {
  Database db = make_db();
  db.register_link(LinkId{0}, "l", Mbps{2.0});
  EXPECT_THROW(db.register_link(LinkId{0}, "l", Mbps{2.0}),
               std::invalid_argument);
}

TEST(Database, LinkNeedsPositiveBandwidth) {
  Database db = make_db();
  EXPECT_THROW(db.register_link(LinkId{0}, "l", Mbps{0.0}),
               std::invalid_argument);
}

TEST(FullAccess, ListAndLookup) {
  Database db = make_db();
  const VideoId id = db.register_video("casablanca", MegaBytes{700.0},
                                       Mbps{1.5});
  const FullAccessView view = db.full_view();
  EXPECT_EQ(view.video_count(), 1u);
  ASSERT_TRUE(view.video(id).has_value());
  EXPECT_EQ(view.video(id)->title, "casablanca");
  EXPECT_FALSE(view.video(VideoId{9}).has_value());
}

TEST(FullAccess, FindByTitle) {
  Database db = make_db();
  db.register_video("casablanca", MegaBytes{700.0}, Mbps{1.5});
  const FullAccessView view = db.full_view();
  ASSERT_TRUE(view.find_by_title("casablanca").has_value());
  EXPECT_FALSE(view.find_by_title("vertigo").has_value());
}

TEST(FullAccess, SubstringSearch) {
  Database db = make_db();
  db.register_video("the godfather", MegaBytes{900.0}, Mbps{2.0});
  db.register_video("the godfather II", MegaBytes{950.0}, Mbps{2.0});
  db.register_video("jaws", MegaBytes{800.0}, Mbps{2.0});
  const FullAccessView view = db.full_view();
  EXPECT_EQ(view.search("godfather").size(), 2u);
  EXPECT_EQ(view.search("jaws").size(), 1u);
  EXPECT_TRUE(view.search("alien").empty());
}

TEST(FullAccess, ServersWithTitleFollowsPlacement) {
  Database db = make_db();
  const VideoId video = db.register_video("v", MegaBytes{100.0}, Mbps{2.0});
  db.register_server(NodeId{0}, "a", {});
  db.register_server(NodeId{1}, "b", {});
  auto limited = db.limited_view(kAdmin);
  limited.add_title(NodeId{1}, video);
  EXPECT_EQ(db.full_view().servers_with_title(video),
            std::vector<NodeId>{NodeId{1}});
  limited.add_title(NodeId{0}, video);
  EXPECT_EQ(db.full_view().servers_with_title(video).size(), 2u);
  limited.remove_title(NodeId{1}, video);
  EXPECT_EQ(db.full_view().servers_with_title(video),
            std::vector<NodeId>{NodeId{0}});
}

TEST(LimitedAccess, AddTitleValidatesVideoAndServer) {
  Database db = make_db();
  db.register_server(NodeId{0}, "a", {});
  auto limited = db.limited_view(kAdmin);
  EXPECT_THROW(limited.add_title(NodeId{0}, VideoId{9}),
               std::invalid_argument);
  const VideoId video = db.register_video("v", MegaBytes{1.0}, Mbps{1.0});
  EXPECT_THROW(limited.add_title(NodeId{5}, video), std::out_of_range);
}

TEST(LimitedAccess, LinkStatsRoundTrip) {
  Database db = make_db();
  db.register_link(LinkId{0}, "Patra-Athens", Mbps{2.0});
  auto limited = db.limited_view(kAdmin);
  limited.update_link_stats(LinkId{0}, Mbps{1.82}, 0.91, SimTime{100.0});
  const LinkRecord& record = limited.link(LinkId{0});
  EXPECT_EQ(record.used_bandwidth, Mbps{1.82});
  EXPECT_DOUBLE_EQ(record.utilization, 0.91);
  EXPECT_EQ(record.last_snmp_update, SimTime{100.0});
  EXPECT_EQ(record.total_bandwidth, Mbps{2.0});
}

TEST(LimitedAccess, LinkStatsValidated) {
  Database db = make_db();
  db.register_link(LinkId{0}, "l", Mbps{2.0});
  auto limited = db.limited_view(kAdmin);
  EXPECT_THROW(
      limited.update_link_stats(LinkId{0}, Mbps{-1.0}, 0.5, SimTime{0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      limited.update_link_stats(LinkId{0}, Mbps{1.0}, 1.5, SimTime{0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      limited.update_link_stats(LinkId{7}, Mbps{1.0}, 0.5, SimTime{0.0}),
      std::out_of_range);
}

TEST(LimitedAccess, StatsAge) {
  Database db = make_db();
  db.register_link(LinkId{0}, "l", Mbps{2.0});
  auto limited = db.limited_view(kAdmin);
  limited.update_link_stats(LinkId{0}, Mbps{1.0}, 0.5, SimTime{100.0});
  EXPECT_DOUBLE_EQ(limited.stats_age(LinkId{0}, SimTime{190.0}), 90.0);
}

TEST(LimitedAccess, ServerConfigAndOnlineFlag) {
  Database db = make_db();
  ServerConfig config;
  config.disk_count = 4;
  config.disk_capacity = MegaBytes{9000.0};
  db.register_server(NodeId{0}, "athens", config);
  auto limited = db.limited_view(kAdmin);
  EXPECT_EQ(limited.server(NodeId{0}).config.disk_count, 4);
  EXPECT_TRUE(limited.server(NodeId{0}).online);
  limited.set_server_online(NodeId{0}, false);
  EXPECT_FALSE(limited.server(NodeId{0}).online);
  config.disk_count = 8;
  limited.set_server_config(NodeId{0}, config);
  EXPECT_EQ(limited.server(NodeId{0}).config.disk_count, 8);
}

TEST(LimitedAccess, ListsAllRecords) {
  Database db = make_db();
  db.register_server(NodeId{0}, "a", {});
  db.register_server(NodeId{1}, "b", {});
  db.register_link(LinkId{0}, "l0", Mbps{2.0});
  auto limited = db.limited_view(kAdmin);
  EXPECT_EQ(limited.servers().size(), 2u);
  EXPECT_EQ(limited.links().size(), 1u);
}

TEST(LimitedAccess, UnknownLookupsThrow) {
  Database db = make_db();
  auto limited = db.limited_view(kAdmin);
  EXPECT_THROW(limited.server(NodeId{0}), std::out_of_range);
  EXPECT_THROW(limited.link(LinkId{0}), std::out_of_range);
  EXPECT_THROW(limited.stats_age(LinkId{0}, SimTime{0.0}),
               std::out_of_range);
}

TEST(ChangeEpoch, LinkWritesBumpLinkEpochAndStampRecord) {
  Database db = make_db();
  db.register_link(LinkId{0}, "l0", Mbps{10.0});
  db.register_link(LinkId{1}, "l1", Mbps{10.0});
  auto view = db.limited_view(kAdmin);
  EXPECT_EQ(view.change_epoch(), 0u);
  EXPECT_EQ(view.links_changed_epoch(), 0u);

  view.update_link_stats(LinkId{0}, Mbps{3.0}, 0.3, SimTime{1.0});
  EXPECT_EQ(view.change_epoch(), 1u);
  EXPECT_EQ(view.links_changed_epoch(), 1u);
  EXPECT_EQ(view.link(LinkId{0}).last_changed_epoch, 1u);
  EXPECT_EQ(view.link(LinkId{1}).last_changed_epoch, 0u);

  view.set_link_online(LinkId{1}, false);
  EXPECT_EQ(view.links_changed_epoch(), 2u);
  EXPECT_EQ(view.link(LinkId{1}).last_changed_epoch, 2u);
}

TEST(ChangeEpoch, IdenticalSnmpSampleIsNotAChange) {
  Database db = make_db();
  db.register_link(LinkId{0}, "l0", Mbps{10.0});
  auto view = db.limited_view(kAdmin);
  view.update_link_stats(LinkId{0}, Mbps{3.0}, 0.3, SimTime{1.0});
  const std::uint64_t epoch = view.change_epoch();
  // Same counters, later timestamp: the staleness clock moves, the epoch
  // does not.
  view.update_link_stats(LinkId{0}, Mbps{3.0}, 0.3, SimTime{2.0});
  EXPECT_EQ(view.change_epoch(), epoch);
  EXPECT_DOUBLE_EQ(view.stats_age(LinkId{0}, SimTime{3.0}), 1.0);
  view.set_link_online(LinkId{0}, true);  // already online
  EXPECT_EQ(view.change_epoch(), epoch);
}

TEST(ChangeEpoch, CatalogWritesBumpGlobalButNotLinkEpoch) {
  Database db = make_db();
  db.register_server(NodeId{0}, "a", {});
  const VideoId movie = db.register_video("m", MegaBytes{10.0}, Mbps{2.0});
  auto view = db.limited_view(kAdmin);
  view.add_title(NodeId{0}, movie);
  EXPECT_EQ(view.change_epoch(), 1u);
  EXPECT_EQ(view.links_changed_epoch(), 0u);
  view.add_title(NodeId{0}, movie);  // already held: no-op
  EXPECT_EQ(view.change_epoch(), 1u);
  view.remove_title(NodeId{0}, movie);
  EXPECT_EQ(view.change_epoch(), 2u);
  view.remove_title(NodeId{0}, movie);  // already gone: no-op
  EXPECT_EQ(view.change_epoch(), 2u);
  view.set_server_online(NodeId{0}, false);
  EXPECT_EQ(view.change_epoch(), 3u);
  view.set_server_online(NodeId{0}, false);  // unchanged: no-op
  EXPECT_EQ(view.change_epoch(), 3u);
  EXPECT_EQ(view.links_changed_epoch(), 0u);
}

}  // namespace
}  // namespace vod::db
