#include "grnet/grnet.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::grnet {
namespace {

TEST(CaseStudy, SixNodesSevenLinks) {
  const CaseStudy grnet = build_case_study();
  EXPECT_EQ(grnet.topology.node_count(), 6u);
  EXPECT_EQ(grnet.topology.link_count(), 7u);
}

TEST(CaseStudy, NodeNamesFollowPaperNumbering) {
  const CaseStudy grnet = build_case_study();
  EXPECT_EQ(grnet.topology.node_name(grnet.athens), "U1");
  EXPECT_EQ(grnet.topology.node_name(grnet.patra), "U2");
  EXPECT_EQ(grnet.topology.node_name(grnet.ioannina), "U3");
  EXPECT_EQ(grnet.topology.node_name(grnet.thessaloniki), "U4");
  EXPECT_EQ(grnet.topology.node_name(grnet.xanthi), "U5");
  EXPECT_EQ(grnet.topology.node_name(grnet.heraklio), "U6");
}

TEST(CaseStudy, CityNames) {
  const CaseStudy grnet = build_case_study();
  EXPECT_EQ(grnet.city(grnet.athens), "Athens");
  EXPECT_EQ(grnet.city(grnet.heraklio), "Heraklio");
  EXPECT_THROW(grnet.city(NodeId{99}), std::invalid_argument);
}

TEST(CaseStudy, LinkCapacitiesMatchFigure6) {
  const CaseStudy grnet = build_case_study();
  EXPECT_EQ(grnet.topology.link(grnet.patra_athens).capacity, Mbps{2.0});
  EXPECT_EQ(grnet.topology.link(grnet.patra_ioannina).capacity, Mbps{2.0});
  EXPECT_EQ(grnet.topology.link(grnet.thess_athens).capacity, Mbps{18.0});
  EXPECT_EQ(grnet.topology.link(grnet.thess_xanthi).capacity, Mbps{2.0});
  EXPECT_EQ(grnet.topology.link(grnet.thess_ioannina).capacity, Mbps{2.0});
  EXPECT_EQ(grnet.topology.link(grnet.athens_heraklio).capacity,
            Mbps{18.0});
  EXPECT_EQ(grnet.topology.link(grnet.xanthi_heraklio).capacity, Mbps{2.0});
}

TEST(CaseStudy, LinkEndpointsMatchFigure6) {
  const CaseStudy grnet = build_case_study();
  EXPECT_EQ(grnet.topology.find_link(grnet.patra, grnet.athens),
            grnet.patra_athens);
  EXPECT_EQ(grnet.topology.find_link(grnet.thessaloniki, grnet.ioannina),
            grnet.thess_ioannina);
  EXPECT_EQ(grnet.topology.find_link(grnet.xanthi, grnet.heraklio),
            grnet.xanthi_heraklio);
  // No direct Patra-Thessaloniki or Athens-Xanthi links exist.
  EXPECT_FALSE(
      grnet.topology.find_link(grnet.patra, grnet.thessaloniki).has_value());
  EXPECT_FALSE(
      grnet.topology.find_link(grnet.athens, grnet.xanthi).has_value());
}

TEST(CaseStudy, PaperOrderHasSevenDistinctLinks) {
  const CaseStudy grnet = build_case_study();
  const auto order = grnet.links_in_paper_order();
  EXPECT_EQ(order.size(), 7u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_NE(order[i], order[j]);
    }
  }
}

TEST(TimeOfDay, HoursAndLabels) {
  EXPECT_DOUBLE_EQ(hour_of(TimeOfDay::k8am), 8.0);
  EXPECT_DOUBLE_EQ(hour_of(TimeOfDay::k10am), 10.0);
  EXPECT_DOUBLE_EQ(hour_of(TimeOfDay::k4pm), 16.0);
  EXPECT_DOUBLE_EQ(hour_of(TimeOfDay::k6pm), 18.0);
  EXPECT_STREQ(time_label(TimeOfDay::k8am), "8am");
  EXPECT_STREQ(time_label(TimeOfDay::k6pm), "6pm");
  EXPECT_DOUBLE_EQ(time_of(TimeOfDay::k10am).seconds(), 36000.0);
}

TEST(Table2, SpotCheckAgainstPaper) {
  const CaseStudy grnet = build_case_study();
  // Patra-Athens at 8am: 200 kb, 10%.
  const LinkSample pa8 =
      table2_sample(grnet, grnet.patra_athens, TimeOfDay::k8am);
  EXPECT_NEAR(pa8.used.value(), 0.2, 1e-12);
  EXPECT_NEAR(pa8.utilization, 0.10, 1e-12);
  // Thessaloniki-Athens at 4pm: 9.8 Mb, 54.4%.
  const LinkSample ta4 =
      table2_sample(grnet, grnet.thess_athens, TimeOfDay::k4pm);
  EXPECT_NEAR(ta4.used.value(), 9.8, 1e-12);
  EXPECT_NEAR(ta4.utilization, 0.544, 1e-12);
  // Xanthi-Heraklio at 8am: 100 bits = 1e-4 Mbps.
  const LinkSample xh8 =
      table2_sample(grnet, grnet.xanthi_heraklio, TimeOfDay::k8am);
  EXPECT_NEAR(xh8.used.value(), 1e-4, 1e-12);
}

TEST(Table2, UtilizationConsistentWithUsedOverCapacity) {
  // The printed percentages are the printed used/capacity (up to the
  // paper's own rounding) — verify within 2% of capacity everywhere.
  const CaseStudy grnet = build_case_study();
  for (const TimeOfDay t : kAllTimes) {
    for (const LinkId link : grnet.links_in_paper_order()) {
      const LinkSample s = table2_sample(grnet, link, t);
      const double implied =
          s.used.value() / grnet.topology.link(link).capacity.value();
      EXPECT_NEAR(s.utilization, implied, 0.02)
          << grnet.topology.link(link).name << " at " << time_label(t);
    }
  }
}

TEST(Table2, UnknownLinkThrows) {
  const CaseStudy grnet = build_case_study();
  EXPECT_THROW(table2_sample(grnet, LinkId{99}, TimeOfDay::k8am),
               std::invalid_argument);
}

TEST(Table2Stats, ProviderCarriesCapacityAsTotal) {
  const CaseStudy grnet = build_case_study();
  const auto stats = table2_stats(grnet, TimeOfDay::k10am);
  const vra::LinkStats ta = stats.stats(grnet.thess_athens);
  EXPECT_EQ(ta.total, Mbps{18.0});
  EXPECT_NEAR(ta.used.value(), 7.0, 1e-12);
  EXPECT_NEAR(ta.traffic_fraction, 0.388, 1e-12);
}

TEST(Table2Trace, StepsThroughTheDay) {
  const CaseStudy grnet = build_case_study();
  const net::TraceTraffic trace = table2_trace(grnet);
  // Before 8am: holds the 8am value; at 10am: switches.
  EXPECT_NEAR(
      trace.background_load(grnet.patra_athens, from_hours(6.0)).value(),
      0.2, 1e-12);
  EXPECT_NEAR(
      trace.background_load(grnet.patra_athens, from_hours(10.0)).value(),
      1.82, 1e-12);
  EXPECT_NEAR(
      trace.background_load(grnet.thess_ioannina, from_hours(17.0)).value(),
      1.86, 1e-12);
  EXPECT_NEAR(
      trace.background_load(grnet.thess_ioannina, from_hours(23.0)).value(),
      1.3, 1e-12);
}

TEST(Table3, PublishedValuesAccessible) {
  const CaseStudy grnet = build_case_study();
  EXPECT_DOUBLE_EQ(
      table3_expected_lvn(grnet, grnet.patra_athens, TimeOfDay::k8am),
      0.083);
  EXPECT_DOUBLE_EQ(
      table3_expected_lvn(grnet, grnet.xanthi_heraklio, TimeOfDay::k6pm),
      0.3);
  EXPECT_DOUBLE_EQ(
      table3_expected_lvn(grnet, grnet.thess_athens, TimeOfDay::k4pm),
      1.5433);
}

}  // namespace
}  // namespace vod::grnet
