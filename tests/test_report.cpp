#include "service/report.h"

#include <gtest/gtest.h>

#include "grnet/grnet.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  std::unique_ptr<VodService> service;
  VideoId movie;

  Fixture() {
    ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{2.0});
    service->place_initial_copy(g.thessaloniki, movie);
    service->start();
  }
};

TEST(ServiceReport, EmptyServiceIsAllZero) {
  Fixture fx;
  const ServiceReport report = build_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.sessions, 0u);
  EXPECT_EQ(report.finished, 0u);
  EXPECT_DOUBLE_EQ(report.qos_ok_share(), 0.0);
}

TEST(ServiceReport, CountsOutcomes) {
  Fixture fx;
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.service->request_at(fx.g.heraklio, fx.movie);
  // An unsatisfiable request (no holder) fails immediately.
  const VideoId ghost =
      fx.service->add_video("ghost", MegaBytes{10.0}, Mbps{2.0});
  fx.service->request_at(fx.g.patra, ghost);
  fx.sim.run_until(from_hours(1.0));

  const ServiceReport report = build_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.sessions, 3u);
  EXPECT_EQ(report.finished, 2u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.in_flight, 0u);
  EXPECT_EQ(report.qos_ok, 2u);  // idle network: everyone meets bitrate
  EXPECT_DOUBLE_EQ(report.qos_ok_share(), 1.0);
  EXPECT_GT(report.download_seconds.median(), 0.0);
}

TEST(ServiceReport, InFlightSessionsSeparated) {
  Fixture fx;
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{1.0});  // far from finished
  const ServiceReport report = build_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.in_flight, 1u);
  EXPECT_EQ(report.finished, 0u);
}

TEST(ServiceReport, ExplicitFloorApplied) {
  Fixture fx;
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  // Transfer runs at the 2 Mbps bottleneck: floor 1 passes, floor 50
  // fails.
  EXPECT_EQ(build_report(*fx.service, Mbps{1.0}).qos_ok, 1u);
  EXPECT_EQ(build_report(*fx.service, Mbps{50.0}).qos_ok, 0u);
}

TEST(ServiceReport, FormatContainsKeyRows) {
  Fixture fx;
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  const std::string text =
      format_report(build_report(*fx.service, Mbps{0.0}));
  EXPECT_NE(text.find("sessions"), std::string::npos);
  EXPECT_NE(text.find("download median"), std::string::npos);
  EXPECT_NE(text.find("QoS-ok (floor = title bitrate)"),
            std::string::npos);
}

TEST(ServiceReport, CsvHasHeaderAndOneRowPerSession) {
  Fixture fx;
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.service->request_at(fx.g.xanthi, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  const std::string csv = report_sessions_csv(*fx.service);
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("session,home,title"), std::string::npos);
  EXPECT_NE(csv.find("movie"), std::string::npos);
  EXPECT_NE(csv.find("finished"), std::string::npos);
}

TEST(ServiceReport, ZeroFinishedSessionsOmitPercentileRows) {
  // All requests fail instantly (no holder anywhere): finished == 0, so
  // the table must skip the startup/download percentile rows instead of
  // rendering statistics over an empty sample.
  Fixture fx;
  const VideoId ghost =
      fx.service->add_video("ghost", MegaBytes{10.0}, Mbps{2.0});
  fx.service->request_at(fx.g.patra, ghost);
  fx.service->request_at(fx.g.athens, ghost);
  fx.sim.run_until(from_hours(1.0));

  const ServiceReport report = build_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.finished, 0u);
  EXPECT_EQ(report.failed, 2u);
  const std::string text = format_report(report);
  EXPECT_EQ(text.find("startup median"), std::string::npos);
  EXPECT_EQ(text.find("download median"), std::string::npos);
  EXPECT_NE(text.find("failed"), std::string::npos);

  const std::string csv = report_sessions_csv(*fx.service);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("failed"), std::string::npos);
}

TEST(ServiceReport, InFlightOnlyCsvLeavesDownloadBlank) {
  Fixture fx;
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{1.0});  // mid-download

  const ServiceReport report = build_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.sessions, 1u);
  EXPECT_EQ(report.in_flight, 1u);
  EXPECT_EQ(report.finished, 0u);
  EXPECT_EQ(report.qos_ok, 0u);  // only finished sessions can pass QoS
  const std::string text = format_report(report);
  EXPECT_EQ(text.find("startup median"), std::string::npos);
  EXPECT_NE(text.find("in flight"), std::string::npos);

  // The CSV row renders the unfinished download as an empty cell, not 0.
  const std::string csv = report_sessions_csv(*fx.service);
  const std::size_t row_start = csv.find('\n') + 1;
  const std::string row = csv.substr(row_start, csv.find('\n', row_start) -
                                                    row_start);
  EXPECT_NE(row.find("in-flight"), std::string::npos);
  EXPECT_NE(row.find(",,"), std::string::npos);  // empty download_s column
}

}  // namespace
}  // namespace vod::service
