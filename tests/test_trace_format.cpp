#include "routing/trace_format.h"

#include <gtest/gtest.h>

#include "grnet/grnet.h"
#include "vra/validation.h"

namespace vod::routing {
namespace {

Graph triangle() {
  Graph graph;
  const NodeId a = graph.add_node("A");
  const NodeId b = graph.add_node("B");
  const NodeId c = graph.add_node("C");
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  graph.add_undirected_edge(b, c, LinkId{1}, 1.0);
  graph.add_undirected_edge(a, c, LinkId{2}, 3.0);
  return graph;
}

TEST(TraceFormat, HeaderListsNonSourceColumns) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  const std::string out = format_dijkstra_trace(graph, NodeId{0}, trace);
  EXPECT_NE(out.find("Step"), std::string::npos);
  EXPECT_NE(out.find("Nodes"), std::string::npos);
  EXPECT_NE(out.find("DB"), std::string::npos);
  EXPECT_NE(out.find("DC"), std::string::npos);
  // The source has no distance column.
  EXPECT_EQ(out.find("DA"), std::string::npos);
}

TEST(TraceFormat, OneRowPerStepWithGrowingPermanentSet) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  const std::string out = format_dijkstra_trace(graph, NodeId{0}, trace);
  EXPECT_NE(out.find("{A}"), std::string::npos);
  EXPECT_NE(out.find("{A,B}"), std::string::npos);
  EXPECT_NE(out.find("{A,B,C}"), std::string::npos);
}

TEST(TraceFormat, UnreachedPrintsPaperStyleR) {
  Graph graph;
  const NodeId a = graph.add_node("A");
  graph.add_node("B");  // isolated
  DijkstraTrace trace;
  dijkstra(graph, a, &trace);
  const std::string out = format_dijkstra_trace(graph, a, trace);
  EXPECT_NE(out.find("R"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TraceFormat, PathsUsePaperCommaNotation) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  const std::string out = format_dijkstra_trace(graph, NodeId{0}, trace);
  EXPECT_NE(out.find("A,B,C"), std::string::npos);  // improved C path
}

TEST(TraceFormat, GrnetExperimentBMatchesPaperCells) {
  // The full Table 5 rendering must contain the paper's key cells.
  const grnet::CaseStudy g = grnet::build_case_study();
  const auto stats = grnet::table2_stats(g, grnet::TimeOfDay::k10am);
  const vra::LvnCalculator calc{g.topology, stats};
  const Graph graph = calc.build_weighted_graph();
  DijkstraTrace trace;
  dijkstra(graph, g.patra, &trace);
  const std::string out = format_dijkstra_trace(graph, g.patra, trace);
  EXPECT_NE(out.find("U2,U3,U4"), std::string::npos);     // best U4 path
  EXPECT_NE(out.find("U2,U1,U6,U5"), std::string::npos);  // best U5 path
  EXPECT_NE(out.find("{U2,U3}"), std::string::npos);      // step 2 set
  EXPECT_NE(out.find("1.0122"), std::string::npos);       // D4 ~ 1.007
}

}  // namespace
}  // namespace vod::routing
