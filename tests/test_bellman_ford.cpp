#include "routing/bellman_ford.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "routing/dijkstra.h"

namespace vod::routing {
namespace {

Graph line_graph() {
  Graph graph;
  const NodeId a = graph.add_node("a");
  const NodeId b = graph.add_node("b");
  const NodeId c = graph.add_node("c");
  graph.add_undirected_edge(a, b, LinkId{0}, 1.5);
  graph.add_undirected_edge(b, c, LinkId{1}, 2.5);
  return graph;
}

TEST(BellmanFord, ComputesLineDistances) {
  const Graph graph = line_graph();
  const auto result = bellman_ford(graph, NodeId{0});
  EXPECT_DOUBLE_EQ(result.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(result.distance[1], 1.5);
  EXPECT_DOUBLE_EQ(result.distance[2], 4.0);
}

TEST(BellmanFord, UnreachableIsInfinite) {
  Graph graph;
  const NodeId a = graph.add_node();
  graph.add_node();
  const auto result = bellman_ford(graph, a);
  EXPECT_EQ(result.distance[1], kUnreached);
}

TEST(BellmanFord, PathReconstruction) {
  const Graph graph = line_graph();
  const auto result = bellman_ford(graph, NodeId{0});
  const auto path = result.path_to(NodeId{2}, graph);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes,
            (std::vector<NodeId>{NodeId{0}, NodeId{1}, NodeId{2}}));
  EXPECT_EQ(path->links, (std::vector<LinkId>{LinkId{0}, LinkId{1}}));
  EXPECT_DOUBLE_EQ(path->cost, 4.0);
}

TEST(BellmanFord, PathToUnreachableIsNullopt) {
  Graph graph;
  const NodeId a = graph.add_node();
  graph.add_node();
  const auto result = bellman_ford(graph, a);
  EXPECT_FALSE(result.path_to(NodeId{1}, graph).has_value());
}

TEST(BellmanFord, UnknownSourceThrows) {
  Graph graph;
  EXPECT_THROW(bellman_ford(graph, NodeId{0}), std::invalid_argument);
}

TEST(BellmanFord, SingleNodeGraph) {
  Graph graph;
  const NodeId a = graph.add_node();
  const auto result = bellman_ford(graph, a);
  EXPECT_DOUBLE_EQ(result.distance[0], 0.0);
}

TEST(BellmanFord, PicksCheapestParallelEdge) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 5.0);
  graph.add_undirected_edge(a, b, LinkId{1}, 2.0);
  const auto result = bellman_ford(graph, a);
  EXPECT_DOUBLE_EQ(result.distance[1], 2.0);
  const auto path = result.path_to(b, graph);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->links, std::vector<LinkId>{LinkId{1}});
}

}  // namespace
}  // namespace vod::routing
