#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vod {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  const OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats stats;
  stats.add(-3.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
}

TEST(OnlineStats, MatchesDirectComputationOnRandomData) {
  Rng rng{5};
  OnlineStats stats;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    values.push_back(v);
    stats.add(v);
  }
  double sum = 0.0;
  for (const double v : values) sum += v;
  const double mean = sum / values.size();
  double m2 = 0.0;
  for (const double v : values) m2 += (v - mean) * (v - mean);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), m2 / values.size(), 1e-6);
}

TEST(SampleSet, QuantilesNearestRank) {
  SampleSet samples;
  for (int i = 1; i <= 10; ++i) samples.add(i);
  EXPECT_DOUBLE_EQ(samples.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.median(), 5.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.95), 10.0);
  EXPECT_DOUBLE_EQ(samples.quantile(1.0), 10.0);
}

TEST(SampleSet, UnsortedInsertOrderIrrelevant) {
  SampleSet samples;
  for (const double v : {9.0, 1.0, 5.0, 3.0, 7.0}) samples.add(v);
  EXPECT_DOUBLE_EQ(samples.median(), 5.0);
  samples.add(0.5);  // adding after a quantile query works
  EXPECT_DOUBLE_EQ(samples.quantile(0.0), 0.5);
}

TEST(SampleSet, MeanAndCount) {
  SampleSet samples;
  samples.add(2.0);
  samples.add(4.0);
  EXPECT_EQ(samples.count(), 2u);
  EXPECT_DOUBLE_EQ(samples.mean(), 3.0);
}

TEST(SampleSet, Validation) {
  SampleSet samples;
  EXPECT_THROW(samples.quantile(0.5), std::logic_error);
  samples.add(1.0);
  EXPECT_THROW(samples.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(samples.quantile(1.1), std::invalid_argument);
}

}  // namespace
}  // namespace vod
