// The observability layer: trace recorder exports, the metrics registry,
// the profiler gate, and an end-to-end check that a traced service run is
// behaviourally identical to an untraced one.  Telemetry v2 (DESIGN.md
// §16) rides the same contract: bucketed percentiles share the repo's one
// nearest-rank rule, sim-time series and SLO burn-rate monitors sample
// deterministically, and the flight recorder's black boxes are
// byte-identical across double runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/report.h"
#include "service/vod_service.h"

namespace vod::obs {
namespace {

// ---- TraceRecorder ----

TEST(TraceRecorder, TextDumpIsGolden) {
  TraceRecorder recorder;
  double now = 0.0;
  recorder.set_clock([&now] { return SimTime{now}; });

  recorder.instant(Subsystem::kService, "service.request",
                   {{"home", "patra"}, {"video", "0"}});
  now = 1.5;
  recorder.async_begin(Subsystem::kSession, "session", 7, {{"video", "0"}});
  recorder.begin(Subsystem::kSnmp, "snmp.sweep", {{"links", "7"}});
  recorder.end(Subsystem::kSnmp, "snmp.sweep");
  now = 2.0;
  recorder.counter(Subsystem::kFluid, "fluid.active_flows", 3.0);
  recorder.async_end(Subsystem::kSession, "session", 7);

  EXPECT_EQ(recorder.to_text(),
            "t=0 service i service.request home=patra video=0\n"
            "t=1.5 session b session id=7 video=0\n"
            "t=1.5 snmp B snmp.sweep links=7\n"
            "t=1.5 snmp E snmp.sweep\n"
            "t=2 fluid C fluid.active_flows value=3\n"
            "t=2 session e session id=7\n");
  EXPECT_EQ(recorder.subsystem_count(), 4u);
}

TEST(TraceRecorder, ChromeJsonCarriesPhaseSpecificFields) {
  TraceRecorder recorder;
  recorder.set_clock([] { return SimTime{2.5}; });
  recorder.instant(Subsystem::kVra, "vra.decision", {{"server", "U4"}});
  recorder.counter(Subsystem::kFluid, "fluid.active_flows", 2.0);
  recorder.async_begin(Subsystem::kSession, "session", 42);

  const std::string json = recorder.to_chrome_json();
  // Timestamps are simulated microseconds.
  EXPECT_NE(json.find("\"ts\":2500000"), std::string::npos);
  // Instants carry the scope marker; counters a numeric value; async a
  // pair id.  Thread-name metadata names each active subsystem track.
  EXPECT_NE(json.find("\"ph\":\"i\",\"pid\":1,\"tid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"vra\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"session\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"server\":\"U4\"}"), std::string::npos);
}

TEST(TraceRecorder, JsonEscapesControlAndQuoteCharacters) {
  TraceRecorder recorder;
  recorder.instant(Subsystem::kSim, "weird \"name\"\n", {{"k", "a\\b"}});
  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("weird \\\"name\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
}

TEST(TraceRecorder, CapacityCapCountsDrops) {
  TraceRecorder recorder{2};
  recorder.instant(Subsystem::kSim, "one");
  recorder.instant(Subsystem::kSim, "two");
  recorder.instant(Subsystem::kSim, "three");
  EXPECT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.dropped_count(), 1u);
  EXPECT_NE(recorder.to_chrome_json().find("\"vodDroppedEvents\":1"),
            std::string::npos);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.dropped_count(), 0u);
}

TEST(TraceSink, DefaultsToNullAndRoundTrips) {
  EXPECT_EQ(trace_sink(), nullptr);
  TraceRecorder recorder;
  set_trace_sink(&recorder);
  EXPECT_EQ(trace_sink(), &recorder);
  set_trace_sink(nullptr);
  EXPECT_EQ(trace_sink(), nullptr);
}

// ---- MetricsRegistry ----

TEST(Metrics, CounterGaugeRoundTripThroughSnapshot) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("cache.hits");
  hits.inc(3);
  ++hits;
  registry.gauge("queue.depth").set(17.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_u64("cache.hits"), 4u);
  EXPECT_DOUBLE_EQ(snap.value("queue.depth"), 17.5);
  EXPECT_TRUE(snap.has("cache.hits"));
  EXPECT_FALSE(snap.has("no.such"));
  EXPECT_THROW((void)snap.value("no.such"), std::out_of_range);
}

TEST(Metrics, RegistryIsGetOrCreate) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  // A name registered as one kind cannot come back as another.
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("x", {1.0}), std::logic_error);
}

TEST(Metrics, HistogramBucketsObservations) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("delay", {1.0, 5.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(3.0);   // <= 5
  h.observe(100.0); // +inf
  const MetricsSnapshot snap = registry.snapshot();
  const auto& data = snap.histograms().at("delay");
  ASSERT_EQ(data.bucket_counts.size(), 4u);
  EXPECT_EQ(data.bucket_counts[0], 2u);
  EXPECT_EQ(data.bucket_counts[1], 1u);
  EXPECT_EQ(data.bucket_counts[2], 0u);
  EXPECT_EQ(data.bucket_counts[3], 1u);
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 104.5);
}

TEST(Metrics, HistogramBoundsMustAscend) {
  MetricsRegistry registry;
  EXPECT_ANY_THROW((void)registry.histogram("bad", {5.0, 1.0}));
}

TEST(Metrics, CollectorsContributeAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t external = 0;
  registry.add_collector([&external](MetricsSnapshot& snap) {
    snap.set_counter("external.count", external);
  });
  external = 9;
  EXPECT_EQ(registry.snapshot().value_u64("external.count"), 9u);
  external = 12;
  EXPECT_EQ(registry.snapshot().value_u64("external.count"), 12u);
}

TEST(Metrics, CsvAndJsonAreDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.counter("b.count").inc(2);
  registry.gauge("a.level").set(1.0);
  registry.histogram("c.delay", {1.0}).observe(0.5);
  const MetricsSnapshot snap = registry.snapshot();

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv.find("name,kind,value\n"), 0u);
  EXPECT_NE(csv.find("a.level,gauge,1"), std::string::npos);
  EXPECT_LT(csv.find("a.level"), csv.find("b.count"));
  EXPECT_NE(csv.find("b.count,counter,2"), std::string::npos);
  EXPECT_NE(csv.find("c.delay[le=1]"), std::string::npos);
  EXPECT_NE(csv.find("c.delay[le=+inf]"), std::string::npos);
  EXPECT_NE(csv.find("c.delay[count]"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
}

// ---- Bucketed percentiles (the repo's one quantile rule) ----

TEST(BucketQuantile, MatchesSampleSetNearestRankConvention) {
  // 100 samples 1..100 against decade buckets: the bucket-interpolated
  // quantile must land exactly where SampleSet's nearest-rank pick does,
  // because both sides share vod::nearest_rank and the samples are
  // uniform within every bucket.
  SampleSet samples;
  MetricsRegistry registry;
  Histogram& h = registry.histogram(
      "v", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) {
    samples.add(i);
    h.observe(i);
  }
  for (const double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), samples.quantile(q)) << "q=" << q;
  }
}

TEST(BucketQuantile, InterpolatesWithinABucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("v", {10.0});
  for (int i = 0; i < 4; ++i) h.observe(1.0);
  // rank ceil(0.5*4)=2 of 4 in the [0,10] bucket -> 10 * 2/4.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(BucketQuantile, OverflowBucketClampsToLastBound) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("v", {1.0, 5.0});
  h.observe(100.0);  // +inf bucket only
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(BucketQuantile, EmptyHistogramThrows) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("v", {1.0});
  EXPECT_THROW((void)h.quantile(0.5), std::invalid_argument);
  h.observe(0.5);
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

// ---- TimeSeriesRecorder ----

TEST(Series, GoldenCsvAndJsonExports) {
  MetricsRegistry registry;
  Counter& requests = registry.counter("svc.requests");
  TimeSeriesRecorder recorder;
  recorder.bind_registry(&registry);

  recorder.sample(SimTime{0.0});
  requests.inc(30);
  recorder.sample(SimTime{30.0});
  requests.inc(15);
  recorder.sample(SimTime{60.0});

  EXPECT_EQ(recorder.to_csv(),
            "series,t,value,rate\n"
            "svc.requests,0,0,0\n"
            "svc.requests,30,30,1\n"
            "svc.requests,60,45,0.5\n");
  EXPECT_EQ(recorder.to_json(),
            "{\"cadence_s\":30,\"samples\":3,\"series\":{"
            "\"svc.requests\":{\"evicted\":0,\"points\":["
            "{\"t\":0,\"v\":0,\"rate\":0},"
            "{\"t\":30,\"v\":30,\"rate\":1},"
            "{\"t\":60,\"v\":45,\"rate\":0.5}]}}}\n");
}

TEST(Series, HistogramsContributeCountAndSumSeries) {
  MetricsRegistry registry;
  registry.histogram("d", {1.0}).observe(0.5);
  TimeSeriesRecorder recorder;
  recorder.bind_registry(&registry);
  recorder.sample(SimTime{0.0});
  EXPECT_EQ(recorder.series().count("d[count]"), 1u);
  EXPECT_EQ(recorder.series().count("d[sum]"), 1u);
  EXPECT_EQ(recorder.series().count("d"), 0u);
}

TEST(Series, IncludePrefixesFilterMetrics) {
  MetricsRegistry registry;
  registry.counter("keep.a").inc();
  registry.counter("drop.b").inc();
  SeriesOptions options;
  options.include = {"keep."};
  TimeSeriesRecorder recorder{options};
  recorder.bind_registry(&registry);
  recorder.sample(SimTime{0.0});
  EXPECT_EQ(recorder.series().count("keep.a"), 1u);
  EXPECT_EQ(recorder.series().count("drop.b"), 0u);
}

TEST(Series, BoundedRingEvictsOldestPoints) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  SeriesOptions options;
  options.capacity = 2;
  TimeSeriesRecorder recorder{options};
  recorder.bind_registry(&registry);
  for (int t = 0; t < 3; ++t) {
    c.inc();
    recorder.sample(SimTime{30.0 * t});
  }
  const Series& series = recorder.series().at("c");
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.evicted(), 1u);
  std::vector<double> kept;
  series.for_each_point(
      [&kept](const SeriesPoint& p) { kept.push_back(p.at.seconds()); });
  EXPECT_EQ(kept, (std::vector<double>{30.0, 60.0}));
}

TEST(Series, PumpFiresEveryTickUpToTheInstant) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  TimeSeriesRecorder recorder;  // cadence 30, first tick at 0
  recorder.bind_registry(&registry);

  c.inc();
  recorder.on_instant(SimTime{65.0});  // takes ticks 0, 30, 60
  EXPECT_EQ(recorder.sample_count(), 3u);
  EXPECT_EQ(recorder.next_tick().seconds(), 90.0);
  recorder.on_instant(SimTime{70.0});  // no tick in (65, 70]
  EXPECT_EQ(recorder.sample_count(), 3u);

  recorder.restart();
  EXPECT_EQ(recorder.sample_count(), 0u);
  EXPECT_TRUE(recorder.series().empty());
  EXPECT_EQ(recorder.next_tick().seconds(), 0.0);
}

TEST(Series, SimulationPumpSamplesStateStrictlyBeforeEachTick) {
  sim::Simulation sim;
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  TimeSeriesRecorder recorder;
  recorder.bind_registry(&registry);
  set_series_sink(&recorder);

  sim.schedule_at(SimTime{10.0}, [&c](SimTime) { c.inc(); });
  sim.schedule_at(SimTime{40.0}, [&c](SimTime) { c.inc(); });
  sim.run_until(SimTime{60.0});
  set_series_sink(nullptr);

  // Tick 0 precedes both events, tick 30 sits between them, and the
  // run_until boundary flushes tick 60 after the t=40 event.
  std::vector<double> values;
  recorder.series().at("c").for_each_point(
      [&values](const SeriesPoint& p) { values.push_back(p.value); });
  EXPECT_EQ(values, (std::vector<double>{0.0, 1.0, 2.0}));
}

TEST(SeriesSink, DefaultsToNullAndRoundTrips) {
  EXPECT_EQ(series_sink(), nullptr);
  TimeSeriesRecorder recorder;
  set_series_sink(&recorder);
  EXPECT_EQ(series_sink(), &recorder);
  set_series_sink(nullptr);
  EXPECT_EQ(series_sink(), nullptr);
}

// ---- SloMonitor ----

TEST(Slo, AvailabilityBreachAndRecoverAreEdgeTriggered) {
  MetricsRegistry registry;
  Counter& good = registry.counter("good");
  Counter& bad = registry.counter("bad");
  SloMonitor slo{&registry};
  SloSpec spec;
  spec.name = "avail";
  spec.kind = SloSpec::Kind::kAvailabilityFloor;
  spec.good_metric = "good";
  spec.total_metrics = {"good", "bad"};
  spec.threshold = 0.9;
  spec.windows = {{Duration{60.0}, 1.0}, {Duration{20.0}, 1.0}};
  slo.add(std::move(spec));
  // The breach counter exists from registration, not first breach.
  EXPECT_EQ(registry.snapshot().value_u64("slo.avail.breaches"), 0u);

  TraceRecorder trace;
  double now = 0.0;
  trace.set_clock([&now] { return SimTime{now}; });
  set_trace_sink(&trace);

  good.inc(10);
  now = 10.0;
  slo.evaluate(SimTime{10.0});
  EXPECT_FALSE(slo.states()[0].breached);

  bad.inc(5);  // 5 of the window's 15 fail: burn 3.33x in both windows
  now = 20.0;
  slo.evaluate(SimTime{20.0});
  EXPECT_TRUE(slo.states()[0].breached);
  EXPECT_EQ(slo.states()[0].breaches, 1u);
  EXPECT_EQ(registry.snapshot().value_u64("slo.avail.breaches"), 1u);

  // Still burning: no second edge.
  now = 30.0;
  slo.evaluate(SimTime{30.0});
  EXPECT_EQ(slo.states()[0].breaches, 1u);

  // A clean stretch slides the bad era out of every window.
  good.inc(100);
  now = 100.0;
  slo.evaluate(SimTime{100.0});
  EXPECT_FALSE(slo.states()[0].breached);
  EXPECT_EQ(slo.states()[0].recoveries, 1u);

  set_trace_sink(nullptr);
  const std::string text = trace.to_text();
  EXPECT_NE(text.find("t=20 slo i slo.breach slo=avail"),
            std::string::npos);
  EXPECT_NE(text.find("t=100 slo i slo.recover slo=avail"),
            std::string::npos);
}

TEST(Slo, BreachNeedsEveryWindowBurning) {
  MetricsRegistry registry;
  Counter& good = registry.counter("good");
  Counter& bad = registry.counter("bad");
  SloMonitor slo{&registry};
  SloSpec spec;
  spec.name = "avail";
  spec.kind = SloSpec::Kind::kAvailabilityFloor;
  spec.good_metric = "good";
  spec.total_metrics = {"good", "bad"};
  spec.threshold = 0.9;
  spec.windows = {{Duration{1000.0}, 1.0}, {Duration{10.0}, 1.0}};
  slo.add(std::move(spec));

  good.inc(190);
  slo.evaluate(SimTime{10.0});
  bad.inc(10);  // the short window burns 10x, the long one only 0.5x
  slo.evaluate(SimTime{20.0});
  EXPECT_FALSE(slo.states()[0].breached);
  ASSERT_EQ(slo.states()[0].last_burn.size(), 2u);
  EXPECT_LT(slo.states()[0].last_burn[0], 1.0);
  EXPECT_GE(slo.states()[0].last_burn[1], 1.0);
}

TEST(Slo, RatioCeilingBurnsOnWindowedDeltas) {
  MetricsRegistry registry;
  Counter& rejected = registry.counter("rejected");
  Counter& requests = registry.counter("requests");
  SloMonitor slo{&registry};
  SloSpec spec;
  spec.name = "rejects";
  spec.kind = SloSpec::Kind::kRatioCeiling;
  spec.bad_metric = "rejected";
  spec.total_metrics = {"requests"};
  spec.threshold = 0.25;
  spec.windows = {{Duration{30.0}, 1.0}};
  slo.add(std::move(spec));

  requests.inc(100);
  rejected.inc(10);  // 10% < 25%: burn 0.4
  slo.evaluate(SimTime{10.0});
  EXPECT_FALSE(slo.states()[0].breached);

  requests.inc(10);
  rejected.inc(10);  // windowed delta 10/10 = 100%: burn 4
  slo.evaluate(SimTime{50.0});
  EXPECT_TRUE(slo.states()[0].breached);
}

TEST(Slo, QuantileCeilingReadsWindowedBucketDeltas) {
  MetricsRegistry registry;
  Histogram& stalls = registry.histogram("stall", {1.0, 5.0, 10.0});
  SloMonitor slo{&registry};
  SloSpec spec;
  spec.name = "stall-p99";
  spec.kind = SloSpec::Kind::kQuantileCeiling;
  spec.histogram_metric = "stall";
  spec.quantile = 0.99;
  spec.threshold = 2.0;
  spec.windows = {{Duration{15.0}, 1.0}};
  slo.add(std::move(spec));

  for (int i = 0; i < 10; ++i) stalls.observe(0.5);
  slo.evaluate(SimTime{10.0});  // p99 of the sub-second era: 1.0 -> 0.5x
  EXPECT_FALSE(slo.states()[0].breached);

  for (int i = 0; i < 10; ++i) stalls.observe(8.0);
  slo.evaluate(SimTime{20.0});  // p99 jumps into the 5..10 bucket
  EXPECT_TRUE(slo.states()[0].breached);
  EXPECT_GE(slo.states()[0].last_burn[0], 1.0);
}

TEST(Slo, StatusJsonIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("good").inc(1);
  SloMonitor slo{&registry};
  SloSpec spec;
  spec.name = "avail";
  spec.kind = SloSpec::Kind::kAvailabilityFloor;
  spec.good_metric = "good";
  spec.total_metrics = {"good"};
  spec.threshold = 0.5;
  spec.windows = {{Duration{60.0}, 1.0}};
  slo.add(std::move(spec));
  slo.evaluate(SimTime{10.0});
  EXPECT_EQ(slo.status_json(),
            "{\"slos\":[{\"name\":\"avail\",\"breached\":false,"
            "\"breaches\":0,\"recoveries\":0,\"burn\":[0]}]}\n");
}

TEST(Slo, SpecValidationRejectsNonsense) {
  MetricsRegistry registry;
  SloMonitor slo{&registry};
  SloSpec spec;
  spec.name = "bad";
  spec.kind = SloSpec::Kind::kAvailabilityFloor;
  spec.good_metric = "g";
  spec.total_metrics = {"g"};
  spec.threshold = 1.0;  // a 100% floor leaves no budget to burn
  spec.windows = {{Duration{60.0}, 1.0}};
  EXPECT_THROW(slo.add(spec), std::invalid_argument);
  spec.threshold = 0.9;
  spec.windows.clear();
  EXPECT_THROW(slo.add(spec), std::invalid_argument);
}

// ---- FlightRecorder ----

TEST(TraceRecorder, RingModeOverwritesOldestEvents) {
  TraceRecorder ring{3, OverflowPolicy::kRing};
  for (int i = 0; i < 5; ++i) {
    ring.instant(Subsystem::kSim, "e" + std::to_string(i));
  }
  EXPECT_EQ(ring.events().size(), 3u);
  EXPECT_EQ(ring.overwritten_count(), 2u);
  EXPECT_EQ(ring.dropped_count(), 0u);
  std::vector<std::string> names;
  ring.for_each_event(
      [&names](const TraceEvent& e) { names.push_back(e.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"e2", "e3", "e4"}));
  EXPECT_NE(ring.to_text().find("# ring overwrote 2 older event(s)"),
            std::string::npos);
  ring.clear();
  EXPECT_EQ(ring.overwritten_count(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(FlightSink, InstallWiresRingAsEffectiveTraceSink) {
  FlightOptions options;
  options.ring_capacity = 4;
  FlightRecorder flight{options};
  set_flight_recorder(&flight);
  // With no user recorder the ring IS the sink...
  ASSERT_EQ(trace_sink(), &flight.ring());
  trace_sink()->instant(Subsystem::kService, "one");
  EXPECT_EQ(flight.ring().events().size(), 1u);

  // ...and a user recorder takes over the slot but mirrors into the ring,
  // even past its own capacity cap.
  TraceRecorder capped{1};
  set_trace_sink(&capped);
  ASSERT_EQ(trace_sink(), &capped);
  trace_sink()->instant(Subsystem::kService, "two");
  trace_sink()->instant(Subsystem::kService, "three");
  EXPECT_EQ(capped.events().size(), 1u);
  EXPECT_EQ(capped.dropped_count(), 1u);
  EXPECT_EQ(flight.ring().events().size(), 3u);

  // Uninstalling the user recorder hands the slot back to the ring;
  // clearing the flight recorder empties it.
  set_trace_sink(nullptr);
  EXPECT_EQ(trace_sink(), &flight.ring());
  set_flight_recorder(nullptr);
  EXPECT_EQ(trace_sink(), nullptr);
  EXPECT_EQ(flight_recorder(), nullptr);
}

TEST(Flight, TriggerDumpsDeterministicBlackBoxes) {
  FlightOptions options;
  options.ring_capacity = 8;
  options.max_dumps = 2;
  options.min_gap = Duration{60.0};  // memory-only: no dump_path_prefix
  FlightRecorder flight{options};
  MetricsRegistry registry;
  registry.counter("x").inc(3);
  flight.bind_registry(&registry);
  double now = 0.0;
  flight.set_clock([&now] { return SimTime{now}; });
  flight.set_config("threads", "2");
  flight.set_config("seed", "4242");
  set_flight_recorder(&flight);

  trace_sink()->instant(Subsystem::kService, "service.request");
  now = 10.0;
  EXPECT_TRUE(flight.trigger("fault.link-cut"));
  now = 30.0;
  EXPECT_FALSE(flight.trigger("too-soon"));  // inside min_gap
  now = 100.0;
  EXPECT_TRUE(flight.trigger("preemption"));
  now = 200.0;
  EXPECT_FALSE(flight.trigger("over-budget"));  // max_dumps reached
  set_flight_recorder(nullptr);

  EXPECT_EQ(flight.dump_count(), 2u);
  EXPECT_EQ(flight.suppressed_count(), 2u);
  ASSERT_EQ(flight.dumps().size(), 2u);
  EXPECT_EQ(flight.dumps()[0].first, "fault.link-cut");
  EXPECT_EQ(flight.dumps()[1].first, "preemption");

  const std::string& dump = flight.dumps()[0].second;
  EXPECT_NE(dump.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"fault.link-cut\""), std::string::npos);
  EXPECT_NE(dump.find("\"sim_time_s\":10"), std::string::npos);
  // Config renders key-sorted; the metrics snapshot and the ring's events
  // are embedded in full.
  EXPECT_LT(dump.find("\"seed\":\"4242\""), dump.find("\"threads\":\"2\""));
  EXPECT_NE(dump.find("\"x\":3"), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"service.request\""), std::string::npos);
  EXPECT_NE(flight.dumps()[1].second.find("\"seq\":1"), std::string::npos);
}

// ---- Profiler ----

TEST(Profiler, DisabledByDefaultAndScopesNoOpWhenOff) {
  Profiler& profiler = Profiler::instance();
  profiler.reset();
  profiler.set_enabled(false);
  {
    VOD_PROFILE_SCOPE("test.site");
  }
  EXPECT_TRUE(profiler.sites().empty());
}

TEST(Profiler, EnabledScopesAggregatePerSite) {
  Profiler& profiler = Profiler::instance();
  profiler.reset();
  profiler.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    VOD_PROFILE_SCOPE("test.loop");
  }
  profiler.set_enabled(false);
  ASSERT_EQ(profiler.sites().count("test.loop"), 1u);
  EXPECT_EQ(profiler.sites().at("test.loop").calls, 3u);
  const std::string csv = profiler.report_csv();
  EXPECT_NE(csv.find("site,calls,total_ns,mean_ns"), std::string::npos);
  EXPECT_NE(csv.find("test.loop,3,"), std::string::npos);
  profiler.reset();
}

// ---- End to end: a traced run equals an untraced run ----

struct RunOutput {
  std::string sessions_csv;
  std::string report;
  std::string metrics_csv;
};

RunOutput run_grnet_scenario(TraceRecorder* recorder) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  if (recorder != nullptr) {
    recorder->set_clock([&sim] { return sim.now(); });
    set_trace_sink(recorder);
  }
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 120.0;
  options.dma.admission_threshold = 1;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"obs-admin"}};
  const VideoId movie =
      service.add_video("movie", MegaBytes{40.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.start();

  for (int i = 0; i < 4; ++i) {
    const NodeId home = i % 2 == 0 ? g.patra : g.athens;
    sim.schedule_at(SimTime{60.0 * (i + 1)},
                    [&service, home, movie](SimTime) {
                      (void)service.request_at(home, movie);
                    });
  }
  fault::FaultInjector injector{sim, service};
  injector.cut_link_at(SimTime{300.0}, g.patra_ioannina);
  injector.restore_link_at(SimTime{700.0}, g.patra_ioannina);

  sim.run_until(from_hours(3.0));
  if (recorder != nullptr) set_trace_sink(nullptr);

  return RunOutput{
      .sessions_csv = service::report_sessions_csv(service),
      .report = service::format_report(
          service::build_report(service, Mbps{0.0})),
      .metrics_csv = service.metrics_snapshot().to_csv(),
  };
}

TEST(ObsIntegration, TracedRunCoversSubsystemsAndChangesNothing) {
  const RunOutput plain = run_grnet_scenario(nullptr);
  TraceRecorder recorder;
  const RunOutput traced = run_grnet_scenario(&recorder);

  // Tracing is observe-only: every externalized artefact is byte-identical.
  EXPECT_EQ(plain.sessions_csv, traced.sessions_csv);
  EXPECT_EQ(plain.report, traced.report);
  EXPECT_EQ(plain.metrics_csv, traced.metrics_csv);

  // The scenario exercises requests, routing, caching, allocation, polling
  // and faults — at least five subsystem tracks carry events.
  EXPECT_GE(recorder.subsystem_count(), 5u);
  EXPECT_FALSE(recorder.events().empty());

  // And a second traced run replays the identical event stream.
  TraceRecorder again;
  (void)run_grnet_scenario(&again);
  EXPECT_EQ(recorder.to_text(), again.to_text());
  EXPECT_EQ(recorder.to_chrome_json(), again.to_chrome_json());
}

TEST(ObsIntegration, ServiceMetricsSnapshotMirrorsComponents) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.dma.admission_threshold = 1'000'000;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"obs-admin"}};
  const VideoId movie =
      service.add_video("movie", MegaBytes{20.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.start();
  (void)service.request_at(g.patra, movie);
  sim.run_until(from_hours(1.0));

  const MetricsSnapshot snap = service.metrics_snapshot();
  // Registry-backed service counters...
  EXPECT_EQ(snap.value_u64("service.admitted"), service.admitted_count());
  EXPECT_EQ(snap.value_u64("service.sessions_finished"), 1u);
  // ...collector-mirrored component counters...
  EXPECT_EQ(snap.value_u64("snmp.polls"), service.snmp().poll_count());
  EXPECT_EQ(snap.value_u64("fluid.reallocations"),
            network.reallocation_count());
  EXPECT_TRUE(snap.has("vra.graph_hits"));
  EXPECT_TRUE(snap.has("dma.hits"));
  // ...and the session histograms saw the one finished download.
  EXPECT_EQ(snap.histograms().at("session.download_seconds").count, 1u);
}

TEST(ObsIntegration, TraceDropCounterSurfacesInRegistry) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  TraceRecorder capped{2};  // tiny cap: a service run overflows instantly
  capped.set_clock([&sim] { return sim.now(); });
  set_trace_sink(&capped);
  net::FluidNetwork network{g.topology, traffic};
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.dma.admission_threshold = 1'000'000;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"obs-admin"}};
  const VideoId movie =
      service.add_video("movie", MegaBytes{20.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.start();
  (void)service.request_at(g.patra, movie);
  sim.run_until(from_hours(1.0));

  const MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_GT(capped.dropped_count(), 0u);
  EXPECT_EQ(snap.value_u64("trace.dropped_events"), capped.dropped_count());
  set_trace_sink(nullptr);
  // With no sink installed the metric still exists and reads zero.
  EXPECT_EQ(service.metrics_snapshot().value_u64("trace.dropped_events"),
            0u);
}

// ---- End to end: telemetry v2 observes without perturbing ----

struct V2Output {
  RunOutput base;
  std::string series_csv;
  std::string series_json;
  std::string slo_json;
  std::vector<std::pair<std::string, std::string>> flight_dumps;
};

/// The run_grnet_scenario storyline (requests + a link cut) with the full
/// v2 stack installed when `observe` is set: series sampler on the service
/// registry, an availability SLO riding the sampling ticks, and a
/// memory-only flight recorder (the link cut triggers a black box).
V2Output run_grnet_v2(bool observe) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 120.0;
  options.dma.admission_threshold = 1;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"obs-admin"}};

  TimeSeriesRecorder series;
  std::unique_ptr<SloMonitor> slo;
  FlightOptions flight_options;
  flight_options.min_gap = Duration{0.0};
  FlightRecorder flight{flight_options};
  if (observe) {
    series.bind_registry(&service.metrics());
    slo = std::make_unique<SloMonitor>(&service.metrics());
    SloSpec spec;
    spec.name = "finish";
    spec.kind = SloSpec::Kind::kAvailabilityFloor;
    spec.good_metric = "service.sessions_finished";
    spec.total_metrics = {"service.sessions_finished",
                          "service.sessions_failed"};
    spec.threshold = 0.99;
    spec.windows = {{Duration{600.0}, 1.0}, {Duration{120.0}, 1.0}};
    slo->add(std::move(spec));
    series.set_on_sample([&slo](SimTime at, const MetricsSnapshot& snap) {
      slo->evaluate(at, snap);
    });
    set_series_sink(&series);
    flight.bind_registry(&service.metrics());
    flight.set_clock([&sim] { return sim.now(); });
    flight.set_config("scenario", "grnet-v2");
    set_flight_recorder(&flight);
  }

  const VideoId movie =
      service.add_video("movie", MegaBytes{40.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.start();
  for (int i = 0; i < 4; ++i) {
    const NodeId home = i % 2 == 0 ? g.patra : g.athens;
    sim.schedule_at(SimTime{60.0 * (i + 1)},
                    [&service, home, movie](SimTime) {
                      (void)service.request_at(home, movie);
                    });
  }
  fault::FaultInjector injector{sim, service};
  injector.cut_link_at(SimTime{300.0}, g.patra_ioannina);
  injector.restore_link_at(SimTime{700.0}, g.patra_ioannina);
  sim.run_until(from_hours(3.0));

  V2Output out;
  out.base = RunOutput{
      .sessions_csv = service::report_sessions_csv(service),
      .report = service::format_report(
          service::build_report(service, Mbps{0.0})),
      .metrics_csv = service.metrics_snapshot().to_csv(),
  };
  if (observe) {
    out.series_csv = series.to_csv();
    out.series_json = series.to_json();
    out.slo_json = slo->status_json();
    out.flight_dumps = flight.dumps();
    set_series_sink(nullptr);
    set_flight_recorder(nullptr);
  }
  return out;
}

TEST(ObsIntegration, TelemetryV2ObservesWithoutPerturbing) {
  const V2Output plain = run_grnet_v2(false);
  const V2Output observed = run_grnet_v2(true);

  // Observe-only: everything the run externalizes about the simulated
  // world is byte-identical.  (The metrics CSV legitimately gains the
  // slo.finish.breaches counter, so it is compared between v2 runs below,
  // not across the on/off pair.)
  EXPECT_EQ(plain.base.sessions_csv, observed.base.sessions_csv);
  EXPECT_EQ(plain.base.report, observed.base.report);

  // The sampler covered the three-hour run on the 30 s cadence and the
  // link cut left a black box.
  EXPECT_NE(observed.series_csv.find("service.active_sessions"),
            std::string::npos);
  ASSERT_GE(observed.flight_dumps.size(), 1u);
  EXPECT_EQ(observed.flight_dumps[0].first, "fault.link-cut");

  // Determinism: a double run reproduces every v2 artefact byte for byte.
  const V2Output again = run_grnet_v2(true);
  EXPECT_EQ(observed.base.metrics_csv, again.base.metrics_csv);
  EXPECT_EQ(observed.series_csv, again.series_csv);
  EXPECT_EQ(observed.series_json, again.series_json);
  EXPECT_EQ(observed.slo_json, again.slo_json);
  ASSERT_EQ(observed.flight_dumps.size(), again.flight_dumps.size());
  for (std::size_t i = 0; i < observed.flight_dumps.size(); ++i) {
    EXPECT_EQ(observed.flight_dumps[i].first, again.flight_dumps[i].first);
    EXPECT_EQ(observed.flight_dumps[i].second,
              again.flight_dumps[i].second);
  }
}

}  // namespace
}  // namespace vod::obs
