// The observability layer: trace recorder exports, the metrics registry,
// the profiler gate, and an end-to-end check that a traced service run is
// behaviourally identical to an untraced one.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "service/report.h"
#include "service/vod_service.h"

namespace vod::obs {
namespace {

// ---- TraceRecorder ----

TEST(TraceRecorder, TextDumpIsGolden) {
  TraceRecorder recorder;
  double now = 0.0;
  recorder.set_clock([&now] { return SimTime{now}; });

  recorder.instant(Subsystem::kService, "service.request",
                   {{"home", "patra"}, {"video", "0"}});
  now = 1.5;
  recorder.async_begin(Subsystem::kSession, "session", 7, {{"video", "0"}});
  recorder.begin(Subsystem::kSnmp, "snmp.sweep", {{"links", "7"}});
  recorder.end(Subsystem::kSnmp, "snmp.sweep");
  now = 2.0;
  recorder.counter(Subsystem::kFluid, "fluid.active_flows", 3.0);
  recorder.async_end(Subsystem::kSession, "session", 7);

  EXPECT_EQ(recorder.to_text(),
            "t=0 service i service.request home=patra video=0\n"
            "t=1.5 session b session id=7 video=0\n"
            "t=1.5 snmp B snmp.sweep links=7\n"
            "t=1.5 snmp E snmp.sweep\n"
            "t=2 fluid C fluid.active_flows value=3\n"
            "t=2 session e session id=7\n");
  EXPECT_EQ(recorder.subsystem_count(), 4u);
}

TEST(TraceRecorder, ChromeJsonCarriesPhaseSpecificFields) {
  TraceRecorder recorder;
  recorder.set_clock([] { return SimTime{2.5}; });
  recorder.instant(Subsystem::kVra, "vra.decision", {{"server", "U4"}});
  recorder.counter(Subsystem::kFluid, "fluid.active_flows", 2.0);
  recorder.async_begin(Subsystem::kSession, "session", 42);

  const std::string json = recorder.to_chrome_json();
  // Timestamps are simulated microseconds.
  EXPECT_NE(json.find("\"ts\":2500000"), std::string::npos);
  // Instants carry the scope marker; counters a numeric value; async a
  // pair id.  Thread-name metadata names each active subsystem track.
  EXPECT_NE(json.find("\"ph\":\"i\",\"pid\":1,\"tid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"vra\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"session\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"server\":\"U4\"}"), std::string::npos);
}

TEST(TraceRecorder, JsonEscapesControlAndQuoteCharacters) {
  TraceRecorder recorder;
  recorder.instant(Subsystem::kSim, "weird \"name\"\n", {{"k", "a\\b"}});
  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("weird \\\"name\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
}

TEST(TraceRecorder, CapacityCapCountsDrops) {
  TraceRecorder recorder{2};
  recorder.instant(Subsystem::kSim, "one");
  recorder.instant(Subsystem::kSim, "two");
  recorder.instant(Subsystem::kSim, "three");
  EXPECT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.dropped_count(), 1u);
  EXPECT_NE(recorder.to_chrome_json().find("\"vodDroppedEvents\":1"),
            std::string::npos);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.dropped_count(), 0u);
}

TEST(TraceSink, DefaultsToNullAndRoundTrips) {
  EXPECT_EQ(trace_sink(), nullptr);
  TraceRecorder recorder;
  set_trace_sink(&recorder);
  EXPECT_EQ(trace_sink(), &recorder);
  set_trace_sink(nullptr);
  EXPECT_EQ(trace_sink(), nullptr);
}

// ---- MetricsRegistry ----

TEST(Metrics, CounterGaugeRoundTripThroughSnapshot) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("cache.hits");
  hits.inc(3);
  ++hits;
  registry.gauge("queue.depth").set(17.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_u64("cache.hits"), 4u);
  EXPECT_DOUBLE_EQ(snap.value("queue.depth"), 17.5);
  EXPECT_TRUE(snap.has("cache.hits"));
  EXPECT_FALSE(snap.has("no.such"));
  EXPECT_THROW((void)snap.value("no.such"), std::out_of_range);
}

TEST(Metrics, RegistryIsGetOrCreate) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  // A name registered as one kind cannot come back as another.
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("x", {1.0}), std::logic_error);
}

TEST(Metrics, HistogramBucketsObservations) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("delay", {1.0, 5.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(3.0);   // <= 5
  h.observe(100.0); // +inf
  const MetricsSnapshot snap = registry.snapshot();
  const auto& data = snap.histograms().at("delay");
  ASSERT_EQ(data.bucket_counts.size(), 4u);
  EXPECT_EQ(data.bucket_counts[0], 2u);
  EXPECT_EQ(data.bucket_counts[1], 1u);
  EXPECT_EQ(data.bucket_counts[2], 0u);
  EXPECT_EQ(data.bucket_counts[3], 1u);
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 104.5);
}

TEST(Metrics, HistogramBoundsMustAscend) {
  MetricsRegistry registry;
  EXPECT_ANY_THROW((void)registry.histogram("bad", {5.0, 1.0}));
}

TEST(Metrics, CollectorsContributeAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t external = 0;
  registry.add_collector([&external](MetricsSnapshot& snap) {
    snap.set_counter("external.count", external);
  });
  external = 9;
  EXPECT_EQ(registry.snapshot().value_u64("external.count"), 9u);
  external = 12;
  EXPECT_EQ(registry.snapshot().value_u64("external.count"), 12u);
}

TEST(Metrics, CsvAndJsonAreDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.counter("b.count").inc(2);
  registry.gauge("a.level").set(1.0);
  registry.histogram("c.delay", {1.0}).observe(0.5);
  const MetricsSnapshot snap = registry.snapshot();

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv.find("name,kind,value\n"), 0u);
  EXPECT_NE(csv.find("a.level,gauge,1"), std::string::npos);
  EXPECT_LT(csv.find("a.level"), csv.find("b.count"));
  EXPECT_NE(csv.find("b.count,counter,2"), std::string::npos);
  EXPECT_NE(csv.find("c.delay[le=1]"), std::string::npos);
  EXPECT_NE(csv.find("c.delay[le=+inf]"), std::string::npos);
  EXPECT_NE(csv.find("c.delay[count]"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
}

// ---- Profiler ----

TEST(Profiler, DisabledByDefaultAndScopesNoOpWhenOff) {
  Profiler& profiler = Profiler::instance();
  profiler.reset();
  profiler.set_enabled(false);
  {
    VOD_PROFILE_SCOPE("test.site");
  }
  EXPECT_TRUE(profiler.sites().empty());
}

TEST(Profiler, EnabledScopesAggregatePerSite) {
  Profiler& profiler = Profiler::instance();
  profiler.reset();
  profiler.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    VOD_PROFILE_SCOPE("test.loop");
  }
  profiler.set_enabled(false);
  ASSERT_EQ(profiler.sites().count("test.loop"), 1u);
  EXPECT_EQ(profiler.sites().at("test.loop").calls, 3u);
  const std::string csv = profiler.report_csv();
  EXPECT_NE(csv.find("site,calls,total_ns,mean_ns"), std::string::npos);
  EXPECT_NE(csv.find("test.loop,3,"), std::string::npos);
  profiler.reset();
}

// ---- End to end: a traced run equals an untraced run ----

struct RunOutput {
  std::string sessions_csv;
  std::string report;
  std::string metrics_csv;
};

RunOutput run_grnet_scenario(TraceRecorder* recorder) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  if (recorder != nullptr) {
    recorder->set_clock([&sim] { return sim.now(); });
    set_trace_sink(recorder);
  }
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 120.0;
  options.dma.admission_threshold = 1;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"obs-admin"}};
  const VideoId movie =
      service.add_video("movie", MegaBytes{40.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.start();

  for (int i = 0; i < 4; ++i) {
    const NodeId home = i % 2 == 0 ? g.patra : g.athens;
    sim.schedule_at(SimTime{60.0 * (i + 1)},
                    [&service, home, movie](SimTime) {
                      (void)service.request_at(home, movie);
                    });
  }
  fault::FaultInjector injector{sim, service};
  injector.cut_link_at(SimTime{300.0}, g.patra_ioannina);
  injector.restore_link_at(SimTime{700.0}, g.patra_ioannina);

  sim.run_until(from_hours(3.0));
  if (recorder != nullptr) set_trace_sink(nullptr);

  return RunOutput{
      .sessions_csv = service::report_sessions_csv(service),
      .report = service::format_report(
          service::build_report(service, Mbps{0.0})),
      .metrics_csv = service.metrics_snapshot().to_csv(),
  };
}

TEST(ObsIntegration, TracedRunCoversSubsystemsAndChangesNothing) {
  const RunOutput plain = run_grnet_scenario(nullptr);
  TraceRecorder recorder;
  const RunOutput traced = run_grnet_scenario(&recorder);

  // Tracing is observe-only: every externalized artefact is byte-identical.
  EXPECT_EQ(plain.sessions_csv, traced.sessions_csv);
  EXPECT_EQ(plain.report, traced.report);
  EXPECT_EQ(plain.metrics_csv, traced.metrics_csv);

  // The scenario exercises requests, routing, caching, allocation, polling
  // and faults — at least five subsystem tracks carry events.
  EXPECT_GE(recorder.subsystem_count(), 5u);
  EXPECT_FALSE(recorder.events().empty());

  // And a second traced run replays the identical event stream.
  TraceRecorder again;
  (void)run_grnet_scenario(&again);
  EXPECT_EQ(recorder.to_text(), again.to_text());
  EXPECT_EQ(recorder.to_chrome_json(), again.to_chrome_json());
}

TEST(ObsIntegration, ServiceMetricsSnapshotMirrorsComponents) {
  const grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.dma.admission_threshold = 1'000'000;
  service::VodService service{sim, g.topology, network, options,
                              db::AdminCredential{"obs-admin"}};
  const VideoId movie =
      service.add_video("movie", MegaBytes{20.0}, Mbps{1.5});
  service.place_initial_copy(g.thessaloniki, movie);
  service.start();
  (void)service.request_at(g.patra, movie);
  sim.run_until(from_hours(1.0));

  const MetricsSnapshot snap = service.metrics_snapshot();
  // Registry-backed service counters...
  EXPECT_EQ(snap.value_u64("service.admitted"), service.admitted_count());
  EXPECT_EQ(snap.value_u64("service.sessions_finished"), 1u);
  // ...collector-mirrored component counters...
  EXPECT_EQ(snap.value_u64("snmp.polls"), service.snmp().poll_count());
  EXPECT_EQ(snap.value_u64("fluid.reallocations"),
            network.reallocation_count());
  EXPECT_TRUE(snap.has("vra.graph_hits"));
  EXPECT_TRUE(snap.has("dma.hits"));
  // ...and the session histograms saw the one finished download.
  EXPECT_EQ(snap.histograms().at("session.download_seconds").count, 1u);
}

}  // namespace
}  // namespace vod::obs
