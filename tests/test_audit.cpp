#include "service/audit.h"

#include <gtest/gtest.h>

#include "grnet/grnet.h"
#include "service/vod_service.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

TEST(DecisionAudit, RejectsZeroCapacity) {
  EXPECT_THROW(DecisionAudit{0}, std::invalid_argument);
}

TEST(DecisionAudit, RingBufferEvictsOldest) {
  DecisionAudit audit{3};
  for (int i = 0; i < 5; ++i) {
    AuditEntry entry;
    entry.cluster_index = static_cast<std::size_t>(i);
    audit.record(entry);
  }
  EXPECT_EQ(audit.entries().size(), 3u);
  EXPECT_EQ(audit.recorded(), 5u);
  EXPECT_EQ(audit.entries().front().cluster_index, 2u);
  EXPECT_EQ(audit.entries().back().cluster_index, 4u);
}

TEST(DecisionAudit, FormatRecentRendersNewest) {
  DecisionAudit audit{10};
  AuditEntry entry;
  entry.at = SimTime{12.5};
  entry.home = NodeId{0};
  entry.video = VideoId{7};
  entry.satisfied = true;
  entry.server = NodeId{1};
  entry.path_cost = 0.25;
  entry.hop_count = 2;
  audit.record(entry);
  const std::string out = audit.format_recent(
      5, [](NodeId node) { return "N" + std::to_string(node.value()); });
  EXPECT_NE(out.find("12.5"), std::string::npos);
  EXPECT_NE(out.find("N0"), std::string::npos);
  EXPECT_NE(out.find("N1"), std::string::npos);
  EXPECT_NE(out.find("0.2500"), std::string::npos);
}

TEST(DecisionAudit, UnsatisfiedEntriesMarked) {
  DecisionAudit audit{10};
  AuditEntry entry;
  entry.satisfied = false;
  audit.record(entry);
  const std::string out = audit.format_recent(
      5, [](NodeId node) { return std::to_string(node.value()); });
  EXPECT_NE(out.find("(none)"), std::string::npos);
}

struct ServiceFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  std::unique_ptr<VodService> service;
  VideoId movie;

  explicit ServiceFixture(std::size_t audit_capacity) {
    ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;
    options.audit_capacity = audit_capacity;
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{2.0});
    service->place_initial_copy(g.thessaloniki, movie);
    service->start();
  }
};

TEST(ServiceAudit, RecordsOneEntryPerCluster) {
  ServiceFixture fx{64};
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  // 40 MB / 10 MB clusters = 4 selections.
  EXPECT_EQ(fx.service->audit().recorded(), 4u);
  for (const AuditEntry& entry : fx.service->audit().entries()) {
    EXPECT_TRUE(entry.satisfied);
    EXPECT_EQ(entry.home, fx.g.patra);
    EXPECT_EQ(entry.video, fx.movie);
    EXPECT_EQ(entry.server, fx.g.thessaloniki);
    EXPECT_GT(entry.hop_count, 0u);
  }
  // Cluster indices run 0..3 in order.
  EXPECT_EQ(fx.service->audit().entries()[0].cluster_index, 0u);
  EXPECT_EQ(fx.service->audit().entries()[3].cluster_index, 3u);
}

TEST(ServiceAudit, RecordsUnsatisfiedSelections) {
  ServiceFixture fx{64};
  const VideoId ghost =
      fx.service->add_video("ghost", MegaBytes{10.0}, Mbps{2.0});
  fx.service->request_at(fx.g.patra, ghost);
  fx.sim.run_until(SimTime{10.0});
  ASSERT_EQ(fx.service->audit().recorded(), 1u);
  EXPECT_FALSE(fx.service->audit().entries().front().satisfied);
}

TEST(ServiceAudit, DisabledByDefault) {
  ServiceFixture fx{0};
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  EXPECT_THROW(fx.service->audit(), std::logic_error);
  // Sessions still work without auditing.
  EXPECT_TRUE(fx.service
                  ->session_metrics(fx.service->session_ids().front())
                  .finished);
}

TEST(ServiceAudit, TimestampsFollowSimulation) {
  ServiceFixture fx{64};
  fx.sim.run_until(SimTime{100.0});
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  const auto& entries = fx.service->audit().entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_DOUBLE_EQ(entries.front().at.seconds(), 100.0);
  EXPECT_GT(entries.back().at.seconds(), 100.0);
}

}  // namespace
}  // namespace vod::service
