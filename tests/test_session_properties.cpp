// Property tests over the session playback model: for random video
// geometries, bandwidths and pause patterns, the reconstructed playback
// timeline must satisfy its defining identities.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/transfer.h"
#include "stream/session.h"

namespace vod::stream {
namespace {

class FixedPolicy final : public ServerSelectionPolicy {
 public:
  FixedPolicy(NodeId client, NodeId server, LinkId link)
      : client_(client), server_(server), link_(link) {}
  std::optional<Selection> select(NodeId, VideoId) override {
    return Selection{server_,
                     routing::Path{{client_, server_}, {link_}, 1.0}};
  }
  const char* name() const override { return "fixed"; }

 private:
  NodeId client_, server_;
  LinkId link_;
};

class SessionPlaybackProperty : public ::testing::TestWithParam<int> {};

TEST_P(SessionPlaybackProperty, TimelineIdentitiesHold) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};

  net::Topology topo;
  const NodeId server = topo.add_node("server");
  const NodeId client = topo.add_node("client");
  const double link_mbps = rng.uniform(1.0, 20.0);
  const LinkId link = topo.add_link(server, client, Mbps{link_mbps});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};
  FixedPolicy policy{client, server, link};

  const double size_mb = rng.uniform(20.0, 200.0);
  const double bitrate = rng.uniform(0.5, 8.0);
  const double cluster_mb = rng.uniform(5.0, 60.0);
  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{size_mb},
                            Mbps{bitrate}};
  SessionOptions options;
  options.prebuffer_clusters =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  Session session{sim,    transfers, policy, video, client,
                  MegaBytes{cluster_mb}, options};
  session.start();

  // A couple of random (possibly overlapping-with-end) pauses.
  const int pause_count = static_cast<int>(rng.uniform_int(0, 2));
  double cursor = rng.uniform(1.0, 50.0);
  for (int p = 0; p < pause_count; ++p) {
    const double pause_at = cursor;
    const double resume_at = pause_at + rng.uniform(1.0, 60.0);
    cursor = resume_at + rng.uniform(1.0, 30.0);
    sim.schedule_at(SimTime{pause_at},
                    [&](SimTime) { session.pause(); });
    sim.schedule_at(SimTime{resume_at},
                    [&](SimTime) { session.resume(); });
  }

  sim.run_until(from_hours(10.0));
  const SessionMetrics& m = session.metrics();
  ASSERT_TRUE(m.finished);

  // Identity 1: the download moved all bytes; completion matches rate.
  const double download_span = *m.download_completed_at - m.requested_at;
  const double effective_rate =
      std::min(link_mbps, options.flow_cap.value());
  EXPECT_NEAR(download_span, size_mb * 8.0 / effective_rate, 1e-6);

  // Identity 2: cluster completions are non-decreasing and the last one is
  // the download completion.
  ASSERT_FALSE(m.cluster_completed.empty());
  EXPECT_EQ(m.cluster_completed.back(), *m.download_completed_at);

  // Identity 3: playback wall time = content duration + rebuffer + pauses
  // that fell inside the playback window.
  ASSERT_TRUE(m.playback_started_at && m.playback_finished_at);
  const double wall =
      *m.playback_finished_at - *m.playback_started_at;
  const double content = size_mb * 8.0 / bitrate;
  double paused_inside = 0.0;
  for (const auto& [from, to] : m.pauses) {
    const double lo =
        std::max(from.seconds(), m.playback_started_at->seconds());
    const double hi =
        std::min(to.seconds(), m.playback_finished_at->seconds());
    paused_inside += std::max(0.0, hi - lo);
  }
  EXPECT_NEAR(wall, content + m.rebuffer_seconds + paused_inside, 1e-6)
      << "seed " << GetParam();

  // Identity 4: playback never starts before the prebuffer is in.
  const std::size_t prebuffer =
      std::min(options.prebuffer_clusters, session.cluster_count());
  EXPECT_GE(m.playback_started_at->seconds(),
            m.cluster_completed[prebuffer - 1].seconds() - 1e-9);

  // Identity 5: rebuffering only happens when the stream cannot keep up;
  // with bitrate below the delivered rate and no mid-window pauses the
  // session is smooth.
  if (bitrate < effective_rate && m.pauses.empty()) {
    EXPECT_EQ(m.rebuffer_events, 0);
  }
  EXPECT_GE(m.rebuffer_seconds, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionPlaybackProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace vod::stream
