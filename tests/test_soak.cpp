// Long-horizon integration soak: several simulated days of diurnal load on
// a 12-node network with link failures, repairs and disk crashes injected —
// asserting global invariants (all sessions terminal, no leaked flows,
// database/DMA consistency) and bit-for-bit determinism per seed.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "workload/catalog_gen.h"
#include "workload/request_gen.h"

namespace vod {
namespace {

const db::AdminCredential kAdmin{"soak-admin"};

struct Scenario {
  net::Topology topo;
  std::vector<NodeId> edges;

  Scenario() {
    std::vector<NodeId> cores;
    for (int c = 0; c < 3; ++c) {
      cores.push_back(topo.add_node("core" + std::to_string(c)));
    }
    topo.add_link(cores[0], cores[1], Mbps{34.0});
    topo.add_link(cores[1], cores[2], Mbps{34.0});
    topo.add_link(cores[2], cores[0], Mbps{34.0});
    for (int e = 0; e < 9; ++e) {
      const NodeId edge = topo.add_node("edge" + std::to_string(e));
      edges.push_back(edge);
      topo.add_link(cores[e % 3], edge, Mbps{2.0 + 4.0 * (e % 3)});
    }
  }
};

/// Runs the whole soak; returns a digest string for determinism checks.
std::string run_soak(std::uint64_t seed, int days) {
  Scenario scenario;
  net::DiurnalTraffic traffic{20.0};
  for (const net::LinkInfo& info : scenario.topo.links()) {
    traffic.set_shape(info.id, {.capacity = info.capacity,
                                .base_fraction = 0.05,
                                .peak_fraction = 0.5});
  }
  sim::Simulation sim;
  net::FluidNetwork network{scenario.topo, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{25.0};
  options.snmp_interval_seconds = 90.0;
  options.vra_switch_hysteresis = 0.5;
  options.session.stall_timeout_seconds = 600.0;
  options.session.max_retries = 4;
  options.dma.admission_threshold = 2;
  service::VodService service{sim, scenario.topo, network, options, kAdmin};

  Rng rng{seed};
  workload::CatalogSpec catalog_spec;
  catalog_spec.title_count = 24;
  catalog_spec.min_size = MegaBytes{60.0};
  catalog_spec.max_size = MegaBytes{180.0};
  catalog_spec.min_bitrate = Mbps{1.0};
  catalog_spec.max_bitrate = Mbps{2.0};
  const std::vector<VideoId> videos =
      workload::populate_catalog(service.database(), catalog_spec, rng);
  for (std::size_t v = 0; v < videos.size(); ++v) {
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>(v % 12)}, videos[v]);
    service.place_initial_copy(
        NodeId{static_cast<NodeId::underlying_type>((v + 4) % 12)},
        videos[v]);
  }
  service.start();

  workload::RequestGenerator gen{videos, 1.0, scenario.edges};
  const auto requests = gen.generate_diurnal(
      SimTime{0.0}, Duration{days * 86400.0},
      40.0 * days / (days * 86400.0),  // ~40 requests per day
      20.0, 3.0, rng);
  for (const workload::Request& request : requests) {
    const bool gated = rng.bernoulli(0.5);
    sim.schedule_at(request.at, [&service, request, gated](SimTime) {
      if (gated) {
        (void)service.request_with_admission(request.home, request.video);
      } else {
        (void)service.request_at(request.home, request.video);
      }
    });
  }

  // Chaos: one link outage and one disk crash per simulated day.
  for (int day = 0; day < days; ++day) {
    const auto link = static_cast<LinkId::underlying_type>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               scenario.topo.link_count()) - 1));
    const double fail_at = day * 86400.0 + rng.uniform(3600.0, 43200.0);
    sim.schedule_at(SimTime{fail_at}, [&network, link](SimTime) {
      network.set_link_up(LinkId{link}, false);
    });
    sim.schedule_at(SimTime{fail_at + 7200.0}, [&network, link](SimTime) {
      network.set_link_up(LinkId{link}, true);
    });

    const auto victim = static_cast<NodeId::underlying_type>(
        rng.uniform_int(0, 11));
    sim.schedule_at(
        SimTime{day * 86400.0 + rng.uniform(43200.0, 86000.0)},
        [&service, victim](SimTime) {
          (void)service.fail_disk(NodeId{victim}, 0);
        });
  }

  sim.run_until(from_hours(days * 24.0 + 24.0));  // one day of drain time

  // --- Invariants ---
  // 1. No leaked transfers or flows.
  EXPECT_EQ(service.transfers().active_count(), 0u);
  EXPECT_EQ(network.active_flow_count(), 0u);

  // 2. Every session is terminal, with sane metrics.
  int finished = 0, failed = 0;
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    EXPECT_TRUE(m.finished || m.failed) << "session " << id.value();
    EXPECT_FALSE(m.finished && m.failed);
    (m.finished ? finished : failed) += 1;
    EXPECT_GE(m.rebuffer_seconds, 0.0);
    EXPECT_GE(m.startup_delay(), 0.0);
    SimTime last{0.0};
    for (const SimTime t : m.cluster_completed) {
      EXPECT_GE(t, last);
      last = t;
    }
    if (m.finished) {
      EXPECT_EQ(m.cluster_completed.size(), m.cluster_sources.size());
      EXPECT_GT(m.mean_delivered_rate.value(), 0.0);
    }
  }
  EXPECT_GT(finished, 0);

  // 3. Database/DMA consistency: a server advertises exactly what its
  // disks hold (initial placements included — both paths write both).
  auto view = service.admin_view();
  for (std::size_t n = 0; n < scenario.topo.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    const auto& advertised = view.server(node).titles;
    auto& cache = service.dma_cache(node);
    for (const VideoId video : videos) {
      EXPECT_EQ(advertised.contains(video), cache.cached(video))
          << "node " << n << " video " << video.value();
    }
  }

  // Digest for determinism comparison.
  const service::ServiceReport report =
      service::build_report(service, Mbps{0.0});
  std::ostringstream digest;
  digest << report.sessions << '/' << report.finished << '/'
         << report.failed << '/' << report.qos_ok << '/'
         << report.total_switches << '/' << report.total_stall_retries
         << '/' << report.total_rebuffer_seconds;
  return digest.str();
}

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, InvariantsHoldOverThreeDays) {
  const std::string digest = run_soak(GetParam(), 3);
  EXPECT_FALSE(digest.empty());
}

TEST_P(SoakTest, DeterministicPerSeed) {
  const std::string first = run_soak(GetParam(), 2);
  const std::string second = run_soak(GetParam(), 2);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace vod
