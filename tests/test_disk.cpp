#include "storage/disk.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::storage {
namespace {

Disk small_disk() {
  return Disk{DiskId{0},
              DiskProfile{.capacity = MegaBytes{100.0},
                          .transfer_rate = Mbps{80.0},
                          .seek_seconds = 0.01}};
}

TEST(Disk, StartsEmpty) {
  const Disk disk = small_disk();
  EXPECT_EQ(disk.used(), MegaBytes{0.0});
  EXPECT_EQ(disk.free(), MegaBytes{100.0});
  EXPECT_EQ(disk.stored_part_count(), 0u);
}

TEST(Disk, StorePartUpdatesUsage) {
  Disk disk = small_disk();
  disk.store_part(VideoId{1}, 0, MegaBytes{30.0});
  EXPECT_EQ(disk.used(), MegaBytes{30.0});
  EXPECT_EQ(disk.free(), MegaBytes{70.0});
  EXPECT_TRUE(disk.holds_any_part(VideoId{1}));
  EXPECT_EQ(disk.stored_part_count(), 1u);
}

TEST(Disk, CanFitRespectsFreeSpace) {
  Disk disk = small_disk();
  EXPECT_TRUE(disk.can_fit(MegaBytes{100.0}));
  disk.store_part(VideoId{1}, 0, MegaBytes{60.0});
  EXPECT_TRUE(disk.can_fit(MegaBytes{40.0}));
  EXPECT_FALSE(disk.can_fit(MegaBytes{41.0}));
}

TEST(Disk, StoreBeyondCapacityThrows) {
  Disk disk = small_disk();
  EXPECT_THROW(disk.store_part(VideoId{1}, 0, MegaBytes{101.0}),
               std::invalid_argument);
}

TEST(Disk, DuplicatePartThrows) {
  Disk disk = small_disk();
  disk.store_part(VideoId{1}, 0, MegaBytes{10.0});
  EXPECT_THROW(disk.store_part(VideoId{1}, 0, MegaBytes{10.0}),
               std::invalid_argument);
}

TEST(Disk, DistinctPartsOfSameVideoAllowed) {
  Disk disk = small_disk();
  disk.store_part(VideoId{1}, 0, MegaBytes{10.0});
  disk.store_part(VideoId{1}, 4, MegaBytes{10.0});
  EXPECT_EQ(disk.parts_of(VideoId{1}), (std::vector<std::size_t>{0, 4}));
}

TEST(Disk, RemoveVideoFreesAllParts) {
  Disk disk = small_disk();
  disk.store_part(VideoId{1}, 0, MegaBytes{10.0});
  disk.store_part(VideoId{1}, 1, MegaBytes{10.0});
  disk.store_part(VideoId{2}, 0, MegaBytes{5.0});
  EXPECT_EQ(disk.remove_video(VideoId{1}), MegaBytes{20.0});
  EXPECT_EQ(disk.used(), MegaBytes{5.0});
  EXPECT_FALSE(disk.holds_any_part(VideoId{1}));
  EXPECT_TRUE(disk.holds_any_part(VideoId{2}));
}

TEST(Disk, RemoveAbsentVideoFreesNothing) {
  Disk disk = small_disk();
  EXPECT_EQ(disk.remove_video(VideoId{9}), MegaBytes{0.0});
}

TEST(Disk, ReadSecondsIsSeekPlusTransfer) {
  const Disk disk = small_disk();
  // 10 MB = 80 megabits at 80 Mbps = 1 s, plus 0.01 s seek.
  EXPECT_NEAR(disk.read_seconds(MegaBytes{10.0}), 1.01, 1e-12);
}

TEST(Disk, ReadSecondsRejectsNegative) {
  const Disk disk = small_disk();
  EXPECT_THROW(disk.read_seconds(MegaBytes{-1.0}), std::invalid_argument);
}

TEST(Disk, RejectsBadConstruction) {
  EXPECT_THROW(Disk(DiskId{}, DiskProfile{}), std::invalid_argument);
  EXPECT_THROW(
      Disk(DiskId{0}, DiskProfile{.capacity = MegaBytes{0.0}}),
      std::invalid_argument);
  EXPECT_THROW(Disk(DiskId{0}, DiskProfile{.capacity = MegaBytes{1.0},
                                           .transfer_rate = Mbps{0.0}}),
               std::invalid_argument);
}

TEST(Disk, RejectsNonPositivePartSize) {
  Disk disk = small_disk();
  EXPECT_THROW(disk.store_part(VideoId{1}, 0, MegaBytes{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vod::storage
