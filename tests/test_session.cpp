#include "stream/session.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::stream {
namespace {

/// Fixed-answer policy for driving sessions without a full service stack.
class ScriptedPolicy final : public ServerSelectionPolicy {
 public:
  explicit ScriptedPolicy(std::optional<Selection> answer)
      : answer_(std::move(answer)) {}

  void set_answer(std::optional<Selection> answer) {
    answer_ = std::move(answer);
  }

  std::optional<Selection> select(NodeId, VideoId) override {
    ++calls_;
    return answer_;
  }
  const char* name() const override { return "scripted"; }

  int calls() const { return calls_; }

 private:
  std::optional<Selection> answer_;
  int calls_ = 0;
};

/// client(b) -- 8 Mbps -- server(a)
struct Fixture {
  net::Topology topo;
  NodeId server, client;
  LinkId link;
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{topo, traffic};
  net::TransferManager transfers{sim, network};

  Fixture() : topo(), server(topo.add_node("server")),
              client(topo.add_node("client")),
              link(topo.add_link(server, client, Mbps{8.0})),
              network(topo, traffic), transfers(sim, network) {}

  Selection remote() {
    return Selection{server,
                     routing::Path{{client, server}, {link}, 1.0}};
  }

  db::VideoInfo video(double size_mb, double bitrate) {
    return db::VideoInfo{VideoId{0}, "v", MegaBytes{size_mb},
                         Mbps{bitrate}};
  }
};

TEST(Session, DownloadsAllClustersAndFinishes) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  // 40 MB, cluster 10 -> 4 clusters; 8 Mbps -> 10 s per cluster.
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(session.cluster_count(), 4u);
  ASSERT_EQ(m.cluster_completed.size(), 4u);
  EXPECT_NEAR(m.cluster_completed[0].seconds(), 10.0, 1e-9);
  EXPECT_NEAR(m.cluster_completed[3].seconds(), 40.0, 1e-9);
  ASSERT_TRUE(m.download_completed_at.has_value());
  EXPECT_NEAR(m.download_completed_at->seconds(), 40.0, 1e-9);
  EXPECT_EQ(policy.calls(), 4);  // re-selected before every cluster
}

TEST(Session, StartupDelayIsFirstClusterTime) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  EXPECT_NEAR(session.metrics().startup_delay(), 10.0, 1e-9);
}

TEST(Session, NoRebufferWhenDownloadOutpacesPlayback) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  // Bitrate 2 Mbps over an 8 Mbps pipe: each 10 MB cluster downloads in
  // 10 s and plays for 40 s — smooth after startup.
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  EXPECT_TRUE(session.metrics().smooth());
  EXPECT_EQ(session.metrics().rebuffer_events, 0);
  EXPECT_DOUBLE_EQ(session.metrics().rebuffer_seconds, 0.0);
}

TEST(Session, RebuffersWhenBitrateExceedsBandwidth) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  // 16 Mbps title over an 8 Mbps pipe: every cluster arrives a full
  // cluster-playback late.
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 16.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  EXPECT_GT(m.rebuffer_events, 0);
  EXPECT_GT(m.rebuffer_seconds, 0.0);
  EXPECT_FALSE(m.smooth());
  // Download: 10 s per cluster; playback: 5 s per cluster.  After cluster
  // 1 (t=10) the playhead drains at t=15 but cluster 2 lands at t=20...
  // total stall = 3 clusters x 5 s = 15 s.
  EXPECT_NEAR(m.rebuffer_seconds, 15.0, 1e-9);
  EXPECT_EQ(m.rebuffer_events, 3);
}

TEST(Session, PrebufferDelaysStartButAbsorbsJitter) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  SessionOptions options;
  options.prebuffer_clusters = 4;  // the entire 4-cluster video
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 16.0),
                  fx.client, MegaBytes{10.0}, options};
  session.start();
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  // Full prebuffer: starts at 40 s but never stalls.
  EXPECT_NEAR(m.startup_delay(), 40.0, 1e-9);
  EXPECT_EQ(m.rebuffer_events, 0);
}

TEST(Session, PlaybackFinishTimeComputed) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  ASSERT_TRUE(m.playback_finished_at.has_value());
  // Starts at 10 s, plays 40 MB * 8 / 2 Mbps = 160 s.
  EXPECT_NEAR(m.playback_finished_at->seconds(), 170.0, 1e-9);
}

TEST(Session, ServerSwitchesCounted) {
  Fixture fx;
  // Add a second server and switch the policy answer mid-stream.
  const NodeId server2 = fx.topo.add_node("server2");
  const LinkId link2 = fx.topo.add_link(server2, fx.client, Mbps{8.0});
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.schedule_at(SimTime{15.0}, [&](SimTime) {
    policy.set_answer(Selection{
        server2, routing::Path{{fx.client, server2}, {link2}, 1.0}});
  });
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  EXPECT_EQ(m.server_switches, 1);
  ASSERT_EQ(m.cluster_sources.size(), 4u);
  EXPECT_EQ(m.cluster_sources[0], fx.server);
  EXPECT_EQ(m.cluster_sources[1], fx.server);  // chosen at t=10
  EXPECT_EQ(m.cluster_sources[2], server2);    // chosen at t=20
  EXPECT_EQ(m.cluster_sources[3], server2);
}

TEST(Session, FailsWhenNoServerAvailable) {
  Fixture fx;
  ScriptedPolicy policy{std::nullopt};
  bool done_called = false;
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}, {},
                  [&](const Session& s) {
                    done_called = true;
                    EXPECT_TRUE(s.metrics().failed);
                  }};
  session.start();
  fx.sim.run();
  EXPECT_TRUE(done_called);
  EXPECT_TRUE(session.metrics().failed);
  EXPECT_FALSE(session.metrics().finished);
  EXPECT_EQ(session.metrics().failure_reason,
            "no server can provide the title");
}

TEST(Session, MidStreamLossOfAllServersFails) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.schedule_at(SimTime{15.0},
                     [&](SimTime) { policy.set_answer(std::nullopt); });
  fx.sim.run();
  EXPECT_TRUE(session.metrics().failed);
  EXPECT_EQ(session.metrics().cluster_completed.size(), 2u);
}

TEST(Session, AbortCancelsInflightTransfer) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.schedule_at(SimTime{5.0},
                     [&](SimTime) { session.abort("user pressed stop"); });
  fx.sim.run();
  EXPECT_TRUE(session.metrics().failed);
  EXPECT_EQ(session.metrics().failure_reason, "user pressed stop");
  EXPECT_EQ(fx.transfers.active_count(), 0u);
}

TEST(Session, LocalServingUsesLocalRate) {
  Fixture fx;
  ScriptedPolicy policy{
      Selection{fx.client, routing::Path{{fx.client}, {}, 0.0}}};
  SessionOptions options;
  options.local_rate = Mbps{80.0};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}, options};
  session.start();
  fx.sim.run();
  // 40 MB at 80 Mbps = 4 s total.
  EXPECT_NEAR(session.metrics().download_completed_at->seconds(), 4.0,
              1e-9);
}

TEST(Session, SingleClusterVideo) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(5.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  EXPECT_TRUE(session.metrics().finished);
  EXPECT_EQ(session.cluster_count(), 1u);
  EXPECT_EQ(policy.calls(), 1);
}

TEST(SessionVcr, PauseExtendsPlaybackTimeline) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  // Pause at t=30, during playback (starts at t=10, each cluster plays
  // 40 s).  The download completes at t=40 and the session record is
  // frozen then, closing the open pause: pauses are honored while the
  // distribution service is still delivering; afterwards they belong to
  // the player, which this library does not model.
  fx.sim.schedule_at(SimTime{30.0}, [&](SimTime) { session.pause(); });
  fx.sim.schedule_at(SimTime{90.0}, [&](SimTime) { session.resume(); });
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  ASSERT_EQ(m.pauses.size(), 1u);
  EXPECT_DOUBLE_EQ(m.total_paused_seconds(), 10.0);  // clipped to t=40
  // Unpaused finish would be 170 s; the 10 s honored pause gives 180 s.
  ASSERT_TRUE(m.playback_finished_at.has_value());
  EXPECT_NEAR(m.playback_finished_at->seconds(), 180.0, 1e-9);
  EXPECT_EQ(m.rebuffer_events, 0);
}

TEST(SessionVcr, PauseDuringPrebufferDelaysStartup) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  // Paused across the moment the first cluster lands (t=10).
  fx.sim.schedule_at(SimTime{5.0}, [&](SimTime) { session.pause(); });
  fx.sim.schedule_at(SimTime{25.0}, [&](SimTime) { session.resume(); });
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  ASSERT_TRUE(m.playback_started_at.has_value());
  EXPECT_NEAR(m.playback_started_at->seconds(), 25.0, 1e-9);
}

TEST(SessionVcr, PauseAbsorbsWouldBeRebuffer) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  // 16 Mbps title over 8 Mbps: unpaused this rebuffers 15 s (see above).
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 16.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  // A long pause right after playback starts lets the download get ahead.
  fx.sim.schedule_at(SimTime{11.0}, [&](SimTime) { session.pause(); });
  fx.sim.schedule_at(SimTime{60.0}, [&](SimTime) { session.resume(); });
  fx.sim.run();
  const SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  // All clusters arrived by t=40 < resume at 60: no stalls remain after
  // the pause, and before it only 1 s of content had played.
  EXPECT_EQ(m.rebuffer_events, 0);
  EXPECT_DOUBLE_EQ(m.rebuffer_seconds, 0.0);
}

TEST(SessionVcr, RedundantPauseResumeAreNoOps) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  EXPECT_FALSE(session.paused());
  session.resume();  // not paused: no-op
  session.pause();
  EXPECT_TRUE(session.paused());
  session.pause();  // already paused: no-op
  session.resume();
  EXPECT_FALSE(session.paused());
  EXPECT_EQ(session.metrics().pauses.size(), 1u);
}

TEST(SessionVcr, OpenPauseClosedAtFinish) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.schedule_at(SimTime{30.0}, [&](SimTime) { session.pause(); });
  fx.sim.run();  // never resumed explicitly
  const SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  ASSERT_EQ(m.pauses.size(), 1u);
  // Closed at the download completion instant (t=40).
  EXPECT_NEAR(m.pauses[0].second.seconds(), 40.0, 1e-9);
  EXPECT_FALSE(session.paused());
}

TEST(SessionQos, MeanDeliveredRateComputed) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  // 40 MB in 40 s = 8 Mbps.
  EXPECT_NEAR(session.metrics().mean_delivered_rate.value(), 8.0, 1e-9);
  EXPECT_TRUE(session.metrics().meets_qos_floor(Mbps{2.0}));
  EXPECT_FALSE(session.metrics().meets_qos_floor(Mbps{9.0}));
}

TEST(SessionQos, RebufferingSessionFailsTheFloor) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 16.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  fx.sim.run();
  EXPECT_TRUE(session.metrics().finished);
  EXPECT_FALSE(session.metrics().meets_qos_floor(Mbps{1.0}));
}

TEST(Session, ValidatesConstruction) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  EXPECT_THROW(Session(fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                       NodeId{}, MegaBytes{10.0}),
               std::invalid_argument);
  EXPECT_THROW(Session(fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                       fx.client, MegaBytes{0.0}),
               std::invalid_argument);
  SessionOptions bad;
  bad.prebuffer_clusters = 0;
  EXPECT_THROW(Session(fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                       fx.client, MegaBytes{10.0}, bad),
               std::invalid_argument);
}

TEST(Session, DoubleStartThrows) {
  Fixture fx;
  ScriptedPolicy policy{fx.remote()};
  Session session{fx.sim, fx.transfers, policy, fx.video(40.0, 2.0),
                  fx.client, MegaBytes{10.0}};
  session.start();
  EXPECT_THROW(session.start(), std::logic_error);
}

}  // namespace
}  // namespace vod::stream
