#include "service/distributed_striping.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grnet/grnet.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

TEST(DistributedStripePlacer, ValidatesArguments) {
  EXPECT_THROW(DistributedStripePlacer({}, 1), std::invalid_argument);
  EXPECT_THROW(DistributedStripePlacer({NodeId{0}}, 0),
               std::invalid_argument);
  EXPECT_THROW(DistributedStripePlacer({NodeId{0}}, 2),
               std::invalid_argument);
}

TEST(DistributedStripePlacer, AssignsReplicaCountServersPerTitle) {
  DistributedStripePlacer placer{{NodeId{0}, NodeId{1}, NodeId{2}}, 2};
  const auto plan = placer.plan({VideoId{10}, VideoId{11}});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].servers.size(), 2u);
  EXPECT_EQ(plan[1].servers.size(), 2u);
}

TEST(DistributedStripePlacer, RotatesStartServerByPopularityRank) {
  DistributedStripePlacer placer{{NodeId{0}, NodeId{1}, NodeId{2}}, 2};
  const auto plan =
      placer.plan({VideoId{10}, VideoId{11}, VideoId{12}, VideoId{13}});
  EXPECT_EQ(plan[0].servers, (std::vector<NodeId>{NodeId{0}, NodeId{1}}));
  EXPECT_EQ(plan[1].servers, (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
  EXPECT_EQ(plan[2].servers, (std::vector<NodeId>{NodeId{2}, NodeId{0}}));
  EXPECT_EQ(plan[3].servers, (std::vector<NodeId>{NodeId{0}, NodeId{1}}));
}

struct PolicyFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId striped_movie;
  VideoId plain_movie;

  PolicyFixture() {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    striped_movie =
        db.register_video("striped", MegaBytes{900.0}, Mbps{2.0});
    plain_movie = db.register_video("plain", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const auto sample =
          grnet::table2_sample(g, link, grnet::TimeOfDay::k8am);
      view.update_link_stats(link, sample.used, sample.utilization,
                             SimTime{0.0});
    }
    view.add_title(g.thessaloniki, plain_movie);
  }
};

TEST(StripedSelectionPolicy, RoutesClustersRoundRobinAcrossHolders) {
  PolicyFixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(),
               fx.db.limited_view(kAdmin), {}};
  StripedSelectionPolicy policy{
      vra,
      {StripeAssignment{fx.striped_movie,
                        {fx.g.thessaloniki, fx.g.xanthi}}}};
  const auto c0 = policy.select_cluster(fx.g.patra, fx.striped_movie, 0);
  const auto c1 = policy.select_cluster(fx.g.patra, fx.striped_movie, 1);
  const auto c2 = policy.select_cluster(fx.g.patra, fx.striped_movie, 2);
  ASSERT_TRUE(c0 && c1 && c2);
  EXPECT_EQ(c0->server, fx.g.thessaloniki);
  EXPECT_EQ(c1->server, fx.g.xanthi);
  EXPECT_EQ(c2->server, fx.g.thessaloniki);
}

TEST(StripedSelectionPolicy, PathsFollowCurrentLvnWeights) {
  PolicyFixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(),
               fx.db.limited_view(kAdmin), {}};
  StripedSelectionPolicy policy{
      vra,
      {StripeAssignment{fx.striped_movie, {fx.g.thessaloniki}}}};
  const auto selection =
      policy.select_cluster(fx.g.patra, fx.striped_movie, 0);
  ASSERT_TRUE(selection.has_value());
  // At 8am the least-LVN Patra->Thessaloniki route is U2,U3,U4 (~0.218).
  EXPECT_NEAR(selection->path.cost, 0.218, 0.002);
  EXPECT_EQ(selection->path.hop_count(), 2u);
}

TEST(StripedSelectionPolicy, HomeStripServedLocally) {
  PolicyFixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(),
               fx.db.limited_view(kAdmin), {}};
  StripedSelectionPolicy policy{
      vra, {StripeAssignment{fx.striped_movie, {fx.g.patra}}}};
  const auto selection =
      policy.select_cluster(fx.g.patra, fx.striped_movie, 0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->server, fx.g.patra);
  EXPECT_TRUE(selection->path.links.empty());
}

TEST(StripedSelectionPolicy, UnassignedVideoFallsBackToVra) {
  PolicyFixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(),
               fx.db.limited_view(kAdmin), {}};
  StripedSelectionPolicy policy{
      vra, {StripeAssignment{fx.striped_movie, {fx.g.xanthi}}}};
  const auto selection =
      policy.select_cluster(fx.g.patra, fx.plain_movie, 0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->server, fx.g.thessaloniki);  // the VRA's answer
}

TEST(StripedSelectionPolicy, SelectDelegatesToClusterZero) {
  PolicyFixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(),
               fx.db.limited_view(kAdmin), {}};
  StripedSelectionPolicy policy{
      vra,
      {StripeAssignment{fx.striped_movie,
                        {fx.g.thessaloniki, fx.g.xanthi}}}};
  const auto selection = policy.select(fx.g.patra, fx.striped_movie);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->server, fx.g.thessaloniki);
}

TEST(StripedSelectionPolicy, RejectsEmptyServerList) {
  PolicyFixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(),
               fx.db.limited_view(kAdmin), {}};
  EXPECT_THROW(StripedSelectionPolicy(
                   vra, {StripeAssignment{fx.striped_movie, {}}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vod::service
