#include "net/transfer.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

namespace vod::net {
namespace {

struct Fixture {
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;
  NoTraffic no_traffic;

  Fixture() {
    a = topo.add_node("a");
    b = topo.add_node("b");
    c = topo.add_node("c");
    ab = topo.add_link(a, b, Mbps{8.0});
    bc = topo.add_link(b, c, Mbps{8.0});
  }
};

TEST(TransferManager, SingleTransferCompletesAtExactTime) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  std::optional<double> done_at;
  // 8 MB = 64 megabits over 8 Mbps -> 8 s.
  manager.start_transfer({fx.ab}, MegaBytes{8.0}, Mbps{100.0},
                         [&](SimTime t) { done_at = t.seconds(); });
  sim.run();
  ASSERT_TRUE(done_at.has_value());
  EXPECT_NEAR(*done_at, 8.0, 1e-9);
}

TEST(TransferManager, RateCapSlowsTransfer) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  std::optional<double> done_at;
  manager.start_transfer({fx.ab}, MegaBytes{8.0}, Mbps{4.0},
                         [&](SimTime t) { done_at = t.seconds(); });
  sim.run();
  EXPECT_NEAR(*done_at, 16.0, 1e-9);
}

TEST(TransferManager, LocalTransferUsesOwnCap) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  std::optional<double> done_at;
  manager.start_transfer({}, MegaBytes{80.0}, Mbps{80.0},
                         [&](SimTime t) { done_at = t.seconds(); });
  sim.run();
  EXPECT_NEAR(*done_at, 8.0, 1e-9);
}

TEST(TransferManager, TwoTransfersShareThenSpeedUp) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  // Both on ab (8 Mbps): 4 Mbps each. First moves 4 MB (32 Mb) -> done at
  // t=8.  Second (8 MB) has 4 MB left at t=8, then full 8 Mbps -> +4 s.
  std::optional<double> first_done, second_done;
  manager.start_transfer({fx.ab}, MegaBytes{4.0}, Mbps{100.0},
                         [&](SimTime t) { first_done = t.seconds(); });
  manager.start_transfer({fx.ab}, MegaBytes{8.0}, Mbps{100.0},
                         [&](SimTime t) { second_done = t.seconds(); });
  sim.run();
  ASSERT_TRUE(first_done && second_done);
  EXPECT_NEAR(*first_done, 8.0, 1e-9);
  EXPECT_NEAR(*second_done, 12.0, 1e-9);
}

TEST(TransferManager, StaggeredStartAccountsEarlierProgress) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  std::optional<double> done_at;
  manager.start_transfer({fx.ab}, MegaBytes{8.0}, Mbps{100.0},
                         [&](SimTime t) { done_at = t.seconds(); });
  // At t=4 the first transfer has 4 MB left; a second joins and halves the
  // rate: remaining 32 Mb at 4 Mbps -> done at t=12.
  sim.schedule_at(SimTime{4.0}, [&](SimTime) {
    manager.start_transfer({fx.ab}, MegaBytes{100.0}, Mbps{100.0},
                           [](SimTime) {});
  });
  sim.run_until(SimTime{50.0});
  ASSERT_TRUE(done_at.has_value());
  EXPECT_NEAR(*done_at, 12.0, 1e-9);
}

TEST(TransferManager, BackgroundTrafficChangeReschedules) {
  Fixture fx;
  TraceTraffic trace;
  trace.add_sample(fx.ab, SimTime{0.0}, Mbps{0.0});
  trace.add_sample(fx.ab, SimTime{4.0}, Mbps{4.0});
  FluidNetwork network{fx.topo, trace};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  // 8 Mbps for 4 s (4 MB moved), then 4 Mbps: remaining 4 MB takes 8 s.
  std::optional<double> done_at;
  manager.start_transfer({fx.ab}, MegaBytes{8.0}, Mbps{100.0},
                         [&](SimTime t) { done_at = t.seconds(); });
  sim.run();
  ASSERT_TRUE(done_at.has_value());
  EXPECT_NEAR(*done_at, 12.0, 1e-9);
}

TEST(TransferManager, CancelPreventsCompletion) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  bool completed = false;
  const FlowId id = manager.start_transfer(
      {fx.ab}, MegaBytes{8.0}, Mbps{100.0},
      [&](SimTime) { completed = true; });
  sim.schedule_at(SimTime{2.0}, [&](SimTime) { manager.cancel(id); });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(network.active_flow_count(), 0u);
}

TEST(TransferManager, CancelUnknownThrows) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};
  EXPECT_THROW(manager.cancel(FlowId{9}), std::out_of_range);
}

TEST(TransferManager, RemainingReportsLiveProgress) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  const FlowId id = manager.start_transfer({fx.ab}, MegaBytes{8.0},
                                           Mbps{100.0}, [](SimTime) {});
  EXPECT_NEAR(manager.remaining(id).value(), 8.0, 1e-9);
  sim.schedule_at(SimTime{4.0}, [&](SimTime) {
    EXPECT_NEAR(manager.remaining(id).value(), 4.0, 1e-6);
  });
  sim.run_until(SimTime{4.0});
  ASSERT_TRUE(manager.active(id));
}

TEST(TransferManager, CompletionCallbackMayStartNextTransfer) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  // Chain two 4 MB transfers (the cluster-fetch pattern).
  std::vector<double> completions;
  manager.start_transfer({fx.ab}, MegaBytes{4.0}, Mbps{100.0},
                         [&](SimTime t1) {
                           completions.push_back(t1.seconds());
                           manager.start_transfer(
                               {fx.ab, fx.bc}, MegaBytes{4.0}, Mbps{100.0},
                               [&](SimTime t2) {
                                 completions.push_back(t2.seconds());
                               });
                         });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 4.0, 1e-9);
  EXPECT_NEAR(completions[1], 8.0, 1e-9);
}

TEST(TransferManager, RejectsBadArguments) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};
  EXPECT_THROW(manager.start_transfer({fx.ab}, MegaBytes{0.0}, Mbps{1.0},
                                      [](SimTime) {}),
               std::invalid_argument);
  EXPECT_THROW(manager.start_transfer({fx.ab}, MegaBytes{1.0}, Mbps{1.0},
                                      TransferManager::CompletionCallback{}),
               std::invalid_argument);
}

TEST(TransferManager, ManySequentialTransfersStayExact) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  int completed = 0;
  std::function<void(SimTime)> chain = [&](SimTime) {
    if (++completed < 10) {
      manager.start_transfer({fx.ab}, MegaBytes{1.0}, Mbps{8.0}, chain);
    }
  };
  manager.start_transfer({fx.ab}, MegaBytes{1.0}, Mbps{8.0}, chain);
  sim.run();
  EXPECT_EQ(completed, 10);
  // Each 1 MB at 8 Mbps takes exactly 1 s.
  EXPECT_NEAR(sim.now().seconds(), 10.0, 1e-9);
}

TEST(TransferManager, SimultaneousCompletionsShareOneReallocation) {
  Fixture fx;
  FluidNetwork network{fx.topo, fx.no_traffic};
  sim::Simulation sim;
  TransferManager manager{sim, network};

  // Four identical transfers on the same link share fairly and all finish
  // at the same instant; the completion sweep tears down all four flows in
  // one allocation epoch.
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    manager.start_transfer({fx.ab}, MegaBytes{2.0}, Mbps{100.0},
                           [&](SimTime) { ++completed; });
  }
  const std::size_t before = network.reallocation_count();
  sim.run();
  EXPECT_EQ(completed, 4);
  // One reallocation for the time advance that lands on the completion
  // instant, one for the whole four-flow teardown sweep (which empties the
  // network, so the epoch's close itself skips the solve) — not one per
  // stop_flow.
  EXPECT_LE(network.reallocation_count() - before, 2u);
  EXPECT_EQ(network.active_flow_count(), 0u);
}

}  // namespace
}  // namespace vod::net
