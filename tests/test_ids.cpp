#include "common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace vod {
namespace {

TEST(TaggedId, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
}

TEST(TaggedId, ExplicitValueIsValid) {
  NodeId id{0};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(TaggedId, LargeValuesRemainValid) {
  NodeId id{4'000'000'000u};
  EXPECT_TRUE(id.valid());
}

TEST(TaggedId, EqualityComparesValues) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
}

TEST(TaggedId, DefaultIdsCompareEqual) {
  EXPECT_EQ(NodeId{}, NodeId{});
}

TEST(TaggedId, OrderingFollowsValues) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_GT(NodeId{5}, NodeId{2});
}

TEST(TaggedId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<VideoId, DiskId>);
  static_assert(!std::is_convertible_v<NodeId, LinkId>);
}

TEST(TaggedId, HashWorksInUnorderedContainers) {
  std::unordered_set<VideoId> set;
  set.insert(VideoId{1});
  set.insert(VideoId{2});
  set.insert(VideoId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(VideoId{2}));
  EXPECT_FALSE(set.contains(VideoId{3}));
}

TEST(TaggedId, StreamPrintsValue) {
  std::ostringstream os;
  os << LinkId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(TaggedId, StreamPrintsInvalidMarker) {
  std::ostringstream os;
  os << LinkId{};
  EXPECT_EQ(os.str(), "<invalid>");
}

}  // namespace
}  // namespace vod
