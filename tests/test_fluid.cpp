#include "net/fluid.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace vod::net {
namespace {

/// a -- b -- c with 10 Mbps links.
struct Line {
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;

  Line() {
    a = topo.add_node("a");
    b = topo.add_node("b");
    c = topo.add_node("c");
    ab = topo.add_link(a, b, Mbps{10.0});
    bc = topo.add_link(b, c, Mbps{10.0});
  }
};

TEST(FluidNetwork, SingleFlowCappedByOwnLimit) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId flow = network.start_flow({line.ab}, Mbps{4.0});
  EXPECT_EQ(network.flow_rate(flow), Mbps{4.0});
}

TEST(FluidNetwork, SingleFlowCappedByLinkCapacity) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId flow = network.start_flow({line.ab}, Mbps{50.0});
  EXPECT_EQ(network.flow_rate(flow), Mbps{10.0});
}

TEST(FluidNetwork, TwoFlowsShareEqually) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId f1 = network.start_flow({line.ab}, Mbps{50.0});
  const FlowId f2 = network.start_flow({line.ab}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(f1).value(), 5.0, 1e-9);
  EXPECT_NEAR(network.flow_rate(f2).value(), 5.0, 1e-9);
}

TEST(FluidNetwork, CappedFlowReleasesShareToOthers) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId small = network.start_flow({line.ab}, Mbps{2.0});
  const FlowId big = network.start_flow({line.ab}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(small).value(), 2.0, 1e-9);
  EXPECT_NEAR(network.flow_rate(big).value(), 8.0, 1e-9);
}

TEST(FluidNetwork, WeightedFlowsSplitByWeight) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId heavy = network.start_flow({line.ab}, Mbps{50.0}, 3);
  const FlowId light = network.start_flow({line.ab}, Mbps{50.0}, 1);
  EXPECT_EQ(network.flow_weight(heavy), 3u);
  EXPECT_EQ(network.flow_weight(light), 1u);
  EXPECT_NEAR(network.flow_rate(heavy).value(), 7.5, 1e-9);
  EXPECT_NEAR(network.flow_rate(light).value(), 2.5, 1e-9);
}

TEST(FluidNetwork, CappedHeavyFlowLendsShareDownward) {
  // Borrowing: the premium-weighted flow freezes at its cap, so its unused
  // share spills to the lighter flow instead of going idle.
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId heavy = network.start_flow({line.ab}, Mbps{3.0}, 4);
  const FlowId light = network.start_flow({line.ab}, Mbps{50.0}, 1);
  EXPECT_NEAR(network.flow_rate(heavy).value(), 3.0, 1e-9);
  EXPECT_NEAR(network.flow_rate(light).value(), 7.0, 1e-9);
}

TEST(FluidNetwork, DefaultWeightMatchesExplicitOne) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId implicit = network.start_flow({line.ab}, Mbps{50.0});
  const FlowId explicit_one = network.start_flow({line.ab}, Mbps{50.0}, 1);
  EXPECT_EQ(network.flow_weight(implicit), 1u);
  EXPECT_EQ(network.flow_rate(implicit).value(),
            network.flow_rate(explicit_one).value());
}

TEST(FluidNetwork, StartFlowRejectsZeroWeight) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  EXPECT_THROW(network.start_flow({line.ab}, Mbps{5.0}, 0),
               std::invalid_argument);
}

TEST(FluidNetwork, MultiHopFlowLimitedByBottleneck) {
  Line line;
  ConstantTraffic traffic;
  traffic.set_load(line.bc, Mbps{7.0});  // bc residual = 3
  FluidNetwork network{line.topo, traffic};
  const FlowId flow = network.start_flow({line.ab, line.bc}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(flow).value(), 3.0, 1e-9);
}

TEST(FluidNetwork, StopFlowRestoresBandwidth) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId f1 = network.start_flow({line.ab}, Mbps{50.0});
  const FlowId f2 = network.start_flow({line.ab}, Mbps{50.0});
  network.stop_flow(f2);
  EXPECT_NEAR(network.flow_rate(f1).value(), 10.0, 1e-9);
  EXPECT_EQ(network.active_flow_count(), 1u);
}

TEST(FluidNetwork, EmptyPathFlowRunsAtCap) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId local = network.start_flow({}, Mbps{80.0});
  EXPECT_EQ(network.flow_rate(local), Mbps{80.0});
}

TEST(FluidNetwork, SaturatedLinkGrantsFloorRate) {
  Line line;
  ConstantTraffic traffic;
  traffic.set_load(line.ab, Mbps{10.0});  // fully used by background
  FluidNetwork network{line.topo, traffic};
  const FlowId flow = network.start_flow({line.ab}, Mbps{5.0});
  EXPECT_EQ(network.flow_rate(flow), kMinFlowRate);
}

TEST(FluidNetwork, BackgroundClampedToCapacity) {
  Line line;
  ConstantTraffic traffic;
  traffic.set_load(line.ab, Mbps{99.0});  // trace exceeds line rate
  FluidNetwork network{line.topo, traffic};
  EXPECT_EQ(network.background(line.ab), Mbps{10.0});
  EXPECT_DOUBLE_EQ(network.utilization(line.ab), 1.0);
}

TEST(FluidNetwork, UsedBandwidthIncludesFlows) {
  Line line;
  ConstantTraffic traffic;
  traffic.set_load(line.ab, Mbps{2.0});
  FluidNetwork network{line.topo, traffic};
  network.start_flow({line.ab}, Mbps{3.0});
  EXPECT_NEAR(network.used_bandwidth(line.ab).value(), 5.0, 1e-9);
  EXPECT_NEAR(network.utilization(line.ab), 0.5, 1e-9);
}

TEST(FluidNetwork, TimeAdvancesBackgroundLoads) {
  Line line;
  TraceTraffic traffic;
  traffic.add_sample(line.ab, SimTime{0.0}, Mbps{1.0});
  traffic.add_sample(line.ab, SimTime{100.0}, Mbps{9.0});
  FluidNetwork network{line.topo, traffic};
  const FlowId flow = network.start_flow({line.ab}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(flow).value(), 9.0, 1e-9);
  network.set_time(SimTime{100.0});
  EXPECT_NEAR(network.flow_rate(flow).value(), 1.0, 1e-9);
}

TEST(FluidNetwork, TimeCannotGoBackward) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  network.set_time(SimTime{10.0});
  EXPECT_THROW(network.set_time(SimTime{5.0}), std::invalid_argument);
}

TEST(FluidNetwork, RejectsBadFlows) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  EXPECT_THROW(network.start_flow({line.ab}, Mbps{0.0}),
               std::invalid_argument);
  EXPECT_THROW(network.start_flow({LinkId{99}}, Mbps{1.0}),
               std::invalid_argument);
  EXPECT_THROW(network.stop_flow(FlowId{42}), std::out_of_range);
  EXPECT_THROW(network.flow_rate(FlowId{42}), std::out_of_range);
}

TEST(FluidNetwork, DisjointFlowsDoNotInteract) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId f1 = network.start_flow({line.ab}, Mbps{50.0});
  const FlowId f2 = network.start_flow({line.bc}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(f1).value(), 10.0, 1e-9);
  EXPECT_NEAR(network.flow_rate(f2).value(), 10.0, 1e-9);
}

TEST(FluidNetwork, FlowPathAccessor) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId flow = network.start_flow({line.ab, line.bc}, Mbps{5.0});
  EXPECT_EQ(network.flow_path(flow),
            (std::vector<LinkId>{line.ab, line.bc}));
  EXPECT_THROW(network.flow_path(FlowId{99}), std::out_of_range);
}

TEST(FluidNetwork, SetFlowCapResolvesShares) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId small = network.start_flow({line.ab}, Mbps{2.0});
  const FlowId big = network.start_flow({line.ab}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(big).value(), 8.0, 1e-9);
  network.set_flow_cap(small, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(small).value(), 5.0, 1e-9);
  EXPECT_NEAR(network.flow_rate(big).value(), 5.0, 1e-9);
  EXPECT_THROW(network.set_flow_cap(small, Mbps{0.0}), std::invalid_argument);
  EXPECT_THROW(network.set_flow_cap(FlowId{99}, Mbps{1.0}),
               std::out_of_range);
}

TEST(FluidNetwork, RepeatedLinkInPathCountedOnce) {
  // A path that loops over the same link twice still consumes one share of
  // it, exactly as the naive filler counted (one `break` per flow per link).
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId loop =
      network.start_flow({line.ab, line.bc, line.ab}, Mbps{50.0});
  EXPECT_NEAR(network.flow_rate(loop).value(), 10.0, 1e-9);
  EXPECT_NEAR(network.used_bandwidth(line.ab).value(), 10.0, 1e-9);
}

TEST(FluidNetwork, BatchGuardCoalescesReallocations) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const FlowId f1 = network.start_flow({line.ab}, Mbps{50.0});
  const std::size_t before = network.reallocation_count();
  FlowId f2, f3;
  {
    const FluidNetwork::BatchGuard epoch = network.defer_reallocate();
    f2 = network.start_flow({line.ab}, Mbps{50.0});
    f3 = network.start_flow({line.ab}, Mbps{50.0});
    network.stop_flow(f1);
    // Mid-epoch rates are stale: f2/f3 have never been allocated.
    EXPECT_EQ(network.flow_rate(f2), Mbps{0.0});
    EXPECT_EQ(network.reallocation_count(), before);
  }
  EXPECT_EQ(network.reallocation_count(), before + 1);
  EXPECT_NEAR(network.flow_rate(f2).value(), 5.0, 1e-9);
  EXPECT_NEAR(network.flow_rate(f3).value(), 5.0, 1e-9);
}

TEST(FluidNetwork, NestedBatchGuardsCloseOnce) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const std::size_t before = network.reallocation_count();
  {
    const FluidNetwork::BatchGuard outer = network.defer_reallocate();
    {
      const FluidNetwork::BatchGuard inner = network.defer_reallocate();
      network.start_flow({line.ab}, Mbps{5.0});
    }
    EXPECT_EQ(network.reallocation_count(), before);  // outer still open
    network.start_flow({line.bc}, Mbps{5.0});
  }
  EXPECT_EQ(network.reallocation_count(), before + 1);
}

TEST(FluidNetwork, UntouchedEpochReallocatesNothing) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  network.start_flow({line.ab}, Mbps{5.0});
  const std::size_t before = network.reallocation_count();
  { const FluidNetwork::BatchGuard epoch = network.defer_reallocate(); }
  EXPECT_EQ(network.reallocation_count(), before);
}

TEST(FluidNetwork, EmptyNetworkSkipsReallocation) {
  Line line;
  NoTraffic traffic;
  FluidNetwork network{line.topo, traffic};
  const std::size_t before = network.reallocation_count();
  network.set_time(SimTime{10.0});
  network.set_link_up(line.ab, false);
  network.set_link_up(line.ab, true);
  EXPECT_EQ(network.reallocation_count(), before);
  const FlowId flow = network.start_flow({line.ab}, Mbps{5.0});
  EXPECT_EQ(network.reallocation_count(), before + 1);
  network.stop_flow(flow);
  // The final stop empties the network; no shares remain to solve.
  EXPECT_EQ(network.reallocation_count(), before + 1);
}

TEST(FluidNetwork, BackgroundCachedPerInstant) {
  Line line;
  ConstantTraffic traffic;
  traffic.set_load(line.ab, Mbps{2.0});
  traffic.set_load(line.bc, Mbps{3.0});
  FluidNetwork network{line.topo, traffic};
  network.start_flow({line.ab, line.bc}, Mbps{5.0});
  const std::size_t after_start = network.traffic_query_count();
  // Re-querying at the same instant — used_bandwidth, utilization, another
  // reallocation — hits the cache; the model is not consulted again.
  (void)network.used_bandwidth(line.ab);
  (void)network.utilization(line.bc);
  network.start_flow({line.ab}, Mbps{5.0});
  EXPECT_EQ(network.traffic_query_count(), after_start);
  // Moving the clock invalidates the cache: one fresh query per link.
  network.set_time(SimTime{50.0});
  EXPECT_EQ(network.traffic_query_count(), after_start + 2);
}

TEST(FluidNetwork, ReferenceCheckAcceptsIndexedAllocator) {
  Line line;
  ConstantTraffic traffic;
  traffic.set_load(line.ab, Mbps{4.0});
  FluidNetwork network{line.topo, traffic};
  network.set_check_against_reference(true);
  const FlowId f1 = network.start_flow({line.ab, line.bc}, Mbps{50.0});
  network.start_flow({line.ab}, Mbps{2.0});
  network.set_link_up(line.bc, false);
  EXPECT_EQ(network.flow_rate(f1), Mbps{0.0});  // severed
  network.set_link_up(line.bc, true);
  network.stop_flow(f1);
}

// --- Max–min fairness properties on random configurations ---

class FluidFairnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(FluidFairnessProperty, AllocationsFeasibleAndNonWasteful) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  // Random line network of 4 nodes / 3 links, random flows over sub-paths.
  Topology topo;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i)));
  }
  std::vector<LinkId> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back(
        topo.add_link(nodes[i], nodes[i + 1], Mbps{rng.uniform(2.0, 20.0)}));
  }
  ConstantTraffic traffic;
  for (const LinkId link : links) {
    traffic.set_load(link, Mbps{rng.uniform(0.0, 5.0)});
  }
  FluidNetwork network{topo, traffic};

  struct FlowSpec {
    FlowId id;
    std::vector<LinkId> path;
    double cap;
  };
  std::vector<FlowSpec> flows;
  const int flow_count = 1 + GetParam() % 6;
  for (int f = 0; f < flow_count; ++f) {
    const auto first = static_cast<std::size_t>(rng.uniform_int(0, 2));
    const auto last =
        static_cast<std::size_t>(rng.uniform_int(first, 2));
    std::vector<LinkId> path(links.begin() + first,
                             links.begin() + last + 1);
    const double cap = rng.uniform(0.5, 15.0);
    flows.push_back(FlowSpec{network.start_flow(path, Mbps{cap}), path, cap});
  }

  // Feasibility: no link oversubscribed by our flows (beyond the floor).
  for (const LinkId link : links) {
    double flow_sum = 0.0;
    for (const FlowSpec& flow : flows) {
      for (const LinkId l : flow.path) {
        if (l == link) flow_sum += network.flow_rate(flow.id).value();
      }
    }
    const double residual =
        (topo.link(link).capacity - network.background(link)).value();
    const double slack = kMinFlowRate.value() * flow_count + 1e-6;
    EXPECT_LE(flow_sum, residual + slack) << "link " << link.value();
  }

  // No flow exceeds its cap (floor aside).
  for (const FlowSpec& flow : flows) {
    EXPECT_LE(network.flow_rate(flow.id).value(),
              flow.cap + kMinFlowRate.value() + 1e-9);
  }

  // Non-wastefulness: every flow is limited by its cap or by a saturated
  // link on its path.
  for (const FlowSpec& flow : flows) {
    const double rate = network.flow_rate(flow.id).value();
    if (rate >= flow.cap - 1e-6) continue;  // cap-limited
    bool bottlenecked = false;
    for (const LinkId link : flow.path) {
      double flow_sum = 0.0;
      for (const FlowSpec& other : flows) {
        for (const LinkId l : other.path) {
          if (l == link) flow_sum += network.flow_rate(other.id).value();
        }
      }
      const double residual =
          (topo.link(link).capacity - network.background(link)).value();
      if (flow_sum >= residual - 1e-6) bottlenecked = true;
    }
    EXPECT_TRUE(bottlenecked) << "flow neither cap- nor link-limited";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidFairnessProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace vod::net
