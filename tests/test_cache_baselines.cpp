#include "baselines/cache_baselines.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::baselines {
namespace {

TEST(LruTitleCache, MissThenHit) {
  LruTitleCache cache{MegaBytes{100.0}};
  EXPECT_FALSE(cache.on_request(VideoId{1}, MegaBytes{40.0}));
  EXPECT_TRUE(cache.on_request(VideoId{1}, MegaBytes{40.0}));
  EXPECT_TRUE(cache.contains(VideoId{1}));
}

TEST(LruTitleCache, EvictsLeastRecentlyUsed) {
  LruTitleCache cache{MegaBytes{100.0}};
  cache.on_request(VideoId{1}, MegaBytes{40.0});
  cache.on_request(VideoId{2}, MegaBytes{40.0});
  cache.on_request(VideoId{1}, MegaBytes{40.0});  // refresh 1
  cache.on_request(VideoId{3}, MegaBytes{40.0});  // evicts 2, not 1
  EXPECT_TRUE(cache.contains(VideoId{1}));
  EXPECT_FALSE(cache.contains(VideoId{2}));
  EXPECT_TRUE(cache.contains(VideoId{3}));
}

TEST(LruTitleCache, EvictsMultipleForLargeNewcomer) {
  LruTitleCache cache{MegaBytes{100.0}};
  cache.on_request(VideoId{1}, MegaBytes{40.0});
  cache.on_request(VideoId{2}, MegaBytes{40.0});
  cache.on_request(VideoId{3}, MegaBytes{90.0});  // evicts both
  EXPECT_FALSE(cache.contains(VideoId{1}));
  EXPECT_FALSE(cache.contains(VideoId{2}));
  EXPECT_TRUE(cache.contains(VideoId{3}));
}

TEST(LruTitleCache, OversizedTitleNeverAdmitted) {
  LruTitleCache cache{MegaBytes{100.0}};
  cache.on_request(VideoId{1}, MegaBytes{40.0});
  EXPECT_FALSE(cache.on_request(VideoId{2}, MegaBytes{150.0}));
  EXPECT_FALSE(cache.contains(VideoId{2}));
  EXPECT_TRUE(cache.contains(VideoId{1}));  // untouched
}

TEST(LruTitleCache, Validation) {
  EXPECT_THROW(LruTitleCache{MegaBytes{0.0}}, std::invalid_argument);
  LruTitleCache cache{MegaBytes{10.0}};
  EXPECT_THROW(cache.on_request(VideoId{1}, MegaBytes{0.0}),
               std::invalid_argument);
}

TEST(LfuTitleCache, MissThenHit) {
  LfuTitleCache cache{MegaBytes{100.0}};
  EXPECT_FALSE(cache.on_request(VideoId{1}, MegaBytes{40.0}));
  EXPECT_TRUE(cache.on_request(VideoId{1}, MegaBytes{40.0}));
}

TEST(LfuTitleCache, EvictsLeastFrequentlyUsed) {
  LfuTitleCache cache{MegaBytes{100.0}};
  cache.on_request(VideoId{1}, MegaBytes{40.0});
  cache.on_request(VideoId{1}, MegaBytes{40.0});
  cache.on_request(VideoId{1}, MegaBytes{40.0});  // freq 3
  cache.on_request(VideoId{2}, MegaBytes{40.0});  // freq 1
  cache.on_request(VideoId{3}, MegaBytes{40.0});  // evicts 2
  EXPECT_TRUE(cache.contains(VideoId{1}));
  EXPECT_FALSE(cache.contains(VideoId{2}));
  EXPECT_TRUE(cache.contains(VideoId{3}));
}

TEST(LfuTitleCache, FrequencyRemembersEvictedTitles) {
  LfuTitleCache cache{MegaBytes{100.0}};
  // Build up frequency for 1 while it is outside the cache.
  cache.on_request(VideoId{1}, MegaBytes{90.0});
  cache.on_request(VideoId{2}, MegaBytes{90.0});  // evicts 1 (freq 1 vs 1)
  cache.on_request(VideoId{1}, MegaBytes{90.0});  // freq 2, re-admitted
  EXPECT_TRUE(cache.contains(VideoId{1}));
  // 2 (freq 1) was evicted to make room.
  EXPECT_FALSE(cache.contains(VideoId{2}));
}

TEST(LfuTitleCache, Validation) {
  EXPECT_THROW(LfuTitleCache{MegaBytes{-1.0}}, std::invalid_argument);
  LfuTitleCache cache{MegaBytes{10.0}};
  EXPECT_THROW(cache.on_request(VideoId{1}, MegaBytes{-2.0}),
               std::invalid_argument);
}

TEST(NoTitleCache, NeverCaches) {
  NoTitleCache cache;
  EXPECT_FALSE(cache.on_request(VideoId{1}, MegaBytes{1.0}));
  EXPECT_FALSE(cache.on_request(VideoId{1}, MegaBytes{1.0}));
  EXPECT_FALSE(cache.contains(VideoId{1}));
}

TEST(DmaTitleCache, AdaptsDmaCacheToTitleCacheInterface) {
  storage::DiskArray disks{2, storage::DiskProfile{}, MegaBytes{50.0}};
  dma::DmaCache dma_cache{disks};
  DmaTitleCache adapter{dma_cache};
  EXPECT_FALSE(adapter.on_request(VideoId{1}, MegaBytes{500.0}));
  EXPECT_TRUE(adapter.contains(VideoId{1}));
  EXPECT_TRUE(adapter.on_request(VideoId{1}, MegaBytes{500.0}));
}

TEST(TitleCacheNames, AreDistinct) {
  storage::DiskArray disks{2, storage::DiskProfile{}, MegaBytes{50.0}};
  dma::DmaCache dma_cache{disks};
  DmaTitleCache dma_adapter{dma_cache};
  LruTitleCache lru{MegaBytes{10.0}};
  LfuTitleCache lfu{MegaBytes{10.0}};
  NoTitleCache none;
  EXPECT_STREQ(dma_adapter.name(), "DMA");
  EXPECT_STREQ(lru.name(), "LRU");
  EXPECT_STREQ(lfu.name(), "LFU");
  EXPECT_STREQ(none.name(), "none");
}

}  // namespace
}  // namespace vod::baselines
