#include "common/rng.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    any_different |= (a.uniform() != b.uniform());
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng{7};
  EXPECT_THROW(rng.uniform(2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(3.0, 2.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{7};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng{7};
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng{7};
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng{7};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalZeroStddevIsMean) {
  Rng rng{7};
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng{7};
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{7};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng{7};
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, WeightedIndexHonorsZeroWeights) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, WeightedIndexRejectsEmpty) {
  Rng rng{7};
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
}

TEST(Rng, WeightedIndexRoughProportions) {
  Rng rng{13};
  int counts[2] = {0, 0};
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index({1.0, 3.0})];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.03);
}

}  // namespace
}  // namespace vod
