// Tiered user-class QoS: classed admission outcomes (kNoServer vs
// kRejected vs kPreempted), deterministic preemption planning, per-class
// retry budgets for preempted sessions, the per-class SLA slice of the
// resilience report, and the single-class guarantee (qos disabled ==
// exactly the classless service).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "grnet/grnet.h"
#include "service/report.h"
#include "service/vod_service.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

/// GRNET case study with the movie placed at Athens only, so Patra
/// requests must cross the 2 Mbps Patra-Athens link (0.2 Mbps background
/// at 8am -> 1.8 Mbps residual).  A couple of sessions saturate it.
struct QosFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  std::unique_ptr<VodService> service;
  VideoId movie;
  VideoId clip;

  explicit QosFixture(ServiceOptions options = make_options()) {
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{30.0}, Mbps{0.5});
    clip = service->add_video("clip", MegaBytes{10.0}, Mbps{0.25});
    service->start();
  }

  static ServiceOptions make_options() {
    ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;  // no proxy copies
    options.qos.enabled = true;
    return options;
  }

  /// Starts `sessions` of the given classes (in order) for the movie at
  /// Patra, lets them stream for 30 s, then refreshes the limited-access
  /// statistics — the link now reads fully used.
  std::vector<SessionId> saturate(const std::vector<UserClass>& classes) {
    service->place_initial_copy(g.athens, movie);
    service->place_initial_copy(g.athens, clip);
    std::vector<SessionId> ids;
    for (const UserClass cls : classes) {
      const auto outcome = service->request_classed(g.patra, movie, cls);
      EXPECT_EQ(outcome.verdict, VodService::Admission::kAdmitted);
      ids.push_back(*outcome.session);
    }
    sim.run_until(SimTime{30.0});
    service->snmp().poll_now(sim.now());
    return ids;
  }
};

TEST(Qos, NoServerWhenTitleUnplaced) {
  QosFixture fx;
  const auto outcome =
      fx.service->request_classed(fx.g.patra, fx.movie, UserClass::kPremium);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kNoServer);
  EXPECT_FALSE(outcome.session.has_value());
  EXPECT_TRUE(outcome.preempted.empty());
  const auto snap = fx.service->metrics_snapshot();
  EXPECT_EQ(snap.value_u64("qos.premium.no_server"), 1u);
  EXPECT_EQ(snap.value_u64("qos.premium.requests"), 1u);
}

TEST(Qos, RejectedWhenNoLowerClassVictimExists) {
  QosFixture fx;
  // The saturating sessions are premium themselves: nothing outranks them,
  // so the planner has no candidates and the request is plainly rejected —
  // preemption never sacrifices equals or betters.
  fx.saturate({UserClass::kPremium, UserClass::kPremium});
  const auto outcome =
      fx.service->request_classed(fx.g.patra, fx.movie, UserClass::kPremium);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kRejected);
  EXPECT_FALSE(outcome.session.has_value());
  EXPECT_TRUE(outcome.preempted.empty());
  EXPECT_EQ(fx.service->rejected_count(), 1u);
  EXPECT_EQ(fx.service->preemption_victim_count(), 0u);
}

TEST(Qos, BackgroundCannotPreemptAnyone) {
  QosFixture fx;
  fx.saturate({UserClass::kStandard, UserClass::kStandard});
  const auto outcome = fx.service->request_classed(fx.g.patra, fx.movie,
                                                   UserClass::kBackground);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kRejected);
  EXPECT_EQ(fx.service->preemption_victim_count(), 0u);
}

TEST(Qos, PremiumPreemptsLowestClassYoungestFirst) {
  QosFixture fx;
  // Background is *older* than standard here: class rank must dominate the
  // youngest-first tiebreak, so the background session dies even though
  // the standard one is the more recent arrival.
  const auto ids =
      fx.saturate({UserClass::kBackground, UserClass::kStandard});
  const auto outcome =
      fx.service->request_classed(fx.g.patra, fx.movie, UserClass::kPremium);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kPreempted);
  ASSERT_TRUE(outcome.session.has_value());
  ASSERT_EQ(outcome.preempted.size(), 1u);
  EXPECT_EQ(outcome.preempted[0], ids[0]);
  EXPECT_EQ(fx.service->preemption_victim_count(), 1u);
  EXPECT_EQ(fx.service->preempted_admit_count(), 1u);

  // The victim failed with the fixed preemption reason; default retry
  // budget is zero, so it is absorbed shed — no service retry.
  const stream::SessionMetrics& m = fx.service->session_metrics(ids[0]);
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.failure_reason, VodService::kPreemptedReason);
  EXPECT_EQ(fx.service->session_class(ids[0]), UserClass::kBackground);
  EXPECT_FALSE(fx.service->session_superseded(ids[0]));
  EXPECT_EQ(fx.service->service_retry_count(), 0u);

  // The standard session streams on, and so does the preempting premium.
  EXPECT_FALSE(fx.service->session_metrics(ids[1]).failed);
  EXPECT_EQ(fx.service->session_class(*outcome.session),
            UserClass::kPremium);
}

TEST(Qos, PreemptionIsDeterministicAcrossRuns) {
  // Two identical runs must sacrifice identical victims and end with
  // identical per-session outcomes — the plan is a pure function of the
  // (deterministic) service state.
  const auto run = [] {
    QosFixture fx;
    const auto ids = fx.saturate({UserClass::kBackground,
                                  UserClass::kStandard,
                                  UserClass::kBackground});
    const auto outcome = fx.service->request_classed(fx.g.patra, fx.movie,
                                                     UserClass::kPremium);
    std::vector<std::string> trail;
    trail.push_back(std::to_string(static_cast<int>(outcome.verdict)));
    for (const SessionId victim : outcome.preempted) {
      trail.push_back("victim:" + std::to_string(victim.value()));
    }
    fx.sim.run_until(from_hours(2.0));
    for (const SessionId id : fx.service->session_ids()) {
      const stream::SessionMetrics& m = fx.service->session_metrics(id);
      trail.push_back(std::to_string(id.value()) + ":" +
                      (m.failed ? "failed:" + m.failure_reason
                                : (m.finished ? "finished" : "hung")));
    }
    return trail;
  };
  EXPECT_EQ(run(), run());
}

TEST(Qos, PreemptedBackgroundRetriesAtItsOwnClassThenExhausts) {
  ServiceOptions options = QosFixture::make_options();
  options.qos.policies[class_index(UserClass::kBackground)].retry_limit = 1;
  QosFixture fx{options};
  const auto ids = fx.saturate({UserClass::kBackground});

  // First premium admission preempts the lone background session...
  const auto first =
      fx.service->request_classed(fx.g.patra, fx.movie, UserClass::kPremium);
  ASSERT_EQ(first.verdict, VodService::Admission::kPreempted);
  ASSERT_EQ(first.preempted.size(), 1u);

  // ...which re-enters through the service-retry chain at its own class
  // once the backoff (30 s default) elapses.
  fx.sim.run_until(SimTime{90.0});
  EXPECT_EQ(fx.service->service_retry_count(), 1u);
  EXPECT_TRUE(fx.service->session_superseded(ids[0]));
  const auto retry = fx.service->retried_as(ids[0]);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(fx.service->session_class(*retry), UserClass::kBackground);

  // A second preemption hits the retry attempt; its budget is spent, so
  // this time the session is absorbed shed — no further retry.
  fx.service->snmp().poll_now(fx.sim.now());
  const auto second =
      fx.service->request_classed(fx.g.patra, fx.clip, UserClass::kPremium);
  ASSERT_EQ(second.verdict, VodService::Admission::kPreempted);
  ASSERT_EQ(second.preempted.size(), 1u);
  EXPECT_EQ(second.preempted[0], *retry);
  fx.sim.run_until(from_hours(2.0));
  EXPECT_EQ(fx.service->service_retry_count(), 1u);
  const stream::SessionMetrics& m = fx.service->session_metrics(*retry);
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.failure_reason, VodService::kPreemptedReason);
  EXPECT_FALSE(fx.service->session_superseded(*retry));
  EXPECT_FALSE(fx.service->retried_as(*retry).has_value());
}

TEST(Qos, ResilienceReportCarriesPerClassSla) {
  QosFixture fx;
  const auto ids =
      fx.saturate({UserClass::kBackground, UserClass::kStandard});
  const auto outcome =
      fx.service->request_classed(fx.g.patra, fx.movie, UserClass::kPremium);
  ASSERT_EQ(outcome.verdict, VodService::Admission::kPreempted);
  fx.sim.run_until(from_hours(4.0));

  const ResilienceReport report =
      build_resilience_report(*fx.service, Mbps{0.0});
  EXPECT_TRUE(report.classed);
  const auto& premium =
      report.by_class[class_index(UserClass::kPremium)];
  const auto& standard =
      report.by_class[class_index(UserClass::kStandard)];
  const auto& background =
      report.by_class[class_index(UserClass::kBackground)];
  EXPECT_EQ(premium.admission_requests, 1u);
  EXPECT_EQ(premium.admitted, 1u);
  EXPECT_EQ(premium.requests, 1u);
  EXPECT_EQ(premium.finished, 1u);
  EXPECT_DOUBLE_EQ(premium.availability(), 1.0);
  EXPECT_EQ(standard.requests, 1u);
  EXPECT_EQ(standard.finished, 1u);
  EXPECT_EQ(background.preempted, 1u);
  EXPECT_EQ(background.failed, 1u);
  EXPECT_DOUBLE_EQ(background.availability(), 0.0);
  EXPECT_EQ(background.stall_seconds.count(), 1u);

  const std::string rendered = format_resilience_report(report);
  EXPECT_NE(rendered.find("premium admit rate"), std::string::npos);
  EXPECT_NE(rendered.find("background preempted"), std::string::npos);
  EXPECT_NE(rendered.find("stall time p50 (s)"), std::string::npos);
  EXPECT_NE(rendered.find("stall time p99 (s)"), std::string::npos);
  (void)ids;
}

TEST(Qos, ReportQuantileCellsFollowTheSharedNearestRankRule) {
  // Regression lock for the percentile unification (DESIGN.md §16): every
  // report percentile renders through SampleSet::quantile, which is
  // nearest-rank — max(1, ceil(q * n)) — the same rule obs::bucket_quantile
  // interpolates against.  100 known samples make the ranks legible.
  ResilienceReport report;
  report.requests = 100;
  report.finished = 100;
  for (int i = 1; i <= 100; ++i) {
    report.stall_seconds.add(static_cast<double>(i));
    report.failover_latency_seconds.add(10.0 * i);
  }
  EXPECT_DOUBLE_EQ(report.stall_seconds.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(report.stall_seconds.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(report.failover_latency_seconds.quantile(0.95), 950.0);

  const std::string rendered = format_resilience_report(report);
  EXPECT_NE(rendered.find("stall time p50 (s)"), std::string::npos);
  EXPECT_NE(rendered.find("50.00"), std::string::npos);
  EXPECT_NE(rendered.find("99.00"), std::string::npos);
  EXPECT_NE(rendered.find("950.00"), std::string::npos);
}

TEST(Qos, DisabledQosMatchesClasslessServiceExactly) {
  // The single-class guarantee: with qos.enabled == false (the default),
  // request_classed is request_with_admission for any class argument —
  // same verdicts, same counters, no preemption, no qos.* metrics.
  ServiceOptions plain;
  plain.cluster_size = MegaBytes{10.0};
  plain.dma.admission_threshold = 1'000'000;
  QosFixture classless{plain};
  QosFixture classed{plain};
  classless.service->place_initial_copy(classless.g.athens,
                                        classless.movie);
  classed.service->place_initial_copy(classed.g.athens, classed.movie);

  for (int i = 0; i < 4; ++i) {
    const auto a = classless.service->request_with_admission(
        classless.g.patra, classless.movie);
    const auto b = classed.service->request_classed(
        classed.g.patra, classed.movie, UserClass::kPremium);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.session.has_value(), b.session.has_value());
    EXPECT_TRUE(b.preempted.empty());
  }
  classless.sim.run_until(from_hours(4.0));
  classed.sim.run_until(from_hours(4.0));
  EXPECT_EQ(classless.service->admitted_count(),
            classed.service->admitted_count());
  EXPECT_EQ(classless.service->rejected_count(),
            classed.service->rejected_count());
  EXPECT_EQ(classed.service->preemption_victim_count(), 0u);
  EXPECT_FALSE(
      classed.service->metrics_snapshot().has("qos.premium.requests"));
  for (const SessionId id : classless.service->session_ids()) {
    const auto& a = classless.service->session_metrics(id);
    const auto& b = classed.service->session_metrics(id);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.rebuffer_seconds, b.rebuffer_seconds);
    EXPECT_EQ(classed.service->session_class(id), UserClass::kStandard);
  }
}

}  // namespace
}  // namespace vod::service
