#include "common/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table{{"Link", "8am"}};
  table.add_row({"Patra-Athens", "0.083"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Link"), std::string::npos);
  EXPECT_NE(out.find("Patra-Athens"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
  EXPECT_NE(out.find(" | "), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable table{{"A", "B"}};
  table.add_row({"long-cell-content", "x"});
  table.add_row({"s", "y"});
  const std::string out = table.render();
  // Every line must have the separator at the same offset.
  std::size_t first_sep = out.find(" | ");
  ASSERT_NE(first_sep, std::string::npos);
  std::size_t line_start = 0;
  int lines_checked = 0;
  while (line_start < out.size()) {
    const std::size_t line_end = out.find('\n', line_start);
    const std::string line = out.substr(line_start, line_end - line_start);
    if (line.find(" | ") != std::string::npos) {
      EXPECT_EQ(line.find(" | "), first_sep);
      ++lines_checked;
    }
    line_start = line_end + 1;
  }
  EXPECT_EQ(lines_checked, 3);  // header + 2 rows
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable table{{"A", "B", "C"}};
  table.add_row({"only-a"});
  EXPECT_NE(table.render().find("only-a"), std::string::npos);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable table{{"A"}};
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, RowCount) {
  TextTable table{{"A"}};
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(0.083, 3), "0.083");
  EXPECT_EQ(TextTable::num(1.0, 2), "1.00");
  EXPECT_EQ(TextTable::num(0.07501, 5), "0.07501");
}

}  // namespace
}  // namespace vod
