#include "common/slot_map.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace vod {
namespace {

using Map = SlotMap<SessionId, std::string>;

SessionId id(std::uint32_t v) { return SessionId{v}; }

TEST(SlotMap, InsertFindEraseRoundTrip) {
  Map map;
  EXPECT_TRUE(map.empty());
  map.insert(id(0), "a");
  map.insert(id(1), "b");
  map.insert(id(2), "c");
  EXPECT_EQ(map.size(), 3u);
  EXPECT_TRUE(map.contains(id(1)));
  ASSERT_NE(map.find(id(1)), nullptr);
  EXPECT_EQ(*map.find(id(1)), "b");
  EXPECT_EQ(map.at(id(2), "missing"), "c");

  map.erase(id(1));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_FALSE(map.contains(id(1)));
  EXPECT_EQ(map.find(id(1)), nullptr);
  EXPECT_THROW((void)map.at(id(1), "missing"), std::out_of_range);
  EXPECT_THROW(map.erase(id(1)), std::out_of_range);
}

TEST(SlotMap, InsertRejectsInvalidDuplicateAndRetiredIds) {
  Map map;
  EXPECT_THROW(map.insert(SessionId{}, "x"), std::invalid_argument);
  map.insert(id(5), "five");
  EXPECT_THROW(map.insert(id(5), "again"), std::logic_error);
  map.insert(id(7), "seven");
  map.erase(id(5));
  // The window slid past the retired prefix; inserting below it is a
  // contract violation (ids are issued monotonically and never reused).
  EXPECT_THROW(map.insert(id(6), "late"), std::logic_error);
  map.erase(id(7));
  map.insert(id(8), "eight");
  EXPECT_EQ(map.at(id(8), "missing"), "eight");
}

TEST(SlotMap, StaleHandleRejected) {
  Map map;
  map.insert(id(0), "first");
  const Map::Handle handle = map.handle_of(id(0));
  ASSERT_NE(map.get(handle), nullptr);
  EXPECT_EQ(*map.get(handle), "first");

  map.erase(id(0));
  // The slot is free: the stale handle must miss, not alias freed storage.
  EXPECT_EQ(map.get(handle), nullptr);

  // Recycle the same slot for a new id; the old handle must still miss
  // (generation moved on) while a fresh handle resolves.
  map.insert(id(1), "second");
  EXPECT_EQ(map.slot_of(id(1)), handle.slot);  // slot actually reused
  EXPECT_EQ(map.get(handle), nullptr);
  ASSERT_NE(map.get(map.handle_of(id(1))), nullptr);
  EXPECT_EQ(*map.get(map.handle_of(id(1))), "second");
}

TEST(SlotMap, FreeListReuseKeepsIterationDeterministic) {
  // Two identical runs with interleaved insert/erase churn must visit
  // entries in the same (ascending-id) order, independent of which
  // physical slots the free list hands back.
  const auto run = [] {
    Map map;
    std::vector<std::pair<std::uint32_t, std::string>> visited;
    std::uint32_t next = 0;
    for (int wave = 0; wave < 8; ++wave) {
      for (int k = 0; k < 5; ++k) {
        const std::uint32_t v = next++;
        map.insert(id(v), "s" + std::to_string(v));
      }
      // Erase a scattered subset (out of insertion order).
      map.erase(id(next - 2));
      map.erase(id(next - 5));
      map.for_each_ordered([&](SessionId sid, std::string& value) {
        visited.emplace_back(sid.value(), value);
      });
    }
    return visited;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // And the order really is ascending by id within each sweep.
  Map map;
  map.insert(id(0), "a");
  map.insert(id(1), "b");
  map.insert(id(2), "c");
  map.erase(id(1));
  map.insert(id(3), "d");  // reuses id 1's slot
  std::vector<std::uint32_t> order;
  map.for_each_ordered(
      [&](SessionId sid, std::string&) { order.push_back(sid.value()); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(SlotMap, WindowAndSlotsStayProportionalToActiveSet) {
  Map map;
  // Sequential lifecycle churn: at most 4 concurrent entries while 10'000
  // ids are burned through.  Memory must track the active set, not the
  // total ids issued.
  for (std::uint32_t v = 0; v < 10'000; ++v) {
    map.insert(id(v), "x");
    if (v >= 3) map.erase(id(v - 3));
  }
  EXPECT_EQ(map.size(), 3u);
  EXPECT_LE(map.slot_count(), 8u);
  // The sliding window trims its retired prefix (amortized), so its span
  // stays far below the 10'000 ids issued.
  EXPECT_LE(map.window_span(), 2100u);
  // Draining everything collapses the window entirely.
  map.erase(id(9'997));
  map.erase(id(9'998));
  map.erase(id(9'999));
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.window_span(), 0u);
}

TEST(SlotMap, OrderedWalkSkipsGapsFromSparseIds) {
  Map map;
  map.insert(id(10), "a");
  map.insert(id(40), "b");  // gap in the id space
  map.insert(id(41), "c");
  std::vector<std::uint32_t> order;
  map.for_each_ordered(
      [&](SessionId sid, std::string&) { order.push_back(sid.value()); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{10, 40, 41}));
  EXPECT_FALSE(map.contains(id(25)));
  EXPECT_EQ(map.find(id(25)), nullptr);
}

struct PoolProbe {
  int* live;
  int value;
  PoolProbe(int* live_counter, int v) : live(live_counter), value(v) {
    ++*live;
  }
  ~PoolProbe() { --*live; }
};

TEST(ObjectPool, ReusesCellsAndTracksLiveCount) {
  ObjectPool<PoolProbe> pool;
  int live = 0;
  PoolProbe* first = pool.create(&live, 1);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(pool.live_count(), 1u);
  EXPECT_EQ(pool.chunk_count(), 1u);
  pool.destroy(first);
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.live_count(), 0u);

  // The freed cell is recycled: same address, no new chunk.
  PoolProbe* second = pool.create(&live, 2);
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.chunk_count(), 1u);
  pool.destroy(second);
}

TEST(ObjectPool, PtrReturnsToPoolAndChunksAmortize) {
  ObjectPool<PoolProbe> pool;
  int live = 0;
  {
    std::vector<ObjectPool<PoolProbe>::Ptr> owned;
    for (int k = 0; k < 600; ++k) {
      owned.push_back(pool.make(&live, k));
    }
    EXPECT_EQ(live, 600);
    EXPECT_EQ(pool.live_count(), 600u);
    // 600 objects at 256 per chunk = 3 chunks, not 600 allocations.
    EXPECT_EQ(pool.chunk_count(), 3u);
  }
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.live_count(), 0u);
}

}  // namespace
}  // namespace vod
