#include "net/trace_io.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grnet/grnet.h"

namespace vod::net {
namespace {

Topology two_link_topology() {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  topo.add_link(a, b, Mbps{2.0}, "a-b");
  topo.add_link(b, c, Mbps{18.0}, "b-c");
  return topo;
}

TEST(TraceIo, LoadsSamplesPerLink) {
  const Topology topo = two_link_topology();
  const TraceTraffic trace = load_trace_csv(
      "link,time_s,used_mbps\n"
      "a-b,0,0.5\n"
      "a-b,100,1.5\n"
      "b-c,50,9.0\n",
      topo);
  EXPECT_NEAR(trace.background_load(LinkId{0}, SimTime{0.0}).value(), 0.5,
              1e-12);
  EXPECT_NEAR(trace.background_load(LinkId{0}, SimTime{150.0}).value(),
              1.5, 1e-12);
  EXPECT_NEAR(trace.background_load(LinkId{1}, SimTime{60.0}).value(), 9.0,
              1e-12);
}

TEST(TraceIo, HandlesCrlfAndBlankLines) {
  const Topology topo = two_link_topology();
  const TraceTraffic trace = load_trace_csv(
      "link,time_s,used_mbps\r\n\na-b,0,0.5\r\n", topo);
  EXPECT_NEAR(trace.background_load(LinkId{0}, SimTime{0.0}).value(), 0.5,
              1e-12);
}

TEST(TraceIo, RejectsMissingHeader) {
  const Topology topo = two_link_topology();
  EXPECT_THROW(load_trace_csv("a-b,0,0.5\n", topo), std::invalid_argument);
  EXPECT_THROW(load_trace_csv("", topo), std::invalid_argument);
}

TEST(TraceIo, RejectsUnknownLink) {
  const Topology topo = two_link_topology();
  EXPECT_THROW(
      load_trace_csv("link,time_s,used_mbps\nghost,0,1\n", topo),
      std::invalid_argument);
}

TEST(TraceIo, RejectsMalformedRows) {
  const Topology topo = two_link_topology();
  EXPECT_THROW(load_trace_csv("link,time_s,used_mbps\na-b,0\n", topo),
               std::invalid_argument);
  EXPECT_THROW(
      load_trace_csv("link,time_s,used_mbps\na-b,zero,1\n", topo),
      std::invalid_argument);
  EXPECT_THROW(
      load_trace_csv("link,time_s,used_mbps\na-b,0,-1\n", topo),
      std::invalid_argument);  // negative load (TraceTraffic rule)
  EXPECT_THROW(
      load_trace_csv("link,time_s,used_mbps\n\"a-b\",0,1\n", topo),
      std::invalid_argument);  // quoting unsupported, rejected loudly
}

TEST(TraceIo, RejectsOutOfOrderTimes) {
  const Topology topo = two_link_topology();
  EXPECT_THROW(load_trace_csv(
                   "link,time_s,used_mbps\na-b,100,1\na-b,50,2\n", topo),
               std::invalid_argument);
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  const Topology topo = two_link_topology();
  try {
    load_trace_csv("link,time_s,used_mbps\na-b,0,1\nghost,5,1\n", topo);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const Topology topo = two_link_topology();
  TraceTraffic original;
  original.add_sample(LinkId{0}, SimTime{0.0}, Mbps{0.25});
  original.add_sample(LinkId{0}, SimTime{60.0}, Mbps{1.75});
  original.add_sample(LinkId{1}, SimTime{0.0}, Mbps{4.0});
  original.add_sample(LinkId{1}, SimTime{60.0}, Mbps{8.0});

  const std::string csv =
      save_trace_csv(original, topo, {SimTime{0.0}, SimTime{60.0}});
  const TraceTraffic loaded = load_trace_csv(csv, topo);
  for (const double t : {0.0, 30.0, 60.0, 120.0}) {
    for (const LinkId link : {LinkId{0}, LinkId{1}}) {
      EXPECT_NEAR(loaded.background_load(link, SimTime{t}).value(),
                  original.background_load(link, SimTime{t}).value(),
                  1e-6);
    }
  }
}

TEST(TraceIo, GrnetTableTwoExportsAndReimports) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const TraceTraffic trace = grnet::table2_trace(g);
  std::vector<SimTime> times;
  for (const grnet::TimeOfDay t : grnet::kAllTimes) {
    times.push_back(grnet::time_of(t));
  }
  const std::string csv = save_trace_csv(trace, g.topology, times);
  // 7 links x 4 samples + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 29);
  const TraceTraffic loaded = load_trace_csv(csv, g.topology);
  EXPECT_NEAR(
      loaded.background_load(g.patra_athens, from_hours(10.0)).value(),
      1.82, 1e-6);
}

}  // namespace
}  // namespace vod::net
