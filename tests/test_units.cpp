#include "common/units.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod {
namespace {

TEST(Mbps, ValueRoundTrips) {
  EXPECT_DOUBLE_EQ(Mbps{2.0}.value(), 2.0);
}

TEST(Mbps, UnitConversions) {
  EXPECT_DOUBLE_EQ(Mbps{2.0}.kilobits_per_sec(), 2000.0);
  EXPECT_DOUBLE_EQ(Mbps{2.0}.bits_per_sec(), 2e6);
  EXPECT_DOUBLE_EQ(kilobits_per_sec(1820).value(), 1.82);
  EXPECT_DOUBLE_EQ(bits_per_sec(100).value(), 1e-4);
}

TEST(Mbps, Arithmetic) {
  EXPECT_EQ(Mbps{1.0} + Mbps{2.0}, Mbps{3.0});
  EXPECT_EQ(Mbps{3.0} - Mbps{2.0}, Mbps{1.0});
  EXPECT_EQ(Mbps{2.0} * 3.0, Mbps{6.0});
  EXPECT_EQ(3.0 * Mbps{2.0}, Mbps{6.0});
  EXPECT_EQ(Mbps{6.0} / 3.0, Mbps{2.0});
}

TEST(Mbps, RatioIsDimensionless) {
  const double utilization = Mbps{1.82} / Mbps{2.0};
  EXPECT_DOUBLE_EQ(utilization, 0.91);
}

TEST(Mbps, CompoundAssignment) {
  Mbps v{1.0};
  v += Mbps{2.0};
  EXPECT_EQ(v, Mbps{3.0});
  v -= Mbps{0.5};
  EXPECT_EQ(v, Mbps{2.5});
}

TEST(Mbps, Ordering) {
  EXPECT_LT(Mbps{1.0}, Mbps{2.0});
  EXPECT_GE(Mbps{2.0}, Mbps{2.0});
}

TEST(MegaBytes, Megabits) {
  EXPECT_DOUBLE_EQ(MegaBytes{100.0}.megabits(), 800.0);
}

TEST(MegaBytes, GigabytesHelper) {
  EXPECT_DOUBLE_EQ(gigabytes(2.0).value(), 2048.0);
}

TEST(MegaBytes, Arithmetic) {
  EXPECT_EQ(MegaBytes{1.0} + MegaBytes{2.0}, MegaBytes{3.0});
  EXPECT_EQ(MegaBytes{3.0} - MegaBytes{1.0}, MegaBytes{2.0});
  EXPECT_EQ(MegaBytes{2.0} * 2.0, MegaBytes{4.0});
  EXPECT_DOUBLE_EQ(MegaBytes{4.0} / MegaBytes{2.0}, 2.0);
}

TEST(TransferSeconds, BasicComputation) {
  // 100 MB over 8 Mbps: 800 megabits / 8 = 100 s.
  EXPECT_DOUBLE_EQ(transfer_seconds(MegaBytes{100.0}, Mbps{8.0}), 100.0);
}

TEST(TransferSeconds, RejectsNonPositiveRate) {
  EXPECT_THROW(transfer_seconds(MegaBytes{1.0}, Mbps{0.0}),
               std::invalid_argument);
  EXPECT_THROW(transfer_seconds(MegaBytes{1.0}, Mbps{-1.0}),
               std::invalid_argument);
}

TEST(RateForTransfer, InvertsTransferSeconds) {
  const MegaBytes size{50.0};
  const Mbps rate{4.0};
  const double t = transfer_seconds(size, rate);
  EXPECT_NEAR(rate_for_transfer(size, t).value(), rate.value(), 1e-12);
}

TEST(RateForTransfer, RejectsNonPositiveDuration) {
  EXPECT_THROW(rate_for_transfer(MegaBytes{1.0}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vod
