#include "snmp/snmp_module.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::snmp {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  net::Topology topo;
  NodeId a, b;
  LinkId ab;
  net::ConstantTraffic traffic;
  db::Database db{kAdmin};

  Fixture() {
    a = topo.add_node("a");
    b = topo.add_node("b");
    ab = topo.add_link(a, b, Mbps{2.0});
    traffic.set_load(ab, Mbps{1.0});
    db.register_link(ab, "a-b", Mbps{2.0});
  }
};

TEST(SnmpModule, PollNowWritesStatsImmediately) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin)};
  snmp.poll_now(SimTime{0.0});
  const auto& record = fx.db.limited_view(kAdmin).link(fx.ab);
  EXPECT_NEAR(record.used_bandwidth.value(), 1.0, 1e-9);
  EXPECT_NEAR(record.utilization, 0.5, 1e-9);
  EXPECT_EQ(snmp.poll_count(), 1u);
}

TEST(SnmpModule, PeriodicPollingAtConfiguredInterval) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{60.0}};
  snmp.start();
  sim.run_until(SimTime{300.0});
  EXPECT_EQ(snmp.poll_count(), 5u);  // at 60, 120, 180, 240, 300
  snmp.stop();
}

TEST(SnmpModule, DefaultIntervalIsPaperRange) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin)};
  EXPECT_GE(snmp.interval_seconds(), 60.0);
  EXPECT_LE(snmp.interval_seconds(), 120.0);
}

TEST(SnmpModule, StatsReflectFlowActivityAtPollTime) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{60.0}};
  snmp.start();
  network.start_flow({fx.ab}, Mbps{0.5});
  sim.run_until(SimTime{60.0});
  const auto& record = fx.db.limited_view(kAdmin).link(fx.ab);
  EXPECT_NEAR(record.used_bandwidth.value(), 1.5, 1e-9);
  EXPECT_NEAR(record.utilization, 0.75, 1e-9);
}

TEST(SnmpModule, StaleBetweenPolls) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  snmp.start();
  // A flow starting mid-interval is invisible until the next poll.
  sim.schedule_at(SimTime{30.0}, [&](SimTime) {
    network.start_flow({fx.ab}, Mbps{0.5});
  });
  sim.run_until(SimTime{60.0});
  EXPECT_NEAR(fx.db.limited_view(kAdmin).link(fx.ab).used_bandwidth.value(),
              1.0, 1e-9);
  sim.run_until(SimTime{90.0});
  EXPECT_NEAR(fx.db.limited_view(kAdmin).link(fx.ab).used_bandwidth.value(),
              1.5, 1e-9);
}

TEST(SnmpModule, StopHaltsPolling) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{60.0}};
  snmp.start();
  sim.run_until(SimTime{120.0});
  snmp.stop();
  sim.run_until(SimTime{600.0});
  EXPECT_EQ(snmp.poll_count(), 2u);
  EXPECT_FALSE(snmp.running());
}

TEST(SnmpModule, StopStartResumesPolling) {
  // A monitor outage and recovery: stop() halts polling, start() resumes
  // one full interval later, and last_poll_at() tracks the real samples.
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{60.0}};
  EXPECT_FALSE(snmp.last_poll_at().has_value());
  snmp.start();
  sim.run_until(SimTime{120.0});  // polls at 60, 120
  snmp.stop();
  sim.run_until(SimTime{300.0});  // outage: nothing at 180, 240, 300
  EXPECT_EQ(snmp.poll_count(), 2u);
  ASSERT_TRUE(snmp.last_poll_at().has_value());
  EXPECT_EQ(*snmp.last_poll_at(), SimTime{120.0});
  snmp.start();
  sim.run_until(SimTime{420.0});  // polls resume at 360, 420
  EXPECT_EQ(snmp.poll_count(), 4u);
  EXPECT_EQ(*snmp.last_poll_at(), SimTime{420.0});
  EXPECT_TRUE(snmp.running());
}

TEST(SnmpModule, BackgroundOnlyModeExcludesVodFlows) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{60.0}};
  EXPECT_TRUE(snmp.count_vod_flows());
  snmp.set_count_vod_flows(false);
  EXPECT_FALSE(snmp.count_vod_flows());
  network.start_flow({fx.ab}, Mbps{0.5});
  snmp.poll_now(SimTime{0.0});
  const auto& record = fx.db.limited_view(kAdmin).link(fx.ab);
  // Only the 1.0 Mbps background is reported, not our 0.5 Mbps flow.
  EXPECT_NEAR(record.used_bandwidth.value(), 1.0, 1e-9);
  EXPECT_NEAR(record.utilization, 0.5, 1e-9);
}

TEST(SnmpModule, RejectsNonPositiveInterval) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  EXPECT_THROW(
      SnmpModule(sim, network, fx.db.limited_view(kAdmin), Duration{0.0}),
      std::invalid_argument);
}

TEST(SnmpModule, UpdateTimestampsMatchPollTime) {
  Fixture fx;
  net::FluidNetwork network{fx.topo, fx.traffic};
  sim::Simulation sim;
  SnmpModule snmp{sim, network, fx.db.limited_view(kAdmin), Duration{90.0}};
  snmp.start();
  sim.run_until(SimTime{180.0});
  EXPECT_EQ(fx.db.limited_view(kAdmin).link(fx.ab).last_snmp_update,
            SimTime{180.0});
}

}  // namespace
}  // namespace vod::snmp
