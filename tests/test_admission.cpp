#include "service/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grnet/grnet.h"
#include "service/vod_service.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  explicit Fixture(grnet::TimeOfDay t = grnet::TimeOfDay::k8am) {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db::ServerConfig config;
      config.access_bandwidth = Mbps{100.0};
      db.register_server(node, g.topology.node_name(node), config);
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const auto sample = grnet::table2_sample(g, link, t);
      view.update_link_stats(link, sample.used, sample.utilization,
                             SimTime{0.0});
    }
  }
};

TEST(AdmissionController, ValidatesHeadroom) {
  Fixture fx;
  EXPECT_THROW(AdmissionController(fx.db.limited_view(kAdmin),
                                   {.required_headroom = 0.0}),
               std::invalid_argument);
}

TEST(AdmissionController, LocalPathReportsAccessBandwidth) {
  Fixture fx;
  const AdmissionController admission{fx.db.limited_view(kAdmin)};
  const routing::Path local{{fx.g.patra}, {}, 0.0};
  EXPECT_EQ(admission.path_residual(local, fx.g.patra), Mbps{100.0});
}

TEST(AdmissionController, ResidualIsBottleneckFreeBandwidth) {
  Fixture fx;  // 8am: Patra-Athens used 0.2/2, Athens-Heraklio 0.5/18
  const AdmissionController admission{fx.db.limited_view(kAdmin)};
  const routing::Path path{
      {fx.g.patra, fx.g.athens, fx.g.heraklio},
      {fx.g.patra_athens, fx.g.athens_heraklio},
      0.2};
  // Bottleneck: Patra-Athens with 1.8 Mbps free (17.5 free on the other).
  EXPECT_NEAR(admission.path_residual(path, fx.g.patra).value(), 1.8,
              1e-9);
}

TEST(AdmissionController, OfflineLinkZeroesResidual) {
  Fixture fx;
  fx.db.limited_view(kAdmin).set_link_online(fx.g.patra_athens, false);
  const AdmissionController admission{fx.db.limited_view(kAdmin)};
  const routing::Path path{{fx.g.patra, fx.g.athens}, {fx.g.patra_athens},
                           0.1};
  EXPECT_EQ(admission.path_residual(path, fx.g.patra), Mbps{0.0});
}

TEST(AdmissionController, AdmitComparesAgainstBitrateTimesHeadroom) {
  Fixture fx;
  const AdmissionController strict{fx.db.limited_view(kAdmin),
                                   {.required_headroom = 1.0}};
  vra::Decision decision;
  decision.served_locally = false;
  decision.server = fx.g.athens;
  decision.path = routing::Path{{fx.g.patra, fx.g.athens},
                                {fx.g.patra_athens}, 0.1};
  // Residual 1.8: a 1.5 Mbps title fits, a 2.5 Mbps one does not.
  EXPECT_TRUE(strict.admit(decision, Mbps{1.5}));
  EXPECT_FALSE(strict.admit(decision, Mbps{2.5}));
  // With 1.5x headroom even 1.5 Mbps is rejected (needs 2.25).
  const AdmissionController cautious{fx.db.limited_view(kAdmin),
                                     {.required_headroom = 1.5}};
  EXPECT_FALSE(cautious.admit(decision, Mbps{1.5}));
}

TEST(AdmissionController, ClassedAdmitMatchesPlainAtUnitHeadroom) {
  Fixture fx;
  // Default class_headroom is all-ones: the classed overload must agree
  // with the classless one for every class (the single-class guarantee).
  const AdmissionController admission{fx.db.limited_view(kAdmin),
                                      {.required_headroom = 1.0}};
  vra::Decision decision;
  decision.served_locally = false;
  decision.server = fx.g.athens;
  decision.path = routing::Path{{fx.g.patra, fx.g.athens},
                                {fx.g.patra_athens}, 0.1};
  for (const Mbps bitrate : {Mbps{1.5}, Mbps{2.5}}) {
    const bool plain = admission.admit(decision, bitrate);
    EXPECT_EQ(plain, admission.admit(decision, bitrate, UserClass::kPremium));
    EXPECT_EQ(plain, admission.admit(decision, bitrate, UserClass::kStandard));
    EXPECT_EQ(plain,
              admission.admit(decision, bitrate, UserClass::kBackground));
  }
}

TEST(AdmissionController, ClassHeadroomScalesRequiredRate) {
  Fixture fx;
  AdmissionOptions options;
  options.required_headroom = 1.2;
  options.class_headroom = {1.0, 1.1, 1.25};
  const AdmissionController admission{fx.db.limited_view(kAdmin), options};
  EXPECT_NEAR(admission.required_rate(Mbps{2.0}, UserClass::kPremium).value(),
              2.4, 1e-9);
  EXPECT_NEAR(admission.required_rate(Mbps{2.0}, UserClass::kStandard).value(),
              2.64, 1e-9);
  EXPECT_NEAR(
      admission.required_rate(Mbps{2.0}, UserClass::kBackground).value(), 3.0,
      1e-9);
}

TEST(AdmissionController, BackgroundNeedsMoreSlackThanPremium) {
  Fixture fx;  // path residual 1.8 Mbps (see ResidualIsBottleneckFreeBandwidth)
  AdmissionOptions options;
  options.required_headroom = 1.0;
  options.class_headroom = {1.0, 1.1, 1.25};
  const AdmissionController admission{fx.db.limited_view(kAdmin), options};
  vra::Decision decision;
  decision.served_locally = false;
  decision.server = fx.g.athens;
  decision.path = routing::Path{{fx.g.patra, fx.g.athens},
                                {fx.g.patra_athens}, 0.1};
  // 1.5 Mbps title: premium needs 1.5, background needs 1.875 — only the
  // premium request fits the 1.8 Mbps residual.
  EXPECT_TRUE(admission.admit(decision, Mbps{1.5}, UserClass::kPremium));
  EXPECT_TRUE(admission.admit(decision, Mbps{1.5}, UserClass::kStandard));
  EXPECT_FALSE(admission.admit(decision, Mbps{1.5}, UserClass::kBackground));
}

TEST(AdmissionController, ValidatesClassHeadroom) {
  Fixture fx;
  AdmissionOptions options;
  options.class_headroom = {1.0, 0.0, 1.0};
  EXPECT_THROW(AdmissionController(fx.db.limited_view(kAdmin), options),
               std::invalid_argument);
}

TEST(AdmissionController, LocalServingAlwaysAdmitted) {
  Fixture fx;
  const AdmissionController admission{fx.db.limited_view(kAdmin),
                                      {.required_headroom = 100.0}};
  vra::Decision decision;
  decision.served_locally = true;
  decision.server = fx.g.patra;
  decision.path = routing::Path{{fx.g.patra}, {}, 0.0};
  EXPECT_TRUE(admission.admit(decision, Mbps{50.0}));
}

TEST(AdmissionController, RejectsBadBitrate) {
  Fixture fx;
  const AdmissionController admission{fx.db.limited_view(kAdmin)};
  vra::Decision decision;
  decision.served_locally = true;
  EXPECT_THROW(admission.admit(decision, Mbps{0.0}), std::invalid_argument);
}

// --- Service-level admission ---

struct ServiceFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  std::unique_ptr<VodService> service;
  VideoId movie;

  ServiceFixture() {
    ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{1.5});
    service->start();
  }
};

TEST(ServiceAdmission, AdmitsWhenPathHasHeadroom) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.ioannina, fx.movie);
  const auto outcome =
      fx.service->request_with_admission(fx.g.patra, fx.movie);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kAdmitted);
  ASSERT_TRUE(outcome.session.has_value());
  fx.sim.run_until(from_hours(1.0));
  EXPECT_TRUE(fx.service->session_metrics(*outcome.session).finished);
  EXPECT_EQ(fx.service->admitted_count(), 1u);
  EXPECT_EQ(fx.service->rejected_count(), 0u);
}

TEST(ServiceAdmission, RejectsWhenAllRoutesSaturated) {
  ServiceFixture fx;
  // Title only at Athens; by 10am Patra-Athens has 0.18 Mbps free, less
  // than the 1.5 Mbps bitrate.  The alternative route via Ioannina and
  // Thessaloniki is longer but its bottleneck at 10am is Thessaloniki-
  // Ioannina at 74%: 0.52 free — also insufficient.
  fx.service->place_initial_copy(fx.g.athens, fx.movie);
  fx.sim.run_until(grnet::time_of(grnet::TimeOfDay::k10am));
  fx.service->snmp().poll_now(fx.sim.now());
  const auto outcome =
      fx.service->request_with_admission(fx.g.patra, fx.movie);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kRejected);
  EXPECT_FALSE(outcome.session.has_value());
  EXPECT_EQ(fx.service->rejected_count(), 1u);
}

TEST(ServiceAdmission, NoServerReported) {
  ServiceFixture fx;
  const auto outcome =
      fx.service->request_with_admission(fx.g.patra, fx.movie);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kNoServer);
}

TEST(ServiceAdmission, RejectedRequestsStillEarnDmaPoints) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.athens, fx.movie);
  fx.sim.run_until(grnet::time_of(grnet::TimeOfDay::k10am));
  fx.service->snmp().poll_now(fx.sim.now());
  const auto before = fx.service->dma_cache(fx.g.patra).points(fx.movie);
  (void)fx.service->request_with_admission(fx.g.patra, fx.movie);
  EXPECT_GT(fx.service->dma_cache(fx.g.patra).points(fx.movie) + 1,
            before);  // on_request ran (points or store attempt)
  EXPECT_EQ(fx.service->dma_cache(fx.g.patra).request_count(), 1u);
}

TEST(ServiceAdmission, LocalCopyAdmittedRegardlessOfNetwork) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.patra, fx.movie);
  fx.sim.run_until(grnet::time_of(grnet::TimeOfDay::k10am));
  fx.service->snmp().poll_now(fx.sim.now());
  const auto outcome = fx.service->request_with_admission(
      fx.g.patra, fx.movie, /*headroom=*/10.0);
  EXPECT_EQ(outcome.verdict, VodService::Admission::kAdmitted);
}

TEST(ServiceAdmission, ValidatesArguments) {
  ServiceFixture fx;
  EXPECT_THROW(fx.service->request_with_admission(fx.g.patra, VideoId{99}),
               std::invalid_argument);
  EXPECT_THROW(fx.service->request_with_admission(NodeId{99}, fx.movie),
               std::invalid_argument);
}

}  // namespace
}  // namespace vod::service
