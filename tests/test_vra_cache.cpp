// The incremental LVN engine: epoch-keyed graph cache, dirty-links fast
// path, per-home shortest-path-tree cache — and the guarantee that none of
// it changes a single decision.
#include "vra/vra.h"

#include <gtest/gtest.h>

#include <vector>

#include "grnet/grnet.h"

namespace vod::vra {
namespace {

const db::AdminCredential kAdmin{"secret"};

/// The paper's case-study database at one instant of Table 2.
struct CaseFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  explicit CaseFixture(grnet::TimeOfDay t = grnet::TimeOfDay::k8am) {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample = grnet::table2_sample(g, link, t);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(t));
    }
  }

  void place(NodeId server) {
    db.limited_view(kAdmin).add_title(server, movie);
  }

  db::LimitedAccessView view() { return db.limited_view(kAdmin); }

  Vra make_vra(bool cached = true) {
    return Vra{g.topology, db.full_view(), db.limited_view(kAdmin), {},
               cached};
  }
};

/// Every edge weight of the engine's graph must equal a from-scratch build
/// exactly (bit for bit, hence EXPECT_EQ on doubles).
void expect_graph_matches_fresh_build(const CaseFixture& fx, const Vra& vra) {
  const routing::Graph& cached = vra.routing_graph();
  const routing::Graph fresh = vra.current_weighted_graph();
  ASSERT_EQ(cached.node_count(), fresh.node_count());
  ASSERT_EQ(cached.edge_count(), fresh.edge_count());
  for (const net::LinkInfo& info : fx.g.topology.links()) {
    const auto cached_w = cached.edge_weight(info.id);
    const auto fresh_w = fresh.edge_weight(info.id);
    ASSERT_EQ(cached_w.has_value(), fresh_w.has_value());
    if (cached_w) {
      EXPECT_EQ(*cached_w, *fresh_w);
    }
  }
}

TEST(VraCache, GraphReusedUntilEpochAdvances) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 1u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  }
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 1u);
  EXPECT_EQ(vra.cache_stats().graph_hits, 5u);
  EXPECT_EQ(vra.cache_stats().graph_incremental, 0u);
}

TEST(VraCache, StatsWriteTriggersIncrementalRefresh) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());

  fx.view().update_link_stats(fx.g.patra_athens, Mbps{1.9}, 0.95,
                              SimTime{100.0});
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  EXPECT_EQ(vra.cache_stats().graph_incremental, 1u);
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 1u);
  // Only the neighborhoods of the changed link's endpoints are rewritten.
  EXPECT_GT(vra.cache_stats().edges_rewritten, 0u);
  EXPECT_LT(vra.cache_stats().edges_rewritten, 7u);
  expect_graph_matches_fresh_build(fx, vra);
}

TEST(VraCache, IdenticalSnmpRewriteIsStillAHit) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  // SNMP re-reports the very same counters (as it does on quiet links).
  const db::LinkRecord before = fx.view().link(fx.g.patra_athens);
  fx.view().update_link_stats(fx.g.patra_athens, before.used_bandwidth,
                              before.utilization, SimTime{90.0});
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  EXPECT_EQ(vra.cache_stats().graph_hits, 1u);
  EXPECT_EQ(vra.cache_stats().graph_incremental, 0u);
}

TEST(VraCache, OfflineLinkIsExcludedAndFlipRebuildsGraph) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  // Warm the cache: U2,U3,U4 is the corrected Experiment A route.
  const auto warm = vra.select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(warm.has_value());
  ASSERT_TRUE(vra.routing_graph().edge_weight(fx.g.patra_ioannina));

  // Kill Patra-Ioannina (U2-U3): membership changes -> full rebuild, and the
  // offline link must vanish from the weighted graph.
  fx.view().set_link_online(fx.g.patra_ioannina, false);
  const auto rerouted = vra.select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(rerouted.has_value());
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 2u);
  EXPECT_FALSE(vra.routing_graph().edge_weight(fx.g.patra_ioannina));
  // The decision must route around the dead link.
  for (std::size_t i = 0; i + 1 < rerouted->path.nodes.size(); ++i) {
    EXPECT_FALSE((rerouted->path.nodes[i] == fx.g.patra &&
                  rerouted->path.nodes[i + 1] == fx.g.ioannina) ||
                 (rerouted->path.nodes[i] == fx.g.ioannina &&
                  rerouted->path.nodes[i + 1] == fx.g.patra));
  }
  expect_graph_matches_fresh_build(fx, vra);

  // Back online: invalidation fires again and the edge reappears.
  fx.view().set_link_online(fx.g.patra_ioannina, true);
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 3u);
  EXPECT_TRUE(vra.routing_graph().edge_weight(fx.g.patra_ioannina));
  expect_graph_matches_fresh_build(fx, vra);
}

TEST(VraCache, OfflineServerIsReconsideredWithoutGraphRebuild) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const Vra vra = fx.make_vra();
  const auto both = vra.select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(both->server, fx.g.thessaloniki);

  // A server going offline changes the holder set, not the link graph: the
  // next decision must see it immediately while the graph stays cached.
  fx.view().set_server_online(fx.g.thessaloniki, false);
  const auto fallback = vra.select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->server, fx.g.xanthi);
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 1u);
  EXPECT_EQ(vra.cache_stats().graph_hits, 1u);
}

TEST(VraCache, StatsChangeOnOfflineLinkStillMovesNeighborWeights) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  fx.view().set_link_online(fx.g.patra_ioannina, false);
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());

  // The offline link's statistics still feed its endpoints' node
  // validations (eq. 2 does not filter by online), so a stats write on it
  // must propagate to the neighboring online edges via the fast path.
  fx.view().update_link_stats(fx.g.patra_ioannina, Mbps{1.8}, 0.88,
                              SimTime{200.0});
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  EXPECT_GE(vra.cache_stats().graph_incremental, 1u);
  expect_graph_matches_fresh_build(fx, vra);
}

TEST(VraCache, SptCacheServesRepeatedHomesAndInvalidates) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  ASSERT_TRUE(vra.select_server(fx.g.athens, fx.movie).has_value());
  ASSERT_TRUE(vra.select_server(fx.g.athens, fx.movie).has_value());
  EXPECT_EQ(vra.cache_stats().spt_misses, 2u);  // one per distinct home
  EXPECT_EQ(vra.cache_stats().spt_hits, 2u);

  fx.view().update_link_stats(fx.g.patra_athens, Mbps{1.5}, 0.75,
                              SimTime{300.0});
  ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  EXPECT_EQ(vra.cache_stats().spt_misses, 3u);  // tree recomputed
}

TEST(VraCache, TraceRequestsBypassTheSptCache) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra();
  const auto traced = vra.select_server(fx.g.patra, fx.movie, true);
  ASSERT_TRUE(traced.has_value());
  EXPECT_FALSE(traced->trace.empty());
  EXPECT_EQ(vra.cache_stats().spt_misses, 0u);
  EXPECT_EQ(vra.cache_stats().spt_hits, 0u);
}

TEST(VraCache, CachedAndUncachedDecisionsAreIdenticalUnderChurn) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const Vra cached = fx.make_vra(true);
  const Vra uncached = fx.make_vra(false);
  auto view = fx.view();

  const std::vector<NodeId> homes{fx.g.patra, fx.g.athens, fx.g.heraklio,
                                  fx.g.ioannina};
  const std::vector<LinkId> links = fx.g.links_in_paper_order();
  double t = 0.0;
  for (int round = 0; round < 40; ++round) {
    // Churn one link per round (stats), plus an occasional online flip.
    const LinkId victim = links[round % links.size()];
    const double used = 0.5 + 0.37 * (round % 7);
    view.update_link_stats(victim, Mbps{used}, used / 34.0, SimTime{t});
    if (round % 11 == 5) view.set_link_online(links[2], round % 2 == 0);
    t += 90.0;

    for (const NodeId home : homes) {
      const auto a = cached.select_server(home, fx.movie);
      const auto b = uncached.select_server(home, fx.movie);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) continue;
      EXPECT_EQ(a->server, b->server);
      EXPECT_EQ(a->path.nodes, b->path.nodes);
      EXPECT_EQ(a->path.cost, b->path.cost);  // bit-for-bit
      ASSERT_EQ(a->candidates.size(), b->candidates.size());
      for (std::size_t i = 0; i < a->candidates.size(); ++i) {
        EXPECT_EQ(a->candidates[i].server, b->candidates[i].server);
        EXPECT_EQ(a->candidates[i].path.cost, b->candidates[i].path.cost);
      }
    }
  }
  // The cached instance must actually have been caching.
  EXPECT_GT(cached.cache_stats().graph_incremental +
                cached.cache_stats().graph_hits,
            0u);
  EXPECT_GT(uncached.cache_stats().graph_rebuilds, 100u);
}

TEST(VraCache, TitleAddIsVisibleWithoutGraphRebuild) {
  CaseFixture fx;
  fx.place(fx.g.xanthi);
  const Vra vra = fx.make_vra();
  const auto before = vra.select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->server, fx.g.xanthi);

  // A DMA admission at Thessaloniki changes the catalog, not the links:
  // the VRA must see the new holder on the very next request while the
  // weighted graph stays cached.
  fx.place(fx.g.thessaloniki);
  const auto after = vra.select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->server, fx.g.thessaloniki);
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 1u);
  EXPECT_EQ(vra.cache_stats().graph_hits, 1u);
}

TEST(VraCache, DisabledCacheMatchesSeedBehaviour) {
  CaseFixture fx;
  fx.place(fx.g.thessaloniki);
  const Vra vra = fx.make_vra(false);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(vra.select_server(fx.g.patra, fx.movie).has_value());
  }
  EXPECT_EQ(vra.cache_stats().graph_rebuilds, 3u);
  EXPECT_EQ(vra.cache_stats().graph_hits, 0u);
  EXPECT_EQ(vra.cache_stats().spt_hits, 0u);
}

}  // namespace
}  // namespace vod::vra
