// Cross-feature interaction tests: combinations of admission control,
// coalescing, auditing, parity storage and per-node overrides that unit
// suites exercise only in isolation.
#include <gtest/gtest.h>

#include "grnet/grnet.h"
#include "service/spec.h"
#include "service/vod_service.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  std::unique_ptr<VodService> service;
  VideoId movie;

  explicit Fixture(ServiceOptions options) {
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{2.0});
    service->place_initial_copy(g.thessaloniki, movie);
    service->start();
  }
};

TEST(Interactions, AdmissionPlusCoalescingSharesTheAdmittedStream) {
  ServiceOptions options;
  options.coalesce_window_seconds = 120.0;
  Fixture fx{options};
  const auto first =
      fx.service->request_with_admission(fx.g.patra, fx.movie);
  ASSERT_EQ(first.verdict, VodService::Admission::kAdmitted);
  fx.sim.run_until(SimTime{10.0});
  const auto second =
      fx.service->request_with_admission(fx.g.patra, fx.movie);
  // Admitted and then coalesced onto the same session.
  EXPECT_EQ(second.verdict, VodService::Admission::kAdmitted);
  ASSERT_TRUE(second.session.has_value());
  EXPECT_EQ(*second.session, *first.session);
  EXPECT_EQ(fx.service->coalesced_count(), 1u);
  EXPECT_EQ(fx.service->admitted_count(), 2u);
}

TEST(Interactions, AuditSeesCoalescedRequestsOnlyOnce) {
  ServiceOptions options;
  options.coalesce_window_seconds = 120.0;
  options.audit_capacity = 64;
  Fixture fx{options};
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{5.0});
  fx.service->request_at(fx.g.patra, fx.movie);  // coalesced: no new stream
  fx.sim.run_until(from_hours(1.0));
  // 4 clusters -> 4 audited selections; the joiner added none.
  EXPECT_EQ(fx.service->audit().recorded(), 4u);
}

TEST(Interactions, HysteresisPolicyStillFailsOverOnServerLoss) {
  // Sticky policies must not stick to a dead server.
  ServiceOptions options;
  options.vra_switch_hysteresis = 0.9;
  Fixture fx{options};
  fx.service->place_initial_copy(fx.g.xanthi, fx.movie);
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.schedule_at(SimTime{15.0}, [&](SimTime) {
    fx.service->set_server_online(fx.g.thessaloniki, false);
  });
  fx.sim.run_until(from_hours(2.0));
  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_EQ(m.cluster_sources.back(), fx.g.xanthi);
}

TEST(Interactions, ParityServersSurviveDiskLossWithoutCatalogChange) {
  ServiceOptions options;
  options.server.striping = storage::StripingMode::kParity;
  Fixture fx{options};
  // Parity: failing one disk at the holder loses nothing; the catalog
  // entry stays and the session streams normally.
  const auto lost = fx.service->fail_disk(fx.g.thessaloniki, 0);
  EXPECT_TRUE(lost.empty());
  EXPECT_EQ(fx.service->database()
                .full_view()
                .servers_with_title(fx.movie)
                .size(),
            1u);
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  EXPECT_TRUE(fx.service->session_metrics(id).finished);
  // A second disk failure on the same server does lose the title.
  const auto lost2 = fx.service->fail_disk(fx.g.thessaloniki, 1);
  EXPECT_EQ(lost2, std::vector<VideoId>{fx.movie});
  EXPECT_TRUE(fx.service->database()
                  .full_view()
                  .servers_with_title(fx.movie)
                  .empty());
}

TEST(Interactions, SpecDrivenParityAndOverridesEndToEnd) {
  const ServiceSpec spec = parse_service_spec(
      "node hub\n"
      "node edge\n"
      "link hub edge 10\n"
      "server_defaults disks=4 disk_mb=2048\n"
      "server edge disks=2 disk_mb=512\n"
      "parity on\n"
      "cluster_mb 10\n"
      "dma_threshold 1000000\n"
      "video \"m\" size_mb=100 bitrate=2\n"
      "place \"m\" hub\n");
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{spec.topology, traffic};
  VodService service{sim, spec.topology, network, spec.options, kAdmin};
  const auto videos = initialize_from_spec(spec, service);
  service.start();

  const NodeId hub = *spec.topology.find_node("hub");
  const NodeId edge = *spec.topology.find_node("edge");
  // Parity survives a hub disk loss; the stream still completes.
  EXPECT_TRUE(service.fail_disk(hub, 2).empty());
  const SessionId id = service.request_at(edge, videos.at("m"));
  sim.run_until(from_hours(1.0));
  EXPECT_TRUE(service.session_metrics(id).finished);
  // Override honored: the edge server has 2 disks.
  EXPECT_EQ(service.dma_cache(edge).disks().disk_count(), 2u);
  EXPECT_EQ(service.dma_cache(edge).disks().mode(),
            storage::StripingMode::kParity);
}

TEST(Interactions, CoalescedJoinersShareFailureOutcomes) {
  ServiceOptions options;
  options.coalesce_window_seconds = 600.0;
  options.session.stall_timeout_seconds = 60.0;
  options.session.max_retries = 1;
  Fixture fx{options};
  int done_calls = 0;
  bool joiner_saw_failure = false;
  const SessionId leader = fx.service->request_at(
      fx.g.patra, fx.movie,
      [&](const stream::Session&) { ++done_calls; });
  fx.sim.run_until(SimTime{5.0});
  fx.service->request_at(fx.g.patra, fx.movie,
                         [&](const stream::Session& session) {
                           ++done_calls;
                           joiner_saw_failure = session.metrics().failed;
                         });
  // Kill every route mid-stream: the batch fails as one.
  fx.sim.schedule_at(SimTime{10.0}, [&](SimTime) {
    fx.network.set_link_up(fx.g.patra_athens, false);
    fx.network.set_link_up(fx.g.patra_ioannina, false);
    fx.service->set_server_online(fx.g.thessaloniki, false);
  });
  fx.sim.run_until(from_hours(1.0));
  EXPECT_TRUE(fx.service->session_metrics(leader).failed);
  EXPECT_EQ(done_calls, 2);
  EXPECT_TRUE(joiner_saw_failure);
}

}  // namespace
}  // namespace vod::service
