// Failure injection: link outages, SNMP detection, VRA re-routing, and the
// session stall watchdog.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "grnet/grnet.h"
#include "net/transfer.h"
#include "service/vod_service.h"
#include "snmp/snmp_module.h"
#include "stream/session.h"

namespace vod {
namespace {

const db::AdminCredential kAdmin{"secret"};

/// One fixed server behind one link — for the watchdog-focused tests.
class SingleRoutePolicy final : public stream::ServerSelectionPolicy {
 public:
  SingleRoutePolicy(NodeId client, NodeId server, LinkId link)
      : client_(client), server_(server), link_(link) {}
  std::optional<stream::Selection> select(NodeId, VideoId) override {
    return stream::Selection{
        server_, routing::Path{{client_, server_}, {link_}, 1.0}};
  }
  const char* name() const override { return "single-route"; }

 private:
  NodeId client_, server_;
  LinkId link_;
};

TEST(LinkFailure, DownLinkCarriesNoBackground) {
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const LinkId ab = topo.add_link(a, b, Mbps{10.0});
  net::ConstantTraffic traffic;
  traffic.set_load(ab, Mbps{4.0});
  net::FluidNetwork network{topo, traffic};
  EXPECT_TRUE(network.link_up(ab));
  network.set_link_up(ab, false);
  EXPECT_FALSE(network.link_up(ab));
  EXPECT_EQ(network.background(ab), Mbps{0.0});
  EXPECT_EQ(network.used_bandwidth(ab), Mbps{0.0});
}

TEST(LinkFailure, FlowsAcrossDownLinkStall) {
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const LinkId ab = topo.add_link(a, b, Mbps{10.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  const FlowId flow = network.start_flow({ab}, Mbps{5.0});
  EXPECT_GT(network.flow_rate(flow).value(), 0.0);
  network.set_link_up(ab, false);
  EXPECT_EQ(network.flow_rate(flow), Mbps{0.0});
  network.set_link_up(ab, true);
  EXPECT_NEAR(network.flow_rate(flow).value(), 5.0, 1e-9);
}

TEST(LinkFailure, UnknownLinkThrows) {
  net::Topology topo;
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  EXPECT_THROW(network.set_link_up(LinkId{3}, false), std::out_of_range);
  EXPECT_THROW(network.link_up(LinkId{3}), std::out_of_range);
}

TEST(LinkFailure, TransferAcrossDownLinkWaitsForRecovery) {
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const LinkId ab = topo.add_link(a, b, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};

  std::optional<double> done_at;
  transfers.start_transfer({ab}, MegaBytes{8.0}, Mbps{100.0},
                           [&](SimTime t) { done_at = t.seconds(); });
  // Fail at t=4 (4 MB moved), recover at t=10: remaining 4 MB from t=10.
  // The change hooks must settle progress at the old rate and re-plan —
  // no external nudge required.
  sim.schedule_at(SimTime{4.0},
                  [&](SimTime) { network.set_link_up(ab, false); });
  sim.schedule_at(SimTime{10.0},
                  [&](SimTime) { network.set_link_up(ab, true); });
  sim.run_until(SimTime{60.0});
  ASSERT_TRUE(done_at.has_value());
  EXPECT_NEAR(*done_at, 14.0, 1e-6);
}

TEST(LinkFailure, SnmpMarksLinkOffline) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  net::FluidNetwork network{g.topology, traffic};
  sim::Simulation sim;
  db::Database db{kAdmin};
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  snmp::SnmpModule snmp{sim, network, db.limited_view(kAdmin), Duration{90.0}};
  snmp.poll_now(SimTime{0.0});
  EXPECT_TRUE(db.limited_view(kAdmin).link(g.patra_athens).online);
  network.set_link_up(g.patra_athens, false);
  // Stale until the next poll.
  EXPECT_TRUE(db.limited_view(kAdmin).link(g.patra_athens).online);
  snmp.poll_now(SimTime{90.0});
  EXPECT_FALSE(db.limited_view(kAdmin).link(g.patra_athens).online);
}

TEST(LinkFailure, VraRoutesAroundOfflineLink) {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  const VideoId movie = db.register_video("m", MegaBytes{900.0}, Mbps{2.0});
  auto view = db.limited_view(kAdmin);
  for (const LinkId link : g.links_in_paper_order()) {
    const auto sample = grnet::table2_sample(g, link, grnet::TimeOfDay::k8am);
    view.update_link_stats(link, sample.used, sample.utilization,
                           SimTime{0.0});
  }
  view.add_title(g.thessaloniki, movie);

  const vra::Vra vra{g.topology, db.full_view(), db.limited_view(kAdmin),
                     {}};
  // Baseline: Patra reaches Thessaloniki via Ioannina at 8am.
  auto before = vra.select_server(g.patra, movie);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->path.to_string(vra.current_weighted_graph()),
            "U2,U3,U4");
  // Kill the Patra-Ioannina link: must fall back through Athens.
  view.set_link_online(g.patra_ioannina, false);
  auto after = vra.select_server(g.patra, movie);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->path.to_string(vra.current_weighted_graph()),
            "U2,U1,U4");
}

TEST(LinkFailure, VraReportsNoRouteWhenHomeIsolated) {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  const VideoId movie = db.register_video("m", MegaBytes{900.0}, Mbps{2.0});
  auto view = db.limited_view(kAdmin);
  for (const LinkId link : g.links_in_paper_order()) {
    view.update_link_stats(link, Mbps{0.1}, 0.05, SimTime{0.0});
  }
  view.add_title(g.thessaloniki, movie);
  view.set_link_online(g.patra_athens, false);
  view.set_link_online(g.patra_ioannina, false);
  const vra::Vra vra{g.topology, db.full_view(), db.limited_view(kAdmin),
                     {}};
  EXPECT_FALSE(vra.select_server(g.patra, movie).has_value());
}

TEST(StallWatchdog, RetriesAndRecovers) {
  // Two servers; the first path dies mid-cluster; the watchdog re-selects.
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId s1 = topo.add_node("s1");
  const NodeId s2 = topo.add_node("s2");
  const LinkId l1 = topo.add_link(client, s1, Mbps{8.0});
  const LinkId l2 = topo.add_link(client, s2, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};

  // Policy: prefer s1 while its link is up, else s2.
  class FailoverPolicy final : public stream::ServerSelectionPolicy {
   public:
    FailoverPolicy(net::FluidNetwork& network, NodeId client, NodeId s1,
                   NodeId s2, LinkId l1, LinkId l2)
        : network_(network), client_(client), s1_(s1), s2_(s2), l1_(l1),
          l2_(l2) {}
    std::optional<stream::Selection> select(NodeId, VideoId) override {
      if (network_.link_up(l1_)) {
        return stream::Selection{
            s1_, routing::Path{{client_, s1_}, {l1_}, 1.0}};
      }
      return stream::Selection{s2_,
                               routing::Path{{client_, s2_}, {l2_}, 1.0}};
    }
    const char* name() const override { return "failover"; }

   private:
    net::FluidNetwork& network_;
    NodeId client_, s1_, s2_;
    LinkId l1_, l2_;
  } policy{network, client, s1, s2, l1, l2};

  stream::SessionOptions options;
  options.stall_timeout_seconds = 30.0;
  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{40.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{10.0}, options};
  session.start();
  // Kill l1 at t=15, mid-cluster-2.
  sim.schedule_at(SimTime{15.0},
                  [&](SimTime) { network.set_link_up(l1, false); });
  sim.run_until(SimTime{500.0});

  const stream::SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.stall_retries, 1);
  // Timeline: clusters at 10s each; cluster 2 starts t=20... wait, l1 died
  // at 15 mid-cluster-1 (which started at t=10).  Watchdog fires at t=40,
  // re-selects s2, finishes the remaining clusters there.
  ASSERT_EQ(m.cluster_sources.size(), 4u);
  EXPECT_EQ(m.cluster_sources[0], s1);
  EXPECT_EQ(m.cluster_sources.back(), s2);
  ASSERT_TRUE(m.download_completed_at.has_value());
  EXPECT_GT(m.download_completed_at->seconds(), 40.0);
}

TEST(StallWatchdog, ExhaustedRetriesFailTheSession) {
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId server = topo.add_node("server");
  const LinkId link = topo.add_link(client, server, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};

  class DeadEndPolicy final : public stream::ServerSelectionPolicy {
   public:
    DeadEndPolicy(NodeId client, NodeId server, LinkId link)
        : client_(client), server_(server), link_(link) {}
    std::optional<stream::Selection> select(NodeId, VideoId) override {
      return stream::Selection{
          server_, routing::Path{{client_, server_}, {link_}, 1.0}};
    }
    const char* name() const override { return "dead-end"; }

   private:
    NodeId client_, server_;
    LinkId link_;
  } policy{client, server, link};

  stream::SessionOptions options;
  options.stall_timeout_seconds = 10.0;
  options.max_retries = 2;
  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{40.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{10.0}, options};
  network.set_link_up(link, false);  // dead from the start
  session.start();
  sim.run_until(SimTime{500.0});

  const stream::SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.failure_reason, "cluster stalled beyond retry budget");
  EXPECT_EQ(m.stall_retries, 3);  // the failing attempt counts
  EXPECT_EQ(transfers.active_count(), 0u);
}

TEST(StallWatchdog, AutoTimeoutDerivedFromClusterAndCap) {
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId server = topo.add_node("server");
  const LinkId link = topo.add_link(client, server, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};
  SingleRoutePolicy policy{client, server, link};

  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{40.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{10.0}};
  // 10 MB cluster at the 8 Mbps default cap: 10 s expected, 3x = 30 s.
  EXPECT_DOUBLE_EQ(session.stall_timeout_seconds(), 30.0);
  session.start();
  sim.run_until(SimTime{500.0});
  // Healthy run: the auto watchdog never interferes.
  EXPECT_TRUE(session.metrics().finished);
  EXPECT_EQ(session.metrics().stall_retries, 0);

  // Infinity is still accepted and disables the watchdog outright.
  stream::SessionOptions off;
  off.stall_timeout_seconds = std::numeric_limits<double>::infinity();
  const stream::Session unbounded{sim,  transfers, policy, video,
                                  client, MegaBytes{10.0}, off};
  EXPECT_TRUE(std::isinf(unbounded.stall_timeout_seconds()));

  // Zero or negative (other than the sentinel) is a configuration error.
  stream::SessionOptions bad;
  bad.stall_timeout_seconds = 0.0;
  EXPECT_THROW((stream::Session{sim, transfers, policy, video, client,
                                MegaBytes{10.0}, bad}),
               std::invalid_argument);
}

TEST(StallWatchdog, AutoTimeoutFailsDeadSourceExplicitly) {
  // Out-of-the-box options on a dead route: the session must not hang —
  // it fails with an explicit reason once the per-cluster budget is spent.
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId server = topo.add_node("server");
  const LinkId link = topo.add_link(client, server, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};
  SingleRoutePolicy policy{client, server, link};

  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{40.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{10.0}};
  network.set_link_up(link, false);
  session.start();
  sim.run_until(from_hours(1.0));

  const stream::SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.failure_reason, "cluster stalled beyond retry budget");
  EXPECT_EQ(m.stall_retries, 6);  // 5 retries + the failing attempt
  ASSERT_TRUE(m.download_completed_at.has_value());
  EXPECT_NEAR(m.download_completed_at->seconds(), 180.0, 1e-9);
  EXPECT_EQ(transfers.active_count(), 0u);
}

TEST(StallWatchdog, PerClusterBudgetSurvivesRepeatedTransientStalls) {
  // Two independent transient outages, each recovered after one retry: a
  // per-cluster budget of 1 tolerates both (a session-wide budget of 1
  // would have failed on the second).
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId server = topo.add_node("server");
  const LinkId link = topo.add_link(client, server, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};
  SingleRoutePolicy policy{client, server, link};

  stream::SessionOptions options;
  options.stall_timeout_seconds = 10.0;
  options.max_retries = 1;
  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{40.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{10.0}, options};
  session.start();
  // Outage 1 hits cluster 0; outage 2 hits cluster 2.
  sim.schedule_at(SimTime{5.0},
                  [&](SimTime) { network.set_link_up(link, false); });
  sim.schedule_at(SimTime{15.0},
                  [&](SimTime) { network.set_link_up(link, true); });
  sim.schedule_at(SimTime{38.0},
                  [&](SimTime) { network.set_link_up(link, false); });
  sim.schedule_at(SimTime{50.0},
                  [&](SimTime) { network.set_link_up(link, true); });
  sim.run_until(SimTime{500.0});

  const stream::SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.stall_retries, 2);
}

TEST(StallWatchdog, TotalBudgetStillCapsDeadTitles) {
  // A huge per-cluster budget must not let a genuinely dead title retry
  // forever: the session-wide cap fails it with its own reason.
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId server = topo.add_node("server");
  const LinkId link = topo.add_link(client, server, Mbps{8.0});
  net::NoTraffic traffic;
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};
  SingleRoutePolicy policy{client, server, link};

  stream::SessionOptions options;
  options.stall_timeout_seconds = 10.0;
  options.max_retries = 100;
  options.max_total_retries = 3;
  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{40.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{10.0}, options};
  network.set_link_up(link, false);
  session.start();
  sim.run_until(SimTime{500.0});

  const stream::SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.failure_reason, "session stalled beyond total retry budget");
  EXPECT_EQ(m.stall_retries, 4);
}

TEST(StallWatchdog, SlowButAliveTransferIsNotAborted) {
  // Heavy congestion leaves the flow a trickle (0.1 Mbps) — far beyond
  // the timeout but above the rate floor: the watchdog keeps re-arming
  // instead of churning retries on a transfer that is making progress.
  net::Topology topo;
  const NodeId client = topo.add_node("client");
  const NodeId server = topo.add_node("server");
  const LinkId link = topo.add_link(client, server, Mbps{8.0});
  net::ConstantTraffic traffic;
  traffic.set_load(link, Mbps{7.9});
  net::FluidNetwork network{topo, traffic};
  sim::Simulation sim;
  net::TransferManager transfers{sim, network};
  SingleRoutePolicy policy{client, server, link};

  stream::SessionOptions options;
  options.stall_timeout_seconds = 10.0;  // 1 MB at 0.1 Mbps takes 80 s
  const db::VideoInfo video{VideoId{0}, "v", MegaBytes{2.0}, Mbps{2.0}};
  stream::Session session{sim,  transfers, policy, video,
                          client, MegaBytes{1.0}, options};
  session.start();
  sim.run_until(SimTime{500.0});

  const stream::SessionMetrics& m = session.metrics();
  EXPECT_TRUE(m.finished);
  EXPECT_EQ(m.stall_retries, 0);
  ASSERT_TRUE(m.download_completed_at.has_value());
  EXPECT_NEAR(m.download_completed_at->seconds(), 160.0, 1e-6);
}

TEST(ServiceFailover, LinkFailureMidStreamIsSurvived) {
  // Full-stack: GRNET, two replicas, the chosen route's link dies; the
  // SNMP poll marks it offline and the next cluster re-routes.
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 30.0;
  options.dma.admission_threshold = 1'000'000;  // routing only
  options.session.stall_timeout_seconds = 120.0;
  service::VodService service{sim, g.topology, network, options, kAdmin};
  const VideoId movie =
      service.add_video("movie", MegaBytes{100.0}, Mbps{2.0});
  service.place_initial_copy(g.thessaloniki, movie);
  service.place_initial_copy(g.xanthi, movie);
  service.start();

  const SessionId id = service.request_at(g.patra, movie);
  // On an idle network Patra pulls from Thessaloniki via Ioannina; cut
  // Patra-Ioannina mid-stream.
  sim.schedule_at(SimTime{15.0}, [&](SimTime) {
    network.set_link_up(g.patra_ioannina, false);
  });
  sim.run_until(from_hours(2.0));

  const stream::SessionMetrics& m = service.session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
}

}  // namespace
}  // namespace vod
