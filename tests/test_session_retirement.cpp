// Session retirement: finished/failed sessions leave the live store (the
// O(active)-memory invariant), their summaries stay queryable under
// kSummaries retention, and the coalescing batch table is pruned on leader
// retirement and by the expiry sweep.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "grnet/grnet.h"
#include "service/vod_service.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  std::unique_ptr<VodService> service;
  VideoId movie;

  explicit Fixture(ServiceOptions options = {},
                   MegaBytes movie_size = MegaBytes{10.0}) {
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;  // no spontaneous copies
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", movie_size, Mbps{2.0});
    service->place_initial_copy(g.thessaloniki, movie);
    service->start();
  }
};

TEST(SessionRetirement, LeakRegressionManyLifecycles) {
  // The historical leak: sessions_ never shrank, so a long run held every
  // Session object ever created.  After N sequential lifecycles the live
  // store must be empty while the summaries keep the history.
  Fixture fx;
  constexpr int kSessions = 30;
  for (int i = 0; i < kSessions; ++i) {
    fx.sim.schedule_at(SimTime{100.0 * i}, [&fx](SimTime) {
      fx.service->request_at(fx.g.patra, fx.movie);
    });
  }
  fx.sim.run_until(SimTime{100.0 * kSessions + 1000.0});

  EXPECT_EQ(fx.service->active_session_count(), 0u);
  EXPECT_EQ(fx.service->resident_session_count(), 0u);
  const auto ids = fx.service->session_ids();
  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kSessions));
  for (const SessionId id : ids) {
    EXPECT_TRUE(fx.service->session_metrics(id).finished);
    EXPECT_EQ(fx.service->session_home(id), fx.g.patra);
    EXPECT_EQ(fx.service->session_video(id).id, fx.movie);
    // The live-object accessor is active-only by contract.
    EXPECT_THROW(fx.service->session(id), std::out_of_range);
  }
}

TEST(SessionRetirement, SessionStaysResidentWhileActive) {
  Fixture fx;
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{5.0});  // mid-stream (40 s playback)
  EXPECT_EQ(fx.service->resident_session_count(), 1u);
  EXPECT_TRUE(fx.service->session(id).active());
  fx.sim.run_until(from_hours(1.0));
  EXPECT_EQ(fx.service->resident_session_count(), 0u);
  EXPECT_TRUE(fx.service->session_metrics(id).finished);
}

TEST(SessionRetirement, CountersOnlyDropsRecords) {
  ServiceOptions options;
  options.retention = SessionRetention::kCountersOnly;
  Fixture fx{options};
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));

  // No record retained: the id is gone from every per-session surface...
  EXPECT_EQ(fx.service->resident_session_count(), 0u);
  EXPECT_TRUE(fx.service->session_ids().empty());
  EXPECT_THROW(fx.service->session_metrics(id), std::out_of_range);
  EXPECT_THROW(fx.service->session_home(id), std::out_of_range);
  EXPECT_THROW(fx.service->session_video(id), std::out_of_range);
  // ...but the aggregate counters kept the outcome.
  EXPECT_EQ(
      fx.service->metrics().counter("service.sessions_finished").value(),
      1u);
}

TEST(SessionRetirement, RetryChainPrunedUnderCountersOnly) {
  // The retry-chain bookkeeping lives on the retired records; with records
  // pruned the chain queries answer "unknown" while the retry machinery
  // itself still works.
  ServiceOptions options;
  options.retention = SessionRetention::kCountersOnly;
  options.failover.retry_limit = 2;
  options.failover.retry_backoff_seconds = 30.0;
  Fixture fx{options, MegaBytes{40.0}};
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.schedule_at(SimTime{5.0}, [&fx](SimTime) {
    fx.service->crash_server(fx.g.thessaloniki);
  });
  fx.sim.schedule_at(SimTime{20.0}, [&fx](SimTime) {
    fx.service->restore_server(fx.g.thessaloniki);
  });
  fx.sim.run_until(from_hours(1.0));

  EXPECT_EQ(fx.service->service_retry_count(), 1u);
  EXPECT_EQ(
      fx.service->metrics().counter("service.sessions_finished").value(),
      1u);
  EXPECT_FALSE(fx.service->session_superseded(id));
  EXPECT_EQ(fx.service->retried_as(id), std::nullopt);
  EXPECT_EQ(fx.service->resident_session_count(), 0u);
}

TEST(SessionRetirement, DeadLeaderNotCoalescedAfterFailover) {
  // Regression: the batch entry used to outlive its leader, and a request
  // inside the window after a failover crash tried to join the dead
  // stream.  Retirement must drop the entry so the request opens fresh.
  ServiceOptions options;
  options.coalesce_window_seconds = 120.0;
  Fixture fx{options, MegaBytes{40.0}};
  const SessionId leader = fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_EQ(fx.service->open_batch_count(), 1u);
  fx.sim.schedule_at(SimTime{5.0}, [&fx](SimTime) {
    fx.service->crash_server(fx.g.thessaloniki);  // only holder: leader dies
  });
  fx.sim.schedule_at(SimTime{10.0}, [&fx](SimTime) {
    fx.service->restore_server(fx.g.thessaloniki);
  });
  fx.sim.run_until(SimTime{20.0});
  ASSERT_TRUE(fx.service->session_metrics(leader).failed);
  EXPECT_EQ(fx.service->open_batch_count(), 0u);

  // Still well inside the 120 s window — must NOT join the dead leader.
  const SessionId second = fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_NE(second, leader);
  EXPECT_EQ(fx.service->coalesced_count(), 0u);
  fx.sim.run_until(from_hours(1.0));
  EXPECT_TRUE(fx.service->session_metrics(second).finished);
}

TEST(SessionRetirement, StaleBatchExpiresWhileLeaderStillStreams) {
  // The expiry sweep prunes entries one window after registration even
  // when no later request ever looks them up and the leader is still
  // active (long movie, short window).
  ServiceOptions options;
  options.coalesce_window_seconds = 30.0;
  Fixture fx{options, MegaBytes{40.0}};  // 160 s playback >> 30 s window
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{10.0});
  EXPECT_EQ(fx.service->open_batch_count(), 1u);
  fx.sim.run_until(SimTime{65.0});
  EXPECT_EQ(fx.service->resident_session_count(), 1u);  // still streaming
  EXPECT_EQ(fx.service->open_batch_count(), 0u);        // but batch swept
}

}  // namespace
}  // namespace vod::service
