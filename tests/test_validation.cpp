#include "vra/validation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grnet/grnet.h"

namespace vod::vra {
namespace {

/// Hand-checkable two-node fixture: one 2 Mbps link at 50% (1 Mbps used).
struct TwoNode {
  net::Topology topo;
  NodeId a, b;
  LinkId ab;
  MapLinkStatsProvider stats;

  TwoNode() {
    a = topo.add_node("a");
    b = topo.add_node("b");
    ab = topo.add_link(a, b, Mbps{2.0});
    stats.set(ab, LinkStats{Mbps{1.0}, Mbps{2.0}, 0.5});
  }
};

TEST(LvnCalculator, NodeValidationIsUsedOverTotal) {
  TwoNode fx;
  LvnCalculator calc{fx.topo, fx.stats};
  // Eq. 2: both endpoints see the single link: 1/2.
  EXPECT_DOUBLE_EQ(calc.node_validation(fx.a), 0.5);
  EXPECT_DOUBLE_EQ(calc.node_validation(fx.b), 0.5);
}

TEST(LvnCalculator, NodeValidationSumsAdjacentLinks) {
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId ab = topo.add_link(a, b, Mbps{2.0});
  const LinkId ac = topo.add_link(a, c, Mbps{18.0});
  MapLinkStatsProvider stats;
  stats.set(ab, LinkStats{Mbps{1.0}, Mbps{2.0}, 0.5});
  stats.set(ac, LinkStats{Mbps{9.0}, Mbps{18.0}, 0.5});
  LvnCalculator calc{topo, stats};
  // a: (1+9)/(2+18) = 0.5; b: 1/2; c: 9/18.
  EXPECT_DOUBLE_EQ(calc.node_validation(a), 0.5);
  EXPECT_DOUBLE_EQ(calc.node_validation(b), 0.5);
  EXPECT_DOUBLE_EQ(calc.node_validation(c), 0.5);
}

TEST(LvnCalculator, IsolatedNodeHasZeroValidation) {
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  MapLinkStatsProvider stats;
  LvnCalculator calc{topo, stats};
  EXPECT_DOUBLE_EQ(calc.node_validation(a), 0.0);
}

TEST(LvnCalculator, LinkValueIsBandwidthOverNormalization) {
  TwoNode fx;
  LvnCalculator calc{fx.topo, fx.stats};
  EXPECT_DOUBLE_EQ(calc.link_value(fx.ab), 0.2);  // 2 / 10
}

TEST(LvnCalculator, NormalizationConstantConfigurable) {
  TwoNode fx;
  LvnCalculator calc{fx.topo, fx.stats,
                     ValidationOptions{.normalization_constant = 4.0}};
  EXPECT_DOUBLE_EQ(calc.link_value(fx.ab), 0.5);  // 2 / 4
}

TEST(LvnCalculator, LinkUtilizationTermIsTrafficTimesValue) {
  TwoNode fx;
  LvnCalculator calc{fx.topo, fx.stats};
  EXPECT_DOUBLE_EQ(calc.link_utilization_term(fx.ab), 0.5 * 0.2);
}

TEST(LvnCalculator, LvnIsMaxNodeValidationPlusUtilizationTerm) {
  TwoNode fx;
  LvnCalculator calc{fx.topo, fx.stats};
  EXPECT_DOUBLE_EQ(calc.link_validation_number(fx.ab), 0.5 + 0.1);
}

TEST(LvnCalculator, LvnTakesWorseEndpoint) {
  // Asymmetric: node b has a second, heavily loaded link.
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId ab = topo.add_link(a, b, Mbps{2.0});
  const LinkId bc = topo.add_link(b, c, Mbps{2.0});
  MapLinkStatsProvider stats;
  stats.set(ab, LinkStats{Mbps{0.2}, Mbps{2.0}, 0.1});
  stats.set(bc, LinkStats{Mbps{1.8}, Mbps{2.0}, 0.9});
  LvnCalculator calc{topo, stats};
  // NV(a) = 0.1, NV(b) = 2.0/4 = 0.5; LVN(ab) = 0.5 + 0.1*0.2.
  EXPECT_DOUBLE_EQ(calc.link_validation_number(ab), 0.5 + 0.02);
}

TEST(LvnCalculator, ServerLoadExtensionAddsWeightedTerm) {
  TwoNode fx;
  ValidationOptions options;
  options.server_load_weight = 0.5;
  options.server_load = [&](NodeId node) {
    return node == fx.a ? 0.8 : 0.0;
  };
  LvnCalculator calc{fx.topo, fx.stats, options};
  EXPECT_DOUBLE_EQ(calc.node_validation(fx.a), 0.5 + 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(calc.node_validation(fx.b), 0.5);
}

TEST(LvnCalculator, ValidatesOptions) {
  TwoNode fx;
  EXPECT_THROW(
      LvnCalculator(fx.topo, fx.stats,
                    ValidationOptions{.normalization_constant = 0.0}),
      std::invalid_argument);
  ValidationOptions missing_callback;
  missing_callback.server_load_weight = 1.0;
  EXPECT_THROW(LvnCalculator(fx.topo, fx.stats, missing_callback),
               std::invalid_argument);
}

TEST(LvnCalculator, BuildWeightedGraphMirrorsTopology) {
  TwoNode fx;
  LvnCalculator calc{fx.topo, fx.stats};
  const routing::Graph graph = calc.build_weighted_graph();
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.node_name(fx.a), "a");
  EXPECT_DOUBLE_EQ(*graph.edge_weight(fx.ab), 0.6);
}

TEST(MapLinkStatsProvider, UnknownLinkThrows) {
  MapLinkStatsProvider provider;
  EXPECT_THROW(provider.stats(LinkId{0}), std::out_of_range);
}

TEST(MapLinkStatsProvider, RejectsNonPositiveTotal) {
  MapLinkStatsProvider provider;
  EXPECT_THROW(
      provider.set(LinkId{0}, LinkStats{Mbps{0.0}, Mbps{0.0}, 0.0}),
      std::invalid_argument);
}

TEST(DbLinkStatsProvider, ReadsFromLimitedView) {
  db::Database database{db::AdminCredential{"s"}};
  database.register_link(LinkId{0}, "l", Mbps{2.0});
  auto view = database.limited_view(db::AdminCredential{"s"});
  view.update_link_stats(LinkId{0}, Mbps{1.82}, 0.91, SimTime{0.0});
  DbLinkStatsProvider provider{view};
  const LinkStats stats = provider.stats(LinkId{0});
  EXPECT_EQ(stats.used, Mbps{1.82});
  EXPECT_EQ(stats.total, Mbps{2.0});
  EXPECT_DOUBLE_EQ(stats.traffic_fraction, 0.91);
}

// --- Table 3 reproduction: all 7 links x 4 instants ---

class Table3Reproduction
    : public ::testing::TestWithParam<grnet::TimeOfDay> {};

TEST_P(Table3Reproduction, ComputedLvnsMatchPaperWithinRounding) {
  const grnet::CaseStudy grnet = grnet::build_case_study();
  const auto stats = grnet::table2_stats(grnet, GetParam());
  const LvnCalculator calc{grnet.topology, stats};
  for (const LinkId link : grnet.links_in_paper_order()) {
    const double computed = calc.link_validation_number(link);
    const double published =
        grnet::table3_expected_lvn(grnet, link, GetParam());
    // The paper rounds intermediate values; 0.01 absolute covers every
    // cell (most match to 4 decimals).
    EXPECT_NEAR(computed, published, 0.01)
        << grnet.topology.link(link).name << " at "
        << grnet::time_label(GetParam());
  }
}

TEST_P(Table3Reproduction, MostCellsMatchToFourDecimals) {
  // The majority of Table 3 cells reproduce to 5e-4; count them to catch
  // regressions that stay inside the loose tolerance above.
  const grnet::CaseStudy grnet = grnet::build_case_study();
  const auto stats = grnet::table2_stats(grnet, GetParam());
  const LvnCalculator calc{grnet.topology, stats};
  int tight = 0;
  for (const LinkId link : grnet.links_in_paper_order()) {
    const double computed = calc.link_validation_number(link);
    const double published =
        grnet::table3_expected_lvn(grnet, link, GetParam());
    if (std::abs(computed - published) < 5e-4) ++tight;
  }
  EXPECT_GE(tight, 5) << "at " << grnet::time_label(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllTimes, Table3Reproduction,
                         ::testing::ValuesIn(grnet::kAllTimes));

}  // namespace
}  // namespace vod::vra
