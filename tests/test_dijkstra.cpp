#include "routing/dijkstra.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "routing/bellman_ford.h"

namespace vod::routing {
namespace {

/// a -1- b -1- c, plus a direct a-c edge of weight 3 (not shortest).
Graph triangle() {
  Graph graph;
  const NodeId a = graph.add_node("a");
  const NodeId b = graph.add_node("b");
  const NodeId c = graph.add_node("c");
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  graph.add_undirected_edge(b, c, LinkId{1}, 1.0);
  graph.add_undirected_edge(a, c, LinkId{2}, 3.0);
  return graph;
}

TEST(Dijkstra, SourceDistanceIsZero) {
  const Graph graph = triangle();
  const auto paths = dijkstra(graph, NodeId{0});
  EXPECT_DOUBLE_EQ(paths.distance_to(NodeId{0}), 0.0);
}

TEST(Dijkstra, PrefersCheaperMultiHopPath) {
  const Graph graph = triangle();
  const auto paths = dijkstra(graph, NodeId{0});
  EXPECT_DOUBLE_EQ(paths.distance_to(NodeId{2}), 2.0);
  const auto path = paths.path_to(NodeId{2});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->nodes.size(), 3u);
  EXPECT_EQ(path->nodes[1], NodeId{1});
}

TEST(Dijkstra, PathLinksMatchNodes) {
  const Graph graph = triangle();
  const auto path = dijkstra(graph, NodeId{0}).path_to(NodeId{2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->links, (std::vector<LinkId>{LinkId{0}, LinkId{1}}));
  EXPECT_EQ(path->hop_count(), 2u);
  EXPECT_EQ(path->source(), NodeId{0});
  EXPECT_EQ(path->destination(), NodeId{2});
}

TEST(Dijkstra, PathToSourceIsTrivial) {
  const Graph graph = triangle();
  const auto path = dijkstra(graph, NodeId{0}).path_to(NodeId{0});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, std::vector<NodeId>{NodeId{0}});
  EXPECT_TRUE(path->links.empty());
  EXPECT_DOUBLE_EQ(path->cost, 0.0);
}

TEST(Dijkstra, DisconnectedNodeUnreachable) {
  Graph graph;
  const NodeId a = graph.add_node();
  graph.add_node();  // isolated b
  const auto paths = dijkstra(graph, a);
  EXPECT_FALSE(paths.reachable(NodeId{1}));
  EXPECT_EQ(paths.distance_to(NodeId{1}), kUnreached);
  EXPECT_FALSE(paths.path_to(NodeId{1}).has_value());
}

TEST(Dijkstra, UnknownSourceThrows) {
  Graph graph;
  EXPECT_THROW(dijkstra(graph, NodeId{0}), std::invalid_argument);
}

TEST(Dijkstra, DistanceToUnknownNodeThrows) {
  const Graph graph = triangle();
  const auto paths = dijkstra(graph, NodeId{0});
  EXPECT_THROW(paths.distance_to(NodeId{99}), std::invalid_argument);
}

TEST(Dijkstra, ZeroWeightEdgesSupported) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 0.0);
  const auto paths = dijkstra(graph, a);
  EXPECT_DOUBLE_EQ(paths.distance_to(b), 0.0);
}

TEST(Dijkstra, TraceHasOneStepPerReachableNode) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  EXPECT_EQ(trace.size(), 3u);
}

TEST(Dijkstra, TraceFirstStepFinalizesSource) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0].finalized, NodeId{0});
  EXPECT_EQ(trace[0].permanent_set, std::vector<NodeId>{NodeId{0}});
}

TEST(Dijkstra, TraceTentativeDistancesImprove) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  // After step 1, c is tentatively reached at 3.0 via the direct edge;
  // after step 2 (b finalized) it improves to 2.0.
  EXPECT_DOUBLE_EQ(trace[0].tentative[2], 3.0);
  EXPECT_DOUBLE_EQ(trace[1].tentative[2], 2.0);
}

TEST(Dijkstra, TraceBestPathsMatchDistances) {
  const Graph graph = triangle();
  DijkstraTrace trace;
  dijkstra(graph, NodeId{0}, &trace);
  const DijkstraStep& last = trace.back();
  EXPECT_EQ(last.best_path[2],
            (std::vector<NodeId>{NodeId{0}, NodeId{1}, NodeId{2}}));
}

TEST(Dijkstra, TraceUnreachedMarked) {
  Graph graph;
  const NodeId a = graph.add_node();
  graph.add_node();  // isolated
  DijkstraTrace trace;
  dijkstra(graph, a, &trace);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].tentative[1], kUnreached);
  EXPECT_TRUE(trace[0].best_path[1].empty());
}

TEST(Dijkstra, ParallelEdgesUseTheCheaper) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 5.0);
  graph.add_undirected_edge(a, b, LinkId{1}, 2.0);
  const auto paths = dijkstra(graph, a);
  EXPECT_DOUBLE_EQ(paths.distance_to(b), 2.0);
  const auto path = paths.path_to(b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->links, std::vector<LinkId>{LinkId{1}});
}

TEST(ShortestPath, ConvenienceWrapper) {
  const Graph graph = triangle();
  const auto path = shortest_path(graph, NodeId{0}, NodeId{2});
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 2.0);
}

TEST(ShortestPath, UnknownDestinationThrows) {
  const Graph graph = triangle();
  EXPECT_THROW(shortest_path(graph, NodeId{0}, NodeId{9}),
               std::invalid_argument);
}

TEST(PathToString, UsesNodeNames) {
  const Graph graph = triangle();
  const auto path = shortest_path(graph, NodeId{0}, NodeId{2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->to_string(graph), "a,b,c");
}

// --- Property: Dijkstra agrees with Bellman–Ford on random graphs ---

class DijkstraRandomAgreement : public ::testing::TestWithParam<int> {};

Graph random_graph(Rng& rng, std::size_t nodes, double edge_probability) {
  Graph graph;
  for (std::size_t i = 0; i < nodes; ++i) graph.add_node();
  LinkId::underlying_type next_link = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      if (rng.bernoulli(edge_probability)) {
        graph.add_undirected_edge(
            NodeId{static_cast<NodeId::underlying_type>(i)},
            NodeId{static_cast<NodeId::underlying_type>(j)},
            LinkId{next_link++}, rng.uniform(0.0, 10.0));
      }
    }
  }
  return graph;
}

TEST_P(DijkstraRandomAgreement, MatchesBellmanFordEverywhere) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  const std::size_t nodes = 3 + static_cast<std::size_t>(GetParam()) % 15;
  const Graph graph = random_graph(rng, nodes, 0.4);
  const NodeId source{0};
  const auto dj = dijkstra(graph, source);
  const auto bf = bellman_ford(graph, source);
  for (std::size_t v = 0; v < nodes; ++v) {
    const NodeId node{static_cast<NodeId::underlying_type>(v)};
    if (dj.reachable(node)) {
      EXPECT_NEAR(dj.distance_to(node), bf.distance[v], 1e-9)
          << "node " << v << " seed " << GetParam();
    } else {
      EXPECT_EQ(bf.distance[v], kUnreached);
    }
  }
}

TEST_P(DijkstraRandomAgreement, PathCostsEqualSumOfEdgeWeights) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 1000};
  const Graph graph = random_graph(rng, 10, 0.5);
  const auto paths = dijkstra(graph, NodeId{0});
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const auto path = paths.path_to(NodeId{
        static_cast<NodeId::underlying_type>(v)});
    if (!path) continue;
    double sum = 0.0;
    for (const LinkId link : path->links) {
      sum += *graph.edge_weight(link);
    }
    EXPECT_NEAR(sum, path->cost, 1e-9);
    EXPECT_EQ(path->nodes.size(), path->links.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomAgreement,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace vod::routing
