#include "storage/striping.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

namespace vod::storage {
namespace {

TEST(Striping, PartCountIsCeilOfSizeOverCluster) {
  // 100 MB at c=30 -> 4 parts (30+30+30+10).
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{30.0}, 8);
  EXPECT_EQ(plan.part_count(), 4u);
}

TEST(Striping, ExactMultipleHasNoShortPart) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{90.0}, MegaBytes{30.0}, 8);
  EXPECT_EQ(plan.part_count(), 3u);
  for (const MegaBytes size : plan.part_sizes) {
    EXPECT_EQ(size, MegaBytes{30.0});
  }
}

TEST(Striping, LastPartCarriesRemainder) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{30.0}, 8);
  EXPECT_EQ(plan.part_sizes.back(), MegaBytes{10.0});
}

TEST(Striping, MoreDisksThanParts_OnePartPerDisk) {
  // n > p: "one video part is stored in each one of the first p disks".
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{30.0}, 8);
  EXPECT_EQ(plan.part_to_disk, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Striping, FewerDisksThanParts_CyclicWrapFromDiskZero) {
  // n < p: "the rest p-n parts are distributed to the same disks starting
  // from disk 1" (i.e. wrapping back to the first disk).
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{20.0}, 3);
  EXPECT_EQ(plan.part_to_disk, (std::vector<std::size_t>{0, 1, 2, 0, 1}));
}

TEST(Striping, SingleDiskTakesEverything) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{30.0}, 1);
  EXPECT_EQ(plan.part_to_disk, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(Striping, VideoSmallerThanClusterIsOnePart) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{5.0}, MegaBytes{30.0}, 4);
  EXPECT_EQ(plan.part_count(), 1u);
  EXPECT_EQ(plan.part_sizes[0], MegaBytes{5.0});
}

TEST(Striping, TotalSizeConserved) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{123.456}, MegaBytes{7.0}, 5);
  EXPECT_NEAR(plan.total_size().value(), 123.456, 1e-9);
}

TEST(Striping, PerDiskBytesSumToVideoSize) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{30.0}, 4);
  const auto per_disk = plan.per_disk_bytes(4);
  double sum = 0.0;
  for (const MegaBytes b : per_disk) sum += b.value();
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(Striping, PerDiskBytesRejectsShrunkArray) {
  const auto plan =
      plan_striping(VideoId{1}, MegaBytes{100.0}, MegaBytes{30.0}, 4);
  EXPECT_THROW(plan.per_disk_bytes(2), std::invalid_argument);
}

TEST(Striping, RejectsBadArguments) {
  EXPECT_THROW(
      plan_striping(VideoId{}, MegaBytes{1.0}, MegaBytes{1.0}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      plan_striping(VideoId{1}, MegaBytes{0.0}, MegaBytes{1.0}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      plan_striping(VideoId{1}, MegaBytes{1.0}, MegaBytes{0.0}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      plan_striping(VideoId{1}, MegaBytes{1.0}, MegaBytes{1.0}, 0),
      std::invalid_argument);
}

// --- Parameterized sweep over (size, cluster, disks) ---

class StripingProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(StripingProperty, CyclicInvariantsHold) {
  const auto [size, cluster, disks] = GetParam();
  const auto plan = plan_striping(VideoId{1}, MegaBytes{size},
                                  MegaBytes{cluster}, disks);
  const auto p = static_cast<std::size_t>(std::ceil(size / cluster - 1e-12));
  ASSERT_EQ(plan.part_count(), p);

  // Rule: part i on disk i mod n.
  for (std::size_t i = 0; i < p; ++i) {
    EXPECT_EQ(plan.part_to_disk[i], i % static_cast<std::size_t>(disks));
  }
  // Sizes: all full clusters except possibly the last; total conserved.
  double total = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    if (i + 1 < p) {
      EXPECT_DOUBLE_EQ(plan.part_sizes[i].value(), cluster);
    } else {
      EXPECT_GT(plan.part_sizes[i].value(), 0.0);
      EXPECT_LE(plan.part_sizes[i].value(), cluster + 1e-9);
    }
    total += plan.part_sizes[i].value();
  }
  EXPECT_NEAR(total, size, 1e-9);

  // Balance: disk loads differ by at most one cluster.
  const auto per_disk = plan.per_disk_bytes(disks);
  double lo = 1e18, hi = 0.0;
  for (const MegaBytes b : per_disk) {
    lo = std::min(lo, b.value());
    hi = std::max(hi, b.value());
  }
  EXPECT_LE(hi - lo, cluster + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripingProperty,
    ::testing::Combine(::testing::Values(10.0, 100.0, 700.0, 1800.0),
                       ::testing::Values(1.0, 16.0, 50.0, 64.0),
                       ::testing::Values(1, 2, 4, 8, 16)));

}  // namespace
}  // namespace vod::storage
