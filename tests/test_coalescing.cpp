// Request coalescing (batching): nearby requests for the same title at the
// same home server join one stream.
#include <gtest/gtest.h>

#include "grnet/grnet.h"
#include "service/vod_service.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  std::unique_ptr<VodService> service;
  VideoId movie;

  explicit Fixture(double window) {
    ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.dma.admission_threshold = 1'000'000;
    options.coalesce_window_seconds = window;
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{2.0});
    service->place_initial_copy(g.thessaloniki, movie);
    service->start();
  }
};

TEST(Coalescing, SecondRequestInWindowJoinsLeader) {
  Fixture fx{60.0};
  const SessionId first = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{10.0});
  const SessionId second = fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_EQ(second, first);
  EXPECT_EQ(fx.service->coalesced_count(), 1u);
  EXPECT_EQ(fx.service->session_ids().size(), 1u);
}

TEST(Coalescing, JoinerCallbackFiresWithLeader) {
  Fixture fx{60.0};
  bool leader_done = false;
  bool joiner_done = false;
  fx.service->request_at(fx.g.patra, fx.movie,
                         [&](const stream::Session&) { leader_done = true; });
  fx.sim.run_until(SimTime{5.0});
  fx.service->request_at(fx.g.patra, fx.movie,
                         [&](const stream::Session&) { joiner_done = true; });
  fx.sim.run_until(from_hours(1.0));
  EXPECT_TRUE(leader_done);
  EXPECT_TRUE(joiner_done);
}

TEST(Coalescing, OutsideWindowOpensNewStream) {
  Fixture fx{30.0};
  const SessionId first = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{31.0});
  const SessionId second = fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_NE(second, first);
  EXPECT_EQ(fx.service->coalesced_count(), 0u);
}

TEST(Coalescing, DifferentHomesDoNotCoalesce) {
  Fixture fx{60.0};
  const SessionId patra = fx.service->request_at(fx.g.patra, fx.movie);
  const SessionId heraklio =
      fx.service->request_at(fx.g.heraklio, fx.movie);
  EXPECT_NE(patra, heraklio);
  EXPECT_EQ(fx.service->coalesced_count(), 0u);
}

TEST(Coalescing, DifferentTitlesDoNotCoalesce) {
  Fixture fx{60.0};
  const VideoId other =
      fx.service->add_video("other", MegaBytes{40.0}, Mbps{2.0});
  fx.service->place_initial_copy(fx.g.thessaloniki, other);
  const SessionId a = fx.service->request_at(fx.g.patra, fx.movie);
  const SessionId b = fx.service->request_at(fx.g.patra, other);
  EXPECT_NE(a, b);
}

TEST(Coalescing, FinishedLeaderDoesNotAbsorbLateRequests) {
  Fixture fx{3600.0};  // huge window, but the leader finishes first
  const SessionId first = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(0.5));
  ASSERT_TRUE(fx.service->session_metrics(first).finished);
  const SessionId second = fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_NE(second, first);
  EXPECT_EQ(fx.service->coalesced_count(), 0u);
}

TEST(Coalescing, DisabledByDefault) {
  Fixture fx{0.0};
  const SessionId first = fx.service->request_at(fx.g.patra, fx.movie);
  const SessionId second = fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_NE(second, first);
  EXPECT_EQ(fx.service->coalesced_count(), 0u);
}

TEST(Coalescing, JoinersStillCountTowardDmaPopularity) {
  Fixture fx{60.0};
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.service->request_at(fx.g.patra, fx.movie);  // coalesced
  EXPECT_EQ(fx.service->dma_cache(fx.g.patra).request_count(), 2u);
}

TEST(Coalescing, SavesNetworkWork) {
  // Five viewers in one minute: coalescing moves the title once.
  Fixture coalesced{120.0};
  for (int i = 0; i < 5; ++i) {
    coalesced.service->request_at(coalesced.g.patra, coalesced.movie);
    coalesced.sim.run_until(coalesced.sim.now() + 10.0);
  }
  coalesced.sim.run_until(from_hours(1.0));
  EXPECT_EQ(coalesced.service->session_ids().size(), 1u);
  EXPECT_EQ(coalesced.service->coalesced_count(), 4u);

  Fixture independent{0.0};
  for (int i = 0; i < 5; ++i) {
    independent.service->request_at(independent.g.patra,
                                    independent.movie);
    independent.sim.run_until(independent.sim.now() + 10.0);
  }
  independent.sim.run_until(from_hours(1.0));
  EXPECT_EQ(independent.service->session_ids().size(), 5u);
}

}  // namespace
}  // namespace vod::service
