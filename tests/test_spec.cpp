#include "service/spec.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/traffic.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

const char* kGoodSpec = R"(
# A three-campus deployment
node alpha
node beta
node gamma
link alpha beta 10
link beta gamma 2      # slow leg
server_defaults disks=4 disk_mb=4096
cluster_mb 25
snmp_interval 60
subnet 10.1.0.0/16 alpha
subnet 10.3.0.0/16 gamma
video "big buck bunny" size_mb=700 bitrate=2
video "sintel" size_mb=500 bitrate=1.5
place "big buck bunny" beta
place "sintel" gamma
)";

TEST(SpecParser, ParsesTopology) {
  const ServiceSpec spec = parse_service_spec(kGoodSpec);
  EXPECT_EQ(spec.topology.node_count(), 3u);
  EXPECT_EQ(spec.topology.link_count(), 2u);
  ASSERT_TRUE(spec.topology.find_node("beta").has_value());
  const auto link = spec.topology.find_link(*spec.topology.find_node("alpha"),
                                            *spec.topology.find_node("beta"));
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(spec.topology.link(*link).capacity, Mbps{10.0});
}

TEST(SpecParser, ParsesOptions) {
  const ServiceSpec spec = parse_service_spec(kGoodSpec);
  EXPECT_EQ(spec.options.server.disk_count, 4u);
  EXPECT_EQ(spec.options.server.disk_profile.capacity, MegaBytes{4096.0});
  EXPECT_EQ(spec.options.cluster_size, MegaBytes{25.0});
  EXPECT_DOUBLE_EQ(spec.options.snmp_interval_seconds, 60.0);
}

TEST(SpecParser, PerNodeServerOverrides) {
  const ServiceSpec spec = parse_service_spec(
      "node big\n"
      "node small\n"
      "server_defaults disks=8 disk_mb=9000\n"
      "server small disks=2 disk_mb=1000\n");
  EXPECT_EQ(spec.options.server.disk_count, 8u);
  const auto small = spec.topology.find_node("small");
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(spec.options.server_overrides.contains(*small));
  EXPECT_EQ(spec.options.server_overrides.at(*small).disk_count, 2u);
  EXPECT_EQ(
      spec.options.server_overrides.at(*small).disk_profile.capacity,
      MegaBytes{1000.0});
  EXPECT_THROW(parse_service_spec("server ghost disks=1 disk_mb=10\n"),
               std::invalid_argument);
}

TEST(SpecEndToEnd, OverriddenServerHasSmallerArray) {
  const ServiceSpec spec = parse_service_spec(
      "node big\n"
      "node small\n"
      "link big small 10\n"
      "server_defaults disks=8 disk_mb=9000\n"
      "server small disks=2 disk_mb=1000\n");
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{spec.topology, traffic};
  VodService service{sim, spec.topology, network, spec.options, kAdmin};
  const auto big = *spec.topology.find_node("big");
  const auto small = *spec.topology.find_node("small");
  EXPECT_EQ(service.dma_cache(big).disks().disk_count(), 8u);
  EXPECT_EQ(service.dma_cache(small).disks().disk_count(), 2u);
  EXPECT_EQ(service.admin_view().server(small).config.disk_count, 2);
}

TEST(SpecParser, ParsesParityToggle) {
  EXPECT_EQ(parse_service_spec("parity on\n").options.server.striping,
            storage::StripingMode::kParity);
  EXPECT_EQ(parse_service_spec("parity off\n").options.server.striping,
            storage::StripingMode::kPlain);
  EXPECT_THROW(parse_service_spec("parity maybe\n"),
               std::invalid_argument);
}

TEST(SpecParser, ParsesDmaThreshold) {
  const ServiceSpec spec = parse_service_spec("dma_threshold 3\n");
  EXPECT_EQ(spec.options.dma.admission_threshold, 3u);
  EXPECT_THROW(parse_service_spec("dma_threshold -1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_spec("dma_threshold 1.5\n"),
               std::invalid_argument);
}

TEST(SpecParser, ParsesCatalogAndPlacements) {
  const ServiceSpec spec = parse_service_spec(kGoodSpec);
  ASSERT_EQ(spec.videos.size(), 2u);
  EXPECT_EQ(spec.videos[0].title, "big buck bunny");
  EXPECT_EQ(spec.videos[0].size, MegaBytes{700.0});
  EXPECT_EQ(spec.videos[1].bitrate, Mbps{1.5});
  ASSERT_EQ(spec.subnets.size(), 2u);
  EXPECT_EQ(spec.subnets[0].first, "10.1.0.0/16");
  ASSERT_EQ(spec.placements.size(), 2u);
  EXPECT_EQ(spec.placements[1], (std::pair<std::string, std::string>{
                                    "sintel", "gamma"}));
}

TEST(SpecParser, CommentsAndBlankLinesIgnored) {
  const ServiceSpec spec = parse_service_spec(
      "# only comments\n\n   \nnode solo  # trailing comment\n");
  EXPECT_EQ(spec.topology.node_count(), 1u);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  try {
    parse_service_spec("node a\nbogus keyword\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecParser, RejectsUnknownNodeInLink) {
  EXPECT_THROW(parse_service_spec("node a\nlink a ghost 2\n"),
               std::invalid_argument);
}

TEST(SpecParser, RejectsDuplicateNode) {
  EXPECT_THROW(parse_service_spec("node a\nnode a\n"),
               std::invalid_argument);
}

TEST(SpecParser, RejectsBadNumbers) {
  EXPECT_THROW(parse_service_spec("node a\nnode b\nlink a b fast\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_spec("node a\nnode b\nlink a b -2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_spec("cluster_mb 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_service_spec("snmp_interval -5\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_service_spec("server_defaults disks=2.5 disk_mb=100\n"),
      std::invalid_argument);
}

TEST(SpecParser, RejectsMalformedKeyValue) {
  EXPECT_THROW(
      parse_service_spec("video \"x\" size=700 bitrate=2\n"),
      std::invalid_argument);  // must be size_mb=
}

TEST(SpecParser, RejectsUnknownTitleInPlace) {
  EXPECT_THROW(parse_service_spec("node a\nplace \"ghost\" a\n"),
               std::invalid_argument);
}

TEST(SpecParser, RejectsDuplicateTitle) {
  EXPECT_THROW(parse_service_spec(
                   "video \"x\" size_mb=1 bitrate=1\n"
                   "video \"x\" size_mb=2 bitrate=1\n"),
               std::invalid_argument);
}

TEST(SpecParser, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_service_spec("video \"oops size_mb=1 bitrate=1\n"),
               std::invalid_argument);
}

TEST(SpecParser, QuotedTitlesMayContainSpacesAndHashes) {
  const ServiceSpec spec = parse_service_spec(
      "video \"the #1 movie\" size_mb=100 bitrate=2\n");
  ASSERT_EQ(spec.videos.size(), 1u);
  EXPECT_EQ(spec.videos[0].title, "the #1 movie");
}

TEST(SpecEndToEnd, InitializedServiceServesRequests) {
  const ServiceSpec spec = parse_service_spec(kGoodSpec);
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{spec.topology, traffic};
  VodService service{sim, spec.topology, network, spec.options, kAdmin};
  const auto videos = initialize_from_spec(spec, service);
  service.start();

  ASSERT_EQ(videos.size(), 2u);
  EXPECT_EQ(service.list_titles().size(), 2u);
  // Subnet mapping works end to end.
  const SessionId id = service.request_by_ip(
      "10.1.9.9", videos.at("big buck bunny"));
  sim.run_until(from_hours(1.0));
  EXPECT_TRUE(service.session_metrics(id).finished);
  // Placement landed where the spec said.
  const auto holders = service.database().full_view().servers_with_title(
      videos.at("sintel"));
  ASSERT_GE(holders.size(), 1u);
  EXPECT_EQ(holders.front(), *spec.topology.find_node("gamma"));
}

TEST(SpecEndToEnd, PlacementRespectsDiskCapacity) {
  // A title bigger than the striped capacity of the spec's arrays fails
  // placement loudly.
  const ServiceSpec spec = parse_service_spec(
      "node a\n"
      "server_defaults disks=2 disk_mb=100\n"
      "video \"huge\" size_mb=100000 bitrate=2\n"
      "place \"huge\" a\n");
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{spec.topology, traffic};
  VodService service{sim, spec.topology, network, spec.options, kAdmin};
  EXPECT_THROW(initialize_from_spec(spec, service), std::invalid_argument);
}

}  // namespace
}  // namespace vod::service
