#include "service/ip_directory.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::service {
namespace {

TEST(Ipv4, ParsesDottedQuad) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0").value, 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255").value, 0xffffffffu);
  EXPECT_EQ(Ipv4::parse("150.140.1.2").value,
            (150u << 24) | (140u << 16) | (1u << 8) | 2u);
}

TEST(Ipv4, RoundTripsToString) {
  EXPECT_EQ(Ipv4::parse("150.140.1.2").to_string(), "150.140.1.2");
  EXPECT_EQ(Ipv4::parse("0.0.0.0").to_string(), "0.0.0.0");
}

TEST(Ipv4, RejectsMalformedInput) {
  EXPECT_THROW(Ipv4::parse(""), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3.256"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1..2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4::parse("1.2.3.4 "), std::invalid_argument);
}

TEST(IpDirectory, ExactSubnetMatch) {
  IpDirectory directory;
  directory.add_subnet("150.140.0.0/16", NodeId{2});
  EXPECT_EQ(directory.home_of("150.140.7.9"), NodeId{2});
  EXPECT_FALSE(directory.home_of("150.141.0.1").has_value());
}

TEST(IpDirectory, LongestPrefixWins) {
  IpDirectory directory;
  directory.add_subnet("150.0.0.0/8", NodeId{1});
  directory.add_subnet("150.140.0.0/16", NodeId{2});
  directory.add_subnet("150.140.9.0/24", NodeId{3});
  EXPECT_EQ(directory.home_of("150.1.1.1"), NodeId{1});
  EXPECT_EQ(directory.home_of("150.140.1.1"), NodeId{2});
  EXPECT_EQ(directory.home_of("150.140.9.1"), NodeId{3});
}

TEST(IpDirectory, InsertionOrderIrrelevant) {
  IpDirectory directory;
  directory.add_subnet("150.140.9.0/24", NodeId{3});
  directory.add_subnet("150.0.0.0/8", NodeId{1});
  EXPECT_EQ(directory.home_of("150.140.9.1"), NodeId{3});
}

TEST(IpDirectory, DefaultRouteViaZeroPrefix) {
  IpDirectory directory;
  directory.add_subnet("0.0.0.0/0", NodeId{7});
  EXPECT_EQ(directory.home_of("8.8.8.8"), NodeId{7});
}

TEST(IpDirectory, HostRoute) {
  IpDirectory directory;
  directory.add_subnet("10.0.0.5/32", NodeId{4});
  EXPECT_EQ(directory.home_of("10.0.0.5"), NodeId{4});
  EXPECT_FALSE(directory.home_of("10.0.0.6").has_value());
}

TEST(IpDirectory, RejectsBadCidr) {
  IpDirectory directory;
  EXPECT_THROW(directory.add_subnet("10.0.0.0", NodeId{0}),
               std::invalid_argument);
  EXPECT_THROW(directory.add_subnet("10.0.0.0/33", NodeId{0}),
               std::invalid_argument);
  EXPECT_THROW(directory.add_subnet("10.0.0.0/x", NodeId{0}),
               std::invalid_argument);
  EXPECT_THROW(directory.add_subnet("10.0.0.0/8", NodeId{}),
               std::invalid_argument);
}

TEST(IpDirectory, SubnetCount) {
  IpDirectory directory;
  EXPECT_EQ(directory.subnet_count(), 0u);
  directory.add_subnet("10.0.0.0/8", NodeId{0});
  directory.add_subnet("11.0.0.0/8", NodeId{1});
  EXPECT_EQ(directory.subnet_count(), 2u);
}

TEST(IpDirectory, MaskedBaseAddressNormalized) {
  IpDirectory directory;
  // Host bits set in the base are ignored (standard CIDR semantics).
  directory.add_subnet("150.140.77.1/16", NodeId{5});
  EXPECT_EQ(directory.home_of("150.140.0.9"), NodeId{5});
}

}  // namespace
}  // namespace vod::service
