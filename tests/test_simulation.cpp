#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vod::sim {
namespace {

TEST(Simulation, RunExecutesEverything) {
  Simulation sim;
  int count = 0;
  sim.schedule_in(Duration{1.0}, [&](SimTime) { ++count; });
  sim.schedule_in(Duration{2.0}, [&](SimTime) { ++count; });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(count, 2);
}

TEST(Simulation, RunRespectsMaxEvents) {
  Simulation sim;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(Duration{static_cast<double>(i + 1)}, [](SimTime) {});
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.queue().pending_count(), 7u);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  std::vector<double> fired;
  sim.schedule_at(SimTime{1.0}, [&](SimTime t) { fired.push_back(t.seconds()); });
  sim.schedule_at(SimTime{5.0}, [&](SimTime t) { fired.push_back(t.seconds()); });
  sim.run_until(SimTime{3.0});
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_EQ(sim.now(), SimTime{3.0});
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(Simulation, RunUntilIncludesEventsAtHorizon) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(SimTime{3.0}, [&](SimTime) { fired = true; });
  sim.run_until(SimTime{3.0});
  EXPECT_TRUE(fired);
}

TEST(Simulation, RunUntilAdvancesClockOnEmptyQueue) {
  Simulation sim;
  sim.run_until(SimTime{42.0});
  EXPECT_EQ(sim.now(), SimTime{42.0});
}

TEST(Simulation, ScheduleInIsRelativeToNow) {
  Simulation sim;
  sim.run_until(SimTime{10.0});
  SimTime fired_at{0.0};
  sim.schedule_in(Duration{5.0}, [&](SimTime t) { fired_at = t; });
  sim.run();
  EXPECT_EQ(fired_at, SimTime{15.0});
}

TEST(PeriodicTask, FiresAtEachPeriod) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicTask task{sim, Duration{10.0},
                    [&](SimTime t) { fired.push_back(t.seconds()); }};
  task.start();
  sim.run_until(SimTime{35.0});
  task.stop();
  EXPECT_EQ(fired, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulation sim;
  int count = 0;
  PeriodicTask task{sim, Duration{1.0}, [&](SimTime) { ++count; }};
  task.start();
  sim.run_until(SimTime{2.5});
  task.stop();
  sim.run_until(SimTime{10.0});
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, RestartResumesFromCurrentTime) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicTask task{sim, Duration{5.0},
                    [&](SimTime t) { fired.push_back(t.seconds()); }};
  task.start();
  sim.run_until(SimTime{6.0});
  task.stop();
  sim.run_until(SimTime{20.0});
  task.start();
  sim.run_until(SimTime{26.0});
  task.stop();
  EXPECT_EQ(fired, (std::vector<double>{5.0, 25.0}));
}

TEST(PeriodicTask, BodyMayStopTheTask) {
  Simulation sim;
  int count = 0;
  PeriodicTask task{sim, Duration{1.0}, [&](SimTime) {
                      if (++count == 2) task.stop();
                    }};
  task.start();
  sim.run_until(SimTime{10.0});
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, DoubleStartIsIdempotent) {
  Simulation sim;
  int count = 0;
  PeriodicTask task{sim, Duration{1.0}, [&](SimTime) { ++count; }};
  task.start();
  task.start();
  sim.run_until(SimTime{1.0});
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTask, RejectsBadArguments) {
  Simulation sim;
  EXPECT_THROW(PeriodicTask(sim, Duration{0.0}, [](SimTime) {}),
               std::invalid_argument);
  EXPECT_THROW(PeriodicTask(sim, Duration{-1.0}, [](SimTime) {}),
               std::invalid_argument);
  EXPECT_THROW(PeriodicTask(sim, Duration{1.0}, std::function<void(SimTime)>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vod::sim
