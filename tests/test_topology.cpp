#include "net/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::net {
namespace {

Topology two_nodes_one_link() {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_link(a, b, Mbps{2.0});
  return topo;
}

TEST(Topology, AddNodeAssignsDenseIds) {
  Topology topo;
  EXPECT_EQ(topo.add_node("x").value(), 0u);
  EXPECT_EQ(topo.add_node("y").value(), 1u);
  EXPECT_EQ(topo.node_count(), 2u);
}

TEST(Topology, RejectsEmptyNodeName) {
  Topology topo;
  EXPECT_THROW(topo.add_node(""), std::invalid_argument);
}

TEST(Topology, LinkDefaultsToEndpointNames) {
  const Topology topo = two_nodes_one_link();
  EXPECT_EQ(topo.link(LinkId{0}).name, "a-b");
}

TEST(Topology, ExplicitLinkNamePreserved) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const LinkId link = topo.add_link(a, b, Mbps{2.0}, "Patra-Athens");
  EXPECT_EQ(topo.link(link).name, "Patra-Athens");
}

TEST(Topology, LinkStoresCapacityAndEndpoints) {
  const Topology topo = two_nodes_one_link();
  const LinkInfo& info = topo.link(LinkId{0});
  EXPECT_EQ(info.capacity, Mbps{2.0});
  EXPECT_EQ(info.a, NodeId{0});
  EXPECT_EQ(info.b, NodeId{1});
}

TEST(Topology, OtherEndResolves) {
  const Topology topo = two_nodes_one_link();
  const LinkInfo& info = topo.link(LinkId{0});
  EXPECT_EQ(info.other_end(NodeId{0}), NodeId{1});
  EXPECT_EQ(info.other_end(NodeId{1}), NodeId{0});
  EXPECT_THROW(info.other_end(NodeId{5}), std::invalid_argument);
}

TEST(Topology, RejectsSelfLoop) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  EXPECT_THROW(topo.add_link(a, a, Mbps{1.0}), std::invalid_argument);
}

TEST(Topology, RejectsNonPositiveCapacity) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  EXPECT_THROW(topo.add_link(a, b, Mbps{0.0}), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, b, Mbps{-2.0}), std::invalid_argument);
}

TEST(Topology, RejectsUnknownEndpoints) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  EXPECT_THROW(topo.add_link(a, NodeId{7}, Mbps{1.0}),
               std::invalid_argument);
}

TEST(Topology, AdjacencyListsBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId ab = topo.add_link(a, b, Mbps{1.0});
  const LinkId bc = topo.add_link(b, c, Mbps{1.0});
  EXPECT_EQ(topo.links_adjacent_to(a), std::vector<LinkId>{ab});
  EXPECT_EQ(topo.links_adjacent_to(b), (std::vector<LinkId>{ab, bc}));
  EXPECT_EQ(topo.links_adjacent_to(c), std::vector<LinkId>{bc});
}

TEST(Topology, FindLinkEitherOrientation) {
  const Topology topo = two_nodes_one_link();
  EXPECT_EQ(topo.find_link(NodeId{0}, NodeId{1}), LinkId{0});
  EXPECT_EQ(topo.find_link(NodeId{1}, NodeId{0}), LinkId{0});
}

TEST(Topology, FindLinkMissingIsNullopt) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  EXPECT_FALSE(topo.find_link(a, b).has_value());
}

TEST(Topology, FindNodeByName) {
  const Topology topo = two_nodes_one_link();
  EXPECT_EQ(topo.find_node("b"), NodeId{1});
  EXPECT_FALSE(topo.find_node("zebra").has_value());
}

TEST(Topology, UnknownLinkThrows) {
  const Topology topo = two_nodes_one_link();
  EXPECT_THROW(topo.link(LinkId{9}), std::out_of_range);
  EXPECT_THROW(topo.link(LinkId{}), std::out_of_range);
}

TEST(Topology, ParallelLinksAllowed) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_link(a, b, Mbps{1.0});
  topo.add_link(a, b, Mbps{2.0});
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.links_adjacent_to(a).size(), 2u);
}

}  // namespace
}  // namespace vod::net
