#include "dma/dma_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace vod::dma {
namespace {

storage::DiskProfile profile(double capacity_mb) {
  return storage::DiskProfile{.capacity = MegaBytes{capacity_mb},
                              .transfer_rate = Mbps{80.0},
                              .seek_seconds = 0.01};
}

/// 2 disks x 60 MB, cluster 10 MB.  A 50 MB video stripes as 30 MB on
/// disk 0 and 20 MB on disk 1, so exactly two such videos fit.
storage::DiskArray small_array() {
  return storage::DiskArray{2, profile(60.0), MegaBytes{10.0}};
}

TEST(DmaCache, Figure2_StoresOnFirstRequestWhenSpaceFree) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kStored);
  EXPECT_TRUE(cache.cached(VideoId{1}));
  // The figure gives no point on a fresh store.
  EXPECT_EQ(cache.points(VideoId{1}), 0u);
}

TEST(DmaCache, Figure2_HitGrantsPoint) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kHit);
  EXPECT_EQ(cache.points(VideoId{1}), 1u);
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kHit);
  EXPECT_EQ(cache.points(VideoId{1}), 2u);
}

TEST(DmaCache, Figure2_FullCacheGrantsPointWithoutStoring) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  cache.on_request(VideoId{1}, MegaBytes{50.0});  // hit -> 1 point
  cache.on_request(VideoId{2}, MegaBytes{50.0});
  cache.on_request(VideoId{2}, MegaBytes{50.0});  // hit -> 1 point
  // Disks full; newcomer reaches 1 point, not strictly more than the least
  // popular cached title's 1 point -> no eviction, no store.
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{50.0}),
            DmaOutcome::kPointedOnly);
  EXPECT_EQ(cache.points(VideoId{3}), 1u);
  EXPECT_FALSE(cache.cached(VideoId{3}));
  EXPECT_TRUE(cache.cached(VideoId{1}));
  EXPECT_TRUE(cache.cached(VideoId{2}));
}

TEST(DmaCache, Figure2_FreshStoresHaveZeroPointsSoNewcomersEvictThem) {
  // A subtle consequence of the figure: a stored title earns points only
  // on *subsequent* hits, so right after the cache fills, a first-time
  // request (1 point) immediately displaces a never-rerequested title.
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  cache.on_request(VideoId{2}, MegaBytes{50.0});
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{50.0}),
            DmaOutcome::kStored);
  EXPECT_FALSE(cache.cached(VideoId{1}));
  EXPECT_TRUE(cache.cached(VideoId{3}));
}

TEST(DmaCache, Figure2_EvictsLeastPopularWhenNewcomerOvertakes) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});  // stored, 0 points
  cache.on_request(VideoId{2}, MegaBytes{50.0});  // stored, 0 points
  cache.on_request(VideoId{2}, MegaBytes{50.0});  // hit -> video2: 1 point
  // video3 first request: 1 point — not > video1's 0?  It is: 1 > 0.
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{50.0}),
            DmaOutcome::kStored);
  EXPECT_FALSE(cache.cached(VideoId{1}));  // least popular was evicted
  EXPECT_TRUE(cache.cached(VideoId{2}));
  EXPECT_TRUE(cache.cached(VideoId{3}));
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(DmaCache, Figure2_NoEvictionWhenNewcomerNotStrictlyMorePopular) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  cache.on_request(VideoId{1}, MegaBytes{50.0});  // 1 point
  cache.on_request(VideoId{2}, MegaBytes{50.0});
  cache.on_request(VideoId{2}, MegaBytes{50.0});  // 1 point
  // Newcomer reaches 1 point = least popular's 1 -> stays out.
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{50.0}),
            DmaOutcome::kPointedOnly);
  EXPECT_EQ(cache.eviction_count(), 0u);
}

TEST(DmaCache, Figure2_SingleEvictionMayNotFreeEnough) {
  // 2 disks x 60, cluster 10.  Two 30 MB videos cached (disk0: 20+20,
  // disk1: 10+10) with one point each.  A 100 MB newcomer needs 50/50 —
  // one eviction is not enough, and Figure 2 stops after one victim.
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{30.0});
  cache.on_request(VideoId{1}, MegaBytes{30.0});  // 1 point
  cache.on_request(VideoId{2}, MegaBytes{30.0});
  cache.on_request(VideoId{2}, MegaBytes{30.0});  // 1 point
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{100.0}),
            DmaOutcome::kPointedOnly);  // 1 point, not > 1 -> no eviction
  EXPECT_EQ(cache.eviction_count(), 0u);
  // Second request: video3 has 2 points > video1's 1 -> evict video1, but
  // 100 MB still does not fit; single-evict stops there.
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{100.0}),
            DmaOutcome::kPointedOnly);
  EXPECT_FALSE(cache.cached(VideoId{1}));
  EXPECT_TRUE(cache.cached(VideoId{2}));
  EXPECT_FALSE(cache.cached(VideoId{3}));
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(DmaCache, MultiEvictExtensionKeepsEvicting) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks, DmaOptions{.admission_threshold = 0,
                                   .multi_evict = true}};
  cache.on_request(VideoId{1}, MegaBytes{30.0});
  cache.on_request(VideoId{1}, MegaBytes{30.0});  // 1 point
  cache.on_request(VideoId{2}, MegaBytes{30.0});
  cache.on_request(VideoId{2}, MegaBytes{30.0});  // 1 point
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{100.0}),
            DmaOutcome::kPointedOnly);  // 1 point, not > 1
  // Second request: 2 points > 1 -> evicts video1, still no room, keeps
  // going (multi_evict) -> evicts video2, stores.
  EXPECT_EQ(cache.on_request(VideoId{3}, MegaBytes{100.0}),
            DmaOutcome::kStored);
  EXPECT_TRUE(cache.cached(VideoId{3}));
  EXPECT_EQ(cache.eviction_count(), 2u);
}

TEST(DmaCache, ThresholdVariantDelaysAdmission) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks, DmaOptions{.admission_threshold = 2}};
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kPointedOnly);
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kPointedOnly);
  // Third request: points (3) exceed threshold (2) -> stored.
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kStored);
  EXPECT_TRUE(cache.cached(VideoId{1}));
}

TEST(DmaCache, ThresholdVariantCountsHitsToo) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks, DmaOptions{.admission_threshold = 1}};
  cache.on_request(VideoId{1}, MegaBytes{50.0});  // point 1
  cache.on_request(VideoId{1}, MegaBytes{50.0});  // point 2 > 1 -> stored
  EXPECT_TRUE(cache.cached(VideoId{1}));
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{50.0}),
            DmaOutcome::kHit);
  EXPECT_EQ(cache.points(VideoId{1}), 3u);
}

TEST(DmaCache, LeastPopularCachedTieBreaksByLowestId) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{5}, MegaBytes{40.0});
  cache.on_request(VideoId{2}, MegaBytes{40.0});
  ASSERT_TRUE(cache.least_popular_cached().has_value());
  EXPECT_EQ(*cache.least_popular_cached(), VideoId{2});
}

TEST(DmaCache, LeastPopularEmptyWhenNothingCached) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  EXPECT_FALSE(cache.least_popular_cached().has_value());
}

TEST(DmaCache, CallbacksFireOnAdmitAndEvict) {
  storage::DiskArray disks = small_array();
  std::vector<VideoId> admitted, evicted;
  DmaCallbacks callbacks;
  callbacks.on_admit = [&](VideoId v) { admitted.push_back(v); };
  callbacks.on_evict = [&](VideoId v) { evicted.push_back(v); };
  DmaCache cache{disks, {}, callbacks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  cache.on_request(VideoId{2}, MegaBytes{50.0});
  cache.on_request(VideoId{3}, MegaBytes{50.0});  // pointed only
  cache.on_request(VideoId{3}, MegaBytes{50.0});  // evicts 1, stores 3
  EXPECT_EQ(admitted,
            (std::vector<VideoId>{VideoId{1}, VideoId{2}, VideoId{3}}));
  EXPECT_EQ(evicted, std::vector<VideoId>{VideoId{1}});
}

TEST(DmaCache, CountersTrackActivity) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  cache.on_request(VideoId{2}, MegaBytes{50.0});
  EXPECT_EQ(cache.request_count(), 3u);
  EXPECT_EQ(cache.hit_count(), 1u);
  EXPECT_EQ(cache.store_count(), 2u);
}

TEST(DmaCache, RejectsBadRequests) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks};
  EXPECT_THROW(cache.on_request(VideoId{}, MegaBytes{1.0}),
               std::invalid_argument);
  EXPECT_THROW(cache.on_request(VideoId{1}, MegaBytes{0.0}),
               std::invalid_argument);
}

TEST(DmaCache, OversizedVideoNeverCachedButCacheSurvives) {
  storage::DiskArray disks = small_array();
  DmaCache cache{disks, DmaOptions{.multi_evict = true}};
  cache.on_request(VideoId{1}, MegaBytes{50.0});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.on_request(VideoId{9}, MegaBytes{500.0}),
              DmaOutcome::kPointedOnly);
  }
  EXPECT_FALSE(cache.cached(VideoId{9}));
}

// --- Property: under random Zipf-ish traffic, invariants hold ---

class DmaRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(DmaRandomProperty, CapacityNeverExceededAndPointsMonotonic) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  storage::DiskArray disks{4, profile(100.0), MegaBytes{10.0}};
  DmaCache cache{disks,
                 DmaOptions{.admission_threshold =
                                static_cast<std::uint64_t>(GetParam() % 3),
                            .multi_evict = (GetParam() % 2) == 0}};
  std::vector<MegaBytes> sizes;
  for (int v = 0; v < 20; ++v) {
    sizes.push_back(MegaBytes{rng.uniform(10.0, 120.0)});
  }
  std::uint64_t last_points_v0 = 0;
  for (int i = 0; i < 500; ++i) {
    // Skewed choice: low ids much more often.
    const auto v = static_cast<std::size_t>(
        std::min<double>(19.0, rng.exponential(0.4)));
    cache.on_request(VideoId{static_cast<VideoId::underlying_type>(v)},
                     sizes[v]);
    EXPECT_LE(disks.total_used().value(), disks.total_capacity().value());
    const std::uint64_t p = cache.points(VideoId{0});
    EXPECT_GE(p, last_points_v0);  // points never decrease
    last_points_v0 = p;
  }
  // The most frequently requested title (id 0) must end up cached.
  EXPECT_TRUE(cache.cached(VideoId{0}))
      << "seed " << GetParam() << ": most popular title not cached";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaRandomProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace vod::dma
