#include "net/traffic.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace vod::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(NoTraffic, AlwaysZero) {
  NoTraffic model;
  EXPECT_EQ(model.background_load(LinkId{0}, SimTime{100.0}), Mbps{0.0});
  EXPECT_EQ(model.next_change_after(SimTime{0.0}).seconds(), kInf);
}

TEST(ConstantTraffic, ReturnsConfiguredLoad) {
  ConstantTraffic model;
  model.set_load(LinkId{0}, Mbps{1.5});
  EXPECT_EQ(model.background_load(LinkId{0}, SimTime{0.0}), Mbps{1.5});
  EXPECT_EQ(model.background_load(LinkId{0}, SimTime{1e6}), Mbps{1.5});
}

TEST(ConstantTraffic, UnconfiguredLinkIsZero) {
  ConstantTraffic model;
  EXPECT_EQ(model.background_load(LinkId{3}, SimTime{0.0}), Mbps{0.0});
}

TEST(ConstantTraffic, RejectsBadInput) {
  ConstantTraffic model;
  EXPECT_THROW(model.set_load(LinkId{}, Mbps{1.0}), std::invalid_argument);
  EXPECT_THROW(model.set_load(LinkId{0}, Mbps{-1.0}), std::invalid_argument);
}

TEST(TraceTraffic, StepInterpolationHoldsValue) {
  TraceTraffic trace;
  trace.add_sample(LinkId{0}, SimTime{10.0}, Mbps{1.0});
  trace.add_sample(LinkId{0}, SimTime{20.0}, Mbps{2.0});
  EXPECT_EQ(trace.background_load(LinkId{0}, SimTime{10.0}), Mbps{1.0});
  EXPECT_EQ(trace.background_load(LinkId{0}, SimTime{15.0}), Mbps{1.0});
  EXPECT_EQ(trace.background_load(LinkId{0}, SimTime{20.0}), Mbps{2.0});
  EXPECT_EQ(trace.background_load(LinkId{0}, SimTime{1e6}), Mbps{2.0});
}

TEST(TraceTraffic, BeforeFirstSampleUsesFirstValue) {
  TraceTraffic trace;
  trace.add_sample(LinkId{0}, SimTime{10.0}, Mbps{1.0});
  EXPECT_EQ(trace.background_load(LinkId{0}, SimTime{0.0}), Mbps{1.0});
}

TEST(TraceTraffic, UnknownLinkIsZero) {
  TraceTraffic trace;
  EXPECT_EQ(trace.background_load(LinkId{7}, SimTime{0.0}), Mbps{0.0});
}

TEST(TraceTraffic, SamplesMustIncreaseInTime) {
  TraceTraffic trace;
  trace.add_sample(LinkId{0}, SimTime{10.0}, Mbps{1.0});
  EXPECT_THROW(trace.add_sample(LinkId{0}, SimTime{10.0}, Mbps{2.0}),
               std::invalid_argument);
  EXPECT_THROW(trace.add_sample(LinkId{0}, SimTime{5.0}, Mbps{2.0}),
               std::invalid_argument);
}

TEST(TraceTraffic, RejectsNegativeLoad) {
  TraceTraffic trace;
  EXPECT_THROW(trace.add_sample(LinkId{0}, SimTime{0.0}, Mbps{-1.0}),
               std::invalid_argument);
}

TEST(TraceTraffic, NextChangeFindsEarliestUpcomingSample) {
  TraceTraffic trace;
  trace.add_sample(LinkId{0}, SimTime{10.0}, Mbps{1.0});
  trace.add_sample(LinkId{1}, SimTime{5.0}, Mbps{1.0});
  EXPECT_DOUBLE_EQ(trace.next_change_after(SimTime{0.0}).seconds(), 5.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(SimTime{5.0}).seconds(), 10.0);
  EXPECT_EQ(trace.next_change_after(SimTime{10.0}).seconds(), kInf);
}

TEST(PeriodicTraffic, WrapsInnerModel) {
  TraceTraffic day;
  day.add_sample(LinkId{0}, SimTime{0.0}, Mbps{1.0});
  day.add_sample(LinkId{0}, SimTime{50.0}, Mbps{2.0});
  const PeriodicTraffic repeating{day, Duration{100.0}};
  EXPECT_EQ(repeating.background_load(LinkId{0}, SimTime{10.0}), Mbps{1.0});
  EXPECT_EQ(repeating.background_load(LinkId{0}, SimTime{60.0}), Mbps{2.0});
  // Second cycle mirrors the first.
  EXPECT_EQ(repeating.background_load(LinkId{0}, SimTime{110.0}),
            Mbps{1.0});
  EXPECT_EQ(repeating.background_load(LinkId{0}, SimTime{160.0}),
            Mbps{2.0});
  EXPECT_EQ(repeating.background_load(LinkId{0}, SimTime{1000.0}),
            Mbps{1.0});
}

TEST(PeriodicTraffic, NextChangeWithinCycle) {
  TraceTraffic day;
  day.add_sample(LinkId{0}, SimTime{0.0}, Mbps{1.0});
  day.add_sample(LinkId{0}, SimTime{50.0}, Mbps{2.0});
  const PeriodicTraffic repeating{day, Duration{100.0}};
  EXPECT_DOUBLE_EQ(repeating.next_change_after(SimTime{10.0}).seconds(),
                   50.0);
  EXPECT_DOUBLE_EQ(repeating.next_change_after(SimTime{110.0}).seconds(),
                   150.0);
}

TEST(PeriodicTraffic, NextChangeCrossesTheWrap) {
  TraceTraffic day;
  day.add_sample(LinkId{0}, SimTime{0.0}, Mbps{1.0});
  day.add_sample(LinkId{0}, SimTime{50.0}, Mbps{2.0});
  const PeriodicTraffic repeating{day, Duration{100.0}};
  // After the last in-cycle change, the next event is the wrap (t=100,
  // where the value snaps back to the cycle-start sample).
  EXPECT_DOUBLE_EQ(repeating.next_change_after(SimTime{60.0}).seconds(),
                   100.0);
  EXPECT_DOUBLE_EQ(repeating.next_change_after(SimTime{160.0}).seconds(),
                   200.0);
}

TEST(PeriodicTraffic, RejectsNonPositivePeriod) {
  NoTraffic none;
  EXPECT_THROW(PeriodicTraffic(none, Duration{0.0}), std::invalid_argument);
}

TEST(DiurnalTraffic, PeaksAtPeakHour) {
  DiurnalTraffic model{14.0};
  model.set_shape(LinkId{0},
                  {.capacity = Mbps{10.0},
                   .base_fraction = 0.1,
                   .peak_fraction = 0.9});
  const Mbps at_peak = model.background_load(LinkId{0}, from_hours(14.0));
  const Mbps at_trough = model.background_load(LinkId{0}, from_hours(2.0));
  EXPECT_NEAR(at_peak.value(), 9.0, 1e-9);
  EXPECT_NEAR(at_trough.value(), 1.0, 1e-9);
}

TEST(DiurnalTraffic, LoadStaysWithinConfiguredBand) {
  DiurnalTraffic model{14.0};
  model.set_shape(LinkId{0},
                  {.capacity = Mbps{10.0},
                   .base_fraction = 0.2,
                   .peak_fraction = 0.8});
  for (double h = 0.0; h < 48.0; h += 0.5) {
    const double load =
        model.background_load(LinkId{0}, from_hours(h)).value();
    EXPECT_GE(load, 2.0 - 1e-9);
    EXPECT_LE(load, 8.0 + 1e-9);
  }
}

TEST(DiurnalTraffic, PeriodicOverDays) {
  DiurnalTraffic model{14.0};
  model.set_shape(LinkId{0},
                  {.capacity = Mbps{10.0},
                   .base_fraction = 0.0,
                   .peak_fraction = 1.0});
  EXPECT_NEAR(model.background_load(LinkId{0}, from_hours(9.0)).value(),
              model.background_load(LinkId{0}, from_hours(33.0)).value(),
              1e-9);
}

TEST(DiurnalTraffic, UnconfiguredLinkIsZero) {
  DiurnalTraffic model{14.0};
  EXPECT_EQ(model.background_load(LinkId{0}, SimTime{0.0}), Mbps{0.0});
}

TEST(DiurnalTraffic, RejectsBadArguments) {
  EXPECT_THROW(DiurnalTraffic{24.0}, std::invalid_argument);
  EXPECT_THROW(DiurnalTraffic{-1.0}, std::invalid_argument);
  DiurnalTraffic model{14.0};
  EXPECT_THROW(model.set_shape(LinkId{0}, {.capacity = Mbps{0.0},
                                           .base_fraction = 0.1,
                                           .peak_fraction = 0.9}),
               std::invalid_argument);
  EXPECT_THROW(model.set_shape(LinkId{0}, {.capacity = Mbps{10.0},
                                           .base_fraction = 0.9,
                                           .peak_fraction = 0.1}),
               std::invalid_argument);
}

TEST(DiurnalTraffic, NextChangeQuantizedToMinute) {
  DiurnalTraffic model{14.0};
  model.set_shape(LinkId{0},
                  {.capacity = Mbps{10.0},
                   .base_fraction = 0.1,
                   .peak_fraction = 0.9});
  EXPECT_DOUBLE_EQ(model.next_change_after(SimTime{0.0}).seconds(), 60.0);
  EXPECT_DOUBLE_EQ(model.next_change_after(SimTime{61.0}).seconds(), 120.0);
}

TEST(DiurnalTraffic, NoShapesMeansNoChanges) {
  DiurnalTraffic model{14.0};
  EXPECT_EQ(model.next_change_after(SimTime{0.0}).seconds(), kInf);
}

}  // namespace
}  // namespace vod::net
