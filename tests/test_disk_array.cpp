#include "storage/disk_array.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::storage {
namespace {

DiskProfile profile(double capacity_mb) {
  return DiskProfile{.capacity = MegaBytes{capacity_mb},
                     .transfer_rate = Mbps{80.0},
                     .seek_seconds = 0.01};
}

TEST(DiskArray, ConstructionValidated) {
  EXPECT_THROW(DiskArray(0, profile(100.0), MegaBytes{10.0}),
               std::invalid_argument);
  EXPECT_THROW(DiskArray(4, profile(100.0), MegaBytes{0.0}),
               std::invalid_argument);
}

TEST(DiskArray, TotalCapacityIsSumOfDisks) {
  const DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  EXPECT_EQ(array.total_capacity(), MegaBytes{400.0});
  EXPECT_EQ(array.total_free(), MegaBytes{400.0});
  EXPECT_EQ(array.disk_count(), 4u);
}

TEST(DiskArray, StoreDistributesCyclically) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  // 60 MB at c=10 -> 6 parts -> disks 0,1,2,3,0,1.
  const auto placement = array.store(VideoId{1}, MegaBytes{60.0});
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->part_to_disk,
            (std::vector<std::size_t>{0, 1, 2, 3, 0, 1}));
  EXPECT_EQ(array.disk(0).used(), MegaBytes{20.0});
  EXPECT_EQ(array.disk(2).used(), MegaBytes{10.0});
  EXPECT_TRUE(array.holds(VideoId{1}));
}

TEST(DiskArray, CanTolerateMatchesStoreOutcome) {
  DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  EXPECT_TRUE(array.can_tolerate(MegaBytes{100.0}));
  EXPECT_FALSE(array.can_tolerate(MegaBytes{101.0}));
  EXPECT_TRUE(array.store(VideoId{1}, MegaBytes{100.0}).has_value());
  EXPECT_FALSE(array.can_tolerate(MegaBytes{10.0}));
  EXPECT_FALSE(array.store(VideoId{2}, MegaBytes{10.0}).has_value());
}

TEST(DiskArray, CanTolerateChecksPerDiskNotJustTotal) {
  DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  // Fill disk 0 more than disk 1: 3 parts -> disks 0,1,0.
  ASSERT_TRUE(array.store(VideoId{1}, MegaBytes{30.0}).has_value());
  EXPECT_EQ(array.disk(0).used(), MegaBytes{20.0});
  EXPECT_EQ(array.disk(1).used(), MegaBytes{10.0});
  // 70 MB = 7 parts, 4 on disk 0 (40 MB > 30 free) — must be rejected even
  // though 70 MB total free exists.
  EXPECT_EQ(array.total_free(), MegaBytes{70.0});
  EXPECT_FALSE(array.can_tolerate(MegaBytes{70.0}));
}

TEST(DiskArray, NonPositiveSizeNotTolerated) {
  DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  EXPECT_FALSE(array.can_tolerate(MegaBytes{0.0}));
  EXPECT_FALSE(array.can_tolerate(MegaBytes{-5.0}));
}

TEST(DiskArray, DuplicateStoreThrows) {
  DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{20.0});
  EXPECT_THROW(array.store(VideoId{1}, MegaBytes{20.0}),
               std::invalid_argument);
}

TEST(DiskArray, RemoveFreesEverything) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{60.0});
  EXPECT_EQ(array.remove(VideoId{1}), MegaBytes{60.0});
  EXPECT_FALSE(array.holds(VideoId{1}));
  EXPECT_EQ(array.total_used(), MegaBytes{0.0});
  EXPECT_EQ(array.remove(VideoId{1}), MegaBytes{0.0});
}

TEST(DiskArray, StoredVideosListsContents) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{20.0});
  array.store(VideoId{2}, MegaBytes{20.0});
  EXPECT_EQ(array.stored_videos(),
            (std::vector<VideoId>{VideoId{1}, VideoId{2}}));
}

TEST(DiskArray, PlacementLookup) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{25.0});
  const StripePlacement& placement = array.placement(VideoId{1});
  EXPECT_EQ(placement.part_count(), 3u);
  EXPECT_THROW(array.placement(VideoId{9}), std::out_of_range);
}

TEST(DiskArray, ClusterReadSeconds) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{25.0});
  // Full cluster: 10 MB = 80 Mb at 80 Mbps = 1 s + 0.01 seek.
  EXPECT_NEAR(array.cluster_read_seconds(VideoId{1}, 0), 1.01, 1e-12);
  // Final short cluster: 5 MB -> 0.5 s + seek.
  EXPECT_NEAR(array.cluster_read_seconds(VideoId{1}, 2), 0.51, 1e-12);
  EXPECT_THROW(array.cluster_read_seconds(VideoId{1}, 3),
               std::out_of_range);
}

TEST(DiskArray, DiskAccessorBoundsChecked) {
  const DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  EXPECT_NO_THROW(array.disk(1));
  EXPECT_THROW(array.disk(2), std::out_of_range);
}

}  // namespace
}  // namespace vod::storage
