#include "baselines/selection_baselines.h"

#include <gtest/gtest.h>

#include <set>

#include "grnet/grnet.h"
#include "stream/policy.h"

namespace vod::baselines {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  Fixture() {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const auto sample =
          grnet::table2_sample(g, link, grnet::TimeOfDay::k8am);
      view.update_link_stats(link, sample.used, sample.utilization,
                             SimTime{0.0});
    }
  }

  void place(NodeId server) {
    db.limited_view(kAdmin).add_title(server, movie);
  }
};

TEST(RandomHolderPolicy, PicksOnlyHolders) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  RandomHolderPolicy policy{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin), Rng{1}};
  std::set<NodeId> seen;
  for (int i = 0; i < 50; ++i) {
    const auto selection = policy.select(fx.g.patra, fx.movie);
    ASSERT_TRUE(selection.has_value());
    seen.insert(selection->server);
    EXPECT_TRUE(selection->server == fx.g.thessaloniki ||
                selection->server == fx.g.xanthi);
    EXPECT_EQ(selection->path.source(), fx.g.patra);
    EXPECT_EQ(selection->path.destination(), selection->server);
  }
  EXPECT_EQ(seen.size(), 2u);  // both holders eventually chosen
}

TEST(RandomHolderPolicy, HomeHolderServedLocally) {
  Fixture fx;
  fx.place(fx.g.patra);
  RandomHolderPolicy policy{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin), Rng{1}};
  const auto selection = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->server, fx.g.patra);
  EXPECT_TRUE(selection->path.links.empty());
}

TEST(RandomHolderPolicy, SkipsOfflineServers) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  fx.db.limited_view(kAdmin).set_server_online(fx.g.xanthi, false);
  RandomHolderPolicy policy{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin), Rng{1}};
  for (int i = 0; i < 20; ++i) {
    const auto selection = policy.select(fx.g.patra, fx.movie);
    ASSERT_TRUE(selection.has_value());
    EXPECT_EQ(selection->server, fx.g.thessaloniki);
  }
}

TEST(RandomHolderPolicy, NoHolderReturnsNullopt) {
  Fixture fx;
  RandomHolderPolicy policy{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin), Rng{1}};
  EXPECT_FALSE(policy.select(fx.g.patra, fx.movie).has_value());
}

TEST(NearestByHopsPolicy, PrefersFewestHops) {
  Fixture fx;
  // Thessaloniki is 2 hops from Patra (via Athens or Ioannina); Xanthi 3.
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  NearestByHopsPolicy policy{fx.g.topology, fx.db.full_view(),
                             fx.db.limited_view(kAdmin)};
  const auto selection = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->server, fx.g.thessaloniki);
  EXPECT_EQ(selection->path.hop_count(), 2u);
}

TEST(NearestByHopsPolicy, HomeHolderWins) {
  Fixture fx;
  fx.place(fx.g.patra);
  fx.place(fx.g.athens);
  NearestByHopsPolicy policy{fx.g.topology, fx.db.full_view(),
                             fx.db.limited_view(kAdmin)};
  const auto selection = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->server, fx.g.patra);
  EXPECT_EQ(selection->path.hop_count(), 0u);
}

TEST(NearestByHopsPolicy, IgnoresCongestionEntirely) {
  // Unlike the VRA, nearest-by-hops picks Athens' neighbor even when the
  // direct link is saturated — that is exactly its weakness.
  Fixture fx;
  fx.place(fx.g.athens);
  fx.place(fx.g.ioannina);
  NearestByHopsPolicy policy{fx.g.topology, fx.db.full_view(),
                             fx.db.limited_view(kAdmin)};
  const auto selection = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(selection.has_value());
  // Both are 1 hop; tie-break by node id gives Athens (U1, id 0).
  EXPECT_EQ(selection->server, fx.g.athens);
}

TEST(StaticOncePolicy, RepeatsFirstDecision) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  NearestByHopsPolicy inner{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin)};
  StaticOncePolicy policy{inner};
  const auto first = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(first.has_value());
  // Remove the chosen holder from the catalog: a re-evaluating policy
  // would switch; static-once must not.
  fx.db.limited_view(kAdmin).remove_title(first->server, fx.movie);
  const auto second = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->server, first->server);
}

TEST(StaticOncePolicy, ResetForgetsDecisions) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  NearestByHopsPolicy inner{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin)};
  StaticOncePolicy policy{inner};
  ASSERT_TRUE(policy.select(fx.g.patra, fx.movie).has_value());
  fx.db.limited_view(kAdmin).remove_title(fx.g.thessaloniki, fx.movie);
  fx.db.limited_view(kAdmin).add_title(fx.g.xanthi, fx.movie);
  policy.reset();
  const auto fresh = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->server, fx.g.xanthi);
}

TEST(StaticOncePolicy, DistinctRequestsDecidedIndependently) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  NearestByHopsPolicy inner{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin)};
  StaticOncePolicy policy{inner};
  const auto from_patra = policy.select(fx.g.patra, fx.movie);
  const auto from_heraklio = policy.select(fx.g.heraklio, fx.movie);
  ASSERT_TRUE(from_patra && from_heraklio);
  EXPECT_NE(from_patra->path.nodes, from_heraklio->path.nodes);
}

TEST(VraPolicy, ValidatesHysteresisRange) {
  Fixture fx;
  vra::Vra vra{fx.g.topology, fx.db.full_view(), fx.db.limited_view(kAdmin),
               {}};
  EXPECT_THROW(stream::VraPolicy(vra, -0.1), std::invalid_argument);
  EXPECT_THROW(stream::VraPolicy(vra, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(stream::VraPolicy(vra, 0.0));
  EXPECT_NO_THROW(stream::VraPolicy(vra, 0.99));
}

TEST(VraPolicy, ZeroHysteresisAlwaysFollowsBest) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  vra::Vra vra{fx.g.topology, fx.db.full_view(), fx.db.limited_view(kAdmin),
               {}};
  stream::VraPolicy policy{vra};
  const auto first = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->server, fx.g.thessaloniki);  // corrected Experiment A
  // Make the previous choice unavailable: must re-route immediately.
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, false);
  const auto second = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->server, fx.g.xanthi);
}

TEST(VraPolicy, HysteresisSticksWithPreviousSourceOnSmallGaps) {
  Fixture fx;  // 8am stats: Thessaloniki 0.218, Xanthi 0.315 from Patra
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  vra::Vra vra{fx.g.topology, fx.db.full_view(), fx.db.limited_view(kAdmin),
               {}};
  // Seed the sticky state on Xanthi by taking Thessaloniki offline first.
  stream::VraPolicy policy{vra, 0.9};  // very reluctant to switch
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, false);
  const auto first = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->server, fx.g.xanthi);
  // Thessaloniki comes back, cheaper (0.218 vs 0.315) but not by 90%.
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, true);
  const auto second = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->server, fx.g.xanthi);  // sticks
  // A low-hysteresis policy in the same situation switches (0.218 is more
  // than 10% cheaper than 0.315).
  stream::VraPolicy eager{vra, 0.1};
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, false);
  (void)eager.select(fx.g.patra, fx.movie);
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, true);
  const auto eager_second = eager.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(eager_second.has_value());
  EXPECT_EQ(eager_second->server, fx.g.thessaloniki);
}

TEST(VraPolicy, ResetForgetsStickyChoice) {
  Fixture fx;
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  vra::Vra vra{fx.g.topology, fx.db.full_view(), fx.db.limited_view(kAdmin),
               {}};
  stream::VraPolicy policy{vra, 0.9};
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, false);
  (void)policy.select(fx.g.patra, fx.movie);
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, true);
  policy.reset();
  const auto fresh = policy.select(fx.g.patra, fx.movie);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->server, fx.g.thessaloniki);  // no memory of Xanthi
}

TEST(PolicyNames, AreDistinct) {
  Fixture fx;
  RandomHolderPolicy random{fx.g.topology, fx.db.full_view(),
                            fx.db.limited_view(kAdmin), Rng{1}};
  NearestByHopsPolicy nearest{fx.g.topology, fx.db.full_view(),
                              fx.db.limited_view(kAdmin)};
  StaticOncePolicy static_once{nearest};
  EXPECT_STREQ(random.name(), "random");
  EXPECT_STREQ(nearest.name(), "nearest");
  EXPECT_STREQ(static_once.name(), "static-once");
}

}  // namespace
}  // namespace vod::baselines
