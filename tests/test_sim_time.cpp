#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(SimTime{}.seconds(), 0.0);
}

TEST(SimTime, AddDuration) {
  EXPECT_DOUBLE_EQ((SimTime{10.0} + 5.0).seconds(), 15.0);
}

TEST(SimTime, SubtractDuration) {
  EXPECT_DOUBLE_EQ((SimTime{10.0} - 4.0).seconds(), 6.0);
}

TEST(SimTime, DifferenceIsDuration) {
  EXPECT_DOUBLE_EQ(SimTime{10.0} - SimTime{4.0}, 6.0);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime{1.0}, SimTime{2.0});
  EXPECT_EQ(SimTime{2.0}, SimTime{2.0});
}

TEST(SimTime, HelperConversions) {
  EXPECT_DOUBLE_EQ(from_minutes(2.0).seconds(), 120.0);
  EXPECT_DOUBLE_EQ(from_hours(8.0).seconds(), 28800.0);
  EXPECT_DOUBLE_EQ(minutes(1.5).seconds(), 90.0);
  EXPECT_DOUBLE_EQ(hours(0.5).seconds(), 1800.0);
}

}  // namespace
}  // namespace vod
