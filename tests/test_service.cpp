#include "service/vod_service.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grnet/grnet.h"

namespace vod::service {
namespace {

const db::AdminCredential kAdmin{"secret"};

/// Full service stack over the GRNET case study with Table 2 background
/// traffic.  `routing_only` pushes the DMA admission threshold high so
/// requests exercise the VRA instead of caching locally at once.
struct ServiceFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  ServiceOptions options;
  std::unique_ptr<VodService> service;
  VideoId movie;

  explicit ServiceFixture(bool routing_only = true) {
    options.cluster_size = MegaBytes{10.0};
    options.snmp_interval_seconds = 90.0;
    if (routing_only) {
      options.dma.admission_threshold = 1'000'000;
    }
    service = std::make_unique<VodService>(sim, g.topology, network,
                                           options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{2.0});
    service->ip_directory().add_subnet("150.140.0.0/16", g.patra);
    service->ip_directory().add_subnet("147.52.0.0/16", g.heraklio);
  }
};

TEST(VodService, RegistersTopologyInDatabase) {
  ServiceFixture fx;
  auto view = fx.service->admin_view();
  EXPECT_EQ(view.servers().size(), 6u);
  EXPECT_EQ(view.links().size(), 7u);
  EXPECT_EQ(view.server(fx.g.patra).name, "U2");
  // Access bandwidth = sum of adjacent link capacities (Patra: 2+2).
  EXPECT_EQ(view.server(fx.g.patra).config.access_bandwidth, Mbps{4.0});
  EXPECT_EQ(view.server(fx.g.athens).config.access_bandwidth, Mbps{38.0});
}

TEST(VodService, WebModuleListsAndSearches) {
  ServiceFixture fx;
  fx.service->add_video("another movie", MegaBytes{50.0}, Mbps{2.0});
  EXPECT_EQ(fx.service->list_titles().size(), 2u);
  EXPECT_EQ(fx.service->search_titles("another").size(), 1u);
  ASSERT_TRUE(fx.service->find_title("movie").has_value());
  EXPECT_FALSE(fx.service->find_title("missing").has_value());
}

TEST(VodService, PlaceInitialCopyMakesTitleAvailable) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.thessaloniki, fx.movie);
  EXPECT_EQ(fx.service->database().full_view().servers_with_title(fx.movie),
            std::vector<NodeId>{fx.g.thessaloniki});
  // Idempotent.
  EXPECT_NO_THROW(
      fx.service->place_initial_copy(fx.g.thessaloniki, fx.movie));
}

TEST(VodService, PlaceInitialCopyValidates) {
  ServiceFixture fx;
  EXPECT_THROW(fx.service->place_initial_copy(fx.g.patra, VideoId{99}),
               std::invalid_argument);
}

TEST(VodService, StartTakesImmediateSnmpSample) {
  ServiceFixture fx;
  fx.service->start();
  auto view = fx.service->admin_view();
  // 8am values are in force at t=0 (trace holds first sample backward).
  EXPECT_NEAR(view.link(fx.g.patra_athens).used_bandwidth.value(), 0.2,
              1e-9);
  EXPECT_EQ(fx.service->snmp().poll_count(), 1u);
}

TEST(VodService, EndToEndRequestStreamsAndCompletes) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.thessaloniki, fx.movie);
  fx.service->place_initial_copy(fx.g.xanthi, fx.movie);
  fx.service->start();

  bool done = false;
  const SessionId id = fx.service->request_by_ip(
      "150.140.20.1", fx.movie, [&](const stream::Session& session) {
        done = true;
        EXPECT_TRUE(session.metrics().finished);
      });
  fx.sim.run_until(from_hours(2.0));
  EXPECT_TRUE(done);
  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_EQ(fx.service->session_home(id), fx.g.patra);
  // At quiet early-morning load the VRA picks Thessaloniki via U2,U3,U4
  // (the corrected Experiment A decision).
  ASSERT_FALSE(m.cluster_sources.empty());
  EXPECT_EQ(m.cluster_sources.front(),
            fx.g.thessaloniki);
}

TEST(VodService, UnknownIpThrows) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.patra, fx.movie);
  EXPECT_THROW(fx.service->request_by_ip("8.8.8.8", fx.movie),
               std::invalid_argument);
}

TEST(VodService, UnknownVideoOrHomeThrows) {
  ServiceFixture fx;
  EXPECT_THROW(fx.service->request_at(fx.g.patra, VideoId{99}),
               std::invalid_argument);
  EXPECT_THROW(fx.service->request_at(NodeId{99}, fx.movie),
               std::invalid_argument);
}

TEST(VodService, LocalTitleServedFromHomeServer) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.patra, fx.movie);
  fx.service->start();
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  for (const NodeId source : m.cluster_sources) {
    EXPECT_EQ(source, fx.g.patra);
  }
  // Local delivery is fast: 40 MB at the 80 Mbps local rate = 4 s.
  EXPECT_NEAR(m.download_completed_at->seconds(), 4.0, 1e-6);
}

TEST(VodService, DmaAdmitsPopularTitleAtHomeServer) {
  ServiceFixture fx{/*routing_only=*/false};  // Figure 2 defaults
  fx.service->place_initial_copy(fx.g.thessaloniki, fx.movie);
  fx.service->start();
  // First request: the DMA at Patra admits the title (space is free),
  // mirroring it into the database.
  fx.service->request_at(fx.g.patra, fx.movie);
  const auto holders =
      fx.service->database().full_view().servers_with_title(fx.movie);
  EXPECT_EQ(holders.size(), 2u);
  EXPECT_TRUE(fx.service->dma_cache(fx.g.patra).cached(fx.movie));
  fx.sim.run_until(from_hours(1.0));
}

TEST(VodService, OfflineServerTriggersFailover) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.thessaloniki, fx.movie);
  fx.service->place_initial_copy(fx.g.xanthi, fx.movie);
  fx.service->set_server_online(fx.g.thessaloniki, false);
  fx.service->start();
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(2.0));
  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  for (const NodeId source : m.cluster_sources) {
    EXPECT_EQ(source, fx.g.xanthi);
  }
}

TEST(VodService, NoHolderFailsSession) {
  ServiceFixture fx;
  fx.service->start();
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));
  EXPECT_TRUE(fx.service->session_metrics(id).failed);
}

TEST(VodService, SessionIdsEnumerated) {
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.patra, fx.movie);
  fx.service->start();
  EXPECT_TRUE(fx.service->session_ids().empty());
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.service->request_at(fx.g.patra, fx.movie);
  EXPECT_EQ(fx.service->session_ids().size(), 2u);
  EXPECT_THROW(fx.service->session(SessionId{99}), std::out_of_range);
}

TEST(VodService, MidStreamServerSwitchOnCongestion) {
  // Title at Thessaloniki and Xanthi; client at Patra.  The day's traffic
  // shifts (Table 2) while a long video streams; the per-cluster VRA may
  // move between sources but the session must finish regardless.
  ServiceFixture fx;
  fx.service->place_initial_copy(fx.g.thessaloniki, fx.movie);
  fx.service->place_initial_copy(fx.g.xanthi, fx.movie);
  fx.service->start();
  // Start shortly before the 10am load shift with a bigger title.
  const VideoId epic =
      fx.service->add_video("epic", MegaBytes{400.0}, Mbps{2.0});
  fx.service->place_initial_copy(fx.g.thessaloniki, epic);
  fx.service->place_initial_copy(fx.g.xanthi, epic);
  SessionId id{};
  fx.sim.schedule_at(from_hours(9.9), [&](SimTime) {
    id = fx.service->request_at(fx.g.patra, epic);
  });
  fx.sim.run_until(from_hours(16.0));
  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_EQ(m.cluster_completed.size(), 40u);
}

TEST(VodService, TopTitlesRankByNetworkWideDemand) {
  ServiceFixture fx;
  const VideoId quiet =
      fx.service->add_video("quiet", MegaBytes{40.0}, Mbps{2.0});
  const VideoId busy =
      fx.service->add_video("busy", MegaBytes{40.0}, Mbps{2.0});
  fx.service->place_initial_copy(fx.g.patra, fx.movie);
  fx.service->place_initial_copy(fx.g.patra, quiet);
  fx.service->place_initial_copy(fx.g.patra, busy);
  fx.service->start();
  // Demand: busy 3x (from two different homes), movie 1x, quiet 0.
  fx.service->request_at(fx.g.patra, busy);
  fx.service->request_at(fx.g.patra, busy);
  fx.service->request_at(fx.g.heraklio, busy);
  fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(from_hours(1.0));

  const auto top = fx.service->top_titles(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first.title, "busy");
  EXPECT_GE(top[0].second, top[1].second);
  // Asking for more than exist returns everything.
  EXPECT_EQ(fx.service->top_titles(99).size(), 3u);
}

TEST(VodService, RejectsZeroDiskConfiguration) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  ServiceOptions options;
  options.server.disk_count = 0;
  EXPECT_THROW(VodService(sim, g.topology, network, options, kAdmin),
               std::invalid_argument);
}

}  // namespace
}  // namespace vod::service
