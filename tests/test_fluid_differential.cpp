// Seeded randomized differential test: the incidence-indexed allocator must
// be *bit-identical* to reallocate_reference() — the preserved naive filler —
// on every observable (flow rates, used_bandwidth, utilization) after every
// mutation of a random start/stop/cap-edit/link-flap/time-advance script,
// including the severed-path and kMinFlowRate floor edge cases.  Flows are
// started with random class weights (1..8), so the weighted fill (integer
// weight sums, delta x weight increments) is exercised against the oracle's
// per-round recomputation on every seed.  Exact double equality throughout:
// the determinism gates depend on it.
#include "net/fluid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace vod::net {
namespace {

struct Fixture {
  Topology topo;
  std::vector<LinkId> links;
  TraceTraffic traffic;

  explicit Fixture(Rng& rng) {
    // A 6-node line — every flow is a contiguous sub-path, so multi-link
    // contention and shared bottlenecks arise constantly.
    std::vector<NodeId> nodes;
    for (int i = 0; i < 6; ++i) {
      nodes.push_back(topo.add_node("n" + std::to_string(i)));
    }
    for (int i = 0; i < 5; ++i) {
      const Mbps cap{rng.uniform(5.0, 25.0)};
      links.push_back(topo.add_link(nodes[i], nodes[i + 1], cap));
      // Stepwise background trace; the last step saturates the link
      // outright on some links so the kMinFlowRate floor gets exercised.
      double t = 0.0;
      for (int s = 0; s < 4; ++s) {
        const bool saturate = s == 3 && i % 2 == 0;
        const Mbps load{saturate ? cap.value() + 1.0
                                 : rng.uniform(0.0, cap.value())};
        traffic.add_sample(links.back(), SimTime{t}, load);
        t += rng.uniform(10.0, 50.0);
      }
    }
  }
};

/// used_bandwidth the way the pre-index code computed it: background first,
/// then each flow whose path crosses the link exactly once, ascending by
/// flow id, capped at capacity.  Same reduction order -> same bits.
Mbps naive_used(const FluidNetwork& network, const Topology& topo,
                LinkId link,
                const std::vector<std::pair<FlowId, Mbps>>& rates) {
  Mbps used = network.background(link);
  for (const auto& [id, rate] : rates) {
    const std::vector<LinkId>& path = network.flow_path(id);
    if (std::find(path.begin(), path.end(), link) != path.end()) {
      used += rate;
    }
  }
  return std::min(used, topo.link(link).capacity);
}

void expect_matches_reference(const FluidNetwork& network,
                              const Fixture& fx,
                              const std::vector<FlowId>& live) {
  const std::vector<std::pair<FlowId, Mbps>> reference =
      network.reallocate_reference();
  ASSERT_EQ(reference.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(reference[i].first, live[i]);
    // Bitwise equality, not EXPECT_NEAR: the indexed filler must reproduce
    // the naive arithmetic exactly.
    EXPECT_EQ(network.flow_rate(live[i]).value(),
              reference[i].second.value())
        << "flow " << live[i].value();
  }
  for (const LinkId link : fx.links) {
    EXPECT_EQ(network.used_bandwidth(link).value(),
              naive_used(network, fx.topo, link, reference).value())
        << "link " << link.value();
    EXPECT_EQ(network.utilization(link),
              std::clamp(naive_used(network, fx.topo, link, reference) /
                             fx.topo.link(link).capacity,
                         0.0, 1.0))
        << "link " << link.value();
  }
}

class FluidDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FluidDifferential, IndexedAllocatorMatchesReferenceExactly) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 17};
  Fixture fx{rng};
  FluidNetwork network{fx.topo, fx.traffic};
  // A third of the seeds also run the built-in self-check, so the
  // check_reference_ debug path itself stays honest.
  if (GetParam() % 3 == 0) network.set_check_against_reference(true);

  std::vector<FlowId> live;  // ascending by id (ids are monotonic)
  double now = 0.0;
  int severed_seen = 0;
  int floor_seen = 0;

  const auto random_path = [&] {
    const auto first = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto last = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(first), 4));
    return std::vector<LinkId>(fx.links.begin() + first,
                               fx.links.begin() + last + 1);
  };
  const auto start_one = [&] {
    // Mixed weights: weight 1 (the classless default) stays common so the
    // unweighted reduction keeps coverage alongside the weighted one.
    const auto weight = static_cast<std::uint32_t>(
        rng.bernoulli(0.4) ? 1 : rng.uniform_int(2, 8));
    live.push_back(network.start_flow(random_path(),
                                      Mbps{rng.uniform(0.5, 30.0)}, weight));
  };
  const auto mutate_once = [&] {
    const std::int64_t op = rng.uniform_int(0, 5);
    switch (op) {
      case 0:
        start_one();
        break;
      case 1:
        if (!live.empty()) {
          const auto victim = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          network.stop_flow(live[victim]);
          live.erase(live.begin() + victim);
        }
        break;
      case 2:
        if (!live.empty()) {
          const auto victim = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          network.set_flow_cap(live[victim], Mbps{rng.uniform(0.5, 30.0)});
        }
        break;
      case 3: {
        const auto l = static_cast<std::size_t>(rng.uniform_int(0, 4));
        network.set_link_up(fx.links[l], !network.link_up(fx.links[l]));
        break;
      }
      case 4:
        now += rng.uniform(1.0, 25.0);
        network.set_time(SimTime{now});
        break;
      default: {
        // Batched burst: several mutations in one allocation epoch.
        const FluidNetwork::BatchGuard epoch = network.defer_reallocate();
        const std::int64_t burst = rng.uniform_int(2, 5);
        for (std::int64_t i = 0; i < burst; ++i) {
          if (live.empty() || rng.bernoulli(0.6)) {
            start_one();
          } else {
            network.stop_flow(live.back());
            live.pop_back();
          }
        }
        break;
      }
    }
  };

  for (int step = 0; step < 60; ++step) {
    mutate_once();
    expect_matches_reference(network, fx, live);
    for (const FlowId flow : live) {
      const double rate = network.flow_rate(flow).value();
      if (rate == 0.0) ++severed_seen;
      if (rate == kMinFlowRate.value()) ++floor_seen;
    }
  }

  // The script must actually have visited the edge cases the issue names;
  // the fixture (flappable links, saturating traces) makes both common.
  EXPECT_GT(severed_seen + floor_seen, 0)
      << "script never hit a severed or floor-rate flow; fixture too tame";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidDifferential, ::testing::Range(0, 24));

}  // namespace
}  // namespace vod::net
