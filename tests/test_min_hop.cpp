#include "routing/min_hop.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "routing/dijkstra.h"

namespace vod::routing {
namespace {

/// Square a-b-c-d-a plus heavy-weight diagonal a-c.
Graph square_with_diagonal() {
  Graph graph;
  const NodeId a = graph.add_node("a");
  const NodeId b = graph.add_node("b");
  const NodeId c = graph.add_node("c");
  const NodeId d = graph.add_node("d");
  graph.add_undirected_edge(a, b, LinkId{0}, 100.0);
  graph.add_undirected_edge(b, c, LinkId{1}, 100.0);
  graph.add_undirected_edge(c, d, LinkId{2}, 100.0);
  graph.add_undirected_edge(d, a, LinkId{3}, 100.0);
  graph.add_undirected_edge(a, c, LinkId{4}, 1000.0);
  return graph;
}

TEST(MinHop, IgnoresWeights) {
  const Graph graph = square_with_diagonal();
  // By weight, a->c would avoid the 1000 diagonal; by hops it takes it.
  const auto path = min_hop_path(graph, NodeId{0}, NodeId{2});
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 1.0);
  EXPECT_EQ(path->links, std::vector<LinkId>{LinkId{4}});
}

TEST(MinHop, TrivialSelfPath) {
  const Graph graph = square_with_diagonal();
  const auto path = min_hop_path(graph, NodeId{0}, NodeId{0});
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 0.0);
  EXPECT_TRUE(path->links.empty());
}

TEST(MinHop, DisconnectedReturnsNullopt) {
  Graph graph;
  const NodeId a = graph.add_node();
  graph.add_node();
  EXPECT_FALSE(min_hop_path(graph, a, NodeId{1}).has_value());
}

TEST(MinHop, UnknownNodesThrow) {
  Graph graph;
  graph.add_node();
  EXPECT_THROW(min_hop_path(graph, NodeId{0}, NodeId{9}),
               std::invalid_argument);
  EXPECT_THROW(min_hop_path(graph, NodeId{9}, NodeId{0}),
               std::invalid_argument);
}

TEST(MinHop, DeterministicTieBreak) {
  // Two 2-hop routes a->b->d and a->c->d: the lower-id intermediate wins.
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  const NodeId c = graph.add_node();
  const NodeId d = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  graph.add_undirected_edge(a, c, LinkId{1}, 1.0);
  graph.add_undirected_edge(b, d, LinkId{2}, 1.0);
  graph.add_undirected_edge(c, d, LinkId{3}, 1.0);
  const auto path = min_hop_path(graph, a, d);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes[1], b);
}

class MinHopProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinHopProperty, NeverLongerThanWeightedShortestPathHops) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  Graph graph;
  const std::size_t n = 8;
  for (std::size_t i = 0; i < n; ++i) graph.add_node();
  LinkId::underlying_type next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.5)) {
        graph.add_undirected_edge(
            NodeId{static_cast<NodeId::underlying_type>(i)},
            NodeId{static_cast<NodeId::underlying_type>(j)}, LinkId{next++},
            rng.uniform(0.1, 5.0));
      }
    }
  }
  for (std::size_t v = 1; v < n; ++v) {
    const NodeId target{static_cast<NodeId::underlying_type>(v)};
    const auto hops = min_hop_path(graph, NodeId{0}, target);
    const auto weighted = shortest_path(graph, NodeId{0}, target);
    EXPECT_EQ(hops.has_value(), weighted.has_value());
    if (hops && weighted) {
      EXPECT_LE(hops->hop_count(), weighted->hop_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinHopProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace vod::routing
