#include "common/log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vod {
namespace {

/// RAII capture of the global logger configuration.
class LoggerCapture {
 public:
  LoggerCapture() {
    Logger::instance().set_stream(&captured_);
    previous_level_ = Logger::instance().level();
  }
  ~LoggerCapture() {
    Logger::instance().set_stream(&std::cerr);
    Logger::instance().set_level(previous_level_);
    Logger::instance().set_clock(nullptr);
  }

  [[nodiscard]] std::string text() const { return captured_.str(); }

 private:
  std::ostringstream captured_;
  LogLevel previous_level_;
};

TEST(Logger, MessagesAtOrAboveLevelEmitted) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  VOD_LOG_INFO("visible " << 42);
  EXPECT_NE(capture.text().find("[info] visible 42"), std::string::npos);
}

TEST(Logger, MessagesBelowLevelSuppressed) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  VOD_LOG_DEBUG("hidden");
  VOD_LOG_INFO("also hidden");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Logger, WarnAndErrorTagged) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kDebug);
  VOD_LOG_WARN("w");
  VOD_LOG_ERROR("e");
  EXPECT_NE(capture.text().find("[warn] w"), std::string::npos);
  EXPECT_NE(capture.text().find("[error] e"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kOff);
  VOD_LOG_ERROR("even errors");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Logger, TraceSitsBelowDebug) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kDebug);
  VOD_LOG_TRACE("too chatty");
  EXPECT_TRUE(capture.text().empty());
  Logger::instance().set_level(LogLevel::kTrace);
  VOD_LOG_TRACE("now visible");
  EXPECT_NE(capture.text().find("[trace] now visible"), std::string::npos);
}

TEST(Logger, ClockPrefixesLinesWithSimTime) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_clock([] { return SimTime{12.5}; });
  VOD_LOG_INFO("stamped");
  EXPECT_NE(capture.text().find("[12.5s] [info] stamped"),
            std::string::npos);
  Logger::instance().set_clock(nullptr);
  VOD_LOG_INFO("bare");
  EXPECT_NE(capture.text().find("\n[info] bare"), std::string::npos);
}

TEST(Logger, StreamExpressionNotEvaluatedWhenSuppressed) {
  LoggerCapture capture;
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 1;
  };
  VOD_LOG_DEBUG("value " << expensive());
  EXPECT_EQ(evaluations, 0);
  VOD_LOG_ERROR("value " << expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace vod
