#include "common/csv.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod {
namespace {

TEST(CsvWriter, HeaderOnly) {
  const CsvWriter csv{{"a", "b"}};
  EXPECT_EQ(csv.str(), "a,b\n");
  EXPECT_EQ(csv.row_count(), 0u);
}

TEST(CsvWriter, PlainRows) {
  CsvWriter csv{{"a", "b"}};
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(CsvWriter, EscapesCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriter, EscapesQuotesByDoubling) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvWriter::escape("plain-field_1"), "plain-field_1");
}

TEST(CsvWriter, WidthMismatchThrows) {
  CsvWriter csv{{"a", "b"}};
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(csv.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(CsvWriter, EmptyHeaderRejected) {
  EXPECT_THROW(CsvWriter{std::vector<std::string>{}},
               std::invalid_argument);
}

TEST(CsvWriter, QuotedHeaderFields) {
  const CsvWriter csv{{"plain", "with,comma"}};
  EXPECT_EQ(csv.str(), "plain,\"with,comma\"\n");
}

}  // namespace
}  // namespace vod
