// Paper walkthrough through the FULL service stack.
//
// Unlike tests/test_vra.cpp (which feeds the VRA hand-loaded statistics),
// this suite reproduces Experiments A-D the way the deployed system would:
// the Table 2 trace drives the fluid network, the SNMP module populates
// the limited-access database on its own schedule, and the request enters
// through VodService.  The decisions must match the direct-fed ones.
#include <gtest/gtest.h>

#include "grnet/grnet.h"
#include "service/distributed_striping.h"
#include "service/vod_service.h"
#include "vra/explain.h"

namespace vod {
namespace {

const db::AdminCredential kAdmin{"secret"};

struct Walkthrough {
  grnet::CaseStudy g = grnet::build_case_study();
  net::TraceTraffic trace = grnet::table2_trace(g);
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, trace};
  std::unique_ptr<service::VodService> service;
  VideoId movie;

  Walkthrough() {
    service::ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.snmp_interval_seconds = 90.0;
    options.dma.admission_threshold = 1'000'000;  // keep placement fixed
    options.audit_capacity = 64;
    service = std::make_unique<service::VodService>(
        sim, g.topology, network, options, kAdmin);
    movie = service->add_video("movie", MegaBytes{40.0}, Mbps{1.5});
    service->start();
  }

  /// Runs the day to `t` (SNMP keeps polling) and takes a fresh sample.
  void advance_to(grnet::TimeOfDay t) {
    sim.run_until(grnet::time_of(t));
    service->snmp().poll_now(sim.now());
  }

  NodeId first_source(SessionId id) {
    sim.run_until(sim.now() + 1.0);  // let the first selection happen
    const auto& sources =
        service->session_metrics(id).cluster_sources;
    EXPECT_FALSE(sources.empty());
    return sources.empty() ? NodeId{} : sources.front();
  }
};

TEST(PaperWalkthrough, ExperimentA_ThroughTheServiceStack) {
  Walkthrough w;
  w.service->place_initial_copy(w.g.thessaloniki, w.movie);
  w.service->place_initial_copy(w.g.xanthi, w.movie);
  w.advance_to(grnet::TimeOfDay::k8am);
  const SessionId id = w.service->request_at(w.g.patra, w.movie);
  // Corrected Experiment A: Thessaloniki via U2,U3,U4 (see DESIGN.md).
  EXPECT_EQ(w.first_source(id), w.g.thessaloniki);
  const auto& entry = w.service->audit().entries().front();
  EXPECT_NEAR(entry.path_cost, 0.218, 0.01);
  EXPECT_EQ(entry.hop_count, 2u);
}

TEST(PaperWalkthrough, ExperimentB_ThroughTheServiceStack) {
  Walkthrough w;
  w.service->place_initial_copy(w.g.thessaloniki, w.movie);
  w.service->place_initial_copy(w.g.xanthi, w.movie);
  w.advance_to(grnet::TimeOfDay::k10am);
  const SessionId id = w.service->request_at(w.g.patra, w.movie);
  EXPECT_EQ(w.first_source(id), w.g.thessaloniki);
  EXPECT_NEAR(w.service->audit().entries().front().path_cost, 1.007,
              0.02);
}

TEST(PaperWalkthrough, ExperimentC_ThroughTheServiceStack) {
  Walkthrough w;
  w.service->place_initial_copy(w.g.ioannina, w.movie);
  w.service->place_initial_copy(w.g.thessaloniki, w.movie);
  w.service->place_initial_copy(w.g.xanthi, w.movie);
  w.advance_to(grnet::TimeOfDay::k4pm);
  const SessionId id = w.service->request_at(w.g.athens, w.movie);
  EXPECT_EQ(w.first_source(id), w.g.ioannina);
  EXPECT_NEAR(w.service->audit().entries().front().path_cost, 1.222,
              0.02);
}

TEST(PaperWalkthrough, ExperimentD_ThroughTheServiceStack) {
  Walkthrough w;
  w.service->place_initial_copy(w.g.ioannina, w.movie);
  w.service->place_initial_copy(w.g.thessaloniki, w.movie);
  w.service->place_initial_copy(w.g.xanthi, w.movie);
  w.advance_to(grnet::TimeOfDay::k6pm);
  const SessionId id = w.service->request_at(w.g.athens, w.movie);
  EXPECT_EQ(w.first_source(id), w.g.ioannina);
  EXPECT_NEAR(w.service->audit().entries().front().path_cost, 1.236,
              0.02);
}

TEST(PaperWalkthrough, SnmpStalenessDelaysTheDecisionFlip) {
  // At 8am the (corrected) choice is Thessaloniki via Ioannina; the trace
  // steps at 10am but a request placed just after still routes on the
  // stale pre-step statistics until the next poll — the paper's stated
  // 1-2 minute compromise, observable.
  Walkthrough w;
  w.service->place_initial_copy(w.g.thessaloniki, w.movie);
  w.service->place_initial_copy(w.g.xanthi, w.movie);
  w.advance_to(grnet::TimeOfDay::k8am);

  // Run to 5 s past 10am WITHOUT letting the poller fire after the step:
  // polls land on multiples of 90 s; 10am = 36000 s is one, so stop the
  // poller first to create the stale window.
  w.service->snmp().stop();
  w.sim.run_until(grnet::time_of(grnet::TimeOfDay::k10am) + 5.0);
  const SessionId stale = w.service->request_at(w.g.patra, w.movie);
  w.sim.run_until(w.sim.now() + 1.0);
  const auto stale_entry = w.service->audit().entries().back();
  EXPECT_NEAR(stale_entry.path_cost, 0.218, 0.01);  // still 8am numbers

  // After a fresh poll the same request sees the 10am costs.
  const SimTime polled_at = w.sim.now();
  w.service->snmp().poll_now(polled_at);
  const SessionId fresh = w.service->request_at(w.g.patra, w.movie);
  w.sim.run_until(w.sim.now() + 1.0);
  bool found = false;
  for (const service::AuditEntry& entry : w.service->audit().entries()) {
    if (entry.home == w.g.patra && entry.at >= polled_at &&
        entry.satisfied) {
      EXPECT_GT(entry.path_cost, 0.5);  // 10am congestion visible
      found = true;
    }
  }
  EXPECT_TRUE(found);
  (void)stale;
  (void)fresh;
}

TEST(PaperWalkthrough, StripedSessionAlternatesSources) {
  // The future-work policy driving a real streaming session end to end.
  Walkthrough w;
  auto view = w.service->admin_view();
  view.add_title(w.g.thessaloniki, w.movie);
  view.add_title(w.g.xanthi, w.movie);
  w.advance_to(grnet::TimeOfDay::k8am);

  service::DistributedStripePlacer placer{
      {w.g.thessaloniki, w.g.xanthi}, 2};
  service::StripedSelectionPolicy policy{w.service->vra(),
                                         placer.plan({w.movie})};
  stream::Session session{
      w.sim,
      w.service->transfers(),
      policy,
      *w.service->database().full_view().video(w.movie),
      w.g.patra,
      MegaBytes{10.0}};
  session.start();
  w.sim.run_until(from_hours(12.0));
  const stream::SessionMetrics& m = session.metrics();
  ASSERT_TRUE(m.finished);
  ASSERT_EQ(m.cluster_sources.size(), 4u);
  EXPECT_EQ(m.cluster_sources[0], w.g.thessaloniki);
  EXPECT_EQ(m.cluster_sources[1], w.g.xanthi);
  EXPECT_EQ(m.cluster_sources[2], w.g.thessaloniki);
  EXPECT_EQ(m.cluster_sources[3], w.g.xanthi);
}

TEST(ExplainTable, BreaksDownTable3Arithmetic) {
  const grnet::CaseStudy g = grnet::build_case_study();
  const auto stats = grnet::table2_stats(g, grnet::TimeOfDay::k8am);
  const vra::LvnCalculator calc{g.topology, stats};
  const std::string out =
      vra::format_validation_table(g.topology, calc);
  EXPECT_NE(out.find("Patra-Athens"), std::string::npos);
  EXPECT_NE(out.find("LVN"), std::string::npos);
  // The published 8am LVN for Patra-Athens (0.0832 computed).
  EXPECT_NE(out.find("0.0832"), std::string::npos);
  // LT for Patra-Athens is the 10% of Table 2.
  EXPECT_NE(out.find("0.1000"), std::string::npos);
}

}  // namespace
}  // namespace vod
