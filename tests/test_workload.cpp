#include "workload/catalog_gen.h"
#include "workload/request_gen.h"
#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace vod::workload {
namespace {

TEST(Zipf, ValidatesArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, -0.1), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  const ZipfDistribution zipf{50, 1.0};
  double sum = 0.0;
  for (std::size_t k = 0; k < 50; ++k) sum += zipf.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, ProbabilitiesDecreaseWithRank) {
  const ZipfDistribution zipf{20, 1.0};
  for (std::size_t k = 1; k < 20; ++k) {
    EXPECT_GT(zipf.probability(k - 1), zipf.probability(k));
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfDistribution zipf{10, 0.0};
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.probability(k), 0.1, 1e-12);
  }
}

TEST(Zipf, ClassicRatioAtSkewOne) {
  const ZipfDistribution zipf{100, 1.0};
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(9), 10.0, 1e-9);
}

TEST(Zipf, SamplesMatchDistribution) {
  const ZipfDistribution zipf{10, 1.0};
  Rng rng{42};
  std::map<std::size_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.probability(0),
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[4]) / n, zipf.probability(4),
              0.01);
}

TEST(Zipf, SampleAlwaysInRange) {
  const ZipfDistribution zipf{5, 2.0};
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.sample(rng), 5u);
  }
}

TEST(Zipf, ProbabilityOutOfRangeThrows) {
  const ZipfDistribution zipf{5, 1.0};
  EXPECT_THROW(zipf.probability(5), std::out_of_range);
}

TEST(CatalogGen, RegistersRequestedCount) {
  db::Database db{db::AdminCredential{"s"}};
  Rng rng{1};
  const auto ids = populate_catalog(db, CatalogSpec{.title_count = 25}, rng);
  EXPECT_EQ(ids.size(), 25u);
  EXPECT_EQ(db.full_view().video_count(), 25u);
}

TEST(CatalogGen, RespectsRanges) {
  db::Database db{db::AdminCredential{"s"}};
  Rng rng{1};
  CatalogSpec spec;
  spec.title_count = 50;
  spec.min_size = MegaBytes{100.0};
  spec.max_size = MegaBytes{200.0};
  spec.min_bitrate = Mbps{2.0};
  spec.max_bitrate = Mbps{4.0};
  for (const VideoId id : populate_catalog(db, spec, rng)) {
    const auto info = db.full_view().video(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_GE(info->size.value(), 100.0);
    EXPECT_LE(info->size.value(), 200.0);
    EXPECT_GE(info->bitrate.value(), 2.0);
    EXPECT_LE(info->bitrate.value(), 4.0);
  }
}

TEST(CatalogGen, DegenerateRangesAllowed) {
  db::Database db{db::AdminCredential{"s"}};
  Rng rng{1};
  CatalogSpec spec;
  spec.title_count = 3;
  spec.min_size = spec.max_size = MegaBytes{700.0};
  spec.min_bitrate = spec.max_bitrate = Mbps{1.5};
  for (const VideoId id : populate_catalog(db, spec, rng)) {
    EXPECT_EQ(db.full_view().video(id)->size, MegaBytes{700.0});
  }
}

TEST(CatalogGen, Validation) {
  db::Database db{db::AdminCredential{"s"}};
  Rng rng{1};
  EXPECT_THROW(populate_catalog(db, CatalogSpec{.title_count = 0}, rng),
               std::invalid_argument);
  CatalogSpec inverted;
  inverted.min_size = MegaBytes{200.0};
  inverted.max_size = MegaBytes{100.0};
  EXPECT_THROW(populate_catalog(db, inverted, rng), std::invalid_argument);
}

TEST(RequestGen, ValidatesConstruction) {
  EXPECT_THROW(RequestGenerator({}, 1.0, {NodeId{0}}),
               std::invalid_argument);
  EXPECT_THROW(RequestGenerator({VideoId{0}}, 1.0, {}),
               std::invalid_argument);
  EXPECT_THROW(
      RequestGenerator({VideoId{0}}, 1.0, {NodeId{0}}, {1.0, 2.0}),
      std::invalid_argument);
}

TEST(RequestGen, PoissonRateApproximatelyHonored) {
  RequestGenerator gen{{VideoId{0}, VideoId{1}}, 1.0,
                       {NodeId{0}, NodeId{1}}};
  Rng rng{5};
  const auto requests = gen.generate(SimTime{0.0}, Duration{10000.0}, 0.5, rng);
  EXPECT_NEAR(static_cast<double>(requests.size()), 5000.0, 300.0);
}

TEST(RequestGen, RequestsWithinWindowAndSorted) {
  RequestGenerator gen{{VideoId{0}}, 1.0, {NodeId{0}}};
  Rng rng{5};
  const auto requests = gen.generate(SimTime{100.0}, Duration{50.0}, 1.0, rng);
  SimTime last{0.0};
  for (const Request& request : requests) {
    EXPECT_GE(request.at.seconds(), 100.0);
    EXPECT_LT(request.at.seconds(), 150.0);
    EXPECT_GE(request.at, last);
    last = request.at;
  }
}

TEST(RequestGen, DeterministicPerSeed) {
  RequestGenerator gen{{VideoId{0}, VideoId{1}, VideoId{2}}, 1.0,
                       {NodeId{0}, NodeId{1}}};
  Rng rng1{9};
  Rng rng2{9};
  const auto a = gen.generate(SimTime{0.0}, Duration{100.0}, 1.0, rng1);
  const auto b = gen.generate(SimTime{0.0}, Duration{100.0}, 1.0, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].home, b[i].home);
    EXPECT_EQ(a[i].video, b[i].video);
  }
}

TEST(RequestGen, GenerateCountExact) {
  RequestGenerator gen{{VideoId{0}, VideoId{1}}, 1.0, {NodeId{0}}};
  Rng rng{3};
  const auto requests =
      gen.generate_count(SimTime{0.0}, Duration{100.0}, 42, rng);
  EXPECT_EQ(requests.size(), 42u);
}

TEST(RequestGen, HomeWeightsHonored) {
  RequestGenerator gen{{VideoId{0}}, 0.0, {NodeId{0}, NodeId{1}},
                       {0.0, 1.0}};
  Rng rng{3};
  for (const Request& request :
       gen.generate_count(SimTime{0.0}, Duration{10.0}, 100, rng)) {
    EXPECT_EQ(request.home, NodeId{1});
  }
}

TEST(RequestGen, DiurnalMeanRateApproximatelyHonored) {
  RequestGenerator gen{{VideoId{0}}, 1.0, {NodeId{0}}};
  Rng rng{13};
  // Two full days at 0.1/s mean: expect ~17280 requests.
  const auto requests = gen.generate_diurnal(
      SimTime{0.0}, Duration{2.0 * 86400.0}, 0.1, 20.0, 3.0, rng);
  EXPECT_NEAR(static_cast<double>(requests.size()), 17280.0, 600.0);
}

TEST(RequestGen, DiurnalPeakBeatsTrough) {
  RequestGenerator gen{{VideoId{0}}, 1.0, {NodeId{0}}};
  Rng rng{13};
  const auto requests = gen.generate_diurnal(
      SimTime{0.0}, Duration{86400.0}, 0.1, 20.0, 4.0, rng);
  int near_peak = 0;
  int near_trough = 0;  // trough at 8h
  for (const Request& request : requests) {
    const double hour = request.at.seconds() / 3600.0;
    if (hour >= 18.0 && hour < 22.0) ++near_peak;
    if (hour >= 6.0 && hour < 10.0) ++near_trough;
  }
  EXPECT_GT(near_peak, 2 * near_trough);
}

TEST(RequestGen, DiurnalSortedAndBounded) {
  RequestGenerator gen{{VideoId{0}}, 1.0, {NodeId{0}}};
  Rng rng{13};
  const auto requests = gen.generate_diurnal(SimTime{1000.0}, Duration{3600.0}, 0.05,
                                             12.0, 2.0, rng);
  SimTime last{0.0};
  for (const Request& request : requests) {
    EXPECT_GE(request.at.seconds(), 1000.0);
    EXPECT_LT(request.at.seconds(), 4600.0);
    EXPECT_GE(request.at, last);
    last = request.at;
  }
}

TEST(RequestGen, DiurnalValidation) {
  RequestGenerator gen{{VideoId{0}}, 1.0, {NodeId{0}}};
  Rng rng{13};
  EXPECT_THROW(
      gen.generate_diurnal(SimTime{0.0}, Duration{10.0}, 0.0, 12.0, 2.0, rng),
      std::invalid_argument);
  EXPECT_THROW(
      gen.generate_diurnal(SimTime{0.0}, Duration{10.0}, 1.0, 24.0, 2.0, rng),
      std::invalid_argument);
  EXPECT_THROW(
      gen.generate_diurnal(SimTime{0.0}, Duration{10.0}, 1.0, 12.0, 0.5, rng),
      std::invalid_argument);
}

TEST(RequestGen, PopularTitlesDominatUnderHighSkew) {
  std::vector<VideoId> videos;
  for (int i = 0; i < 50; ++i) {
    videos.push_back(VideoId{static_cast<VideoId::underlying_type>(i)});
  }
  RequestGenerator gen{videos, 1.2, {NodeId{0}}};
  Rng rng{11};
  int top_five = 0;
  const auto requests = gen.generate_count(SimTime{0.0}, Duration{10.0}, 2000, rng);
  for (const Request& request : requests) {
    if (request.video.value() < 5) ++top_five;
  }
  // Under Zipf(1.2) over 50 titles the top five take the majority.
  EXPECT_GT(top_five, 1000);
}

}  // namespace
}  // namespace vod::workload
