// The fault-injection engine and the failover machinery it exercises:
// scripted and seeded fault schedules, proactive session failover,
// the watchdog-only baseline, service-level retries with backoff, the
// VRA's degraded mode, and the no-hung-sessions guarantee under a storm.
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "service/report.h"
#include "service/vod_service.h"

namespace vod {
namespace {

const db::AdminCredential kAdmin{"secret"};

/// GRNET service with one 100 MB title replicated at Thessaloniki and
/// Xanthi.  On an idle network Patra pulls from Thessaloniki via Ioannina
/// (both 2 Mbps hops), so one cluster takes 40 s.
struct Fixture {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  std::unique_ptr<service::VodService> service;
  VideoId movie;

  explicit Fixture(service::ServiceOptions options = make_options()) {
    service = std::make_unique<service::VodService>(sim, g.topology,
                                                    network, options,
                                                    kAdmin);
    movie = service->add_video("movie", MegaBytes{100.0}, Mbps{2.0});
    service->place_initial_copy(g.thessaloniki, movie);
    service->place_initial_copy(g.xanthi, movie);
    service->start();
  }

  static service::ServiceOptions make_options() {
    service::ServiceOptions options;
    options.cluster_size = MegaBytes{10.0};
    options.snmp_interval_seconds = 30.0;
    options.dma.admission_threshold = 1'000'000;  // routing only
    return options;
  }
};

TEST(FaultInjector, ScriptedFaultsApplyInOrderAndTrace) {
  service::ServiceOptions options = Fixture::make_options();
  options.degraded_stats_age_seconds = 90.0;
  Fixture fx{options};
  fault::FaultInjector injector{fx.sim, *fx.service};

  injector.cut_link_at(SimTime{10.0}, fx.g.patra_ioannina);
  injector.crash_server_at(SimTime{20.0}, fx.g.thessaloniki);
  injector.fail_disk_at(SimTime{30.0}, fx.g.xanthi, 0);
  injector.snmp_outage_at(SimTime{40.0});
  injector.snmp_restore_at(SimTime{200.0});
  injector.restore_link_at(SimTime{250.0}, fx.g.patra_ioannina);
  injector.restore_server_at(SimTime{260.0}, fx.g.thessaloniki);

  // Mid-storm probes.
  bool link_down_mid = false;
  bool crashed_mid = false;
  bool snmp_stopped_mid = false;
  bool degraded_mid = false;
  fx.sim.schedule_at(SimTime{150.0}, [&](SimTime) {
    link_down_mid = !fx.network.link_up(fx.g.patra_ioannina);
    crashed_mid = fx.service->server_crashed(fx.g.thessaloniki);
    snmp_stopped_mid = !fx.service->snmp().running();
    // Last poll was at t=30 (outage began at 40): all stats are 120 s
    // old against a 90 s threshold -> the monitor counts as dark.
    degraded_mid = fx.service->vra().degraded_active();
  });
  fx.sim.run_until(SimTime{400.0});

  const auto& trace = injector.trace();
  ASSERT_EQ(trace.size(), 7u);
  const fault::FaultKind expected_order[] = {
      fault::FaultKind::kLinkCut,      fault::FaultKind::kServerCrash,
      fault::FaultKind::kDiskFailure,  fault::FaultKind::kSnmpOutage,
      fault::FaultKind::kSnmpRestore,  fault::FaultKind::kLinkRestore,
      fault::FaultKind::kServerRestore};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].kind, expected_order[i]) << "record " << i;
  }
  EXPECT_EQ(trace.front().at, SimTime{10.0});
  EXPECT_EQ(trace.back().at, SimTime{260.0});
  EXPECT_EQ(injector.count(fault::FaultKind::kLinkCut), 1u);
  EXPECT_EQ(injector.count(fault::FaultKind::kServerCrash), 1u);
  EXPECT_EQ(injector.count(fault::FaultKind::kDiskFailure), 1u);

  EXPECT_TRUE(link_down_mid);
  EXPECT_TRUE(crashed_mid);
  EXPECT_TRUE(snmp_stopped_mid);
  EXPECT_TRUE(degraded_mid);

  // Everything scripted to heal has healed...
  EXPECT_TRUE(fx.network.link_up(fx.g.patra_ioannina));
  EXPECT_FALSE(fx.service->server_crashed(fx.g.thessaloniki));
  EXPECT_TRUE(fx.service->snmp().running());
  ASSERT_TRUE(fx.service->snmp().last_poll_at().has_value());
  EXPECT_GE(fx.service->snmp().last_poll_at()->seconds(), 230.0);
  EXPECT_FALSE(fx.service->vra().degraded_active());
  // ...except the failed disk: Xanthi lost its (striped) copy for good.
  const auto holders =
      fx.service->database().full_view().servers_with_title(fx.movie);
  ASSERT_EQ(holders.size(), 1u);
  EXPECT_EQ(holders.front(), fx.g.thessaloniki);
}

// Determinism audit: faults scheduled for the same instant apply in the
// order they were scheduled — the event queue's sequence tiebreak, not heap
// luck, decides.  A cut+restore pair at one instant nets out to "restored"
// and the trace shows both records in scheduling order.
TEST(FaultInjector, SameInstantFaultsApplyInSchedulingOrder) {
  Fixture fx;
  fault::FaultInjector injector{fx.sim, *fx.service};

  injector.cut_link_at(SimTime{50.0}, fx.g.patra_ioannina);
  injector.snmp_outage_at(SimTime{50.0});
  injector.restore_link_at(SimTime{50.0}, fx.g.patra_ioannina);
  injector.crash_server_at(SimTime{50.0}, fx.g.thessaloniki);
  fx.sim.run_until(SimTime{60.0});

  const auto& trace = injector.trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].kind, fault::FaultKind::kLinkCut);
  EXPECT_EQ(trace[1].kind, fault::FaultKind::kSnmpOutage);
  EXPECT_EQ(trace[2].kind, fault::FaultKind::kLinkRestore);
  EXPECT_EQ(trace[3].kind, fault::FaultKind::kServerCrash);
  for (const auto& record : trace) EXPECT_EQ(record.at, SimTime{50.0});

  // The pair nets out to restored; the crash stands.
  EXPECT_TRUE(fx.network.link_up(fx.g.patra_ioannina));
  EXPECT_TRUE(fx.service->server_crashed(fx.g.thessaloniki));
}

TEST(FaultInjector, SeededScheduleIsDeterministic) {
  fault::FaultScheduleOptions storm;
  storm.horizon_seconds = 1800.0;
  storm.link_mtbf_seconds = 600.0;
  storm.link_mttr_seconds = 150.0;
  storm.server_mtbf_seconds = 700.0;
  storm.server_mttr_seconds = 200.0;
  storm.snmp_mtbf_seconds = 900.0;
  storm.snmp_mttr_seconds = 250.0;

  auto run = [&](std::uint64_t seed) {
    Fixture fx;
    fault::FaultInjector injector{fx.sim, *fx.service};
    injector.schedule_random(storm, seed);
    fx.sim.run_until(from_hours(1.5));
    return injector.trace();
  };

  const auto first = run(42);
  const auto second = run(42);
  const auto other = run(43);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST(ProactiveFailover, ServerCrashMidStreamSwitchesImmediately) {
  Fixture fx;
  fault::FaultInjector injector{fx.sim, *fx.service};
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  injector.crash_server_at(SimTime{15.0}, fx.g.thessaloniki);
  fx.sim.run_until(from_hours(2.0));

  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.proactive_failovers, 1);
  // The connection reset re-selects in the same instant: zero latency.
  ASSERT_EQ(m.failover_latencies.size(), 1u);
  EXPECT_NEAR(m.failover_latencies.front(), 0.0, 1e-9);
  EXPECT_EQ(m.stall_retries, 0);
  EXPECT_EQ(m.cluster_sources.back(), fx.g.xanthi);
}

TEST(ProactiveFailover, LinkCutMidStreamSwitchesImmediately) {
  Fixture fx;
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  fx.sim.run_until(SimTime{15.0});
  // Cut a link of the in-flight route; the re-selection must route around
  // it (the database learns via the connection reset, well before the
  // next SNMP poll).
  const auto links = fx.service->session(id).inflight_links();
  ASSERT_FALSE(links.empty());
  const LinkId hit = links.front();
  fx.service->fail_link(hit);
  const auto& rerouted = fx.service->session(id).inflight_links();
  EXPECT_EQ(std::find(rerouted.begin(), rerouted.end(), hit),
            rerouted.end());
  fx.sim.run_until(from_hours(2.0));

  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.proactive_failovers, 1);
  ASSERT_EQ(m.failover_latencies.size(), 1u);
  EXPECT_NEAR(m.failover_latencies.front(), 0.0, 1e-9);
  EXPECT_EQ(m.stall_retries, 0);
}

TEST(WatchdogFailover, BlackHoledCrashIsRescuedByWatchdog) {
  service::ServiceOptions options = Fixture::make_options();
  options.failover.proactive = false;  // watchdog-only baseline
  options.session.stall_timeout_seconds = 60.0;
  Fixture fx{options};
  fault::FaultInjector injector{fx.sim, *fx.service};
  const SessionId id = fx.service->request_at(fx.g.patra, fx.movie);
  // The crash black-holes the transfer (links stay up, bytes stop): only
  // the stall watchdog can notice, one timeout after the fetch began.
  injector.crash_server_at(SimTime{15.0}, fx.g.thessaloniki);
  fx.sim.run_until(from_hours(2.0));

  const stream::SessionMetrics& m = fx.service->session_metrics(id);
  EXPECT_TRUE(m.finished);
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.proactive_failovers, 0);
  EXPECT_GE(m.stall_retries, 1);
  // Crash at 15, watchdog at 60 (cluster 0 began at 0): 45 s to recover.
  ASSERT_EQ(m.failover_latencies.size(), 1u);
  EXPECT_NEAR(m.failover_latencies.front(), 45.0, 1e-9);
  EXPECT_EQ(m.cluster_sources.back(), fx.g.xanthi);
}

TEST(ServiceRetry, FailedSessionIsResubmittedWithBackoff) {
  service::ServiceOptions options = Fixture::make_options();
  options.failover.retry_limit = 3;
  options.failover.retry_backoff_seconds = 30.0;
  options.failover.retry_backoff_factor = 2.0;
  Fixture fx{options};
  // Single replica: while Thessaloniki is down the title is unservable.
  fx.service->fail_disk(fx.g.xanthi, 0);
  fault::FaultInjector injector{fx.sim, *fx.service};

  int done_calls = 0;
  bool final_finished = false;
  const SessionId id = fx.service->request_at(
      fx.g.patra, fx.movie, [&](const stream::Session& session) {
        ++done_calls;
        final_finished = session.metrics().finished;
      });
  injector.crash_server_at(SimTime{5.0}, fx.g.thessaloniki);
  injector.restore_server_at(SimTime{50.0}, fx.g.thessaloniki);
  fx.sim.run_until(from_hours(2.0));

  // t=5: crash fails the session (no holder left); retry #1 at t=35 still
  // finds the server down and fails; retry #2 at t=95 streams to the end.
  EXPECT_EQ(fx.service->service_retry_count(), 2u);
  EXPECT_TRUE(fx.service->session_superseded(id));
  const auto second = fx.service->retried_as(id);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(fx.service->session_superseded(*second));
  const auto third = fx.service->retried_as(*second);
  ASSERT_TRUE(third.has_value());
  EXPECT_FALSE(fx.service->session_superseded(*third));
  EXPECT_TRUE(fx.service->session_metrics(*third).finished);
  // The user callback fired exactly once, for the surviving attempt.
  EXPECT_EQ(done_calls, 1);
  EXPECT_TRUE(final_finished);

  // The report counts one request, served: availability 100%.
  const auto report =
      service::build_resilience_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.sessions, 3u);
  EXPECT_EQ(report.requests, 1u);
  EXPECT_EQ(report.finished, 1u);
  EXPECT_EQ(report.hung, 0u);
  EXPECT_EQ(report.service_retries, 2u);
  EXPECT_DOUBLE_EQ(report.availability(), 1.0);
}

TEST(DegradedMode, StaleStatsFallBackToMinHop) {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    db.register_server(node, g.topology.node_name(node), {});
  }
  for (const net::LinkInfo& info : g.topology.links()) {
    db.register_link(info.id, info.name, info.capacity);
  }
  const VideoId movie = db.register_video("m", MegaBytes{900.0}, Mbps{2.0});
  auto view = db.limited_view(kAdmin);
  // Direct Patra-Athens hop saturated; everything else nearly idle.
  for (const LinkId link : g.links_in_paper_order()) {
    view.update_link_stats(link, Mbps{0.1}, 0.05, SimTime{0.0});
  }
  view.update_link_stats(g.patra_athens, Mbps{1.9}, 0.95, SimTime{0.0});
  view.add_title(g.athens, movie);

  SimTime now{0.0};
  vra::Vra vra{g.topology, db.full_view(), db.limited_view(kAdmin), {}};
  vra.configure_degraded_mode(Duration{120.0}, [&now] { return now; });

  // Fresh statistics: the LVN weights rule.
  now = SimTime{60.0};
  EXPECT_FALSE(vra.degraded_active());
  const auto fresh = vra.select_server(g.patra, movie);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->degraded);

  // Monitor dark: every record is 1000 s old.  Stop trusting the stale
  // LVNs; take the fewest hops over links still believed up — the direct
  // (actually congested) Patra-Athens hop.
  now = SimTime{1000.0};
  EXPECT_TRUE(vra.degraded_active());
  const auto stale = vra.select_server(g.patra, movie);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->degraded);
  EXPECT_EQ(stale->server, g.athens);
  ASSERT_EQ(stale->path.links.size(), 1u);
  EXPECT_EQ(stale->path.links.front(), g.patra_athens);
  EXPECT_DOUBLE_EQ(stale->path.cost, 1.0);

  // A link known to be down is excluded even in degraded mode.
  view.set_link_online(g.patra_athens, false);
  const auto rerouted = vra.select_server(g.patra, movie);
  ASSERT_TRUE(rerouted.has_value());
  EXPECT_TRUE(rerouted->degraded);
  EXPECT_EQ(rerouted->path.links.size(), 3u);
  EXPECT_EQ(vra.degraded_selection_count(), 2u);
}

TEST(ZeroHang, SeededFaultStormLeavesNoSessionInFlight) {
  service::ServiceOptions options = Fixture::make_options();
  options.failover.retry_limit = 2;
  options.degraded_stats_age_seconds = 90.0;
  Fixture fx{options};
  fault::FaultInjector injector{fx.sim, *fx.service};

  const NodeId homes[] = {fx.g.patra, fx.g.athens, fx.g.ioannina,
                          fx.g.heraklio};
  for (int i = 0; i < 12; ++i) {
    const NodeId home = homes[i % 4];
    fx.sim.schedule_at(SimTime{10.0 + 60.0 * i}, [&fx, home](SimTime) {
      fx.service->request_at(home, fx.movie);
    });
  }

  fault::FaultScheduleOptions storm;
  storm.horizon_seconds = 900.0;
  storm.link_mtbf_seconds = 500.0;
  storm.link_mttr_seconds = 120.0;
  storm.server_mtbf_seconds = 600.0;
  storm.server_mttr_seconds = 150.0;
  storm.snmp_mtbf_seconds = 700.0;
  storm.snmp_mttr_seconds = 200.0;
  injector.schedule_random(storm, 7);

  fx.sim.run_until(from_hours(3.0));

  // The hard guarantee: every session either finished or failed with an
  // explicit reason — the default watchdog leaves nothing hanging.
  for (const SessionId id : fx.service->session_ids()) {
    const stream::SessionMetrics& m = fx.service->session_metrics(id);
    EXPECT_TRUE(m.finished || m.failed) << "session " << id.value();
    if (m.failed) {
      EXPECT_FALSE(m.failure_reason.empty()) << "session " << id.value();
    }
  }
  EXPECT_EQ(fx.service->transfers().active_count(), 0u);
  const auto report =
      service::build_resilience_report(*fx.service, Mbps{0.0});
  EXPECT_EQ(report.requests, 12u);
  EXPECT_EQ(report.hung, 0u);
  EXPECT_GT(report.finished, 0u);
}

}  // namespace
}  // namespace vod
