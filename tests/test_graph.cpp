#include "routing/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vod::routing {
namespace {

TEST(Graph, AddNodeAssignsDenseIds) {
  Graph graph;
  EXPECT_EQ(graph.add_node("a").value(), 0u);
  EXPECT_EQ(graph.add_node("b").value(), 1u);
  EXPECT_EQ(graph.node_count(), 2u);
}

TEST(Graph, NodeNamesPreserved) {
  Graph graph;
  const NodeId a = graph.add_node("U1");
  EXPECT_EQ(graph.node_name(a), "U1");
}

TEST(Graph, EmptyNameGetsDefault) {
  Graph graph;
  const NodeId a = graph.add_node();
  EXPECT_EQ(graph.node_name(a), "n0");
}

TEST(Graph, UndirectedEdgeVisibleFromBothEnds) {
  Graph graph;
  const NodeId a = graph.add_node("a");
  const NodeId b = graph.add_node("b");
  graph.add_undirected_edge(a, b, LinkId{0}, 2.5);
  ASSERT_EQ(graph.neighbors(a).size(), 1u);
  ASSERT_EQ(graph.neighbors(b).size(), 1u);
  EXPECT_EQ(graph.neighbors(a)[0].to, b);
  EXPECT_EQ(graph.neighbors(b)[0].to, a);
  EXPECT_DOUBLE_EQ(graph.neighbors(a)[0].weight, 2.5);
}

TEST(Graph, EdgeCountTracksUndirectedEdges) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  const NodeId c = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  graph.add_undirected_edge(b, c, LinkId{1}, 1.0);
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph graph;
  const NodeId a = graph.add_node();
  EXPECT_THROW(graph.add_undirected_edge(a, a, LinkId{0}, 1.0),
               std::invalid_argument);
}

TEST(Graph, RejectsUnknownEndpoint) {
  Graph graph;
  const NodeId a = graph.add_node();
  EXPECT_THROW(graph.add_undirected_edge(a, NodeId{9}, LinkId{0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(graph.add_undirected_edge(a, NodeId{}, LinkId{0}, 1.0),
               std::invalid_argument);
}

TEST(Graph, RejectsNegativeWeight) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  EXPECT_THROW(graph.add_undirected_edge(a, b, LinkId{0}, -0.5),
               std::invalid_argument);
}

TEST(Graph, RejectsDuplicateLinkId) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  const NodeId c = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  EXPECT_THROW(graph.add_undirected_edge(b, c, LinkId{0}, 1.0),
               std::invalid_argument);
}

TEST(Graph, SetEdgeWeightUpdatesBothDirections) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  graph.set_edge_weight(LinkId{0}, 9.0);
  EXPECT_DOUBLE_EQ(graph.neighbors(a)[0].weight, 9.0);
  EXPECT_DOUBLE_EQ(graph.neighbors(b)[0].weight, 9.0);
  EXPECT_DOUBLE_EQ(*graph.edge_weight(LinkId{0}), 9.0);
}

TEST(Graph, SetEdgeWeightUnknownLinkThrows) {
  Graph graph;
  EXPECT_THROW(graph.set_edge_weight(LinkId{7}, 1.0), std::out_of_range);
}

TEST(Graph, SetEdgeWeightRejectsNegative) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  EXPECT_THROW(graph.set_edge_weight(LinkId{0}, -1.0),
               std::invalid_argument);
}

TEST(Graph, EdgeWeightUnknownReturnsNullopt) {
  Graph graph;
  EXPECT_FALSE(graph.edge_weight(LinkId{0}).has_value());
  EXPECT_FALSE(graph.edge_weight(LinkId{}).has_value());
}

TEST(Graph, EdgeEndpointsLookup) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{3}, 1.0);
  const auto endpoints = graph.edge_endpoints(LinkId{3});
  ASSERT_TRUE(endpoints.has_value());
  EXPECT_EQ(endpoints->first, a);
  EXPECT_EQ(endpoints->second, b);
}

TEST(Graph, HasNode) {
  Graph graph;
  const NodeId a = graph.add_node();
  EXPECT_TRUE(graph.has_node(a));
  EXPECT_FALSE(graph.has_node(NodeId{5}));
  EXPECT_FALSE(graph.has_node(NodeId{}));
}

TEST(Graph, NeighborsOfUnknownNodeThrows) {
  Graph graph;
  EXPECT_THROW(graph.neighbors(NodeId{0}), std::invalid_argument);
}

TEST(Graph, ParallelEdgesAllowedWithDistinctLinks) {
  Graph graph;
  const NodeId a = graph.add_node();
  const NodeId b = graph.add_node();
  graph.add_undirected_edge(a, b, LinkId{0}, 1.0);
  graph.add_undirected_edge(a, b, LinkId{1}, 2.0);
  EXPECT_EQ(graph.neighbors(a).size(), 2u);
  EXPECT_EQ(graph.edge_count(), 2u);
}

}  // namespace
}  // namespace vod::routing
