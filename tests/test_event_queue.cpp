#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vod::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(SimTime{3.0}, [&](SimTime) { fired.push_back(3); });
  queue.schedule(SimTime{1.0}, [&](SimTime) { fired.push_back(1); });
  queue.schedule(SimTime{2.0}, [&](SimTime) { fired.push_back(2); });
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(SimTime{1.0}, [&, i](SimTime) { fired.push_back(i); });
  }
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Regression (determinism audit): cancelling some of a same-time batch must
// not disturb the schedule order of the survivors — the sequence tiebreak
// is assigned at schedule time and cancellation only removes entries.
TEST(EventQueue, SameTimeOrderSurvivesInterleavedCancels) {
  EventQueue queue;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(
        queue.schedule(SimTime{1.0}, [&, i](SimTime) { fired.push_back(i); }));
  }
  EXPECT_TRUE(queue.cancel(handles[1]));
  EXPECT_TRUE(queue.cancel(handles[4]));
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 2, 3, 5}));
}

// An event scheduled *during* a same-time batch (for the same instant) fires
// after the whole batch: its sequence number is necessarily larger.
TEST(EventQueue, SameTimeEventScheduledMidBatchFiresLast) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(SimTime{1.0}, [&](SimTime) {
    fired.push_back(0);
    queue.schedule(SimTime{1.0}, [&](SimTime) { fired.push_back(9); });
  });
  queue.schedule(SimTime{1.0}, [&](SimTime) { fired.push_back(1); });
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 9}));
}

TEST(EventQueue, CallbackReceivesEventTime) {
  EventQueue queue;
  SimTime seen{0.0};
  queue.schedule(SimTime{7.5}, [&](SimTime t) { seen = t; });
  queue.run_next();
  EXPECT_EQ(seen, SimTime{7.5});
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue queue;
  queue.schedule(SimTime{2.0}, [](SimTime) {});
  EXPECT_EQ(queue.now(), SimTime{0.0});
  queue.run_next();
  EXPECT_EQ(queue.now(), SimTime{2.0});
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue queue;
  queue.schedule(SimTime{5.0}, [](SimTime) {});
  queue.run_next();
  EXPECT_THROW(queue.schedule(SimTime{4.0}, [](SimTime) {}),
               std::invalid_argument);
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue queue;
  queue.schedule(SimTime{5.0}, [](SimTime) {});
  queue.run_next();
  EXPECT_NO_THROW(queue.schedule(SimTime{5.0}, [](SimTime) {}));
}

TEST(EventQueue, RejectsEmptyCallback) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(SimTime{1.0}, EventQueue::Callback{}),
               std::invalid_argument);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventHandle handle =
      queue.schedule(SimTime{1.0}, [&](SimTime) { fired = true; });
  EXPECT_TRUE(queue.cancel(handle));
  while (queue.run_next()) {
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime{1.0}, [](SimTime) {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelAfterFiringFails) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime{1.0}, [](SimTime) {});
  queue.run_next();
  EXPECT_FALSE(queue.cancel(handle));
}

// Regression: the seed accepted cancels of already-fired handles whenever
// any other event was live, decrementing the live count and leaking the
// sequence into the cancelled set forever.
TEST(EventQueue, CancelOfFiredHandleWithOthersPendingIsRejected) {
  EventQueue queue;
  bool survivor_fired = false;
  const EventHandle first = queue.schedule(SimTime{1.0}, [](SimTime) {});
  queue.schedule(SimTime{2.0}, [&](SimTime) { survivor_fired = true; });
  queue.run_next();  // fires `first`
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_EQ(queue.pending_count(), 1u);
  EXPECT_FALSE(queue.empty());
  EXPECT_TRUE(queue.run_next());
  EXPECT_TRUE(survivor_fired);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RepeatedStaleCancelsNeverCorruptCounts) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(queue.schedule(SimTime{1.0 + i}, [](SimTime) {}));
  }
  queue.run_next();
  queue.run_next();
  // Both fired handles must be rejected, twice, without touching the count.
  for (int round = 0; round < 2; ++round) {
    EXPECT_FALSE(queue.cancel(handles[0]));
    EXPECT_FALSE(queue.cancel(handles[1]));
  }
  EXPECT_EQ(queue.pending_count(), 2u);
  EXPECT_TRUE(queue.cancel(handles[2]));
  EXPECT_EQ(queue.pending_count(), 1u);
  while (queue.run_next()) {
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pending_count(), 0u);
}

TEST(EventQueue, NextTimeOnConstQueueSkipsCancelled) {
  EventQueue queue;
  const EventHandle a = queue.schedule(SimTime{1.0}, [](SimTime) {});
  queue.schedule(SimTime{2.0}, [](SimTime) {});
  queue.cancel(a);
  const EventQueue& view = queue;
  ASSERT_TRUE(view.next_time().has_value());
  EXPECT_EQ(*view.next_time(), SimTime{2.0});
  EXPECT_EQ(view.pending_count(), 1u);
}

TEST(EventQueue, CancelInvalidHandleFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(EventHandle{}));
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue queue;
  EXPECT_EQ(queue.pending_count(), 0u);
  const EventHandle a = queue.schedule(SimTime{1.0}, [](SimTime) {});
  queue.schedule(SimTime{2.0}, [](SimTime) {});
  EXPECT_EQ(queue.pending_count(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.pending_count(), 1u);
  queue.run_next();
  EXPECT_EQ(queue.pending_count(), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventHandle a = queue.schedule(SimTime{1.0}, [](SimTime) {});
  queue.schedule(SimTime{2.0}, [](SimTime) {});
  queue.cancel(a);
  ASSERT_TRUE(queue.next_time().has_value());
  EXPECT_EQ(*queue.next_time(), SimTime{2.0});
}

TEST(EventQueue, NextTimeEmptyWhenDrained) {
  EventQueue queue;
  EXPECT_FALSE(queue.next_time().has_value());
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<double> fired;
  queue.schedule(SimTime{1.0}, [&](SimTime t) {
    fired.push_back(t.seconds());
    queue.schedule(SimTime{2.0},
                   [&](SimTime t2) { fired.push_back(t2.seconds()); });
  });
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueue, HeavyCancellationCompactsHeap) {
  // Fault storms cancel whole batches of watchdogs; once cancelled entries
  // outnumber live ones the heap is compacted so memory stays bounded at
  // ~2x the live events instead of growing with cancellation history.
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        queue.schedule(SimTime{static_cast<double>(i + 1)}, [](SimTime) {}));
  }
  for (int i = 0; i < 999; ++i) queue.cancel(handles[i]);
  EXPECT_EQ(queue.pending_count(), 1u);
  EXPECT_LE(queue.heap_size(), 2u);
}

TEST(EventQueue, CompactionPreservesSameTimeScheduleOrder) {
  // Regression: compaction rebuilds the heap; same-time events must still
  // fire in their original scheduling order afterwards.
  EventQueue queue;
  std::vector<int> fired;
  // Ten same-time survivors interleaved with enough doomed events that
  // cancelling them triggers (several) compactions.
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(SimTime{5.0}, [&fired, i](SimTime) { fired.push_back(i); });
    for (int j = 0; j < 4; ++j) {
      doomed.push_back(queue.schedule(SimTime{3.0}, [](SimTime) {}));
    }
  }
  for (const EventHandle handle : doomed) queue.cancel(handle);
  EXPECT_LE(queue.heap_size(), 20u);  // compaction actually happened
  while (queue.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace vod::sim
