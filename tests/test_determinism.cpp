// Double-run determinism harness.
//
// The repo's reproducibility guarantee (DESIGN.md §9) is that a simulation
// is a pure function of its seeds: running the identical scenario twice in
// one process must produce byte-identical artefacts — the per-session CSV,
// the formatted resilience report, and the fault trace.  These tests build
// the whole stack (GRNET topology, diurnal traffic, SNMP, VRA, sessions,
// retries) twice and compare the rendered strings, once for a plain
// workload and once under a seeded fault storm, so any hash-order
// iteration, entropy leak or float-ordering change anywhere in the
// pipeline fails loudly here.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_injector.h"
#include "grnet/grnet.h"
#include "obs/trace.h"
#include "service/report.h"
#include "service/vod_service.h"
#include "workload/request_gen.h"

namespace vod {
namespace {

const db::AdminCredential kAdmin{"determinism-admin"};

/// Everything a run externalizes, rendered to text.
struct RunDigest {
  std::string sessions_csv;
  std::string resilience;
  std::string fault_trace;

  friend bool operator==(const RunDigest&, const RunDigest&) = default;
};

std::string render_fault_trace(const fault::FaultInjector& injector) {
  std::ostringstream out;
  for (const fault::FaultRecord& record : injector.trace()) {
    out << record.at << ' ' << fault::to_string(record.kind) << ' '
        << record.target << ' ' << record.detail << '\n';
  }
  return out.str();
}

/// One full simulated day on the GRNET case study: three replicated titles,
/// a Poisson-diurnal request stream, and (optionally) a seeded fault storm.
/// With a recorder the whole run is traced — the observability layer must
/// be observe-only, so traced and untraced digests have to match.
RunDigest run_scenario(std::uint64_t seed, bool with_storm,
                       obs::TraceRecorder* recorder = nullptr) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::DiurnalTraffic traffic{20.0};
  for (const net::LinkInfo& info : g.topology.links()) {
    traffic.set_shape(info.id, {.capacity = info.capacity,
                                .base_fraction = 0.05,
                                .peak_fraction = 0.4});
  }
  sim::Simulation sim;
  if (recorder != nullptr) {
    recorder->set_clock([&sim] { return sim.now(); });
    obs::set_trace_sink(recorder);
  }
  net::FluidNetwork network{g.topology, traffic};

  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.snmp_interval_seconds = 90.0;
  options.session.stall_timeout_seconds = 600.0;
  options.dma.admission_threshold = 1'000'000;  // routing only
  service::VodService service{sim, g.topology, network, options, kAdmin};

  std::vector<VideoId> videos;
  videos.push_back(service.add_video("alpha", MegaBytes{60.0}, Mbps{1.5}));
  videos.push_back(service.add_video("beta", MegaBytes{90.0}, Mbps{2.0}));
  videos.push_back(service.add_video("gamma", MegaBytes{40.0}, Mbps{1.0}));
  for (std::size_t v = 0; v < videos.size(); ++v) {
    service.place_initial_copy(g.thessaloniki, videos[v]);
    service.place_initial_copy(v % 2 == 0 ? g.xanthi : g.ioannina,
                               videos[v]);
  }
  service.start();

  std::vector<NodeId> homes{g.patra, g.ioannina, g.xanthi};
  workload::RequestGenerator gen{videos, 1.0, homes};
  Rng rng{seed};
  const auto requests = gen.generate_diurnal(
      SimTime{0.0}, Duration{86400.0}, 30.0 / 86400.0, 20.0, 3.0, rng);
  for (const workload::Request& request : requests) {
    sim.schedule_at(request.at, [&service, request](SimTime) {
      (void)service.request_at(request.home, request.video);
    });
  }

  fault::FaultInjector injector{sim, service};
  if (with_storm) {
    fault::FaultScheduleOptions storm;
    storm.horizon_seconds = 86400.0;
    storm.link_mtbf_seconds = 14400.0;
    storm.link_mttr_seconds = 1800.0;
    storm.server_mtbf_seconds = 28800.0;
    storm.server_mttr_seconds = 3600.0;
    storm.snmp_mtbf_seconds = 43200.0;
    storm.snmp_mttr_seconds = 1800.0;
    injector.schedule_random(storm, seed + 1);
  }

  sim.run_until(from_hours(30.0));  // a day of load plus drain time
  if (recorder != nullptr) obs::set_trace_sink(nullptr);

  return RunDigest{
      .sessions_csv = service::report_sessions_csv(service),
      .resilience = service::format_resilience_report(
          service::build_resilience_report(service, Mbps{0.0})),
      .fault_trace = render_fault_trace(injector),
  };
}

TEST(Determinism, PlainWorkloadDoubleRunIsByteIdentical) {
  const RunDigest first = run_scenario(7, /*with_storm=*/false);
  const RunDigest second = run_scenario(7, /*with_storm=*/false);
  EXPECT_FALSE(first.sessions_csv.empty());
  EXPECT_EQ(first.sessions_csv, second.sessions_csv);
  EXPECT_EQ(first.resilience, second.resilience);
  EXPECT_TRUE(first.fault_trace.empty());  // no storm scheduled
}

TEST(Determinism, SeededStormDoubleRunIsByteIdentical) {
  const RunDigest first = run_scenario(11, /*with_storm=*/true);
  const RunDigest second = run_scenario(11, /*with_storm=*/true);
  EXPECT_FALSE(first.sessions_csv.empty());
  EXPECT_FALSE(first.fault_trace.empty());
  EXPECT_EQ(first.sessions_csv, second.sessions_csv);
  EXPECT_EQ(first.resilience, second.resilience);
  EXPECT_EQ(first.fault_trace, second.fault_trace);
}

TEST(Determinism, TracingLeavesArtefactsByteIdentical) {
  const RunDigest plain = run_scenario(11, /*with_storm=*/true);
  obs::TraceRecorder first;
  const RunDigest traced = run_scenario(11, /*with_storm=*/true, &first);
  // Observe-only: the recorder changes nothing the run externalizes.
  EXPECT_EQ(plain.sessions_csv, traced.sessions_csv);
  EXPECT_EQ(plain.resilience, traced.resilience);
  EXPECT_EQ(plain.fault_trace, traced.fault_trace);
  // And the trace itself is deterministic, in both export formats.
  obs::TraceRecorder second;
  (void)run_scenario(11, /*with_storm=*/true, &second);
  EXPECT_FALSE(first.events().empty());
  EXPECT_EQ(first.to_text(), second.to_text());
  EXPECT_EQ(first.to_chrome_json(), second.to_chrome_json());
}

TEST(Determinism, DifferentSeedsProduceDifferentRuns) {
  const RunDigest a = run_scenario(11, /*with_storm=*/true);
  const RunDigest b = run_scenario(12, /*with_storm=*/true);
  // The storm schedule is a pure function of the seed, so a different seed
  // must show up in the trace (the CSV could theoretically coincide).
  EXPECT_NE(a.fault_trace, b.fault_trace);
}

}  // namespace
}  // namespace vod
