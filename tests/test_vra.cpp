#include "vra/vra.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grnet/grnet.h"

namespace vod::vra {
namespace {

const db::AdminCredential kAdmin{"secret"};

/// The paper's case-study database at one instant of Table 2.
struct CaseFixture {
  grnet::CaseStudy g = grnet::build_case_study();
  db::Database db{kAdmin};
  VideoId movie;

  explicit CaseFixture(grnet::TimeOfDay t) {
    for (std::size_t n = 0; n < g.topology.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      db.register_server(node, g.topology.node_name(node), {});
    }
    for (const net::LinkInfo& info : g.topology.links()) {
      db.register_link(info.id, info.name, info.capacity);
    }
    movie = db.register_video("movie", MegaBytes{900.0}, Mbps{2.0});
    auto view = db.limited_view(kAdmin);
    for (const LinkId link : g.links_in_paper_order()) {
      const grnet::LinkSample sample = grnet::table2_sample(g, link, t);
      view.update_link_stats(link, sample.used, sample.utilization,
                             grnet::time_of(t));
    }
  }

  void place(NodeId server) {
    db.limited_view(kAdmin).add_title(server, movie);
  }

  Vra make_vra() {
    return Vra{g.topology, db.full_view(), db.limited_view(kAdmin), {}};
  }
};

TEST(Vra, HomeServerWithTitleServesLocally) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  fx.place(fx.g.patra);
  fx.place(fx.g.thessaloniki);
  const auto decision = fx.make_vra().select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->served_locally);
  EXPECT_EQ(decision->server, fx.g.patra);
  EXPECT_DOUBLE_EQ(decision->cost(), 0.0);
  EXPECT_TRUE(decision->candidates.empty());
}

TEST(Vra, NoHolderAnywhereReturnsNullopt) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  EXPECT_FALSE(
      fx.make_vra().select_server(fx.g.patra, fx.movie).has_value());
}

TEST(Vra, OfflineHoldersAreFilteredByPolling) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  fx.db.limited_view(kAdmin).set_server_online(fx.g.thessaloniki, false);
  const auto decision = fx.make_vra().select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->server, fx.g.xanthi);
  EXPECT_EQ(decision->candidates.size(), 1u);
}

TEST(Vra, OfflineHomeServerDoesNotServeLocally) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  fx.place(fx.g.patra);
  fx.place(fx.g.xanthi);
  fx.db.limited_view(kAdmin).set_server_online(fx.g.patra, false);
  const auto decision = fx.make_vra().select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->served_locally);
  EXPECT_EQ(decision->server, fx.g.xanthi);
}

TEST(Vra, UnknownInputsThrow) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  EXPECT_THROW(fx.make_vra().select_server(NodeId{99}, fx.movie),
               std::invalid_argument);
  EXPECT_THROW(fx.make_vra().select_server(fx.g.patra, VideoId{99}),
               std::invalid_argument);
}

TEST(Vra, CandidatesSortedByAscendingCost) {
  CaseFixture fx{grnet::TimeOfDay::k4pm};
  fx.place(fx.g.ioannina);
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const auto decision = fx.make_vra().select_server(fx.g.athens, fx.movie);
  ASSERT_TRUE(decision.has_value());
  ASSERT_EQ(decision->candidates.size(), 3u);
  EXPECT_LE(decision->candidates[0].path.cost,
            decision->candidates[1].path.cost);
  EXPECT_LE(decision->candidates[1].path.cost,
            decision->candidates[2].path.cost);
  EXPECT_EQ(decision->candidates[0].server, decision->server);
}

TEST(Vra, TraceRecordedOnRequest) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  fx.place(fx.g.xanthi);
  const auto with_trace =
      fx.make_vra().select_server(fx.g.patra, fx.movie, true);
  ASSERT_TRUE(with_trace.has_value());
  EXPECT_EQ(with_trace->trace.size(), 6u);  // all six nodes reachable
  const auto without_trace =
      fx.make_vra().select_server(fx.g.patra, fx.movie, false);
  ASSERT_TRUE(without_trace.has_value());
  EXPECT_TRUE(without_trace->trace.empty());
}

TEST(Vra, WeightedGraphUsesLvnWeights) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  const routing::Graph graph = fx.make_vra().current_weighted_graph();
  EXPECT_EQ(graph.node_count(), 6u);
  EXPECT_EQ(graph.edge_count(), 7u);
  // Patra-Athens at 8am: published LVN 0.083.
  EXPECT_NEAR(*graph.edge_weight(fx.g.patra_athens), 0.083, 0.001);
}

// --- Experiment A (8am, client at Patra, title at Thessaloniki+Xanthi) ---
//
// NOTE: the paper's Table 4 mis-relaxes U4 (it reports the best U2->U4 path
// as U2,U1,U4 at 0.365 and therefore picks Xanthi at 0.315).  Dijkstra on
// the paper's own Table 3 weights gives U2,U3,U4 at ~0.218, which flips the
// decision to Thessaloniki.  We assert the correct result; EXPERIMENTS.md
// records the discrepancy and shows both numbers.
TEST(VraExperiments, ExperimentA_CorrectedDecision) {
  CaseFixture fx{grnet::TimeOfDay::k8am};
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const auto decision = fx.make_vra().select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->server, fx.g.thessaloniki);
  EXPECT_EQ(decision->path.to_string(
                fx.make_vra().current_weighted_graph()),
            "U2,U3,U4");
  EXPECT_NEAR(decision->path.cost, 0.2178, 0.002);
  // The paper's intended Xanthi alternative is the other candidate, with
  // the cost the paper reports (0.315).
  ASSERT_EQ(decision->candidates.size(), 2u);
  EXPECT_EQ(decision->candidates[1].server, fx.g.xanthi);
  EXPECT_NEAR(decision->candidates[1].path.cost, 0.315, 0.002);
  EXPECT_EQ(decision->candidates[1].path.to_string(
                fx.make_vra().current_weighted_graph()),
            "U2,U1,U6,U5");
}

// --- Experiment B (10am, same request) — paper-consistent ---
TEST(VraExperiments, ExperimentB_MatchesPaper) {
  CaseFixture fx{grnet::TimeOfDay::k10am};
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const auto decision = fx.make_vra().select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->server, fx.g.thessaloniki);
  EXPECT_EQ(decision->path.to_string(
                fx.make_vra().current_weighted_graph()),
            "U2,U3,U4");
  EXPECT_NEAR(decision->path.cost, 1.007, 0.01);
  // Alternative: Xanthi via U2,U1,U6,U5 at ~1.308.
  ASSERT_EQ(decision->candidates.size(), 2u);
  EXPECT_NEAR(decision->candidates[1].path.cost, 1.308, 0.01);
}

// --- Experiment C (4pm, client at Athens, title at U3/U4/U5) ---
TEST(VraExperiments, ExperimentC_MatchesPaper) {
  CaseFixture fx{grnet::TimeOfDay::k4pm};
  fx.place(fx.g.ioannina);
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const auto decision = fx.make_vra().select_server(fx.g.athens, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->server, fx.g.ioannina);
  EXPECT_EQ(decision->path.to_string(
                fx.make_vra().current_weighted_graph()),
            "U1,U2,U3");
  EXPECT_NEAR(decision->path.cost, 1.222, 0.01);

  // Paper's per-candidate costs: U4 direct 1.5433, U5 via U6 1.274.
  ASSERT_EQ(decision->candidates.size(), 3u);
  for (const Candidate& candidate : decision->candidates) {
    if (candidate.server == fx.g.thessaloniki) {
      EXPECT_NEAR(candidate.path.cost, 1.5433, 0.01);
    } else if (candidate.server == fx.g.xanthi) {
      EXPECT_NEAR(candidate.path.cost, 1.274, 0.01);
    }
  }
}

// --- Experiment D (6pm, same request as C) ---
TEST(VraExperiments, ExperimentD_MatchesPaper) {
  CaseFixture fx{grnet::TimeOfDay::k6pm};
  fx.place(fx.g.ioannina);
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const auto decision = fx.make_vra().select_server(fx.g.athens, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->server, fx.g.ioannina);
  EXPECT_EQ(decision->path.to_string(
                fx.make_vra().current_weighted_graph()),
            "U1,U2,U3");
  EXPECT_NEAR(decision->path.cost, 1.236, 0.01);
  for (const Candidate& candidate : decision->candidates) {
    if (candidate.server == fx.g.thessaloniki) {
      EXPECT_NEAR(candidate.path.cost, 1.4824, 0.01);
    } else if (candidate.server == fx.g.xanthi) {
      EXPECT_NEAR(candidate.path.cost, 1.3574, 0.01);
    }
  }
}

TEST(Vra, ServerLoadExtensionShiftsDecisions) {
  // Experiment C scenario at 4pm: Ioannina normally wins; pegging its
  // server's CPU makes the VRA route elsewhere once the machine-load
  // weight is enabled (the paper's future-work factor).
  CaseFixture fx{grnet::TimeOfDay::k4pm};
  fx.place(fx.g.ioannina);
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  ValidationOptions options;
  options.server_load_weight = 0.5;
  const NodeId pegged = fx.g.ioannina;
  options.server_load = [pegged](NodeId node) {
    return node == pegged ? 0.95 : 0.0;
  };
  const Vra loaded{fx.g.topology, fx.db.full_view(),
                   fx.db.limited_view(kAdmin), options};
  const auto with_load = loaded.select_server(fx.g.athens, fx.movie);
  ASSERT_TRUE(with_load.has_value());
  EXPECT_NE(with_load->server, fx.g.ioannina);

  const Vra plain{fx.g.topology, fx.db.full_view(),
                  fx.db.limited_view(kAdmin), {}};
  const auto without_load = plain.select_server(fx.g.athens, fx.movie);
  ASSERT_TRUE(without_load.has_value());
  EXPECT_EQ(without_load->server, fx.g.ioannina);
}

TEST(Vra, TieBreaksTowardLowerNodeId) {
  // Two holders with identical (zero-load) path costs.
  CaseFixture fx{grnet::TimeOfDay::k8am};
  auto view = fx.db.limited_view(kAdmin);
  for (const LinkId link : fx.g.links_in_paper_order()) {
    view.update_link_stats(link, Mbps{0.0}, 0.0, SimTime{0.0});
  }
  // Thessaloniki (U4, id 3) and Xanthi (U5, id 4): both reachable at cost
  // 0 on the idle network -> U4 wins by id.
  fx.place(fx.g.thessaloniki);
  fx.place(fx.g.xanthi);
  const auto decision = fx.make_vra().select_server(fx.g.patra, fx.movie);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->server, fx.g.thessaloniki);
}

// The decision flips between A/B purely because the statistics moved —
// the "dynamic" in the title.  (With the corrected Experiment A both pick
// Thessaloniki, but the *route* to it is stable while every cost moved.)
TEST(VraExperiments, CostsRiseWithCongestionAcrossTheDay) {
  CaseFixture morning{grnet::TimeOfDay::k8am};
  morning.place(morning.g.thessaloniki);
  morning.place(morning.g.xanthi);
  CaseFixture midmorning{grnet::TimeOfDay::k10am};
  midmorning.place(midmorning.g.thessaloniki);
  midmorning.place(midmorning.g.xanthi);
  const auto at8 =
      morning.make_vra().select_server(morning.g.patra, morning.movie);
  const auto at10 = midmorning.make_vra().select_server(
      midmorning.g.patra, midmorning.movie);
  ASSERT_TRUE(at8 && at10);
  EXPECT_LT(at8->path.cost, at10->path.cost);
}

}  // namespace
}  // namespace vod::vra
