// RAID-5-style parity striping: layout, failure survival, degraded reads.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "storage/disk_array.h"
#include "storage/striping.h"

namespace vod::storage {
namespace {

DiskProfile profile(double capacity_mb) {
  return DiskProfile{.capacity = MegaBytes{capacity_mb},
                     .transfer_rate = Mbps{80.0},
                     .seek_seconds = 0.01};
}

TEST(ParityPlan, RowsOfWidthNMinusOne) {
  // 4 disks -> rows of 3 data clusters + 1 parity.  60 MB / c=10 -> 6
  // parts -> 2 rows.
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{60.0},
                                         MegaBytes{10.0}, 4);
  EXPECT_EQ(plan.part_count(), 6u);
  EXPECT_EQ(plan.row_count(), 2u);
  EXPECT_EQ(plan.row_width, 3u);
  EXPECT_TRUE(plan.has_parity());
}

TEST(ParityPlan, ParityRotatesAcrossDisks) {
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{120.0},
                                         MegaBytes{10.0}, 4);
  // 12 parts -> 4 rows; parity slots rotate 3,2,1,0.
  EXPECT_EQ(plan.parity_to_disk, (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(ParityPlan, RowMembersOnDistinctDisks) {
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{120.0},
                                         MegaBytes{10.0}, 4);
  for (std::size_t row = 0; row < plan.row_count(); ++row) {
    std::set<std::size_t> used{plan.parity_to_disk[row]};
    for (std::size_t j = 0; j < plan.row_width; ++j) {
      const std::size_t part = row * plan.row_width + j;
      if (part >= plan.part_count()) break;
      EXPECT_TRUE(used.insert(plan.part_to_disk[part]).second)
          << "row " << row << " reuses a disk";
    }
  }
}

TEST(ParityPlan, CapacityOverheadIsOneOverNMinusOne) {
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{120.0},
                                         MegaBytes{10.0}, 4);
  MegaBytes parity_total{0.0};
  for (const MegaBytes p : plan.parity_sizes) parity_total += p;
  // 12 data clusters / 3 per row = 4 parity clusters of 10 MB.
  EXPECT_EQ(parity_total, MegaBytes{40.0});
  EXPECT_NEAR(parity_total / plan.total_size(), 1.0 / 3.0, 1e-12);
}

TEST(ParityPlan, ShortFinalRowGetsParityOfLargestMember) {
  // 35 MB / c=10 -> parts 10,10,10,5 -> row0(10,10,10), row1(5).
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{35.0},
                                         MegaBytes{10.0}, 4);
  ASSERT_EQ(plan.row_count(), 2u);
  EXPECT_EQ(plan.parity_sizes[0], MegaBytes{10.0});
  EXPECT_EQ(plan.parity_sizes[1], MegaBytes{5.0});
}

TEST(ParityPlan, TwoDisksIsMirroring) {
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{30.0},
                                         MegaBytes{10.0}, 2);
  // Rows of 1 data cluster, parity = same size: full duplication.
  EXPECT_EQ(plan.row_width, 1u);
  EXPECT_EQ(plan.row_count(), 3u);
  MegaBytes parity_total{0.0};
  for (const MegaBytes p : plan.parity_sizes) parity_total += p;
  EXPECT_EQ(parity_total, plan.total_size());
}

TEST(ParityPlan, RejectsSingleDisk) {
  EXPECT_THROW(
      plan_parity_striping(VideoId{1}, MegaBytes{10.0}, MegaBytes{5.0}, 1),
      std::invalid_argument);
}

TEST(ParityPlan, PerDiskBytesIncludeParity) {
  const auto plan = plan_parity_striping(VideoId{1}, MegaBytes{30.0},
                                         MegaBytes{10.0}, 4);
  const auto per_disk = plan.per_disk_bytes(4);
  double total = 0.0;
  for (const MegaBytes b : per_disk) total += b.value();
  EXPECT_NEAR(total, 40.0, 1e-9);  // 30 data + 10 parity
}

// --- Array-level behaviour ---

TEST(ParityArray, SingleDiskFailureLosesNothing) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0},
                  StripingMode::kParity};
  ASSERT_TRUE(array.store(VideoId{1}, MegaBytes{60.0}).has_value());
  const auto lost = array.fail_disk(2);
  EXPECT_TRUE(lost.empty());
  EXPECT_TRUE(array.holds(VideoId{1}));
  EXPECT_TRUE(array.readable(VideoId{1}));
}

TEST(ParityArray, SecondOverlappingFailureLosesTheTitle) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0},
                  StripingMode::kParity};
  array.store(VideoId{1}, MegaBytes{60.0});
  array.fail_disk(2);
  const auto lost = array.fail_disk(0);
  EXPECT_EQ(lost, std::vector<VideoId>{VideoId{1}});
  EXPECT_FALSE(array.holds(VideoId{1}));
}

TEST(ParityArray, PlainModeStillLosesOnFirstFailure) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0},
                  StripingMode::kPlain};
  array.store(VideoId{1}, MegaBytes{60.0});
  EXPECT_EQ(array.fail_disk(0), std::vector<VideoId>{VideoId{1}});
}

TEST(ParityArray, DegradedReadReconstructsFromRow) {
  DiskArray array{4, profile(1000.0), MegaBytes{10.0},
                  StripingMode::kParity};
  array.store(VideoId{1}, MegaBytes{60.0});
  const double healthy_read = array.cluster_read_seconds(VideoId{1}, 0);
  const std::size_t slot = array.placement(VideoId{1}).part_to_disk[0];
  array.fail_disk(slot);
  ASSERT_TRUE(array.readable(VideoId{1}));
  const double degraded_read = array.cluster_read_seconds(VideoId{1}, 0);
  // Survivors are same-size clusters on identical disks: latency matches.
  EXPECT_NEAR(degraded_read, healthy_read, 1e-12);
}

TEST(ParityArray, ReadOnHealthyDiskUnaffectedByOtherFailure) {
  DiskArray array{4, profile(1000.0), MegaBytes{10.0},
                  StripingMode::kParity};
  array.store(VideoId{1}, MegaBytes{60.0});
  // Fail a disk not holding part 0.
  const std::size_t part0 = array.placement(VideoId{1}).part_to_disk[0];
  const std::size_t other = (part0 + 1) % 4;
  array.fail_disk(other);
  EXPECT_NO_THROW(array.cluster_read_seconds(VideoId{1}, 0));
}

TEST(ParityArray, UnreadableClusterThrows) {
  DiskArray plain{4, profile(1000.0), MegaBytes{10.0}};
  plain.store(VideoId{1}, MegaBytes{60.0});
  // Plain mode: failing the disk removes the title entirely.
  plain.fail_disk(0);
  EXPECT_THROW(plain.cluster_read_seconds(VideoId{1}, 0),
               std::out_of_range);  // placement gone
}

TEST(ParityArray, CapacityAccountsForParity) {
  DiskArray array{4, profile(30.0), MegaBytes{10.0},
                  StripingMode::kParity};
  // 90 MB data would need 120 MB raw (30 parity) = exactly full.
  EXPECT_TRUE(array.can_tolerate(MegaBytes{90.0}));
  ASSERT_TRUE(array.store(VideoId{1}, MegaBytes{90.0}).has_value());
  EXPECT_NEAR(array.total_used().value(), 120.0, 1e-9);
  EXPECT_FALSE(array.can_tolerate(MegaBytes{10.0}));
}

TEST(ParityArray, StoreWhileDegradedUsesSurvivors) {
  DiskArray array{4, profile(100.0), MegaBytes{10.0},
                  StripingMode::kParity};
  array.fail_disk(1);
  const auto placement = array.store(VideoId{1}, MegaBytes{40.0});
  ASSERT_TRUE(placement.has_value());
  for (const std::size_t slot : placement->part_to_disk) {
    EXPECT_NE(slot, 1u);
  }
  for (const std::size_t slot : placement->parity_to_disk) {
    EXPECT_NE(slot, 1u);
  }
}

TEST(ParityArray, ConstructorValidation) {
  EXPECT_THROW(DiskArray(1, profile(10.0), MegaBytes{5.0},
                         StripingMode::kParity),
               std::invalid_argument);
}

TEST(ParityArray, RepairRestoresDirectReads) {
  DiskArray array{4, profile(1000.0), MegaBytes{10.0},
                  StripingMode::kParity};
  array.store(VideoId{1}, MegaBytes{60.0});
  const std::size_t slot = array.placement(VideoId{1}).part_to_disk[0];
  array.fail_disk(slot);
  array.repair_disk(slot);  // rebuild
  EXPECT_TRUE(array.readable(VideoId{1}));
  EXPECT_NO_THROW(array.cluster_read_seconds(VideoId{1}, 0));
}

// --- Property: random failure sequences never lose a title that every
// row can still reconstruct, and always lose ones that cannot. ---

class ParityFailureProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParityFailureProperty, LossesExactlyMatchRowRecoverability) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  DiskArray array{6, profile(500.0), MegaBytes{10.0},
                  StripingMode::kParity};
  for (int v = 0; v < 5; ++v) {
    array.store(VideoId{static_cast<VideoId::underlying_type>(v)},
                MegaBytes{rng.uniform(30.0, 150.0)});
  }
  // Fail two random distinct disks.
  const auto first = static_cast<std::size_t>(rng.uniform_int(0, 5));
  auto second = static_cast<std::size_t>(rng.uniform_int(0, 5));
  while (second == first) {
    second = static_cast<std::size_t>(rng.uniform_int(0, 5));
  }
  EXPECT_TRUE(array.fail_disk(first).empty());  // single failure: safe
  array.fail_disk(second);
  // Whatever survived must be readable cluster by cluster.
  for (const VideoId video : array.stored_videos()) {
    EXPECT_TRUE(array.readable(video));
    const StripePlacement& placement = array.placement(video);
    for (std::size_t part = 0; part < placement.part_count(); ++part) {
      EXPECT_NO_THROW(array.cluster_read_seconds(video, part));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParityFailureProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace vod::storage
