// Disk failures: array-level loss semantics, DMA propagation, and service
// failover to surviving replicas (the reliability concern of the paper's
// reference [3]).
#include <gtest/gtest.h>

#include "dma/dma_cache.h"
#include "grnet/grnet.h"
#include "service/vod_service.h"
#include "storage/disk_array.h"

namespace vod {
namespace {

const db::AdminCredential kAdmin{"secret"};

storage::DiskProfile profile(double capacity_mb) {
  return storage::DiskProfile{.capacity = MegaBytes{capacity_mb},
                              .transfer_rate = Mbps{80.0},
                              .seek_seconds = 0.01};
}

TEST(DiskFailure, LosesEveryVideoTouchingTheDisk) {
  storage::DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  // 20 MB video -> parts on disks 0,1 only.
  array.store(VideoId{1}, MegaBytes{20.0});
  // 40 MB video -> parts on disks 0..3.
  array.store(VideoId{2}, MegaBytes{40.0});
  const auto lost = array.fail_disk(3);
  EXPECT_EQ(lost, std::vector<VideoId>{VideoId{2}});
  EXPECT_TRUE(array.holds(VideoId{1}));
  EXPECT_FALSE(array.holds(VideoId{2}));
  EXPECT_EQ(array.healthy_disk_count(), 3u);
  EXPECT_TRUE(array.disk_failed(3));
}

TEST(DiskFailure, DoubleFailureReturnsNothingNew) {
  storage::DiskArray array{2, profile(100.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{20.0});
  EXPECT_FALSE(array.fail_disk(0).empty());
  EXPECT_TRUE(array.fail_disk(0).empty());
}

TEST(DiskFailure, StoresStripeOverSurvivorsOnly) {
  storage::DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  array.fail_disk(1);
  const auto placement = array.store(VideoId{1}, MegaBytes{40.0});
  ASSERT_TRUE(placement.has_value());
  // 4 parts over healthy slots {0,2,3}: 0,2,3,0.
  EXPECT_EQ(placement->part_to_disk,
            (std::vector<std::size_t>{0, 2, 3, 0}));
  EXPECT_EQ(array.disk(1).used(), MegaBytes{0.0});
}

TEST(DiskFailure, CanTolerateShrinksWithFailures) {
  storage::DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  EXPECT_TRUE(array.can_tolerate(MegaBytes{100.0}));
  array.fail_disk(0);
  EXPECT_FALSE(array.can_tolerate(MegaBytes{100.0}));
  EXPECT_TRUE(array.can_tolerate(MegaBytes{50.0}));
}

TEST(DiskFailure, AllDisksFailedToleratesNothing) {
  storage::DiskArray array{1, profile(50.0), MegaBytes{10.0}};
  array.fail_disk(0);
  EXPECT_FALSE(array.can_tolerate(MegaBytes{1.0}));
  EXPECT_EQ(array.healthy_disk_count(), 0u);
}

TEST(DiskFailure, RepairRestoresCapacityEmpty) {
  storage::DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  array.store(VideoId{1}, MegaBytes{60.0});
  array.fail_disk(0);
  EXPECT_FALSE(array.holds(VideoId{1}));
  array.repair_disk(0);
  EXPECT_EQ(array.healthy_disk_count(), 2u);
  EXPECT_TRUE(array.can_tolerate(MegaBytes{100.0}));
  EXPECT_EQ(array.disk(0).used(), MegaBytes{0.0});
}

TEST(DiskFailure, BadSlotThrows) {
  storage::DiskArray array{2, profile(50.0), MegaBytes{10.0}};
  EXPECT_THROW(array.fail_disk(2), std::out_of_range);
  EXPECT_THROW(array.repair_disk(2), std::out_of_range);
  EXPECT_THROW(array.disk_failed(2), std::out_of_range);
}

TEST(DmaDiskFailure, EvictionCallbacksFireForLostTitles) {
  storage::DiskArray array{4, profile(100.0), MegaBytes{10.0}};
  std::vector<VideoId> evicted;
  dma::DmaCallbacks callbacks;
  callbacks.on_evict = [&](VideoId v) { evicted.push_back(v); };
  dma::DmaCache cache{array, {}, callbacks};
  cache.on_request(VideoId{1}, MegaBytes{40.0});
  cache.on_request(VideoId{1}, MegaBytes{40.0});  // a point
  const auto lost = cache.handle_disk_failure(0);
  EXPECT_EQ(lost, std::vector<VideoId>{VideoId{1}});
  EXPECT_EQ(evicted, std::vector<VideoId>{VideoId{1}});
  EXPECT_EQ(cache.eviction_count(), 1u);
  // Points survive the failure: the title re-enters on the next request.
  EXPECT_EQ(cache.points(VideoId{1}), 1u);
  EXPECT_EQ(cache.on_request(VideoId{1}, MegaBytes{40.0}),
            dma::DmaOutcome::kStored);
}

TEST(ServiceDiskFailure, VraFailsOverToSurvivingReplica) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  service::ServiceOptions options;
  options.cluster_size = MegaBytes{10.0};
  options.dma.admission_threshold = 1'000'000;
  service::VodService service{sim, g.topology, network, options, kAdmin};
  const VideoId movie =
      service.add_video("movie", MegaBytes{40.0}, Mbps{2.0});
  service.place_initial_copy(g.thessaloniki, movie);
  service.place_initial_copy(g.xanthi, movie);
  service.start();

  // The 40 MB copy stripes over all 8 disks; losing any disk at
  // Thessaloniki loses the copy there.
  const auto lost = service.fail_disk(g.thessaloniki, 0);
  EXPECT_EQ(lost, std::vector<VideoId>{movie});
  EXPECT_EQ(
      service.database().full_view().servers_with_title(movie),
      std::vector<NodeId>{g.xanthi});

  const SessionId id = service.request_at(g.patra, movie);
  sim.run_until(from_hours(1.0));
  const stream::SessionMetrics& m = service.session_metrics(id);
  EXPECT_TRUE(m.finished);
  for (const NodeId source : m.cluster_sources) {
    EXPECT_EQ(source, g.xanthi);
  }
}

TEST(ServiceDiskFailure, UnknownServerThrows) {
  grnet::CaseStudy g = grnet::build_case_study();
  net::NoTraffic traffic;
  sim::Simulation sim;
  net::FluidNetwork network{g.topology, traffic};
  service::VodService service{sim, g.topology, network, {}, kAdmin};
  EXPECT_THROW(service.fail_disk(NodeId{99}, 0), std::out_of_range);
}

}  // namespace
}  // namespace vod
