#include "workload/catalog_gen.h"

#include <stdexcept>

#include "common/contract.h"

namespace vod::workload {

std::vector<VideoId> populate_catalog(db::Database& database,
                                      const CatalogSpec& spec, Rng& rng) {
  require(spec.title_count != 0, "populate_catalog: empty catalog");
  require(!(!(spec.min_size.value() > 0.0) || spec.max_size < spec.min_size),
      "populate_catalog: bad size range");
  require(
      !(!(spec.min_bitrate.value() > 0.0) || spec.max_bitrate < spec.min_bitrate),
      "populate_catalog: bad bitrate range");

  std::vector<VideoId> ids;
  ids.reserve(spec.title_count);
  for (std::size_t i = 0; i < spec.title_count; ++i) {
    const MegaBytes size{
        spec.min_size == spec.max_size
            ? spec.min_size.value()
            : rng.uniform(spec.min_size.value(), spec.max_size.value())};
    const Mbps bitrate{spec.min_bitrate == spec.max_bitrate
                           ? spec.min_bitrate.value()
                           : rng.uniform(spec.min_bitrate.value(),
                                         spec.max_bitrate.value())};
    ids.push_back(database.register_video(
        spec.title_prefix + std::to_string(i), size, bitrate));
  }
  return ids;
}

}  // namespace vod::workload
