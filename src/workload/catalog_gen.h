// Synthetic video catalog generation.
//
// The paper's titles are feature films on a period video server; we generate
// MPEG-1/2-era assets: sizes around 0.5–2 GB, bitrates 1.5–6 Mbps.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "db/database.h"

namespace vod::workload {

/// Shape of the generated catalog.
struct CatalogSpec {
  std::size_t title_count = 100;
  MegaBytes min_size{500.0};
  MegaBytes max_size{2000.0};
  Mbps min_bitrate{1.5};
  Mbps max_bitrate{6.0};
  std::string title_prefix = "title-";
};

/// Registers `spec.title_count` synthetic videos in `database`; returns the
/// ids in registration (= popularity-rank) order.
std::vector<VideoId> populate_catalog(db::Database& database,
                                      const CatalogSpec& spec, Rng& rng);

}  // namespace vod::workload
