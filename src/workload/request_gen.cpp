#include "workload/request_gen.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/contract.h"

namespace vod::workload {

RequestGenerator::RequestGenerator(std::vector<VideoId> videos,
                                   double zipf_skew,
                                   std::vector<NodeId> homes,
                                   std::vector<double> home_weights)
    : videos_(std::move(videos)),
      zipf_(videos_.empty() ? 1 : videos_.size(), zipf_skew),
      homes_(std::move(homes)),
      home_weights_(std::move(home_weights)) {
  require(!videos_.empty(), "RequestGenerator: no videos");
  require(!homes_.empty(), "RequestGenerator: no home nodes");
  require(!(!home_weights_.empty() && home_weights_.size() != homes_.size()),
      "RequestGenerator: weights/homes size mismatch");
}

Request RequestGenerator::draw(SimTime at, Rng& rng) const {
  const std::size_t rank = zipf_.sample(rng);
  const std::size_t home_index =
      home_weights_.empty()
          ? static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(homes_.size()) - 1))
          : rng.weighted_index(home_weights_);
  return Request{at, homes_[home_index], videos_[rank]};
}

std::vector<Request> RequestGenerator::generate(SimTime start,
                                                Duration duration,
                                                double rate_per_second,
                                                Rng& rng) const {
  require(!(duration.seconds() < 0.0 || rate_per_second <= 0.0),
      "RequestGenerator::generate: bad params");
  std::vector<Request> out;
  double t = start.seconds();
  const double end = start.seconds() + duration.seconds();
  for (;;) {
    t += rng.exponential(rate_per_second);
    if (t >= end) break;
    out.push_back(draw(SimTime{t}, rng));
  }
  return out;
}

std::vector<Request> RequestGenerator::generate_diurnal(
    SimTime start, Duration duration, double mean_rate_per_second,
    double peak_hour, double peak_to_trough, Rng& rng) const {
  require(!(duration.seconds() < 0.0 || mean_rate_per_second <= 0.0),
      "RequestGenerator::generate_diurnal: bad params");
  require(!(peak_hour < 0.0 || peak_hour >= 24.0),
      "RequestGenerator::generate_diurnal: peak_hour outside [0,24)");
  require(!(peak_to_trough < 1.0),
      "RequestGenerator::generate_diurnal: ratio must be >= 1");
  // rate(t) = mean * (1 + a cos(2π (h - peak)/24)) has mean `mean` over a
  // day and peak/trough = (1+a)/(1-a); invert for a.
  const double a = (peak_to_trough - 1.0) / (peak_to_trough + 1.0);
  const double max_rate = mean_rate_per_second * (1.0 + a);

  std::vector<Request> out;
  double t = start.seconds();
  const double end = start.seconds() + duration.seconds();
  for (;;) {
    t += rng.exponential(max_rate);  // candidate from the dominating rate
    if (t >= end) break;
    const double hour = std::fmod(t / 3600.0, 24.0);
    const double rate =
        mean_rate_per_second *
        (1.0 + a * std::cos((hour - peak_hour) / 24.0 * 2.0 *
                            std::numbers::pi));
    if (rng.uniform() < rate / max_rate) {  // thinning acceptance
      out.push_back(draw(SimTime{t}, rng));
    }
  }
  return out;
}

std::vector<Request> RequestGenerator::generate_count(
    SimTime start, Duration duration, std::size_t count,
    Rng& rng) const {
  require(!(duration.seconds() < 0.0),
      "RequestGenerator::generate_count: bad duration");
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double offset =
        count <= 1 ? 0.0
                   : duration.seconds() * static_cast<double>(i) /
                         static_cast<double>(count);
    out.push_back(draw(start + offset, rng));
  }
  return out;
}

}  // namespace vod::workload
