#include "workload/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contract.h"

namespace vod::workload {

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) : skew_(skew) {
  require(n != 0, "ZipfDistribution: need at least one item");
  require(!(skew < 0.0), "ZipfDistribution: skew must be >= 0");
  cumulative_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cumulative_[k] = total;
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard float drift
}

double ZipfDistribution::probability(std::size_t rank) const {
  require_found(!(rank >= cumulative_.size()),
      "ZipfDistribution::probability: bad rank");
  return rank == 0 ? cumulative_[0]
                   : cumulative_[rank] - cumulative_[rank - 1];
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace vod::workload
