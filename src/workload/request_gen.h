// Request stream generation: Poisson arrivals, Zipf titles, weighted homes.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "workload/zipf.h"

namespace vod::workload {

/// One client request: at `at`, a client homed at `home` asks for `video`.
struct Request {
  SimTime at;
  NodeId home;
  VideoId video;
};

/// Generates a deterministic (per seed) request schedule.
class RequestGenerator {
 public:
  /// `videos` in popularity-rank order (rank 0 most popular); `homes` are
  /// the candidate home servers with optional weights (empty = uniform).
  RequestGenerator(std::vector<VideoId> videos, double zipf_skew,
                   std::vector<NodeId> homes,
                   std::vector<double> home_weights = {});

  /// Poisson stream at `rate_per_second` over [start, start + duration).
  [[nodiscard]] std::vector<Request> generate(SimTime start, Duration duration,
                                              double rate_per_second,
                                              Rng& rng) const;

  /// Exactly `count` requests spread uniformly over the interval (for
  /// benches wanting fixed sample sizes).
  [[nodiscard]] std::vector<Request> generate_count(SimTime start,
                                                    Duration duration,
                                                    std::size_t count,
                                                    Rng& rng) const;

  /// Non-homogeneous Poisson stream whose rate follows a day curve: mean
  /// `mean_rate_per_second`, maximal at `peak_hour` (0-24), with
  /// peak/trough ratio `peak_to_trough` >= 1 (VoD demand peaks in the
  /// evening).  Implemented by thinning; deterministic per seed.
  [[nodiscard]] std::vector<Request> generate_diurnal(
      SimTime start, Duration duration, double mean_rate_per_second,
      double peak_hour, double peak_to_trough, Rng& rng) const;

 private:
  [[nodiscard]] Request draw(SimTime at, Rng& rng) const;

  std::vector<VideoId> videos_;
  ZipfDistribution zipf_;
  std::vector<NodeId> homes_;
  std::vector<double> home_weights_;
};

}  // namespace vod::workload
