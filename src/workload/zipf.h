// Zipf popularity distribution.
//
// Video-on-demand request popularity is classically Zipf-like: the paper's
// whole "most popular" concept presumes a skewed request mix.  This sampler
// drives the DMA benches and the service-level studies.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace vod::workload {

/// Zipf over ranks 0..n-1: P(rank k) ∝ 1 / (k+1)^s.
class ZipfDistribution {
 public:
  /// `n` >= 1 items, skew `s` >= 0 (0 = uniform; ~0.7–1.2 typical for VoD).
  ZipfDistribution(std::size_t n, double skew);

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }
  [[nodiscard]] double skew() const { return skew_; }

  /// Probability of rank `k` (0 = most popular).
  [[nodiscard]] double probability(std::size_t rank) const;

  /// Draws a rank.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  double skew_;
  std::vector<double> cumulative_;  // cumulative_[k] = P(rank <= k)
};

}  // namespace vod::workload
