// The Virtual Routing Algorithm — Figure 5 of the paper.
//
//   1. Find the client's home server (done by the service layer from the
//      client IP; the VRA receives the home NodeId).
//   2. If the home server can provide the title, serve locally and stop.
//   3. Otherwise list every server holding the title, poll which of them
//      can currently provide it (online flag), weight every link with its
//      LVN, run Dijkstra from the home server, and of the least-cost paths
//      to the capable candidates pick the cheapest.
//
// The VRA keeps running during playback: the streaming layer calls
// select_server() again before each cluster, enabling mid-stream switching.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "db/database.h"
#include "net/topology.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "vra/validation.h"

namespace vod::vra {

/// One candidate source considered by the VRA.
struct Candidate {
  NodeId server;
  routing::Path path;  // least-cost path home -> server
};

/// The VRA's answer for one request.
struct Decision {
  /// True when the home server had the title (Figure 5's first branch).
  bool served_locally = false;
  /// The chosen source server (the home server when served_locally).
  NodeId server;
  /// Least-cost path from the home server to `server` (empty when local).
  routing::Path path;
  /// Every candidate with its least-cost path, sorted by ascending cost
  /// (the chosen one first); empty when served locally.
  std::vector<Candidate> candidates;
  /// Step-by-step Dijkstra table (filled only when requested).
  routing::DijkstraTrace trace;

  [[nodiscard]] double cost() const { return path.cost; }
};

/// The algorithm object.  Stateless between calls: every invocation reads
/// fresh statistics, mirroring the paper's constantly-rerunning application.
class Vra {
 public:
  /// `topology` must outlive the Vra; the views are value facades.
  Vra(const net::Topology& topology, db::FullAccessView catalog,
      db::LimitedAccessView network_state, ValidationOptions options = {});

  /// Runs Figure 5 for a client homed at `home` requesting `video`.
  /// Returns nullopt when no online server holds the title.
  /// `want_trace` additionally records the Dijkstra step table.
  [[nodiscard]] std::optional<Decision> select_server(
      NodeId home, VideoId video, bool want_trace = false) const;

  /// The weighted graph the VRA would route on right now (for inspection
  /// and the table benches).
  [[nodiscard]] routing::Graph current_weighted_graph() const;

  [[nodiscard]] const ValidationOptions& options() const { return options_; }

 private:
  /// "Poll all of those servers to find out which ones can provide the
  /// video": here, an online check against the limited-access view.
  [[nodiscard]] bool can_provide(NodeId server, VideoId video) const;

  const net::Topology& topology_;
  db::FullAccessView catalog_;
  db::LimitedAccessView network_state_;
  ValidationOptions options_;
};

}  // namespace vod::vra
