// The Virtual Routing Algorithm — Figure 5 of the paper.
//
//   1. Find the client's home server (done by the service layer from the
//      client IP; the VRA receives the home NodeId).
//   2. If the home server can provide the title, serve locally and stop.
//   3. Otherwise list every server holding the title, poll which of them
//      can currently provide it (online flag), weight every link with its
//      LVN, run Dijkstra from the home server, and of the least-cost paths
//      to the capable candidates pick the cheapest.
//
// The VRA keeps running during playback: the streaming layer calls
// select_server() again before each cluster, enabling mid-stream switching.
//
// Incremental engine: the LVNs are a pure function of the limited-access
// link statistics, which only change when SNMP polls (or an administrator)
// writes them — every 1–2 minutes — while select_server() runs per cluster
// fetch.  The VRA therefore caches the weighted graph and the per-home
// shortest-path trees, keyed on the database's links_changed_epoch(); when
// the epoch advances it rewrites just the edges whose weights could have
// moved (the dirty links' endpoints' neighborhoods) and falls back to a
// full rebuild only when a link's online flag flipped (graph membership
// change).  Selections are bit-for-bit identical to uncached operation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "db/database.h"
#include "net/topology.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "vra/validation.h"

namespace vod::vra {

/// One candidate source considered by the VRA.
struct Candidate {
  NodeId server;
  routing::Path path;  // least-cost path home -> server
};

/// The VRA's answer for one request.
struct Decision {
  /// True when the home server had the title (Figure 5's first branch).
  bool served_locally = false;
  /// The chosen source server (the home server when served_locally).
  NodeId server;
  /// Least-cost path from the home server to `server` (empty when local).
  routing::Path path;
  /// Every candidate with its least-cost path, sorted by ascending cost
  /// (the chosen one first); empty when served locally.
  std::vector<Candidate> candidates;
  /// Step-by-step Dijkstra table (filled only when requested).
  routing::DijkstraTrace trace;
  /// True when the decision came from the degraded-mode fallback (min-hop
  /// over links still believed up) because the SNMP statistics were staler
  /// than the configured threshold.
  bool degraded = false;

  [[nodiscard]] double cost() const { return path.cost; }
};

/// Effectiveness counters of the incremental engine (reported through
/// service::ServiceReport so benches can assert cache behaviour).
struct VraCacheStats {
  /// Graph served unchanged (links epoch did not advance).
  std::uint64_t graph_hits = 0;
  /// Graph refreshed by rewriting only the dirty links' neighborhoods.
  std::uint64_t graph_incremental = 0;
  /// Full cold builds (first use, online flips, cache disabled).
  std::uint64_t graph_rebuilds = 0;
  /// Edge weights rewritten across all incremental refreshes.
  std::uint64_t edges_rewritten = 0;
  /// Dijkstra trees served from / inserted into the per-home cache.
  std::uint64_t spt_hits = 0;
  std::uint64_t spt_misses = 0;
};

/// The algorithm object.  Decisions depend only on the database views, so
/// repeated calls between statistics updates are answered from the epoch-
/// keyed cache; behaviour is indistinguishable from recomputing fresh.
class Vra {
 public:
  /// `topology` must outlive the Vra; the views are value facades.
  /// `enable_cache = false` recomputes everything per call (the seed
  /// behaviour — kept for A/B benches and as a paranoia switch).
  Vra(const net::Topology& topology, db::FullAccessView catalog,
      db::LimitedAccessView network_state, ValidationOptions options = {},
      bool enable_cache = true);

  /// Runs Figure 5 for a client homed at `home` requesting `video`.
  /// Returns nullopt when no online server holds the title.
  /// `want_trace` additionally records the Dijkstra step table.
  [[nodiscard]] std::optional<Decision> select_server(
      NodeId home, VideoId video, bool want_trace = false) const;

  /// The weighted graph the VRA would route on right now (for inspection
  /// and the table benches).  Always built fresh; does not touch the cache.
  [[nodiscard]] routing::Graph current_weighted_graph() const;

  [[nodiscard]] const ValidationOptions& options() const { return options_; }

  // --- degraded mode (SNMP monitor outage fallback) ---

  /// Enables the fallback: when *every* link's statistics are staler than
  /// `max_stats_age` (the monitor is dark, not just one link unreported),
  /// select_server() stops trusting the stale LVNs and routes min-hop over
  /// the links still believed up.  `clock` supplies the current simulation
  /// time; infinity (the default) disables the mode.
  void configure_degraded_mode(Duration max_stats_age,
                               std::function<SimTime()> clock);

  /// True when the next selection would take the degraded path.
  [[nodiscard]] bool degraded_active() const;

  /// Selections answered by the degraded fallback so far.
  [[nodiscard]] std::uint64_t degraded_selection_count() const {
    return degraded_selections_;
  }

  // --- incremental engine controls ---

  [[nodiscard]] bool cache_enabled() const { return cache_enabled_; }
  void set_cache_enabled(bool enabled);

  /// Drops the cached graph and shortest-path trees (counters persist).
  void invalidate_cache() const;

  /// The graph the engine routes on, refreshed to the database's current
  /// links epoch (counts a hit/incremental/rebuild like a request would).
  /// The reference is valid until the next database change.
  [[nodiscard]] const routing::Graph& routing_graph() const {
    return weighted_graph();
  }

  [[nodiscard]] const VraCacheStats& cache_stats() const {
    return cache_stats_;
  }
  void reset_cache_stats() const { cache_stats_ = {}; }

 private:
  /// "Poll all of those servers to find out which ones can provide the
  /// video": here, an online check against the limited-access view.
  [[nodiscard]] bool can_provide(NodeId server, VideoId video) const;

  /// Returns the cached weighted graph, refreshed to the database's current
  /// links epoch (full rebuild / dirty-links rewrite / as-is).
  [[nodiscard]] const routing::Graph& weighted_graph() const;

  /// The degraded fallback: min-hop paths over the links whose records
  /// still say online, ignoring the (stale) LVN weights.
  [[nodiscard]] std::optional<Decision> select_degraded(
      NodeId home, const std::vector<NodeId>& holders) const;

  void full_rebuild(std::uint64_t epoch) const;
  /// Rewrites the weights reachable from the dirty links; falls back to
  /// full_rebuild() when a dirty link's online flag flipped.
  void refresh_dirty_links(std::uint64_t epoch) const;

  /// The machine-load extension reads an arbitrary callback the database
  /// epoch knows nothing about, so caching would be unsound with it on.
  [[nodiscard]] bool cache_usable() const {
    return cache_enabled_ && options_.server_load_weight == 0.0;
  }

  const net::Topology& topology_;
  db::FullAccessView catalog_;
  db::LimitedAccessView network_state_;
  ValidationOptions options_;
  bool cache_enabled_ = true;
  double degraded_max_age_ = std::numeric_limits<double>::infinity();
  std::function<SimTime()> clock_;
  mutable std::uint64_t degraded_selections_ = 0;

  // Cache state: logically a memo of pure functions of the database, hence
  // mutable behind the const query interface.
  mutable std::optional<routing::Graph> cached_graph_;
  mutable std::uint64_t cached_links_epoch_ = 0;
  mutable std::map<NodeId, routing::ShortestPaths> spt_cache_;
  mutable VraCacheStats cache_stats_;
};

}  // namespace vod::vra
