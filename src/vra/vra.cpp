#include "vra/vra.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/contract.h"
#include "common/log.h"
#include "common/parallel.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "routing/min_hop.h"

namespace vod::vra {
namespace {

/// Path costs that differ by no more than this are ties: double sums over
/// different relaxation orders can disagree in the last bits across
/// platforms, and an exact comparison would then pick different servers for
/// the same network state.  LVN costs are O(0.1..10), so 1e-9 is far below
/// any real cost difference and far above accumulation noise.
constexpr double kCostEpsilon = 1e-9;

/// Emits the route-decision trace event: the winner plus up to three
/// runner-up candidates with their LVN path costs.
void trace_decision(const net::Topology& topology, NodeId home, VideoId video,
                    const Decision& decision) {
  obs::TraceRecorder* tr = obs::trace_sink();
  if (tr == nullptr) return;
  std::vector<obs::TraceArg> args;
  args.push_back({"home", topology.node_name(home)});
  args.push_back(
      {"video", obs::num(static_cast<std::uint64_t>(video.value()))});
  args.push_back({"server", topology.node_name(decision.server)});
  args.push_back({"cost", obs::num(decision.path.cost)});
  args.push_back({"local", decision.served_locally ? "1" : "0"});
  args.push_back({"degraded", decision.degraded ? "1" : "0"});
  args.push_back({"candidates", obs::num(static_cast<std::uint64_t>(
                                    decision.candidates.size()))});
  for (std::size_t i = 1; i < decision.candidates.size() && i <= 3; ++i) {
    const Candidate& cand = decision.candidates[i];
    args.push_back({"alt" + std::to_string(i),
                    topology.node_name(cand.server) + ":" +
                        obs::num(cand.path.cost)});
  }
  tr->instant(obs::Subsystem::kVra, "vra.select", std::move(args));
}

void trace_no_source(const net::Topology& topology, NodeId home,
                     VideoId video) {
  obs::TraceRecorder* tr = obs::trace_sink();
  if (tr == nullptr) return;
  tr->instant(obs::Subsystem::kVra, "vra.no_source",
              {{"home", topology.node_name(home)},
               {"video", obs::num(static_cast<std::uint64_t>(video.value()))}});
}

}  // namespace

Vra::Vra(const net::Topology& topology, db::FullAccessView catalog,
         db::LimitedAccessView network_state, ValidationOptions options,
         bool enable_cache)
    : topology_(topology),
      catalog_(catalog),
      network_state_(network_state),
      options_(std::move(options)),
      cache_enabled_(enable_cache) {}

bool Vra::can_provide(NodeId server, VideoId video) const {
  const db::ServerRecord& record = network_state_.server(server);
  return record.online && record.titles.contains(video);
}

void Vra::configure_degraded_mode(Duration max_stats_age,
                                  std::function<SimTime()> clock) {
  const double age = max_stats_age.seconds();
  require(!(std::isnan(age) || age <= 0.0),
      "Vra::configure_degraded_mode: max age must be positive");
  degraded_max_age_ = age;
  clock_ = std::move(clock);
}

bool Vra::degraded_active() const {
  if (!clock_ || !std::isfinite(degraded_max_age_)) return false;
  if (topology_.link_count() == 0) return false;
  const SimTime now = clock_();
  // The mode triggers only when the whole monitor is dark: a single link
  // with fresh statistics means SNMP is alive and individually stale links
  // are the normal between-polls staleness the LVNs already tolerate.
  for (const net::LinkInfo& info : topology_.links()) {
    if (network_state_.stats_age(info.id, now) <= degraded_max_age_) {
      return false;
    }
  }
  return true;
}

std::optional<Decision> Vra::select_degraded(
    NodeId home, const std::vector<NodeId>& holders) const {
  // Unit-weight graph of the links still believed up.  The online flag may
  // itself be stale, but it is the only belief left; links the service
  // marked down via the proactive (connection-reset) path are excluded.
  routing::Graph graph;
  for (std::size_t n = 0; n < topology_.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    graph.add_node(topology_.node_name(node));
  }
  for (const net::LinkInfo& info : topology_.links()) {
    if (!network_state_.link(info.id).online) continue;
    graph.add_undirected_edge(info.a, info.b, info.id, 1.0);
  }

  Decision decision;
  decision.degraded = true;
  // Per-candidate BFS evaluations are independent const reads of `graph`;
  // each chunk writes only its own holders' slots, and the merge below
  // appends in holder order, so the candidate list is identical at every
  // worker count.
  std::vector<std::optional<routing::Path>> holder_paths(holders.size());
  // vodlint: parallel-region
  parallel_for(holders.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      holder_paths[i] = routing::min_hop_path(graph, home, holders[i]);
    }
  });
  for (std::size_t i = 0; i < holders.size(); ++i) {
    if (holder_paths[i]) {
      decision.candidates.push_back(
          Candidate{holders[i], std::move(*holder_paths[i])});
    }
  }
  if (decision.candidates.empty()) return std::nullopt;
  std::sort(decision.candidates.begin(), decision.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.path.cost != b.path.cost) return a.path.cost < b.path.cost;
              return a.server < b.server;
            });
  decision.served_locally = false;
  decision.server = decision.candidates.front().server;
  decision.path = decision.candidates.front().path;
  ++degraded_selections_;
  VOD_LOG_INFO("VRA: degraded mode chose "
               << topology_.node_name(decision.server) << " at "
               << decision.path.cost << " hops");
  return decision;
}

routing::Graph Vra::current_weighted_graph() const {
  const DbLinkStatsProvider stats{network_state_};
  const LvnCalculator calculator{topology_, stats, options_};
  return calculator.build_weighted_graph();
}

void Vra::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) invalidate_cache();
}

void Vra::invalidate_cache() const {
  cached_graph_.reset();
  cached_links_epoch_ = 0;
  spt_cache_.clear();
}

void Vra::full_rebuild(std::uint64_t epoch) const {
  const DbLinkStatsProvider stats{network_state_};
  const LvnCalculator calculator{topology_, stats, options_};
  cached_graph_ = calculator.build_weighted_graph();
  cached_links_epoch_ = epoch;
  spt_cache_.clear();
  ++cache_stats_.graph_rebuilds;
}

void Vra::refresh_dirty_links(std::uint64_t epoch) const {
  // The links stamped after our build are the only ones whose statistics
  // moved.  A stats move changes (a) the link's own LU term and (b) the
  // node validation of its two endpoints — and through (b) the LVN of every
  // link adjacent to those endpoints.  Rewriting those weights in place
  // reproduces build_weighted_graph() bit for bit, as long as no link
  // entered or left the graph (online flips force a rebuild).
  std::vector<LinkId> dirty;
  for (const net::LinkInfo& info : topology_.links()) {
    const db::LinkRecord& record = network_state_.link(info.id);
    if (record.last_changed_epoch <= cached_links_epoch_) continue;
    if (record.online != cached_graph_->edge_weight(info.id).has_value()) {
      full_rebuild(epoch);
      return;
    }
    dirty.push_back(info.id);
  }
  if (dirty.empty()) {  // defensive: epoch moved but no stamped link found
    full_rebuild(epoch);
    return;
  }

  const DbLinkStatsProvider stats{network_state_};
  const LvnCalculator calculator{topology_, stats, options_};

  std::vector<char> node_affected(topology_.node_count(), 0);
  for (const LinkId link : dirty) {
    const net::LinkInfo& info = topology_.link(link);
    node_affected[info.a.value()] = 1;
    node_affected[info.b.value()] = 1;
  }

  // Node validations on demand, memoized: an affected edge can end at an
  // unaffected node whose (unchanged) validation we still need.
  std::vector<double> nv(topology_.node_count(), 0.0);
  std::vector<char> nv_known(topology_.node_count(), 0);
  const auto nv_of = [&](NodeId node) {
    if (!nv_known[node.value()]) {
      nv[node.value()] = calculator.node_validation(node);
      nv_known[node.value()] = 1;
    }
    return nv[node.value()];
  };

  std::vector<char> rewritten(topology_.link_count(), 0);
  for (std::size_t n = 0; n < node_affected.size(); ++n) {
    if (!node_affected[n]) continue;
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    for (const LinkId link : topology_.links_adjacent_to(node)) {
      if (rewritten[link.value()]) continue;
      rewritten[link.value()] = 1;
      // Offline links are absent from the graph; their stats still feed
      // their endpoints' validations (handled by nv_of), but they carry no
      // weight to rewrite.
      if (!cached_graph_->edge_weight(link)) continue;
      const net::LinkInfo& info = topology_.link(link);
      const double weight = std::max(nv_of(info.a), nv_of(info.b)) +
                            calculator.link_utilization_term(link);
      cached_graph_->set_edge_weight(link, weight);
      ++cache_stats_.edges_rewritten;
    }
  }
  cached_links_epoch_ = epoch;
  spt_cache_.clear();
  ++cache_stats_.graph_incremental;
}

const routing::Graph& Vra::weighted_graph() const {
  const std::uint64_t epoch = network_state_.links_changed_epoch();
  if (!cache_usable() || !cached_graph_) {
    full_rebuild(epoch);
  } else if (epoch == cached_links_epoch_) {
    ++cache_stats_.graph_hits;
  } else {
    refresh_dirty_links(epoch);
  }
  return *cached_graph_;
}

std::optional<Decision> Vra::select_server(NodeId home, VideoId video,
                                           bool want_trace) const {
  require(topology_.has_node(home), "Vra::select_server: unknown home node");
  require(catalog_.video(video), "Vra::select_server: unknown video");
  VOD_PROFILE_SCOPE("vra.select_server");

  // "IF the adjacent to the client video server can provide the requested
  //  video THEN authorize the server to start transferring and QUIT."
  if (can_provide(home, video)) {
    Decision decision;
    decision.served_locally = true;
    decision.server = home;
    decision.path.nodes = {home};
    decision.path.cost = 0.0;
    VOD_LOG_DEBUG("VRA: served locally at " << topology_.node_name(home));
    trace_decision(topology_, home, video, decision);
    return decision;
  }

  // "Make a list of all the servers on the network that have the requested
  //  video title; poll all of those servers."
  std::vector<NodeId> holders = catalog_.servers_with_title(video);
  std::erase_if(holders,
                [&](NodeId server) { return !can_provide(server, video); });
  if (holders.empty()) {
    trace_no_source(topology_, home, video);
    return std::nullopt;
  }

  // Monitor dark: the LVNs describe a network that no longer exists, so
  // fall back to min-hop over the links still believed up.
  if (degraded_active()) {
    std::optional<Decision> decision = select_degraded(home, holders);
    if (decision) {
      trace_decision(topology_, home, video, *decision);
    } else {
      trace_no_source(topology_, home, video);
    }
    return decision;
  }

  // "Calculate the Link Validation Number for each network link; run the
  //  Dijkstra's routing algorithm from the client's adjacent server."
  const routing::Graph& graph = weighted_graph();

  Decision decision;
  const routing::ShortestPaths* paths = nullptr;
  std::optional<routing::ShortestPaths> fresh;
  if (want_trace || !cache_usable()) {
    // Trace requests need the step table recorded, so they always run live.
    fresh.emplace(routing::dijkstra(
        graph, home, want_trace ? &decision.trace : nullptr));
    paths = &*fresh;
  } else {
    auto it = spt_cache_.find(home);
    if (it == spt_cache_.end()) {
      ++cache_stats_.spt_misses;
      it = spt_cache_.emplace(home, routing::dijkstra(graph, home)).first;
    } else {
      ++cache_stats_.spt_hits;
    }
    paths = &it->second;
  }

  // "Select those least expensive paths that end at the servers that can
  //  provide the video."  Per-candidate path extraction reads only the
  //  solved tree (const predecessor walks); each chunk writes its own
  //  holders' slots and the ordered merge below keeps the candidate list
  //  identical at every worker count.
  std::vector<std::optional<routing::Path>> holder_paths(holders.size());
  // vodlint: parallel-region
  parallel_for(holders.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      holder_paths[i] = paths->path_to(holders[i]);
    }
  });
  for (std::size_t i = 0; i < holders.size(); ++i) {
    if (holder_paths[i]) {
      decision.candidates.push_back(
          Candidate{holders[i], std::move(*holder_paths[i])});
    }
  }
  if (decision.candidates.empty()) {  // all disconnected
    trace_no_source(topology_, home, video);
    return std::nullopt;
  }

  // "From those alternative least cost paths choose the one with the
  //  smallest cost."  Ties break toward the lower node id so replays are
  //  deterministic.
  std::sort(decision.candidates.begin(), decision.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.path.cost != b.path.cost) return a.path.cost < b.path.cost;
              return a.server < b.server;
            });
  // The sort's exact comparison keeps the listing stable, but the *choice*
  // must not hinge on last-bit cost differences: among candidates within
  // kCostEpsilon of the cheapest, take the lowest node id.
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < decision.candidates.size(); ++i) {
    if (decision.candidates[i].path.cost >
        decision.candidates[0].path.cost + kCostEpsilon) {
      break;
    }
    if (decision.candidates[i].server < decision.candidates[chosen].server) {
      chosen = i;
    }
  }
  if (chosen != 0) {
    std::rotate(decision.candidates.begin(),
                decision.candidates.begin() + chosen,
                decision.candidates.begin() + chosen + 1);
  }

  decision.served_locally = false;
  decision.server = decision.candidates.front().server;
  decision.path = decision.candidates.front().path;
  VOD_LOG_DEBUG("VRA: chose " << topology_.node_name(decision.server)
                              << " cost " << decision.path.cost);
  trace_decision(topology_, home, video, decision);
  return decision;
}

}  // namespace vod::vra
