#include "vra/vra.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"

namespace vod::vra {

Vra::Vra(const net::Topology& topology, db::FullAccessView catalog,
         db::LimitedAccessView network_state, ValidationOptions options)
    : topology_(topology),
      catalog_(catalog),
      network_state_(network_state),
      options_(std::move(options)) {}

bool Vra::can_provide(NodeId server, VideoId video) const {
  const db::ServerRecord& record = network_state_.server(server);
  return record.online && record.titles.contains(video);
}

routing::Graph Vra::current_weighted_graph() const {
  const DbLinkStatsProvider stats{network_state_};
  const LvnCalculator calculator{topology_, stats, options_};
  return calculator.build_weighted_graph();
}

std::optional<Decision> Vra::select_server(NodeId home, VideoId video,
                                           bool want_trace) const {
  if (!topology_.has_node(home)) {
    throw std::invalid_argument("Vra::select_server: unknown home node");
  }
  if (!catalog_.video(video)) {
    throw std::invalid_argument("Vra::select_server: unknown video");
  }

  // "IF the adjacent to the client video server can provide the requested
  //  video THEN authorize the server to start transferring and QUIT."
  if (can_provide(home, video)) {
    Decision decision;
    decision.served_locally = true;
    decision.server = home;
    decision.path.nodes = {home};
    decision.path.cost = 0.0;
    VOD_LOG_DEBUG("VRA: served locally at " << topology_.node_name(home));
    return decision;
  }

  // "Make a list of all the servers on the network that have the requested
  //  video title; poll all of those servers."
  std::vector<NodeId> holders = catalog_.servers_with_title(video);
  std::erase_if(holders,
                [&](NodeId server) { return !can_provide(server, video); });
  if (holders.empty()) return std::nullopt;

  // "Calculate the Link Validation Number for each network link; run the
  //  Dijkstra's routing algorithm from the client's adjacent server."
  const DbLinkStatsProvider stats{network_state_};
  const LvnCalculator calculator{topology_, stats, options_};
  const routing::Graph graph = calculator.build_weighted_graph();

  Decision decision;
  const routing::ShortestPaths paths = routing::dijkstra(
      graph, home, want_trace ? &decision.trace : nullptr);

  // "Select those least expensive paths that end at the servers that can
  //  provide the video."
  for (const NodeId server : holders) {
    if (auto path = paths.path_to(server)) {
      decision.candidates.push_back(Candidate{server, std::move(*path)});
    }
  }
  if (decision.candidates.empty()) return std::nullopt;  // all disconnected

  // "From those alternative least cost paths choose the one with the
  //  smallest cost."  Ties break toward the lower node id so replays are
  //  deterministic.
  std::sort(decision.candidates.begin(), decision.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.path.cost != b.path.cost) return a.path.cost < b.path.cost;
              return a.server < b.server;
            });

  decision.served_locally = false;
  decision.server = decision.candidates.front().server;
  decision.path = decision.candidates.front().path;
  VOD_LOG_DEBUG("VRA: chose " << topology_.node_name(decision.server)
                              << " cost " << decision.path.cost);
  return decision;
}

}  // namespace vod::vra
