// Link and node validation — equations (1)–(4) of the paper.
//
//   LVN_i = max{NV_a, NV_b} + LU_i                                  (1)
//   NV_a  = ( Σ UBW_m ) / ( Σ LBW_m ), m ∈ links adjacent to a      (2)
//   LU_i  = LT_i · LV_i                                             (3)
//   LV_i  = link bandwidth (Mbps) / NormalizationConstant           (4)
//
// NV captures the load of the nodes at the ends of the link, LU the link's
// own traffic aggravation; the sum is the (positive, larger-is-worse)
// Dijkstra weight.  The NormalizationConstant "approaches 10" in the paper.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "db/database.h"
#include "net/topology.h"
#include "routing/graph.h"

namespace vod::vra {

/// Snapshot of one link's statistics as the VRA consumes them.
struct LinkStats {
  Mbps used;                     // UBW — used bandwidth
  Mbps total;                    // LBW — total bandwidth
  double traffic_fraction = 0.0; // LT — used/total as reported by SNMP
  bool online = true;            // false: the link is down, do not route on it
};

/// Where the VRA reads link statistics from.  Production use reads the
/// database's limited-access view; tests and the table benches feed raw
/// numbers.
class LinkStatsProvider {
 public:
  virtual ~LinkStatsProvider() = default;
  [[nodiscard]] virtual LinkStats stats(LinkId link) const = 0;
};

/// Stats straight out of the limited-access database sub-module (the
/// paper's arrangement: SNMP writes them, the VRA reads them).
class DbLinkStatsProvider final : public LinkStatsProvider {
 public:
  explicit DbLinkStatsProvider(db::LimitedAccessView view) : view_(view) {}
  [[nodiscard]] LinkStats stats(LinkId link) const override;

 private:
  db::LimitedAccessView view_;
};

/// Fixed stats from a table — used to replay the paper's Table 2 exactly.
class MapLinkStatsProvider final : public LinkStatsProvider {
 public:
  void set(LinkId link, LinkStats stats);
  [[nodiscard]] LinkStats stats(LinkId link) const override;

 private:
  std::vector<std::optional<LinkStats>> stats_;
};

/// Tuning of the validation equations.
struct ValidationOptions {
  /// Eq. 4 denominator; the paper suggests "an integer approaching 10".
  double normalization_constant = 10.0;
  /// Future-work extension (paper, Conclusions): weight of the server's own
  /// CPU/RAM load added to its node validation.  0 = paper behaviour.
  double server_load_weight = 0.0;
  /// Supplies a node's machine load in [0,1] when server_load_weight > 0.
  std::function<double(NodeId)> server_load;
};

/// Computes NV / LU / LVN over a topology from a stats provider.
class LvnCalculator {
 public:
  /// References must outlive the calculator.
  LvnCalculator(const net::Topology& topology,
                const LinkStatsProvider& stats,
                ValidationOptions options = {});

  /// Eq. 2 (+ optional server-load extension).
  [[nodiscard]] double node_validation(NodeId node) const;

  /// Eq. 2 for every node at once.  A single pass over the links
  /// accumulates each node's used/total sums, so the whole vector costs
  /// O(V + E) where per-node queries would cost O(E · deg) across a build.
  [[nodiscard]] std::vector<double> node_validations() const;

  /// Eq. 1 with both endpoint validations already known (from
  /// node_validations()); avoids the per-link O(deg) recomputation.
  [[nodiscard]] double link_validation_number(
      LinkId link, const std::vector<double>& node_validations) const;

  /// Eq. 4.
  [[nodiscard]] double link_value(LinkId link) const;

  /// Eq. 3.
  [[nodiscard]] double link_utilization_term(LinkId link) const;

  /// Eq. 1 — the Dijkstra weight of `link`.
  [[nodiscard]] double link_validation_number(LinkId link) const;

  /// Builds the weighted routing graph: one graph node per topology node
  /// (names preserved), one edge per online link, weight = LVN.  Links
  /// whose statistics report them down are omitted, so Dijkstra routes
  /// around failures.
  [[nodiscard]] routing::Graph build_weighted_graph() const;

 private:
  const net::Topology& topology_;
  const LinkStatsProvider& stats_;
  ValidationOptions options_;
};

}  // namespace vod::vra
