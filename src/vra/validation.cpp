#include "vra/validation.h"

#include <algorithm>
#include <stdexcept>

#include "common/contract.h"

namespace vod::vra {

LinkStats DbLinkStatsProvider::stats(LinkId link) const {
  const db::LinkRecord& record = view_.link(link);
  return LinkStats{record.used_bandwidth, record.total_bandwidth,
                   record.utilization, record.online};
}

void MapLinkStatsProvider::set(LinkId link, LinkStats stats) {
  require(link.valid(), "MapLinkStatsProvider::set: invalid link");
  require(!(stats.total.value() <= 0.0),
      "MapLinkStatsProvider::set: total bandwidth must be positive");
  if (stats_.size() <= link.value()) stats_.resize(link.value() + 1);
  stats_[link.value()] = stats;
}

LinkStats MapLinkStatsProvider::stats(LinkId link) const {
  require_found(
      !(!link.valid() || link.value() >= stats_.size() || !stats_[link.value()]),
      "MapLinkStatsProvider::stats: unknown link");
  return *stats_[link.value()];
}

LvnCalculator::LvnCalculator(const net::Topology& topology,
                             const LinkStatsProvider& stats,
                             ValidationOptions options)
    : topology_(topology), stats_(stats), options_(std::move(options)) {
  require(!(options_.normalization_constant <= 0.0),
      "LvnCalculator: normalization constant must be positive");
  require(!(options_.server_load_weight < 0.0),
      "LvnCalculator: server load weight must be >= 0");
  require(!(options_.server_load_weight > 0.0 && !options_.server_load),
      "LvnCalculator: server_load callback required when weighted");
}

double LvnCalculator::node_validation(NodeId node) const {
  double used_sum = 0.0;
  double total_sum = 0.0;
  for (const LinkId link : topology_.links_adjacent_to(node)) {
    const LinkStats s = stats_.stats(link);
    used_sum += s.used.value();
    total_sum += s.total.value();
  }
  // An isolated node imposes no network burden.
  double nv = total_sum > 0.0 ? used_sum / total_sum : 0.0;
  if (options_.server_load_weight > 0.0) {
    nv += options_.server_load_weight * options_.server_load(node);
  }
  return nv;
}

std::vector<double> LvnCalculator::node_validations() const {
  const std::size_t n = topology_.node_count();
  std::vector<double> used_sum(n, 0.0);
  std::vector<double> total_sum(n, 0.0);
  for (const net::LinkInfo& info : topology_.links()) {
    const LinkStats s = stats_.stats(info.id);
    used_sum[info.a.value()] += s.used.value();
    total_sum[info.a.value()] += s.total.value();
    used_sum[info.b.value()] += s.used.value();
    total_sum[info.b.value()] += s.total.value();
  }
  std::vector<double> nv(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (total_sum[i] > 0.0) nv[i] = used_sum[i] / total_sum[i];
    if (options_.server_load_weight > 0.0) {
      nv[i] += options_.server_load_weight *
               options_.server_load(NodeId{
                   static_cast<NodeId::underlying_type>(i)});
    }
  }
  return nv;
}

double LvnCalculator::link_validation_number(
    LinkId link, const std::vector<double>& node_validations) const {
  const net::LinkInfo& info = topology_.link(link);
  const double nv = std::max(node_validations[info.a.value()],
                             node_validations[info.b.value()]);
  return nv + link_utilization_term(link);
}

double LvnCalculator::link_value(LinkId link) const {
  return stats_.stats(link).total.value() / options_.normalization_constant;
}

double LvnCalculator::link_utilization_term(LinkId link) const {
  return stats_.stats(link).traffic_fraction * link_value(link);
}

double LvnCalculator::link_validation_number(LinkId link) const {
  const net::LinkInfo& info = topology_.link(link);
  const double nv = std::max(node_validation(info.a),
                             node_validation(info.b));
  return nv + link_utilization_term(link);
}

routing::Graph LvnCalculator::build_weighted_graph() const {
  routing::Graph graph;
  for (std::size_t n = 0; n < topology_.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    graph.add_node(topology_.node_name(node));
  }
  const std::vector<double> nv = node_validations();
  for (const net::LinkInfo& info : topology_.links()) {
    if (!stats_.stats(info.id).online) continue;  // route around failures
    graph.add_undirected_edge(info.a, info.b, info.id,
                              link_validation_number(info.id, nv));
  }
  return graph;
}

}  // namespace vod::vra
