#include "vra/explain.h"

#include "common/table.h"

namespace vod::vra {

std::string format_validation_table(const net::Topology& topology,
                                    const LvnCalculator& calculator) {
  TextTable table{{"Link", "NV(a)", "NV(b)", "LT", "LV", "LU = LT*LV",
                   "LVN"}};
  for (const net::LinkInfo& info : topology.links()) {
    const double nv_a = calculator.node_validation(info.a);
    const double nv_b = calculator.node_validation(info.b);
    const double lv = calculator.link_value(info.id);
    const double lu = calculator.link_utilization_term(info.id);
    const double lt = lv > 0.0 ? lu / lv : 0.0;
    table.add_row({info.name, TextTable::num(nv_a, 4),
                   TextTable::num(nv_b, 4), TextTable::num(lt, 4),
                   TextTable::num(lv, 4), TextTable::num(lu, 4),
                   TextTable::num(
                       calculator.link_validation_number(info.id), 4)});
  }
  return table.render();
}

}  // namespace vod::vra
