// Human-readable breakdowns of the VRA's arithmetic.
//
// format_validation_table() prints, per link, both endpoint node
// validations (eq. 2), the utilization term (eq. 3) and the resulting LVN
// (eq. 1) — the working the paper shows only as final numbers in Table 3.
// Operators use it to answer "why is this link expensive right now?".
#pragma once

#include <string>

#include "net/topology.h"
#include "vra/validation.h"

namespace vod::vra {

/// One row per link: name, NV(a), NV(b), LT, LV, LU, LVN.
std::string format_validation_table(const net::Topology& topology,
                                    const LvnCalculator& calculator);

}  // namespace vod::vra
