// Wall-clock profiling hooks (scoped RAII timers).
//
// DETERMINISM QUARANTINE: this is the only place outside src/common/rng.h
// where the repo may read a real clock (vodlint's [entropy] rule exempts
// src/obs/ for exactly this file's benefit).  Timings flow one way — out
// of the simulation into the profiler's aggregate table — and never into
// any simulation decision, so runs stay a pure function of their seeds
// whether profiling is on or off.
//
// Gating: VOD_PROFILE_SCOPE sites compile to a single enabled-flag branch
// (runtime flag, default off); defining VOD_DISABLE_PROFILING compiles
// them out entirely.
#pragma once

#include <chrono>  // vodlint:entropy-ok(wall-clock quarantined to src/obs)
#include <cstdint>
#include <map>
#include <string>

namespace vod::obs {

/// Aggregates per-site call counts and elapsed wall-clock nanoseconds.
/// Disabled by default; the scoped timers check `enabled()` first so a
/// cold profiler costs one branch per site.
class Profiler {
 public:
  struct SiteStats {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };

  static Profiler& instance();

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(const char* site, std::uint64_t elapsed_ns);

  [[nodiscard]] const std::map<std::string, SiteStats>& sites() const {
    return sites_;
  }
  void reset() { sites_.clear(); }

  /// `site,calls,total_ns,mean_ns` rows, site-sorted.
  [[nodiscard]] std::string report_csv() const;

 private:
  Profiler() = default;

  bool enabled_ = false;
  std::map<std::string, SiteStats> sites_;
};

/// RAII timer around one profiled scope.  Reads the wall clock only while
/// the profiler is enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* site) : site_(site) {
    if (Profiler::instance().enabled()) {
      // vodlint:entropy-ok(wall-clock quarantined to src/obs)
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }

  ~ScopedTimer() {
    if (!armed_) return;
    // vodlint:entropy-ok(wall-clock quarantined to src/obs)
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::instance().record(
        site_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* site_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace vod::obs

#ifdef VOD_DISABLE_PROFILING
#define VOD_PROFILE_SCOPE(site)
#else
#define VOD_PROFILE_CONCAT_INNER(a, b) a##b
#define VOD_PROFILE_CONCAT(a, b) VOD_PROFILE_CONCAT_INNER(a, b)
/// Times the enclosing scope under `site` when profiling is enabled.
#define VOD_PROFILE_SCOPE(site)                 \
  const ::vod::obs::ScopedTimer VOD_PROFILE_CONCAT(vod_profile_scope_, \
                                                   __LINE__) {         \
    site                                                               \
  }
#endif
