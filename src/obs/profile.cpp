#include "obs/profile.h"

#include <sstream>

namespace vod::obs {

Profiler& Profiler::instance() {
  // vodlint:allow(shared-mutable-global: observe-only wall-clock profiler
  // (DESIGN.md §11); disabled by default and never enabled around parallel
  // regions — timings cannot feed back into simulation state)
  static Profiler profiler;
  return profiler;
}

void Profiler::record(const char* site, std::uint64_t elapsed_ns) {
  SiteStats& stats = sites_[site];
  ++stats.calls;
  stats.total_ns += elapsed_ns;
}

std::string Profiler::report_csv() const {
  std::ostringstream os;
  os << "site,calls,total_ns,mean_ns\n";
  for (const auto& [site, stats] : sites_) {
    const std::uint64_t mean =
        stats.calls == 0 ? 0 : stats.total_ns / stats.calls;
    os << site << ',' << stats.calls << ',' << stats.total_ns << ',' << mean
       << '\n';
  }
  return os.str();
}

}  // namespace vod::obs
