// Always-on flight recorder ("black box").
//
// A FlightRecorder keeps a small ring of the most recent trace events —
// independent of any full TraceRecorder sink, cheap enough to leave on for
// every run — and, when an anomaly trigger fires (SLO breach, fault
// injection, preemption commit, or an explicit trigger() call), dumps a
// deterministic postmortem file: the last-N events, a full metrics
// snapshot, the active configuration (threads / epoch / QoS knobs,
// injected by whoever installs the recorder) and the sim clock.
//
// Installation (set_flight_recorder) wires the recorder's ring into the
// trace layer's effective-sink slot: with no user TraceRecorder the ring
// records directly; with one, the user recorder mirrors into the ring —
// either way instrumentation sites still pay one load+branch when
// everything is off, and the ring sees every event even past a user
// recorder's capacity cap.
//
// Determinism contract (DESIGN.md §16): every byte of a dump derives from
// simulated state — events carry sim timestamps, the clock is the sim
// clock, config entries are caller-supplied strings, and dump files are
// sequence-numbered (<prefix><seq>.json), never wall-clock-named.
// Double-runs produce byte-identical dumps.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vod::obs {

struct FlightOptions {
  /// Ring capacity: how many recent events the black box retains.
  std::size_t ring_capacity = 256;
  /// Hard cap on dump files per run; further triggers are counted as
  /// suppressed.  0 = unlimited.
  std::size_t max_dumps = 8;
  /// Minimum sim time between dumps; triggers inside the gap are
  /// suppressed (a preemption storm produces one black box, not 400).
  Duration min_gap{60.0};
  /// Dump file path prefix; files are `<prefix><seq>.json` with seq
  /// starting at 0.  Empty = keep dumps in memory only (dumps()).
  std::string dump_path_prefix;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightOptions options = {});

  /// Source of the full metrics snapshot in each dump; nullptr omits it.
  /// Must outlive the recorder or be unbound first.
  void bind_registry(const MetricsRegistry* registry) {
    registry_ = registry;
  }
  /// Sim clock for the ring's event timestamps and the dump's `sim_time_s`.
  void set_clock(std::function<SimTime()> clock);

  /// Config shown in the dump (threads, epoch shards, QoS knobs, seed...).
  /// Later sets with the same key overwrite; rendered key-sorted.
  void set_config(const std::string& key, const std::string& value);

  /// Fires the black box.  Returns true when a dump was produced, false
  /// when suppressed (max_dumps reached or inside min_gap).
  bool trigger(const std::string& reason);

  [[nodiscard]] std::size_t dump_count() const { return dumps_.size(); }
  [[nodiscard]] std::size_t suppressed_count() const { return suppressed_; }
  /// In-memory copies of every dump produced (reason, json) — written to
  /// `<prefix><seq>.json` as well when a prefix is configured.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  dumps() const {
    return dumps_;
  }

  /// The ring itself (exposed for tests; the trace layer feeds it once the
  /// recorder is installed).
  [[nodiscard]] TraceRecorder& ring() { return ring_; }
  [[nodiscard]] const TraceRecorder& ring() const { return ring_; }

 private:
  [[nodiscard]] std::string build_dump(const std::string& reason,
                                       SimTime at) const;

  FlightOptions options_;
  TraceRecorder ring_;
  std::function<SimTime()> clock_;
  const MetricsRegistry* registry_ = nullptr;
  std::vector<std::pair<std::string, std::string>> config_;  // key-sorted
  std::vector<std::pair<std::string, std::string>> dumps_;
  std::size_t suppressed_ = 0;
  bool dumped_before_ = false;
  SimTime last_dump_{0.0};
};

/// The process-global flight recorder consulted by anomaly triggers
/// (SloMonitor breaches, FaultInjector::apply, preemption commits);
/// nullptr (the default) disables at one load+branch.  Installing also
/// wires the ring into the trace layer (set_flight_ring); the installer
/// owns the recorder and must clear the global before destroying it.
[[nodiscard]] FlightRecorder* flight_recorder();
void set_flight_recorder(FlightRecorder* recorder);

}  // namespace vod::obs
