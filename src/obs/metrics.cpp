#include "obs/metrics.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/contract.h"

namespace vod::obs {

namespace {

/// Whole values print as integers, everything else with ostringstream
/// default formatting — deterministic either way.
std::string render(double value) {
  if (value == std::floor(value) && std::abs(value) < 9e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string bound_label(double bound) { return render(bound); }

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    require(upper_bounds_[i - 1] < upper_bounds_[i],
        "Histogram: bucket bounds must be strictly ascending");
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = upper_bounds_.size();  // +inf by default
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

void MetricsSnapshot::set_counter(const std::string& name,
                                  std::uint64_t value) {
  scalars_[name] = Scalar{'c', static_cast<double>(value)};
}

void MetricsSnapshot::set_gauge(const std::string& name, double value) {
  scalars_[name] = Scalar{'g', value};
}

void MetricsSnapshot::set_histogram(const std::string& name,
                                    HistogramData data) {
  histograms_[name] = std::move(data);
}

double MetricsSnapshot::value(const std::string& name) const {
  const auto it = scalars_.find(name);
  require_found(it != scalars_.end(),
      "MetricsSnapshot::value: unknown metric");
  return it->second.value;
}

std::uint64_t MetricsSnapshot::value_u64(const std::string& name) const {
  return static_cast<std::uint64_t>(value(name));
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "name,kind,value\n";
  for (const auto& [name, scalar] : scalars_) {
    os << name << ',' << (scalar.kind == 'c' ? "counter" : "gauge") << ','
       << render(scalar.value) << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      os << name << "[le=" << bound_label(hist.upper_bounds[i])
         << "],histogram," << hist.bucket_counts[i] << '\n';
    }
    os << name << "[le=+inf],histogram,"
       << hist.bucket_counts[hist.upper_bounds.size()] << '\n';
    os << name << "[count],histogram," << hist.count << '\n';
    os << name << "[sum],histogram," << render(hist.sum) << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, scalar] : scalars_) {
    if (scalar.kind != 'c') continue;
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << render(scalar.value);
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, scalar] : scalars_) {
    if (scalar.kind != 'g') continue;
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << render(scalar.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      if (i != 0) os << ',';
      os << render(hist.upper_bounds[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i != 0) os << ',';
      os << hist.bucket_counts[i];
    }
    os << "],\"count\":" << hist.count << ",\"sum\":" << render(hist.sum)
       << '}';
  }
  os << "}}\n";
  return os.str();
}

void MetricsRegistry::check_name_free(const std::string& name,
                                      char kind) const {
  require(kind == 'c' || counters_.find(name) == counters_.end(),
      "MetricsRegistry: name already registered as a counter");
  require(kind == 'g' || gauges_.find(name) == gauges_.end(),
      "MetricsRegistry: name already registered as a gauge");
  require(kind == 'h' || histograms_.find(name) == histograms_.end(),
      "MetricsRegistry: name already registered as a histogram");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  check_name_free(name, 'c');
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  check_name_free(name, 'g');
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    require(it->second.upper_bounds() == upper_bounds,
        "MetricsRegistry::histogram: bounds differ from registration");
    return it->second;
  }
  check_name_free(name, 'h');
  return histograms_.emplace(name, Histogram{std::move(upper_bounds)})
      .first->second;
}

void MetricsRegistry::add_collector(Collector collector) {
  collectors_.push_back(std::move(collector));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.set_counter(name, counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.set_gauge(name, gauge.value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.set_histogram(name,
                       MetricsSnapshot::HistogramData{
                           hist.upper_bounds(), hist.bucket_counts(),
                           hist.count(), hist.sum()});
  }
  for (const Collector& collector : collectors_) {
    collector(snap);
  }
  return snap;
}

}  // namespace vod::obs
