#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/contract.h"
#include "common/stats.h"

namespace vod::obs {

void render_value(std::ostream& os, double value) {
  // to_chars + write instead of operator<<: the exporters emit hundreds of
  // thousands of values and num_put's per-value locale machinery dominated
  // the export cost.  chars_format::general with precision 6 is specified
  // to match printf "%.6g", which is exactly what default-formatted
  // ostream output produces for doubles, so the bytes are unchanged.
  char buf[32];
  if (value == std::floor(value) && std::abs(value) < 9e15) {
    const auto res = std::to_chars(buf, buf + sizeof buf,
                                   static_cast<long long>(value));
    os.write(buf, res.ptr - buf);
  } else {
    const auto res = std::to_chars(buf, buf + sizeof buf, value,
                                   std::chars_format::general, 6);
    os.write(buf, res.ptr - buf);
  }
}

double bucket_quantile(const std::vector<double>& upper_bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t count, double q) {
  require(count > 0, "bucket_quantile: empty histogram");
  require(counts.size() == upper_bounds.size() + 1,
      "bucket_quantile: counts must cover every bound plus +inf");
  // One rank rule for the whole repo: vod::nearest_rank, shared with
  // SampleSet::quantile (common/stats.h).
  const std::uint64_t rank = nearest_rank(static_cast<std::size_t>(count), q);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative < rank) continue;
    // The +inf bucket has no finite upper edge; clamp to the last bound.
    if (i == upper_bounds.size()) {
      return upper_bounds.empty() ? 0.0 : upper_bounds.back();
    }
    const double hi = upper_bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : upper_bounds[i - 1];
    const std::uint64_t in_bucket = counts[i];
    const std::uint64_t below = cumulative - in_bucket;
    const double fraction = static_cast<double>(rank - below) /
                            static_cast<double>(in_bucket);
    return lo + (hi - lo) * fraction;
  }
  fail_ensure("bucket_quantile: rank exceeds total count");
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    require(upper_bounds_[i - 1] < upper_bounds_[i],
        "Histogram: bucket bounds must be strictly ascending");
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = upper_bounds_.size();  // +inf by default
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

void MetricsSnapshot::set_counter(const std::string& name,
                                  std::uint64_t value) {
  scalars_[name] = Scalar{'c', static_cast<double>(value)};
}

void MetricsSnapshot::set_gauge(const std::string& name, double value) {
  scalars_[name] = Scalar{'g', value};
}

void MetricsSnapshot::set_histogram(const std::string& name,
                                    HistogramData data) {
  histograms_[name] = std::move(data);
}

void MetricsSnapshot::set_histogram(
    const std::string& name, const std::vector<double>& upper_bounds,
    const std::vector<std::uint64_t>& bucket_counts, std::uint64_t count,
    double sum) {
  HistogramData& slot = histograms_[name];
  slot.upper_bounds = upper_bounds;
  slot.bucket_counts = bucket_counts;
  slot.count = count;
  slot.sum = sum;
}

double MetricsSnapshot::value(const std::string& name) const {
  const auto it = scalars_.find(name);
  require_found(it != scalars_.end(),
      "MetricsSnapshot::value: unknown metric");
  return it->second.value;
}

std::uint64_t MetricsSnapshot::value_u64(const std::string& name) const {
  return static_cast<std::uint64_t>(value(name));
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "name,kind,value\n";
  for (const auto& [name, scalar] : scalars_) {
    os << name << ',' << (scalar.kind == 'c' ? "counter" : "gauge") << ',';
    render_value(os, scalar.value);
    os << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      os << name << "[le=";
      render_value(os, hist.upper_bounds[i]);
      os << "],histogram," << hist.bucket_counts[i] << '\n';
    }
    os << name << "[le=+inf],histogram,"
       << hist.bucket_counts[hist.upper_bounds.size()] << '\n';
    os << name << "[count],histogram," << hist.count << '\n';
    os << name << "[sum],histogram,";
    render_value(os, hist.sum);
    os << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, scalar] : scalars_) {
    if (scalar.kind != 'c') continue;
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    render_value(os, scalar.value);
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, scalar] : scalars_) {
    if (scalar.kind != 'g') continue;
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    render_value(os, scalar.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      if (i != 0) os << ',';
      render_value(os, hist.upper_bounds[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i != 0) os << ',';
      os << hist.bucket_counts[i];
    }
    os << "],\"count\":" << hist.count << ",\"sum\":";
    render_value(os, hist.sum);
    os << '}';
  }
  os << "}}\n";
  return os.str();
}

void MetricsRegistry::check_name_free(const std::string& name,
                                      char kind) const {
  require(kind == 'c' || counters_.find(name) == counters_.end(),
      "MetricsRegistry: name already registered as a counter");
  require(kind == 'g' || gauges_.find(name) == gauges_.end(),
      "MetricsRegistry: name already registered as a gauge");
  require(kind == 'h' || histograms_.find(name) == histograms_.end(),
      "MetricsRegistry: name already registered as a histogram");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  check_name_free(name, 'c');
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  check_name_free(name, 'g');
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    require(it->second.upper_bounds() == upper_bounds,
        "MetricsRegistry::histogram: bounds differ from registration");
    return it->second;
  }
  check_name_free(name, 'h');
  return histograms_.emplace(name, Histogram{std::move(upper_bounds)})
      .first->second;
}

void MetricsRegistry::add_collector(Collector collector) {
  collectors_.push_back(std::move(collector));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snapshot_into(snap);
  return snap;
}

void MetricsRegistry::snapshot_into(MetricsSnapshot& out) const {
  for (const auto& [name, counter] : counters_) {
    out.set_counter(name, counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.set_gauge(name, gauge.value());
  }
  for (const auto& [name, hist] : histograms_) {
    out.set_histogram(name, hist.upper_bounds(), hist.bucket_counts(),
                      hist.count(), hist.sum());
  }
  for (const Collector& collector : collectors_) {
    collector(out);
  }
}

}  // namespace vod::obs
