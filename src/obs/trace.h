// Structured sim-time event tracing.
//
// The TraceRecorder collects timestamped events from every subsystem
// (session lifecycle, VRA route decisions, DMA cache churn, fluid
// reallocation epochs, fault injections, SNMP sweeps) and exports them as
// Chrome trace-event JSON — loadable in Perfetto / about:tracing, with one
// "thread" track per subsystem — or as a deterministic line-per-event text
// dump for golden tests and the double-run determinism harness.
//
// Determinism contract (DESIGN.md §11): tracing is observe-only.  Call
// sites first check trace_sink() (a global pointer, null when tracing is
// off) and only then build event arguments, so a disabled recorder costs
// one load+branch and an enabled one never feeds anything back into the
// simulation.  Timestamps come from the recorder's clock callback — always
// simulated time, never the wall clock (wall-clock profiling lives in
// obs/profile.h, separately gated).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace vod::obs {

/// The subsystem an event belongs to; each renders as its own thread track
/// in the Chrome trace (tid = enum value + 1).
enum class Subsystem {
  kSession = 0,
  kVra,
  kDma,
  kFluid,
  kSnmp,
  kFault,
  kService,
  kSim,
  kSlo,  // SLO burn-rate breach/recover events (obs/slo.h)
};

inline constexpr std::size_t kSubsystemCount = 9;

const char* to_string(Subsystem subsystem);

/// One key/value event annotation.  Values are pre-rendered strings so the
/// recorder stores no type zoo; numbers should be formatted by the call
/// site (deterministically — ostringstream default formatting).
struct TraceArg {
  std::string key;
  std::string value;
};

/// One recorded event.  `phase` uses the Chrome trace-event phase letters:
///   'i' instant   'B'/'E' duration begin/end (nest per subsystem track)
///   'b'/'e' async begin/end (paired by id; sessions use these so
///           overlapping lifespans need no nesting discipline)
///   'C' counter (value plotted as a counter track)
struct TraceEvent {
  SimTime at{0.0};
  Subsystem subsystem = Subsystem::kService;
  char phase = 'i';
  std::string name;
  std::uint64_t id = 0;    // async pair id ('b'/'e' only)
  double value = 0.0;      // counter value ('C' only)
  std::vector<TraceArg> args;
};

/// What a capacity-capped recorder does with event N+1.
enum class OverflowPolicy {
  kDrop,  // count it (dropped_count) and discard — keeps the run's head
  kRing,  // overwrite the oldest event — keeps the run's tail (flight ring)
};

/// Collects events in memory; export with to_chrome_json() / to_text().
class TraceRecorder {
 public:
  /// `max_events` bounds memory on huge runs: once reached, kDrop counts
  /// further events (dropped_count) without storing them, kRing overwrites
  /// the oldest (overwritten_count) so the buffer always holds the most
  /// recent tail.  0 = unlimited (kDrop only).
  explicit TraceRecorder(std::size_t max_events = 0,
                         OverflowPolicy policy = OverflowPolicy::kDrop);

  /// Supplies "now" for every recorded event; defaults to SimTime{0}.
  /// Typically wired to sim.now() by whoever installs the recorder.
  void set_clock(std::function<SimTime()> clock);

  void instant(Subsystem subsystem, std::string name,
               std::vector<TraceArg> args = {});
  void counter(Subsystem subsystem, std::string name, double value);
  void begin(Subsystem subsystem, std::string name,
             std::vector<TraceArg> args = {});
  void end(Subsystem subsystem, std::string name);
  void async_begin(Subsystem subsystem, std::string name, std::uint64_t id,
                   std::vector<TraceArg> args = {});
  void async_end(Subsystem subsystem, std::string name, std::uint64_t id);

  /// Physical storage order; under kRing after a wrap this is rotated —
  /// use for_each_event() / the exporters for oldest-first order.
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  /// Oldest-to-newest visit that is wrap-aware under kRing.
  template <class Fn>
  void for_each_event(Fn&& fn) const {
    const std::size_t n = events_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(events_[(head_ + i) % n]);
    }
  }
  [[nodiscard]] std::size_t dropped_count() const { return dropped_; }
  [[nodiscard]] std::size_t overwritten_count() const { return overwritten_; }
  void clear();

  /// Mirrors every event pushed here into `other` as well (before any
  /// capacity handling, so the mirror sees events this recorder drops).
  /// The flight recorder uses this to shadow a user-installed sink; mirror
  /// chains are not followed.  nullptr detaches.
  void set_mirror(TraceRecorder* other) { mirror_ = other; }
  [[nodiscard]] TraceRecorder* mirror() const { return mirror_; }

  /// Chrome trace-event JSON ("traceEvents" array plus thread-name
  /// metadata); loads in Perfetto and chrome://tracing.  Timestamps are
  /// simulated microseconds.
  [[nodiscard]] std::string to_chrome_json() const;

  /// One line per event: `t=<s> <subsystem> <phase> <name> [k=v ...]` —
  /// the deterministic dump the golden tests and the double-run harness
  /// compare byte for byte.
  [[nodiscard]] std::string to_text() const;

  /// Distinct subsystems with at least one recorded event.
  [[nodiscard]] std::size_t subsystem_count() const;

 private:
  void push(TraceEvent event);
  [[nodiscard]] SimTime now() const {
    return clock_ ? clock_() : SimTime{0.0};
  }

  std::function<SimTime()> clock_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_ = 0;
  OverflowPolicy policy_ = OverflowPolicy::kDrop;
  std::size_t head_ = 0;  // oldest element / next overwrite slot (kRing)
  std::size_t dropped_ = 0;
  std::size_t overwritten_ = 0;
  TraceRecorder* mirror_ = nullptr;
};

/// The process-global trace sink consulted by every instrumentation site;
/// nullptr (the default) disables tracing.  The simulator is
/// single-threaded, so plain pointers suffice — the installer owns the
/// recorder and must clear the sink before destroying it.
///
/// Two producers can feed the sink slot: the user-installed recorder
/// (set_trace_sink) and the flight recorder's always-on ring
/// (set_flight_ring, installed by obs::FlightRecorder).  When both are
/// present the user recorder is the sink and mirrors into the ring; when
/// only the ring is present it is the sink directly — either way call
/// sites still pay exactly one load+branch when everything is off.
[[nodiscard]] TraceRecorder* trace_sink();
void set_trace_sink(TraceRecorder* recorder);

/// Installs/clears the flight recorder's ring buffer (obs/flight.h owns
/// the ring; nullptr detaches).  Not for general use.
void set_flight_ring(TraceRecorder* ring);

/// Renders a number the way the text/JSON exporters expect (ostringstream
/// default formatting — deterministic across runs on one platform).
std::string num(double value);
std::string num(std::uint64_t value);

}  // namespace vod::obs
