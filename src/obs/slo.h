// Declarative SLOs with multi-window burn-rate evaluation.
//
// An SloSpec names a service-level objective over registry metrics — a
// per-class availability floor (good/total counters), a reject-rate
// ceiling (bad/total counters), or a latency-quantile ceiling over an
// existing fixed-bucket histogram — and a set of sliding sim-time windows.
// The monitor keeps a ring of timestamped metric snapshots, computes each
// window's burn rate (how fast the error budget is being consumed, 1.0 =
// exactly at budget) from windowed deltas, and declares a breach only when
// EVERY window exceeds its burn threshold — the SRE multi-window pattern
// that makes short spikes and slow leaks both detectable without paging on
// noise.
//
// Crossings are edge-triggered: entering breach emits one `slo.breach`
// instant on the kSlo trace track, increments `slo.<name>.breaches`, and
// pokes the flight recorder; leaving emits `slo.recover`.  Evaluation is
// driven by the same deterministic cadence as the series sampler (the
// monitor piggybacks on TimeSeriesRecorder ticks via evaluate()), so
// identical runs breach at identical instants.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"

namespace vod::obs {

/// One sliding window: burn is computed over the last `window` of sim time
/// and must be >= `max_burn` (for ALL windows of the spec) to breach.
struct BurnWindow {
  Duration window{300.0};
  double max_burn = 1.0;
};

struct SloSpec {
  enum class Kind {
    /// good/total counters; objective: good/total >= threshold.
    /// burn = (1 - windowed good/total) / (1 - threshold).
    kAvailabilityFloor,
    /// bad/total counters; objective: bad/total <= threshold.
    /// burn = windowed bad/total / threshold.
    kRatioCeiling,
    /// histogram quantile; objective: quantile(q) <= threshold over the
    /// window's bucket deltas.  burn = windowed quantile / threshold.
    kQuantileCeiling,
  };

  std::string name;  // metric-safe: slo.<name>.breaches is registered
  Kind kind = Kind::kAvailabilityFloor;
  /// Metric names in the bound registry's snapshot.  kAvailabilityFloor
  /// reads `good_metric` and sums `total_metrics`; kRatioCeiling reads
  /// `bad_metric` and sums `total_metrics`; kQuantileCeiling reads
  /// `histogram_metric`.
  std::string good_metric;
  std::string bad_metric;
  std::vector<std::string> total_metrics;
  std::string histogram_metric;
  double quantile = 0.99;   // kQuantileCeiling only
  double threshold = 0.99;  // floor (availability) or ceiling (ratio/q)
  /// All windows must burn past their threshold to breach.  Must be
  /// non-empty; list longest first by convention (output is order-stable).
  std::vector<BurnWindow> windows;
};

/// Evaluation result for one spec at one instant (status_json exposes the
/// latest; tests introspect via states()).
struct SloState {
  SloSpec spec;
  bool breached = false;
  std::uint64_t breaches = 0;   // edge-triggered count
  std::uint64_t recoveries = 0;
  std::vector<double> last_burn;  // per window, last evaluate()
};

class SloMonitor {
 public:
  /// `registry` receives the `slo.<name>.breaches` counters (registered
  /// eagerly so CSV columns exist from the first snapshot) and is the
  /// source of evaluated metrics.  Must outlive the monitor.
  explicit SloMonitor(MetricsRegistry* registry);

  void add(SloSpec spec);

  /// Evaluates every spec against a fresh registry snapshot at `at`,
  /// updating burn-rate windows and firing breach/recover edges.  Called
  /// directly by tests; the snapshot is taken into a warm scratch that is
  /// reused across calls.
  void evaluate(SimTime at);

  /// Same, but against a snapshot the caller already holds — the
  /// bench::ObsScope path, which hands over the series sampler's tick
  /// snapshot so one snapshot per tick serves both subsystems.
  void evaluate(SimTime at, const MetricsSnapshot& snap);

  [[nodiscard]] const std::vector<SloState>& states() const {
    return states_;
  }

  /// Deterministic JSON: per-spec breach state, counts and last burns,
  /// in registration order.
  [[nodiscard]] std::string status_json() const;

 private:
  struct HistorySample {
    SimTime at{0.0};
    double good = 0.0;
    double bad = 0.0;
    double total = 0.0;
    std::vector<std::uint64_t> bucket_counts;  // kQuantileCeiling
  };

  /// Evaluates one window: burn over [at - window, at], using the newest
  /// history sample at or before the window start as the baseline (or an
  /// implicit all-zero sample when the run is younger than the window).
  /// Windows with no observations burn 0 (no data = no budget spent).
  [[nodiscard]] double window_burn(const SloSpec& spec,
                                   const std::deque<HistorySample>& history,
                                   const HistorySample& now_sample,
                                   Duration window,
                                   const std::vector<double>& bounds) const;
  [[nodiscard]] HistorySample read_spec(const SloSpec& spec, SimTime at,
                                        const MetricsSnapshot& snap) const;

  MetricsRegistry* registry_ = nullptr;
  std::vector<SloState> states_;
  std::vector<Counter*> breach_counters_;
  /// Per-spec sample history, trimmed to the longest window.
  std::vector<std::deque<HistorySample>> histories_;
  /// Warm snapshot for the evaluate(at) path (see snapshot_into).
  MetricsSnapshot scratch_;
};

}  // namespace vod::obs
