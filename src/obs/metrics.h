// Named metrics: counters, gauges and fixed-bucket histograms.
//
// The MetricsRegistry is the one place run-level numbers live.  Components
// either own registry-backed instruments directly (the service's
// admitted/rejected/coalesced/retry counters) or are mirrored in at
// snapshot time by registered collectors (the VRA's cache stats, the SNMP
// poll count, the fluid allocator's reallocation counters), so
// ServiceReport and the benches read one source of truth.  Snapshots
// export as CSV or JSON with deterministic (name-sorted) ordering.
//
// Everything here is driven by the deterministic simulation — no clocks,
// no entropy — so identical runs produce byte-identical exports.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace vod::obs {

/// Monotonically increasing count (requests served, cache hits, ...).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (active sessions, queue depth, ...).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Streams `value` with the repo's deterministic rendering: whole values
/// print as integers (no exponent, no trailing `.0`), everything else with
/// the stream's default formatting.  Writing straight into the export
/// stream matters: the exporters render hundreds of thousands of values,
/// and a per-value ostringstream (locale setup each construction) was the
/// dominant cost of `--series-out` before this existed.
void render_value(std::ostream& os, double value);

/// THE bucketed-percentile implementation (DESIGN.md §16): shared by
/// Histogram::quantile and the SloMonitor's windowed bucket deltas so every
/// histogram-derived percentile in the repo agrees.  Uses the same
/// nearest-rank convention as SampleSet::quantile — rank = ceil(q * count)
/// — then interpolates linearly inside the target bucket (the bucket's
/// lower edge is the previous bound, or min(0, bound) for the first).
/// Observations past the last bound clamp to it (the +inf bucket has no
/// finite upper edge).  `counts` has bounds.size() + 1 entries (+inf last)
/// and `count` is their total; throws when count is 0 or q outside [0,1].
[[nodiscard]] double bucket_quantile(const std::vector<double>& upper_bounds,
                                     const std::vector<std::uint64_t>& counts,
                                     std::uint64_t count, double q);

/// Fixed-bucket histogram: counts of observations <= each upper bound,
/// plus an implicit +inf bucket, total count and sum.  Bounds are fixed at
/// construction — no dynamic resizing, so identical runs bucket
/// identically.
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending (checked).
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (+inf last).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Bucket-interpolated quantile of everything observed so far (see
  /// bucket_quantile above for the exact convention).  Deterministic —
  /// a pure function of the bucket counts.  Throws when empty.
  [[nodiscard]] double quantile(double q) const {
    return bucket_quantile(upper_bounds_, counts_, count_, q);
  }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// A point-in-time copy of every instrument (plus whatever the collectors
/// contribute), renderable as CSV or JSON.
class MetricsSnapshot {
 public:
  struct Scalar {
    char kind = 'g';  // 'c' counter, 'g' gauge
    double value = 0.0;
  };
  struct HistogramData {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  void set_counter(const std::string& name, std::uint64_t value);
  void set_gauge(const std::string& name, double value);
  void set_histogram(const std::string& name, HistogramData data);
  /// Overwrites in place, copy-assigning the vectors so a warm entry's
  /// buffers are reused — the per-tick sampling path (snapshot_into).
  void set_histogram(const std::string& name,
                     const std::vector<double>& upper_bounds,
                     const std::vector<std::uint64_t>& bucket_counts,
                     std::uint64_t count, double sum);

  /// Scalar value by name; throws std::out_of_range when absent.
  [[nodiscard]] double value(const std::string& name) const;
  [[nodiscard]] std::uint64_t value_u64(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const {
    return scalars_.contains(name);
  }

  [[nodiscard]] const std::map<std::string, Scalar>& scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::map<std::string, HistogramData>& histograms()
      const {
    return histograms_;
  }

  /// `name,kind,value` rows, name-sorted; histograms flatten to
  /// `name[le=B]` bucket rows plus `name[count]` / `name[sum]`.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Scalar> scalars_;
  std::map<std::string, HistogramData> histograms_;
};

/// The registry.  Instruments are created on first use and live as long as
/// the registry; returned references stay valid (node-stable maps).
class MetricsRegistry {
 public:
  /// A collector runs at snapshot time and contributes derived values —
  /// the bridge for components that keep their own counters.
  using Collector = std::function<void(MetricsSnapshot&)>;

  /// Get-or-create; a name registered as one kind cannot be reused as
  /// another (throws std::logic_error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// On re-get the bounds must match the original registration.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  void add_collector(Collector collector);

  /// Copies every instrument into a snapshot, then runs the collectors
  /// (which may overwrite or extend).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Same, but into an existing snapshot whose warm entries are
  /// overwritten in place — the series sampler calls this every cadence
  /// tick, so after the first tick no map nodes are allocated.  Keys are
  /// never removed: registries only grow instruments, so a stale key can
  /// only come from rebinding a different registry (clear the snapshot
  /// then).
  void snapshot_into(MetricsSnapshot& out) const;

 private:
  void check_name_free(const std::string& name, char kind) const;

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<Collector> collectors_;
};

}  // namespace vod::obs
