// Sim-time metric time series.
//
// The TimeSeriesRecorder turns the end-of-run MetricsRegistry snapshot into
// trajectories: on a fixed sim-time cadence it snapshots the registry and
// appends one point per selected metric into a bounded ring-buffer series,
// keeping both the raw value and the per-window rate (delta / cadence) so
// utilization ramps, stall growth and preemption storms are visible while
// they happen, not just in aggregate.  Histograms contribute their [count]
// and [sum] scalars as series (the full bucket vector stays a snapshot
// concern).
//
// Determinism contract (DESIGN.md §16): sampling is observe-only and driven
// entirely by simulated time.  The simulation loops consult series_sink()
// (a global pointer, null when recording is off — one load+branch) and pump
// on_instant(next_event_time) BEFORE executing each instant, so a sample at
// cadence tick T reflects exactly the events strictly before T; the event
// stream itself is never perturbed (no sampling events are scheduled).
// Identical runs therefore produce byte-identical exports at any worker
// width — the registry is only read between epochs, never inside a parallel
// region.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"

namespace vod::obs {

struct SeriesOptions {
  /// Sim-time spacing between samples; ticks land on multiples of the
  /// cadence starting at first_sample (so runs of different lengths share
  /// a grid and double-runs align trivially).
  Duration cadence = Duration{30.0};
  /// Sim time of the first tick.
  SimTime first_sample{0.0};
  /// Per-series point cap; once full the oldest points are overwritten
  /// (ring), keeping the most recent window and counting evictions.
  /// 0 = unlimited.
  std::size_t capacity = 4096;
  /// Metric-name prefixes to record; empty records everything.  A name is
  /// kept when it starts with any prefix (exact names work as prefixes).
  std::vector<std::string> include;
};

/// One sampled point: the raw value and the per-second rate over the
/// window since the previous sample (0 for the first point and for
/// gauge-style values moving backwards is fine — rate is signed).
struct SeriesPoint {
  SimTime at{0.0};
  double value = 0.0;
  double rate = 0.0;
};

/// A bounded ring of points for one metric.
class Series {
 public:
  explicit Series(std::size_t capacity) : capacity_(capacity) {}

  void append(SeriesPoint point);

  /// Oldest-to-newest (wrap-aware).
  template <class Fn>
  void for_each_point(Fn&& fn) const {
    const std::size_t n = points_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(points_[(head_ + i) % n]);
    }
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t evicted() const { return evicted_; }
  [[nodiscard]] const SeriesPoint& back() const;

 private:
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // oldest element / next overwrite slot
  std::size_t evicted_ = 0;
  std::vector<SeriesPoint> points_;
};

/// Registry-driven sampler.  Bind a registry, install as the global
/// series_sink(), and the simulation loops pump on_instant(); sample() can
/// also be called directly (tests, explicit flushes).
class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(SeriesOptions options = {});

  /// The registry sampled at each tick.  Must outlive the recorder or be
  /// unbound first; nullptr disables sampling (ticks still advance).
  /// Rebinding drops the warm scratch snapshot — registry keys only grow,
  /// so stale entries can only come from a different registry.
  void bind_registry(const MetricsRegistry* registry) {
    if (registry != registry_) scratch_ = MetricsSnapshot{};
    registry_ = registry;
  }

  /// Pump: takes every cadence tick <= `upcoming` that has not fired yet.
  /// The simulation calls this with the next instant's timestamp before
  /// executing it, so each sample sees the state strictly before its tick.
  void on_instant(SimTime upcoming);

  /// Drops every recorded point and rewinds the tick grid to
  /// first_sample — multi-run benches call this (via ObsScope's
  /// bind_registry) so the series cover exactly the observed run.
  void restart();

  /// Samples the bound registry once at `at` (normally driven by
  /// on_instant; exposed for tests and end-of-run flushes).
  void sample(SimTime at);

  /// Invoked after every sample tick with the tick time and the snapshot
  /// just taken — the hook the SloMonitor rides so SLO evaluation shares
  /// both the series cadence and the sampled snapshot instead of
  /// scheduling its own events and re-snapshotting the registry.  With no
  /// registry bound the snapshot is empty.  Empty function disables.
  void set_on_sample(std::function<void(SimTime, const MetricsSnapshot&)> hook) {
    on_sample_ = std::move(hook);
  }

  [[nodiscard]] const std::map<std::string, Series>& series() const {
    return series_;
  }
  [[nodiscard]] std::size_t sample_count() const { return samples_taken_; }
  [[nodiscard]] SimTime next_tick() const { return next_tick_; }

  /// Name-sorted exports.  CSV: `series,t,value,rate` rows; JSON: one
  /// object per series with point arrays plus cadence/eviction metadata.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;

 private:
  [[nodiscard]] bool selected(const std::string& name) const;
  Series& series_slot(const std::string& name);
  static void record_into(Series& series, SimTime at, double value);
  void record(const std::string& name, SimTime at, double value);
  void rebuild_plan();

  SeriesOptions options_;
  const MetricsRegistry* registry_ = nullptr;
  std::function<void(SimTime, const MetricsSnapshot&)> on_sample_;
  SimTime next_tick_{0.0};
  std::size_t samples_taken_ = 0;
  std::map<std::string, Series> series_;
  /// Reused across ticks (snapshot_into): after the first sample the maps
  /// are warm and a tick allocates no snapshot nodes.
  MetricsSnapshot scratch_;
  /// One Series per scratch entry in map-iteration order (nullptr =
  /// filtered out by `include`); histograms pin their [count]/[sum] pair.
  /// Series map nodes are stable, so the pointers survive growth; the
  /// plan is rebuilt whenever the scratch shape (sizes) changes.
  std::vector<Series*> scalar_plan_;
  std::vector<std::pair<Series*, Series*>> hist_plan_;
};

/// The process-global series sink pumped by the simulation loops; nullptr
/// (the default) disables sampling at one load+branch, mirroring
/// trace_sink().  Installer owns the recorder and must clear the sink
/// before destroying it.
[[nodiscard]] TimeSeriesRecorder* series_sink();
void set_series_sink(TimeSeriesRecorder* recorder);

}  // namespace vod::obs
