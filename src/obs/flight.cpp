#include "obs/flight.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/contract.h"

namespace vod::obs {

namespace {

// vodlint:allow(shared-mutable-global: flight recorder pointer follows the
// same installer-owned lifecycle as the trace sink (DESIGN.md §16);
// trigger sites only read it, outside parallel regions)
FlightRecorder* g_flight = nullptr;

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u00" << std::hex << (c < 16 ? "0" : "")
              << static_cast<int>(c);
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

FlightRecorder* flight_recorder() { return g_flight; }

void set_flight_recorder(FlightRecorder* recorder) {
  g_flight = recorder;
  set_flight_ring(recorder != nullptr ? &recorder->ring() : nullptr);
}

FlightRecorder::FlightRecorder(FlightOptions options)
    : options_(options),
      ring_(options.ring_capacity, OverflowPolicy::kRing) {
  require(options.ring_capacity > 0,
      "FlightRecorder: ring capacity must be positive");
}

void FlightRecorder::set_clock(std::function<SimTime()> clock) {
  ring_.set_clock(clock);
  clock_ = std::move(clock);
}

void FlightRecorder::set_config(const std::string& key,
                                const std::string& value) {
  const auto it = std::lower_bound(
      config_.begin(), config_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != config_.end() && it->first == key) {
    it->second = value;
    return;
  }
  config_.insert(it, {key, value});
}

std::string FlightRecorder::build_dump(const std::string& reason,
                                       SimTime at) const {
  std::ostringstream os;
  os << "{\"flight_record\":{\"seq\":" << dumps_.size() << ",\"reason\":\""
     << json_escape(reason) << "\",\"sim_time_s\":";
  render_value(os, at.seconds());
  os << ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  os << "},\"ring\":{\"capacity\":" << options_.ring_capacity
     << ",\"overwritten\":" << ring_.overwritten_count() << ",\"events\":[";
  first = true;
  ring_.for_each_event([&](const TraceEvent& event) {
    if (!first) os << ',';
    first = false;
    os << "{\"t\":";
    render_value(os, event.at.seconds());
    os << ",\"subsystem\":\""
       << to_string(event.subsystem) << "\",\"ph\":\"" << event.phase
       << "\",\"name\":\"" << json_escape(event.name) << '"';
    if (event.phase == 'b' || event.phase == 'e') {
      os << ",\"id\":" << event.id;
    }
    if (event.phase == 'C') {
      os << ",\"value\":" << num(event.value);
    }
    if (!event.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const TraceArg& arg : event.args) {
        if (!first_arg) os << ',';
        first_arg = false;
        os << '"' << json_escape(arg.key) << "\":\""
           << json_escape(arg.value) << '"';
      }
      os << '}';
    }
    os << '}';
  });
  os << "]},\"metrics\":";
  if (registry_ != nullptr) {
    std::string metrics = registry_->snapshot().to_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    os << metrics;
  } else {
    os << "null";
  }
  os << "}}\n";
  return os.str();
}

bool FlightRecorder::trigger(const std::string& reason) {
  const SimTime now = clock_ ? clock_() : SimTime{0.0};
  if (options_.max_dumps != 0 && dumps_.size() >= options_.max_dumps) {
    ++suppressed_;
    return false;
  }
  if (dumped_before_ && now - last_dump_ < options_.min_gap.seconds()) {
    ++suppressed_;
    return false;
  }
  std::string json = build_dump(reason, now);
  if (!options_.dump_path_prefix.empty()) {
    const std::string path = options_.dump_path_prefix +
                             std::to_string(dumps_.size()) + ".json";
    std::ofstream out(path);
    ensure(out.good(), [&] {
      return "FlightRecorder: cannot write dump " + path;
    });
    out << json;
  }
  dumps_.emplace_back(reason, std::move(json));
  dumped_before_ = true;
  last_dump_ = now;
  return true;
}

}  // namespace vod::obs
