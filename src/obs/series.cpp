#include "obs/series.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/contract.h"

namespace vod::obs {

namespace {

// vodlint:allow(shared-mutable-global: series sink pointer follows the
// same installer-owned lifecycle as the trace sink (DESIGN.md §16); the
// simulation core only reads it between epochs, never inside a parallel
// region)
TimeSeriesRecorder* g_series_sink = nullptr;

}  // namespace

TimeSeriesRecorder* series_sink() { return g_series_sink; }

void set_series_sink(TimeSeriesRecorder* recorder) {
  g_series_sink = recorder;
}

void Series::append(SeriesPoint point) {
  if (capacity_ != 0 && points_.size() >= capacity_) {
    points_[head_] = point;
    head_ = (head_ + 1) % capacity_;
    ++evicted_;
    return;
  }
  points_.push_back(point);
}

const SeriesPoint& Series::back() const {
  require(!points_.empty(), "Series::back: no points");
  const std::size_t n = points_.size();
  return points_[(head_ + n - 1) % n];
}

TimeSeriesRecorder::TimeSeriesRecorder(SeriesOptions options)
    : options_(std::move(options)), next_tick_(options_.first_sample) {
  require(options_.cadence > Duration{0.0},
      "TimeSeriesRecorder: cadence must be positive");
}

bool TimeSeriesRecorder::selected(const std::string& name) const {
  if (options_.include.empty()) return true;
  for (const std::string& prefix : options_.include) {
    if (name.size() >= prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

Series& TimeSeriesRecorder::series_slot(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Series{options_.capacity}).first;
  }
  return it->second;
}

void TimeSeriesRecorder::record_into(Series& series, SimTime at,
                                     double value) {
  double rate = 0.0;
  if (series.size() > 0) {
    const SeriesPoint& prev = series.back();
    const double dt = at - prev.at;  // SimTime difference is raw seconds
    if (dt > 0.0) rate = (value - prev.value) / dt;
  }
  series.append(SeriesPoint{at, value, rate});
}

void TimeSeriesRecorder::record(const std::string& name, SimTime at,
                                double value) {
  record_into(series_slot(name), at, value);
}

void TimeSeriesRecorder::rebuild_plan() {
  scalar_plan_.clear();
  hist_plan_.clear();
  for (const auto& [name, scalar] : scratch_.scalars()) {
    (void)scalar;
    scalar_plan_.push_back(selected(name) ? &series_slot(name) : nullptr);
  }
  for (const auto& [name, hist] : scratch_.histograms()) {
    (void)hist;
    if (!selected(name)) {
      hist_plan_.emplace_back(nullptr, nullptr);
      continue;
    }
    // The slot calls may rebalance the map but nodes are stable, so the
    // pointers survive later insertions.
    Series* count_series = &series_slot(name + "[count]");
    Series* sum_series = &series_slot(name + "[sum]");
    hist_plan_.emplace_back(count_series, sum_series);
  }
}

void TimeSeriesRecorder::sample(SimTime at) {
  ++samples_taken_;
  if (registry_ != nullptr) {
    registry_->snapshot_into(scratch_);
    // Registries only grow instruments, so a changed shape is always a
    // size change; the plan pins one Series per snapshot entry and the
    // steady-state tick does no name lookups at all.
    if (scratch_.scalars().size() != scalar_plan_.size() ||
        scratch_.histograms().size() != hist_plan_.size()) {
      rebuild_plan();
    }
    std::size_t i = 0;
    for (const auto& [name, scalar] : scratch_.scalars()) {
      (void)name;
      if (Series* series = scalar_plan_[i++]) {
        record_into(*series, at, scalar.value);
      }
    }
    i = 0;
    for (const auto& [name, hist] : scratch_.histograms()) {
      (void)name;
      const auto& [count_series, sum_series] = hist_plan_[i++];
      if (count_series != nullptr) {
        record_into(*count_series, at, static_cast<double>(hist.count));
        record_into(*sum_series, at, hist.sum);
      }
    }
  }
  if (on_sample_) on_sample_(at, scratch_);
}

void TimeSeriesRecorder::on_instant(SimTime upcoming) {
  while (next_tick_ <= upcoming) {
    sample(next_tick_);
    next_tick_ = next_tick_ + options_.cadence;
  }
}

void TimeSeriesRecorder::restart() {
  series_.clear();
  scratch_ = MetricsSnapshot{};
  scalar_plan_.clear();
  hist_plan_.clear();
  samples_taken_ = 0;
  next_tick_ = options_.first_sample;
}

std::string TimeSeriesRecorder::to_csv() const {
  std::ostringstream os;
  os << "series,t,value,rate\n";
  for (const auto& [name, series] : series_) {
    series.for_each_point([&](const SeriesPoint& point) {
      os << name << ',';
      render_value(os, point.at.seconds());
      os << ',';
      render_value(os, point.value);
      os << ',';
      render_value(os, point.rate);
      os << '\n';
    });
  }
  return os.str();
}

std::string TimeSeriesRecorder::to_json() const {
  std::ostringstream os;
  os << "{\"cadence_s\":";
  render_value(os, options_.cadence.seconds());
  os << ",\"samples\":" << samples_taken_ << ",\"series\":{";
  bool first_series = true;
  for (const auto& [name, series] : series_) {
    if (!first_series) os << ',';
    first_series = false;
    os << '"' << name << "\":{\"evicted\":" << series.evicted()
       << ",\"points\":[";
    bool first_point = true;
    series.for_each_point([&](const SeriesPoint& point) {
      if (!first_point) os << ',';
      first_point = false;
      os << "{\"t\":";
      render_value(os, point.at.seconds());
      os << ",\"v\":";
      render_value(os, point.value);
      os << ",\"rate\":";
      render_value(os, point.rate);
      os << '}';
    });
    os << "]}";
  }
  os << "}}\n";
  return os.str();
}

}  // namespace vod::obs
