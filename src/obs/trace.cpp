#include "obs/trace.h"

#include <array>
#include <cmath>
#include <sstream>
#include <utility>

namespace vod::obs {

namespace {

// vodlint:allow(shared-mutable-global: trace sink pointer is installed
// before a run and cleared after; the simulation core only reads it, and
// recorders are never installed around parallel regions (DESIGN.md §11))
TraceRecorder* g_sink = nullptr;

/// JSON string escaping for names/arg values (control chars, quote,
/// backslash).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u00" << std::hex << (c < 16 ? "0" : "")
              << static_cast<int>(c);
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Simulated seconds -> trace microseconds, rendered without a fractional
/// part when whole (the common case) so the JSON stays tidy and stable.
std::string to_ts(SimTime at) {
  const double us = at.seconds() * 1e6;
  std::ostringstream os;
  if (us == std::floor(us) && std::abs(us) < 9e15) {
    os << static_cast<long long>(us);
  } else {
    os << us;
  }
  return os.str();
}

}  // namespace

const char* to_string(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kSession:
      return "session";
    case Subsystem::kVra:
      return "vra";
    case Subsystem::kDma:
      return "dma";
    case Subsystem::kFluid:
      return "fluid";
    case Subsystem::kSnmp:
      return "snmp";
    case Subsystem::kFault:
      return "fault";
    case Subsystem::kService:
      return "service";
    case Subsystem::kSim:
      return "sim";
  }
  return "?";
}

std::string num(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string num(std::uint64_t value) { return std::to_string(value); }

TraceRecorder* trace_sink() { return g_sink; }

void set_trace_sink(TraceRecorder* recorder) { g_sink = recorder; }

TraceRecorder::TraceRecorder(std::size_t max_events)
    : max_events_(max_events) {}

void TraceRecorder::set_clock(std::function<SimTime()> clock) {
  clock_ = std::move(clock);
}

void TraceRecorder::push(TraceEvent event) {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::instant(Subsystem subsystem, std::string name,
                            std::vector<TraceArg> args) {
  push(TraceEvent{now(), subsystem, 'i', std::move(name), 0, 0.0,
                  std::move(args)});
}

void TraceRecorder::counter(Subsystem subsystem, std::string name,
                            double value) {
  push(TraceEvent{now(), subsystem, 'C', std::move(name), 0, value, {}});
}

void TraceRecorder::begin(Subsystem subsystem, std::string name,
                          std::vector<TraceArg> args) {
  push(TraceEvent{now(), subsystem, 'B', std::move(name), 0, 0.0,
                  std::move(args)});
}

void TraceRecorder::end(Subsystem subsystem, std::string name) {
  push(TraceEvent{now(), subsystem, 'E', std::move(name), 0, 0.0, {}});
}

void TraceRecorder::async_begin(Subsystem subsystem, std::string name,
                                std::uint64_t id,
                                std::vector<TraceArg> args) {
  push(TraceEvent{now(), subsystem, 'b', std::move(name), id, 0.0,
                  std::move(args)});
}

void TraceRecorder::async_end(Subsystem subsystem, std::string name,
                              std::uint64_t id) {
  push(TraceEvent{now(), subsystem, 'e', std::move(name), id, 0.0, {}});
}

void TraceRecorder::clear() {
  events_.clear();
  dropped_ = 0;
}

std::size_t TraceRecorder::subsystem_count() const {
  std::array<bool, kSubsystemCount> seen{};
  for (const TraceEvent& event : events_) {
    seen[static_cast<std::size_t>(event.subsystem)] = true;
  }
  std::size_t count = 0;
  for (const bool s : seen) count += s ? 1 : 0;
  return count;
}

std::string TraceRecorder::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"vod-sim\"}}";
  // One named thread track per subsystem that actually produced events,
  // emitted in enum order so the output is deterministic.
  std::array<bool, kSubsystemCount> seen{};
  for (const TraceEvent& event : events_) {
    seen[static_cast<std::size_t>(event.subsystem)] = true;
  }
  for (std::size_t s = 0; s < kSubsystemCount; ++s) {
    if (!seen[s]) continue;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << s + 1 << ",\"args\":{\"name\":\""
       << to_string(static_cast<Subsystem>(s)) << "\"}}";
  }
  for (const TraceEvent& event : events_) {
    const std::size_t tid = static_cast<std::size_t>(event.subsystem) + 1;
    os << ",\n{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
       << to_string(event.subsystem) << "\",\"ph\":\"" << event.phase
       << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << to_ts(event.at);
    if (event.phase == 'b' || event.phase == 'e') {
      os << ",\"id\":" << event.id;
    }
    if (event.phase == 'i') {
      os << ",\"s\":\"t\"";
    }
    if (event.phase == 'C') {
      os << ",\"args\":{\"value\":" << num(event.value) << "}";
    } else if (!event.args.empty()) {
      os << ",\"args\":{";
      bool first = true;
      for (const TraceArg& arg : event.args) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(arg.key) << "\":\""
           << json_escape(arg.value) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]";
  if (dropped_ != 0) {
    os << ",\"vodDroppedEvents\":" << dropped_;
  }
  os << "}\n";
  return os.str();
}

std::string TraceRecorder::to_text() const {
  std::ostringstream os;
  for (const TraceEvent& event : events_) {
    os << "t=" << event.at.seconds() << ' ' << to_string(event.subsystem)
       << ' ' << event.phase << ' ' << event.name;
    if (event.phase == 'b' || event.phase == 'e') {
      os << " id=" << event.id;
    }
    if (event.phase == 'C') {
      os << " value=" << num(event.value);
    }
    for (const TraceArg& arg : event.args) {
      os << ' ' << arg.key << '=' << arg.value;
    }
    os << '\n';
  }
  if (dropped_ != 0) {
    os << "# dropped " << dropped_ << " event(s) past the capacity cap\n";
  }
  return os.str();
}

}  // namespace vod::obs
