#include "obs/trace.h"

#include <array>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/contract.h"

namespace vod::obs {

namespace {

// vodlint:allow(shared-mutable-global: trace sink pointers are installed
// before a run and cleared after; the simulation core only reads them, and
// recorders are never installed around parallel regions (DESIGN.md §11))
TraceRecorder* g_sink = nullptr;  // effective sink read by call sites

// vodlint:allow(shared-mutable-global: same installer-owned lifecycle as
// g_sink — these two feed the effective-sink rewiring below)
TraceRecorder* g_user_sink = nullptr;

// vodlint:allow(shared-mutable-global: same installer-owned lifecycle as
// g_sink; owned by the FlightRecorder (obs/flight.h))
TraceRecorder* g_flight_ring = nullptr;

/// Recomputes the effective sink: the user recorder wins and mirrors into
/// the flight ring; with no user recorder the ring records directly.
void rewire_sink() {
  if (g_user_sink != nullptr) {
    g_user_sink->set_mirror(g_flight_ring);
    g_sink = g_user_sink;
  } else {
    g_sink = g_flight_ring;
  }
}

/// JSON string escaping for names/arg values (control chars, quote,
/// backslash).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u00" << std::hex << (c < 16 ? "0" : "")
              << static_cast<int>(c);
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A reused formatting stream: constructing an ostringstream per value
/// (locale setup each time) dominates rendering cost at trace/flight event
/// volume.  thread_local because instrumented sites run inside sharded
/// epochs on worker threads.
std::ostringstream& scratch_stream() {
  // vodlint:allow(shared-mutable-global: thread_local — every worker owns
  // its own stream, nothing is shared; reuse only skips the per-value
  // locale setup of a fresh ostringstream)
  static thread_local std::ostringstream os;
  os.str(std::string());
  return os;
}

/// Simulated seconds -> trace microseconds, rendered without a fractional
/// part when whole (the common case) so the JSON stays tidy and stable.
std::string to_ts(SimTime at) {
  const double us = at.seconds() * 1e6;
  std::ostringstream& os = scratch_stream();
  if (us == std::floor(us) && std::abs(us) < 9e15) {
    os << static_cast<long long>(us);
  } else {
    os << us;
  }
  return os.str();
}

}  // namespace

const char* to_string(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kSession:
      return "session";
    case Subsystem::kVra:
      return "vra";
    case Subsystem::kDma:
      return "dma";
    case Subsystem::kFluid:
      return "fluid";
    case Subsystem::kSnmp:
      return "snmp";
    case Subsystem::kFault:
      return "fault";
    case Subsystem::kService:
      return "service";
    case Subsystem::kSim:
      return "sim";
    case Subsystem::kSlo:
      return "slo";
  }
  return "?";
}

std::string num(double value) {
  std::ostringstream& os = scratch_stream();
  os << value;
  return os.str();
}

std::string num(std::uint64_t value) { return std::to_string(value); }

TraceRecorder* trace_sink() { return g_sink; }

void set_trace_sink(TraceRecorder* recorder) {
  if (g_user_sink != nullptr && g_user_sink != recorder) {
    g_user_sink->set_mirror(nullptr);
  }
  g_user_sink = recorder;
  rewire_sink();
}

void set_flight_ring(TraceRecorder* ring) {
  g_flight_ring = ring;
  rewire_sink();
}

TraceRecorder::TraceRecorder(std::size_t max_events, OverflowPolicy policy)
    : max_events_(max_events), policy_(policy) {
  require(policy == OverflowPolicy::kDrop || max_events != 0,
      "TraceRecorder: kRing requires a finite capacity");
}

void TraceRecorder::set_clock(std::function<SimTime()> clock) {
  clock_ = std::move(clock);
}

void TraceRecorder::push(TraceEvent event) {
  if (mirror_ != nullptr) {
    mirror_->push(event);  // copy: the mirror sees every event, cap or not
  }
  if (max_events_ != 0 && events_.size() >= max_events_) {
    if (policy_ == OverflowPolicy::kRing) {
      events_[head_] = std::move(event);
      head_ = (head_ + 1) % max_events_;
      ++overwritten_;
      return;
    }
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::instant(Subsystem subsystem, std::string name,
                            std::vector<TraceArg> args) {
  push(TraceEvent{now(), subsystem, 'i', std::move(name), 0, 0.0,
                  std::move(args)});
}

void TraceRecorder::counter(Subsystem subsystem, std::string name,
                            double value) {
  push(TraceEvent{now(), subsystem, 'C', std::move(name), 0, value, {}});
}

void TraceRecorder::begin(Subsystem subsystem, std::string name,
                          std::vector<TraceArg> args) {
  push(TraceEvent{now(), subsystem, 'B', std::move(name), 0, 0.0,
                  std::move(args)});
}

void TraceRecorder::end(Subsystem subsystem, std::string name) {
  push(TraceEvent{now(), subsystem, 'E', std::move(name), 0, 0.0, {}});
}

void TraceRecorder::async_begin(Subsystem subsystem, std::string name,
                                std::uint64_t id,
                                std::vector<TraceArg> args) {
  push(TraceEvent{now(), subsystem, 'b', std::move(name), id, 0.0,
                  std::move(args)});
}

void TraceRecorder::async_end(Subsystem subsystem, std::string name,
                              std::uint64_t id) {
  push(TraceEvent{now(), subsystem, 'e', std::move(name), id, 0.0, {}});
}

void TraceRecorder::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
  overwritten_ = 0;
}

std::size_t TraceRecorder::subsystem_count() const {
  std::array<bool, kSubsystemCount> seen{};
  for (const TraceEvent& event : events_) {
    seen[static_cast<std::size_t>(event.subsystem)] = true;
  }
  std::size_t count = 0;
  for (const bool s : seen) count += s ? 1 : 0;
  return count;
}

std::string TraceRecorder::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"vod-sim\"}}";
  // One named thread track per subsystem that actually produced events,
  // emitted in enum order so the output is deterministic.
  std::array<bool, kSubsystemCount> seen{};
  for (const TraceEvent& event : events_) {
    seen[static_cast<std::size_t>(event.subsystem)] = true;
  }
  for (std::size_t s = 0; s < kSubsystemCount; ++s) {
    if (!seen[s]) continue;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << s + 1 << ",\"args\":{\"name\":\""
       << to_string(static_cast<Subsystem>(s)) << "\"}}";
  }
  for_each_event([&](const TraceEvent& event) {
    const std::size_t tid = static_cast<std::size_t>(event.subsystem) + 1;
    os << ",\n{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
       << to_string(event.subsystem) << "\",\"ph\":\"" << event.phase
       << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << to_ts(event.at);
    if (event.phase == 'b' || event.phase == 'e') {
      os << ",\"id\":" << event.id;
    }
    if (event.phase == 'i') {
      os << ",\"s\":\"t\"";
    }
    if (event.phase == 'C') {
      os << ",\"args\":{\"value\":" << num(event.value) << "}";
    } else if (!event.args.empty()) {
      os << ",\"args\":{";
      bool first = true;
      for (const TraceArg& arg : event.args) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(arg.key) << "\":\""
           << json_escape(arg.value) << "\"";
      }
      os << "}";
    }
    os << "}";
  });
  os << "\n]";
  if (dropped_ != 0) {
    os << ",\"vodDroppedEvents\":" << dropped_;
  }
  os << "}\n";
  return os.str();
}

std::string TraceRecorder::to_text() const {
  std::ostringstream os;
  for_each_event([&](const TraceEvent& event) {
    os << "t=" << event.at.seconds() << ' ' << to_string(event.subsystem)
       << ' ' << event.phase << ' ' << event.name;
    if (event.phase == 'b' || event.phase == 'e') {
      os << " id=" << event.id;
    }
    if (event.phase == 'C') {
      os << " value=" << num(event.value);
    }
    for (const TraceArg& arg : event.args) {
      os << ' ' << arg.key << '=' << arg.value;
    }
    os << '\n';
  });
  if (dropped_ != 0) {
    os << "# dropped " << dropped_ << " event(s) past the capacity cap\n";
  }
  if (overwritten_ != 0) {
    os << "# ring overwrote " << overwritten_ << " older event(s)\n";
  }
  return os.str();
}

}  // namespace vod::obs
