#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/contract.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace vod::obs {

namespace {

/// Matches the series/metrics exporters' deterministic rendering.
std::string render(double value) {
  std::ostringstream os;
  if (value == std::floor(value) && std::abs(value) < 9e15) {
    os << static_cast<long long>(value);
  } else {
    os << value;
  }
  return os.str();
}

}  // namespace

SloMonitor::SloMonitor(MetricsRegistry* registry) : registry_(registry) {
  require(registry != nullptr, "SloMonitor: registry required");
}

void SloMonitor::add(SloSpec spec) {
  require(!spec.name.empty(), "SloMonitor::add: spec needs a name");
  require(!spec.windows.empty(), "SloMonitor::add: spec needs >= 1 window");
  for (const BurnWindow& w : spec.windows) {
    require(w.window > Duration{0.0},
        "SloMonitor::add: windows must be positive");
    require(w.max_burn > 0.0, "SloMonitor::add: max_burn must be positive");
  }
  switch (spec.kind) {
    case SloSpec::Kind::kAvailabilityFloor:
      require(spec.threshold < 1.0 && spec.threshold >= 0.0,
          "SloMonitor::add: availability floor must be in [0,1)");
      require(!spec.good_metric.empty() && !spec.total_metrics.empty(),
          "SloMonitor::add: availability needs good_metric + total_metrics");
      break;
    case SloSpec::Kind::kRatioCeiling:
      require(spec.threshold > 0.0,
          "SloMonitor::add: ratio ceiling must be positive");
      require(!spec.bad_metric.empty() && !spec.total_metrics.empty(),
          "SloMonitor::add: ratio needs bad_metric + total_metrics");
      break;
    case SloSpec::Kind::kQuantileCeiling:
      require(spec.threshold > 0.0,
          "SloMonitor::add: quantile ceiling must be positive");
      require(spec.quantile >= 0.0 && spec.quantile <= 1.0,
          "SloMonitor::add: quantile outside [0,1]");
      require(!spec.histogram_metric.empty(),
          "SloMonitor::add: quantile needs histogram_metric");
      break;
  }
  breach_counters_.push_back(
      &registry_->counter("slo." + spec.name + ".breaches"));
  states_.push_back(SloState{std::move(spec), false, 0, 0, {}});
  histories_.emplace_back();
}

SloMonitor::HistorySample SloMonitor::read_spec(
    const SloSpec& spec, SimTime at, const MetricsSnapshot& snap) const {
  HistorySample sample;
  sample.at = at;
  const auto scalar_or_zero = [&](const std::string& name) {
    return snap.has(name) ? snap.value(name) : 0.0;
  };
  switch (spec.kind) {
    case SloSpec::Kind::kAvailabilityFloor:
      sample.good = scalar_or_zero(spec.good_metric);
      break;
    case SloSpec::Kind::kRatioCeiling:
      sample.bad = scalar_or_zero(spec.bad_metric);
      break;
    case SloSpec::Kind::kQuantileCeiling: {
      const auto it = snap.histograms().find(spec.histogram_metric);
      if (it != snap.histograms().end()) {
        sample.bucket_counts = it->second.bucket_counts;
      }
      return sample;
    }
  }
  for (const std::string& name : spec.total_metrics) {
    sample.total += scalar_or_zero(name);
  }
  return sample;
}

double SloMonitor::window_burn(const SloSpec& spec,
                               const std::deque<HistorySample>& history,
                               const HistorySample& now_sample,
                               Duration window,
                               const std::vector<double>& bounds) const {
  // Newest sample at or before the window start; an implicit all-zero
  // sample (counters start at 0) covers windows longer than the run.
  const double start = now_sample.at.seconds() - window.seconds();
  HistorySample baseline;  // zeros
  for (const HistorySample& sample : history) {
    if (sample.at.seconds() <= start) {
      baseline = sample;
    } else {
      break;  // history is time-ordered
    }
  }
  switch (spec.kind) {
    case SloSpec::Kind::kAvailabilityFloor: {
      const double total = now_sample.total - baseline.total;
      if (total <= 0.0) return 0.0;
      const double good = now_sample.good - baseline.good;
      const double bad_fraction = std::max(0.0, 1.0 - good / total);
      return bad_fraction / (1.0 - spec.threshold);
    }
    case SloSpec::Kind::kRatioCeiling: {
      const double total = now_sample.total - baseline.total;
      if (total <= 0.0) return 0.0;
      const double bad = std::max(0.0, now_sample.bad - baseline.bad);
      return (bad / total) / spec.threshold;
    }
    case SloSpec::Kind::kQuantileCeiling: {
      if (now_sample.bucket_counts.empty()) return 0.0;
      std::vector<std::uint64_t> delta = now_sample.bucket_counts;
      std::uint64_t delta_count = 0;
      for (std::size_t i = 0; i < delta.size(); ++i) {
        const std::uint64_t base = i < baseline.bucket_counts.size()
                                       ? baseline.bucket_counts[i]
                                       : 0;
        delta[i] = delta[i] >= base ? delta[i] - base : 0;
        delta_count += delta[i];
      }
      if (delta_count == 0) return 0.0;
      return bucket_quantile(bounds, delta, delta_count, spec.quantile) /
             spec.threshold;
    }
  }
  fail_ensure("SloMonitor::window_burn: unknown spec kind");
}

void SloMonitor::evaluate(SimTime at) {
  registry_->snapshot_into(scratch_);
  evaluate(at, scratch_);
}

void SloMonitor::evaluate(SimTime at, const MetricsSnapshot& snap) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    SloState& state = states_[i];
    const SloSpec& spec = state.spec;
    std::deque<HistorySample>& history = histories_[i];

    std::vector<double> bounds;
    if (spec.kind == SloSpec::Kind::kQuantileCeiling) {
      const auto it = snap.histograms().find(spec.histogram_metric);
      if (it != snap.histograms().end()) bounds = it->second.upper_bounds;
    }
    const HistorySample now_sample = read_spec(spec, at, snap);

    state.last_burn.clear();
    bool all_burning = true;
    for (const BurnWindow& w : spec.windows) {
      const double burn =
          window_burn(spec, history, now_sample, w.window, bounds);
      state.last_burn.push_back(burn);
      if (burn < w.max_burn) all_burning = false;
    }

    if (all_burning && !state.breached) {
      state.breached = true;
      ++state.breaches;
      breach_counters_[i]->inc();
      const double min_burn =
          *std::min_element(state.last_burn.begin(), state.last_burn.end());
      if (TraceRecorder* tr = trace_sink()) {
        tr->instant(Subsystem::kSlo, "slo.breach",
                    {{"slo", spec.name}, {"burn", render(min_burn)}});
      }
      if (FlightRecorder* fr = flight_recorder()) {
        fr->trigger("slo.breach:" + spec.name);
      }
    } else if (!all_burning && state.breached) {
      state.breached = false;
      ++state.recoveries;
      if (TraceRecorder* tr = trace_sink()) {
        tr->instant(Subsystem::kSlo, "slo.recover", {{"slo", spec.name}});
      }
    }

    // Retain history back to the longest window (plus one older sample as
    // that window's baseline).
    history.push_back(now_sample);
    double longest = 0.0;
    for (const BurnWindow& w : spec.windows) {
      longest = std::max(longest, w.window.seconds());
    }
    const double horizon = at.seconds() - longest;
    while (history.size() > 1 && history[1].at.seconds() <= horizon) {
      history.pop_front();
    }
  }
}

std::string SloMonitor::status_json() const {
  std::ostringstream os;
  os << "{\"slos\":[";
  bool first = true;
  for (const SloState& state : states_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << state.spec.name
       << "\",\"breached\":" << (state.breached ? "true" : "false")
       << ",\"breaches\":" << state.breaches
       << ",\"recoveries\":" << state.recoveries << ",\"burn\":[";
    for (std::size_t i = 0; i < state.last_burn.size(); ++i) {
      if (i != 0) os << ',';
      os << render(state.last_burn[i]);
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace vod::obs
