// The Disk storage and Manipulation Algorithm (DMA) — Figure 2 of the
// paper, implemented faithfully.
//
// Per request for a video at this server:
//   * already cached           -> give it a point (popularity credit)
//   * not cached, disks fit it -> write it (striped) immediately
//   * not cached, disks full   -> give it a point; if its points now exceed
//     the least-popular cached title's points, delete that title and write
//     the newcomer if it now fits.
//
// Two documented extensions beyond the figure (both default to the paper's
// behaviour):
//   * admission_threshold — the body text says a title is cached only after
//     "over a certain number of requests"; the figure stores on first
//     request when space is free.  Threshold 0 reproduces the figure;
//     higher values reproduce the text.
//   * multi_evict — the figure deletes at most one victim per request, so a
//     large newcomer can fail to fit even when several unpopular titles
//     could be evicted.  multi_evict keeps evicting while the newcomer
//     remains more popular than the current least-popular title.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "storage/disk_array.h"

namespace vod::dma {

/// Tuning knobs; defaults reproduce Figure 2 exactly.
struct DmaOptions {
  std::uint64_t admission_threshold = 0;
  bool multi_evict = false;
};

/// What the algorithm did with one request.
enum class DmaOutcome {
  kHit,                // already cached; granted a point
  kStored,             // written to the disks (possibly after eviction)
  kPointedOnly,        // not cached, not (yet) admitted; granted a point
};

/// Events for wiring the cache to the database (the service mirrors cache
/// contents into each server's full-access title list).
struct DmaCallbacks {
  std::function<void(VideoId)> on_admit;  // video became locally available
  std::function<void(VideoId)> on_evict;  // video was deleted from disks
};

/// The per-server popularity cache over a striped disk array.
class DmaCache {
 public:
  /// `disks` must outlive the cache.
  DmaCache(storage::DiskArray& disks, DmaOptions options = {},
           DmaCallbacks callbacks = {});

  /// Runs Figure 2 for one request of `video` (`size` from the catalog).
  DmaOutcome on_request(VideoId video, MegaBytes size);

  [[nodiscard]] std::uint64_t points(VideoId video) const;

  /// Bulk points lookup: out[i] = points(videos[i]).  The lookups are
  /// independent const map reads, so they run as a parallel sweep (the
  /// per-server DMA update path the service's top_titles ranking drives);
  /// out is positional, so the result is order-independent by construction.
  void points_bulk(const std::vector<VideoId>& videos,
                   std::vector<std::uint64_t>& out) const;
  [[nodiscard]] bool cached(VideoId video) const {
    return disks_.holds(video);
  }
  [[nodiscard]] std::vector<VideoId> cached_videos() const {
    return disks_.stored_videos();
  }

  /// The cached title with the fewest points (ties broken toward the
  /// lowest video id, deterministically); nullopt when nothing is cached.
  [[nodiscard]] std::optional<VideoId> least_popular_cached() const;

  /// Propagates a disk failure: titles lost from the array are reported
  /// through on_evict (so the database stops advertising them) and
  /// returned.  Their popularity points survive, so they re-enter the
  /// cache quickly once demand recurs.
  std::vector<VideoId> handle_disk_failure(std::size_t slot);

  [[nodiscard]] const DmaOptions& options() const { return options_; }
  [[nodiscard]] storage::DiskArray& disks() { return disks_; }

  /// Names this cache's server in trace events (caches have no inherent
  /// node identity; the service labels each one when wiring the topology).
  void set_trace_node(std::uint32_t node) { trace_node_ = node; }

  // Counters for the benches.
  [[nodiscard]] std::uint64_t hit_count() const { return hits_; }
  [[nodiscard]] std::uint64_t store_count() const { return stores_; }
  [[nodiscard]] std::uint64_t eviction_count() const { return evictions_; }
  [[nodiscard]] std::uint64_t request_count() const { return requests_; }

 private:
  bool try_store(VideoId video, MegaBytes size);
  void evict(VideoId victim);

  storage::DiskArray& disks_;
  DmaOptions options_;
  DmaCallbacks callbacks_;
  std::uint32_t trace_node_ = 0;
  std::map<VideoId, std::uint64_t> points_;
  std::uint64_t hits_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace vod::dma
