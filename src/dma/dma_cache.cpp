#include "dma/dma_cache.h"

#include <stdexcept>

#include "common/contract.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace vod::dma {

namespace {

/// One DMA cache-churn instant; `node` labels whose cache this is.
void trace_dma(const char* name, std::uint32_t node, VideoId video,
               std::uint64_t points) {
  obs::TraceRecorder* tr = obs::trace_sink();
  if (tr == nullptr) return;
  tr->instant(obs::Subsystem::kDma, name,
              {{"node", obs::num(static_cast<std::uint64_t>(node))},
               {"video", obs::num(static_cast<std::uint64_t>(video.value()))},
               {"points", obs::num(points)}});
}

}  // namespace

DmaCache::DmaCache(storage::DiskArray& disks, DmaOptions options,
                   DmaCallbacks callbacks)
    : disks_(disks), options_(options), callbacks_(std::move(callbacks)) {}

std::uint64_t DmaCache::points(VideoId video) const {
  const auto it = points_.find(video);
  return it == points_.end() ? 0 : it->second;
}

void DmaCache::points_bulk(const std::vector<VideoId>& videos,
                           std::vector<std::uint64_t>& out) const {
  out.resize(videos.size());
  // Each chunk writes only its own positions; points() is a const tree
  // lookup, safe to run concurrently.
  // vodlint: parallel-region
  parallel_for(videos.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = points(videos[i]);
  });
}

std::optional<VideoId> DmaCache::least_popular_cached() const {
  const std::vector<VideoId> stored = disks_.stored_videos();
  if (stored.empty()) return std::nullopt;
  // Parallel phase: gather every title's points positionally.  Serial
  // merge: the integer min scan with the first-seen tie-break — stored is
  // ascending by video id, so ties resolve toward the lowest id exactly as
  // the one-pass scan did.
  std::vector<std::uint64_t> gathered;
  points_bulk(stored, gathered);
  std::size_t best = 0;
  for (std::size_t i = 1; i < stored.size(); ++i) {
    if (gathered[i] < gathered[best]) best = i;
  }
  return stored[best];
}

bool DmaCache::try_store(VideoId video, MegaBytes size) {
  const auto placement = disks_.store(video, size);
  if (!placement) return false;
  ++stores_;
  trace_dma("dma.admit", trace_node_, video, points(video));
  if (callbacks_.on_admit) callbacks_.on_admit(video);
  return true;
}

void DmaCache::evict(VideoId victim) {
  disks_.remove(victim);
  ++evictions_;
  trace_dma("dma.evict", trace_node_, victim, points(victim));
  if (callbacks_.on_evict) callbacks_.on_evict(victim);
}

std::vector<VideoId> DmaCache::handle_disk_failure(std::size_t slot) {
  std::vector<VideoId> lost = disks_.fail_disk(slot);
  for (const VideoId video : lost) {
    ++evictions_;
    trace_dma("dma.lost", trace_node_, video, points(video));
    if (callbacks_.on_evict) callbacks_.on_evict(video);
  }
  return lost;
}

DmaOutcome DmaCache::on_request(VideoId video, MegaBytes size) {
  require(video.valid(), "DmaCache::on_request: invalid video");
  require(!(size.value() <= 0.0), "DmaCache::on_request: size must be > 0");
  ++requests_;

  // "IF (Video is already on disk) THEN give a point"
  if (cached(video)) {
    ++points_[video];
    ++hits_;
    trace_dma("dma.hit", trace_node_, video, points_[video]);
    return DmaOutcome::kHit;
  }

  // Admission gate (text variant); with threshold 0 this is Figure 2: an
  // uncached title may be written on its very first request.
  if (options_.admission_threshold > 0) {
    ++points_[video];
    if (points_[video] <= options_.admission_threshold) {
      trace_dma("dma.point", trace_node_, video, points_[video]);
      return DmaOutcome::kPointedOnly;
    }
    if (disks_.can_tolerate(size) && try_store(video, size)) {
      return DmaOutcome::kStored;
    }
  } else {
    // "IF (Disks can tolerate the Video) THEN write Video to Disks"
    if (disks_.can_tolerate(size) && try_store(video, size)) {
      return DmaOutcome::kStored;
    }
    // "ELSE give a point to video"
    ++points_[video];
  }

  // "IF (Video's points > Least popular on disk Video's points) THEN
  //  delete Least Popular Video; IF tolerable THEN write"
  for (;;) {
    const auto victim = least_popular_cached();
    if (!victim || points(video) <= points(*victim)) break;
    evict(*victim);
    if (disks_.can_tolerate(size) && try_store(video, size)) {
      return DmaOutcome::kStored;
    }
    if (!options_.multi_evict) break;  // Figure 2: one victim per request
  }
  trace_dma("dma.point", trace_node_, video, points(video));
  return DmaOutcome::kPointedOnly;
}

}  // namespace vod::dma
