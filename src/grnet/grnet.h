// The paper's case study as data: the Greek Research & Technology Network
// backbone of Figure 6, the SNMP measurements of Table 2, and the published
// LVN values of Table 3 (used as expected values by tests and benches).
//
// Node naming follows the paper's experiment tables:
//   U1 Athens, U2 Patra, U3 Ioannina, U4 Thessaloniki, U5 Xanthi,
//   U6 Heraklio
// Links (paper order): Patra-Athens 2 Mbps, Patra-Ioannina 2, Thessaloniki-
// Athens 18, Thessaloniki-Xanthi 2, Thessaloniki-Ioannina 2, Athens-
// Heraklio 18, Xanthi-Heraklio 2.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/units.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "vra/validation.h"

namespace vod::grnet {

/// The four measurement instants of Table 2.
enum class TimeOfDay { k8am = 0, k10am = 1, k4pm = 2, k6pm = 3 };

inline constexpr std::array<TimeOfDay, 4> kAllTimes{
    TimeOfDay::k8am, TimeOfDay::k10am, TimeOfDay::k4pm, TimeOfDay::k6pm};

/// Hour-of-day of a measurement instant (8, 10, 16, 18).
double hour_of(TimeOfDay t);
/// The instant as simulation time (seconds from midnight).
SimTime time_of(TimeOfDay t);
/// "8am", "10am", "4pm", "6pm".
const char* time_label(TimeOfDay t);

/// The GRNET backbone with named handles to every node and link.
struct CaseStudy {
  net::Topology topology;

  NodeId athens;        // U1
  NodeId patra;         // U2
  NodeId ioannina;      // U3
  NodeId thessaloniki;  // U4
  NodeId xanthi;        // U5
  NodeId heraklio;      // U6

  LinkId patra_athens;
  LinkId patra_ioannina;
  LinkId thess_athens;
  LinkId thess_xanthi;
  LinkId thess_ioannina;
  LinkId athens_heraklio;
  LinkId xanthi_heraklio;

  /// The links in the row order of Tables 2 and 3.
  [[nodiscard]] std::vector<LinkId> links_in_paper_order() const;

  /// City name of a node ("Athens", ...); topology names are "U1".."U6".
  [[nodiscard]] std::string city(NodeId node) const;
};

/// Builds the Figure 6 topology.
CaseStudy build_case_study();

/// One cell of Table 2: the SNMP counters of a link at an instant.
struct LinkSample {
  Mbps used;           // traffic_in + traffic_out
  double utilization;  // the printed percentage, as a fraction
};

/// The Table 2 measurement for `link` at `t`.
LinkSample table2_sample(const CaseStudy& grnet, LinkId link, TimeOfDay t);

/// A stats provider loaded with the full Table 2 column for instant `t` —
/// exactly what the limited-access database held when the paper ran its
/// four experiments.
vra::MapLinkStatsProvider table2_stats(const CaseStudy& grnet, TimeOfDay t);

/// The paper's published Table 3 LVN for `link` at `t` (expected values for
/// verification; our computed LVNs must match within rounding).
double table3_expected_lvn(const CaseStudy& grnet, LinkId link, TimeOfDay t);

/// Table 2 as a day-long background-traffic trace (step samples at the four
/// instants), for driving the network simulator through the paper's day.
net::TraceTraffic table2_trace(const CaseStudy& grnet);

}  // namespace vod::grnet
