#include "grnet/grnet.h"

#include <stdexcept>

#include "common/contract.h"

namespace vod::grnet {

double hour_of(TimeOfDay t) {
  switch (t) {
    case TimeOfDay::k8am:
      return 8.0;
    case TimeOfDay::k10am:
      return 10.0;
    case TimeOfDay::k4pm:
      return 16.0;
    case TimeOfDay::k6pm:
      return 18.0;
  }
  fail_require("hour_of: bad TimeOfDay");
}

SimTime time_of(TimeOfDay t) { return from_hours(hour_of(t)); }

const char* time_label(TimeOfDay t) {
  switch (t) {
    case TimeOfDay::k8am:
      return "8am";
    case TimeOfDay::k10am:
      return "10am";
    case TimeOfDay::k4pm:
      return "4pm";
    case TimeOfDay::k6pm:
      return "6pm";
  }
  fail_require("time_label: bad TimeOfDay");
}

CaseStudy build_case_study() {
  CaseStudy grnet;
  net::Topology& topo = grnet.topology;
  grnet.athens = topo.add_node("U1");
  grnet.patra = topo.add_node("U2");
  grnet.ioannina = topo.add_node("U3");
  grnet.thessaloniki = topo.add_node("U4");
  grnet.xanthi = topo.add_node("U5");
  grnet.heraklio = topo.add_node("U6");

  grnet.patra_athens =
      topo.add_link(grnet.patra, grnet.athens, Mbps{2.0}, "Patra-Athens");
  grnet.patra_ioannina = topo.add_link(grnet.patra, grnet.ioannina,
                                       Mbps{2.0}, "Patra-Ioannina");
  grnet.thess_athens = topo.add_link(grnet.thessaloniki, grnet.athens,
                                     Mbps{18.0}, "Thessaloniki-Athens");
  grnet.thess_xanthi = topo.add_link(grnet.thessaloniki, grnet.xanthi,
                                     Mbps{2.0}, "Thessaloniki-Xanthi");
  grnet.thess_ioannina = topo.add_link(grnet.thessaloniki, grnet.ioannina,
                                       Mbps{2.0}, "Thessaloniki-Ioannina");
  grnet.athens_heraklio = topo.add_link(grnet.athens, grnet.heraklio,
                                        Mbps{18.0}, "Athens-Heraklio");
  grnet.xanthi_heraklio = topo.add_link(grnet.xanthi, grnet.heraklio,
                                        Mbps{2.0}, "Xanthi-Heraklio");
  return grnet;
}

std::vector<LinkId> CaseStudy::links_in_paper_order() const {
  return {patra_athens,   patra_ioannina, thess_athens,    thess_xanthi,
          thess_ioannina, athens_heraklio, xanthi_heraklio};
}

std::string CaseStudy::city(NodeId node) const {
  if (node == athens) return "Athens";
  if (node == patra) return "Patra";
  if (node == ioannina) return "Ioannina";
  if (node == thessaloniki) return "Thessaloniki";
  if (node == xanthi) return "Xanthi";
  if (node == heraklio) return "Heraklio";
  fail_require("CaseStudy::city: unknown node");
}

namespace {

// Table 2, in paper row order; columns 8am, 10am, 4pm, 6pm.
// Used bandwidth is in Mbps ("100 bits" = 100 bit/s = 1e-4 Mbps);
// utilization is the printed percentage as a fraction.
struct Table2Row {
  double used[4];
  double util[4];
};

constexpr Table2Row kTable2[7] = {
    // Patra-Athens (2 Mbps)
    {{0.2, 1.82, 1.82, 1.82}, {0.10, 0.91, 0.91, 0.91}},
    // Patra-Ioannina (2 Mbps)
    {{1.0e-4, 1.7e-4, 0.2, 0.24}, {5.0e-5, 8.5e-5, 0.10, 0.12}},
    // Thessaloniki-Athens (18 Mbps)
    {{1.7, 7.0, 9.8, 9.6}, {0.094, 0.388, 0.544, 0.533}},
    // Thessaloniki-Xanthi (2 Mbps)
    {{0.48, 0.52, 0.75, 0.60}, {0.24, 0.26, 0.375, 0.30}},
    // Thessaloniki-Ioannina (2 Mbps)
    {{0.30, 1.48, 1.86, 1.30}, {0.15, 0.74, 0.93, 0.65}},
    // Athens-Heraklio (18 Mbps)
    {{0.5, 2.5, 5.5, 6.0}, {0.027, 0.138, 0.305, 0.333}},
    // Xanthi-Heraklio (2 Mbps)
    {{1.0e-4, 1.5e-4, 2.0e-4, 1.5e-4}, {5.0e-5, 5.0e-5, 1.0e-4, 7.5e-5}},
};

// Table 3, the paper's published LVN values (same layout).
constexpr double kTable3[7][4] = {
    {0.083, 0.632, 0.687, 0.697},          // Patra-Athens
    {0.07501, 0.450017, 0.535, 0.539},     // Patra-Ioannina
    {0.2819, 1.1075, 1.5433, 1.4824},      // Thessaloniki-Athens
    {0.168, 0.4611, 0.6391, 0.583},        // Thessaloniki-Xanthi
    {0.1427, 0.5571, 0.7501, 0.653},       // Thessaloniki-Ioannina
    {0.1116, 0.5462, 0.999, 1.0574},       // Athens-Heraklio
    {0.1201, 0.13001, 0.275015, 0.3},      // Xanthi-Heraklio
};

std::size_t row_of(const CaseStudy& grnet, LinkId link) {
  const auto order = grnet.links_in_paper_order();
  for (std::size_t row = 0; row < order.size(); ++row) {
    if (order[row] == link) return row;
  }
  fail_require("grnet: link not part of the case study");
}

}  // namespace

LinkSample table2_sample(const CaseStudy& grnet, LinkId link, TimeOfDay t) {
  const std::size_t row = row_of(grnet, link);
  const auto column = static_cast<std::size_t>(t);
  return LinkSample{Mbps{kTable2[row].used[column]},
                    kTable2[row].util[column]};
}

vra::MapLinkStatsProvider table2_stats(const CaseStudy& grnet, TimeOfDay t) {
  vra::MapLinkStatsProvider provider;
  for (const LinkId link : grnet.links_in_paper_order()) {
    const LinkSample sample = table2_sample(grnet, link, t);
    provider.set(link,
                 vra::LinkStats{sample.used,
                                grnet.topology.link(link).capacity,
                                sample.utilization});
  }
  return provider;
}

double table3_expected_lvn(const CaseStudy& grnet, LinkId link,
                           TimeOfDay t) {
  return kTable3[row_of(grnet, link)][static_cast<std::size_t>(t)];
}

net::TraceTraffic table2_trace(const CaseStudy& grnet) {
  net::TraceTraffic trace;
  for (const LinkId link : grnet.links_in_paper_order()) {
    for (const TimeOfDay t : kAllTimes) {
      trace.add_sample(link, time_of(t), table2_sample(grnet, link, t).used);
    }
  }
  return trace;
}

}  // namespace vod::grnet
