// Epoch-barrier parallel stepping (DESIGN.md §15).
//
// The simulator advances in discrete instants, and every event at one
// instant already fires from the same logical "now" — exactly the structure
// a fork-join core can exploit without giving up the replay guarantee.  An
// *epoch* is the batch of every pending event sharing the earliest
// timestamp.  Events scheduled with an affinity key (session/server/link
// id) are partitioned into a FIXED shard array — shard_of(key, shards),
// never a function of the worker count — and their handlers run on the
// ForkJoinPool with writes confined to per-shard ordered EffectBuffers.
// At the barrier the buffers are applied in shard-index order (and, within
// a shard, in scheduling order), then the instant's plain serial events run
// in scheduling order, and only then may the clock advance.  Because the
// partition and every merge order are pure functions of the event batch,
// results are bit-identical at any worker width — the property the PR 5
// double-run harness and the seeded-storm digests pin.
//
// Contract for sharded handlers (gated by vodlint's [parallel-region-write]
// rule at the dispatch site):
//   * may read any state that no other shard mutates during the phase, and
//     may write only state owned by their affinity key;
//   * must not touch the EventQueue or lazily-built mutable caches — defer
//     scheduling, cancellation and cross-shard mutation into the
//     EffectBuffer, which runs serially after the barrier;
//   * an event at instant T with affinity can only be cancelled by events
//     strictly before T (the parallel phase runs before the instant's
//     serial events, so a same-instant cancel arrives too late by design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"

namespace vod::sim {

/// Ordered buffer of deferred mutations recorded by one shard during the
/// parallel phase.  Effects run serially at the barrier, so they may touch
/// anything a plain event callback may (schedule, cancel, global state).
class EffectBuffer {
 public:
  using Effect = std::function<void(SimTime)>;

  void defer(Effect effect) { effects_.push_back(std::move(effect)); }

  [[nodiscard]] std::size_t size() const { return effects_.size(); }
  [[nodiscard]] bool empty() const { return effects_.empty(); }

  /// Runs every deferred effect in the order recorded, then clears.  Only
  /// the epoch executor (and the serial inline path) call this.
  void run_all(SimTime now) {
    for (Effect& effect : effects_) effect(now);
    effects_.clear();
  }

 private:
  std::vector<Effect> effects_;
};

/// Affinity key of an event with no shard owner (a plain serial event).
inline constexpr std::uint64_t kNoAffinity = ~std::uint64_t{0};

/// Stable shard assignment: a pure function of the affinity key and the
/// shard count, so the partition is identical across runs and worker
/// widths by construction.
[[nodiscard]] constexpr std::size_t shard_of(std::uint64_t affinity,
                                             std::size_t shards) {
  return static_cast<std::size_t>(affinity % shards);
}

/// One event popped into an epoch batch.  Exactly one of `callback`
/// (serial) and `sharded` (parallel phase) is set; `sequence` preserves
/// scheduling order inside the batch.
struct EpochEvent {
  std::uint64_t sequence = 0;
  std::uint64_t affinity = kNoAffinity;
  std::function<void(SimTime)> callback;
  std::function<void(SimTime, EffectBuffer&)> sharded;
};

class EventQueue;

/// Runs epoch batches: shard partition -> parallel phase -> effect merge in
/// shard-index order -> serial events in scheduling order.  Holds the shard
/// scratch (member buckets reused across epochs) so a steady-state step
/// allocates nothing.
class EpochExecutor {
 public:
  /// Executes one same-instant batch at `now` over `shards` fixed shards.
  /// Returns the number of events that actually ran (cancelled ones are
  /// skipped via the queue's liveness check).
  std::size_t run(EventQueue& queue, SimTime now,
                  std::vector<EpochEvent>& batch, std::size_t shards);

  // Observability for tests: totals since construction.
  [[nodiscard]] std::uint64_t epochs_run() const { return epochs_; }
  [[nodiscard]] std::uint64_t sharded_events_run() const {
    return sharded_events_;
  }
  [[nodiscard]] std::uint64_t serial_events_run() const {
    return serial_events_;
  }

  /// Per-epoch parallel-core shape, recorded only for epochs with at least
  /// one live sharded event (pure-serial instants would swamp the
  /// distributions with zeros).  Pure functions of the event batch, so
  /// identical at any worker width — VodService mirrors them into the
  /// metrics snapshot as `epoch.shard_occupancy` / `epoch.shard_imbalance`
  /// (DESIGN.md §16).
  [[nodiscard]] const obs::Histogram& shard_occupancy() const {
    return occupancy_hist_;
  }
  /// max shard population / mean over occupied shards; 1 = perfectly even.
  [[nodiscard]] const obs::Histogram& shard_imbalance() const {
    return imbalance_hist_;
  }

 private:
  std::vector<std::vector<std::uint32_t>> shard_members_;
  std::vector<EffectBuffer> buffers_;
  std::vector<std::uint32_t> serial_members_;
  std::uint64_t epochs_ = 0;
  std::uint64_t sharded_events_ = 0;
  std::uint64_t serial_events_ = 0;
  obs::Histogram occupancy_hist_{{1, 2, 4, 8, 16, 32, 48, 64}};
  obs::Histogram imbalance_hist_{{1, 1.25, 1.5, 2, 3, 5, 8, 16}};
};

}  // namespace vod::sim
